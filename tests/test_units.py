"""Tests for repro.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_decimal_prefixes(self):
        assert units.KB == 1e3
        assert units.MB == 1e6
        assert units.GB == 1e9
        assert units.TB == 1e12
        assert units.PB == 1e15

    def test_binary_prefixes(self):
        assert units.KIB == 1024
        assert units.GIB == 1024**3

    def test_flops_aliases(self):
        assert units.TFLOPS == units.TERA
        assert units.EFLOPS == 1e18

    def test_time_units(self):
        assert units.MS == 1e-3
        assert units.HOUR == 3600.0


class TestFormatBytes:
    def test_gigabytes(self):
        assert units.format_bytes(1.4e9) == "1.40 GB"

    def test_megabytes(self):
        assert units.format_bytes(100e6) == "100.00 MB"

    def test_small_values(self):
        assert units.format_bytes(12.0) == "12.00 B"

    def test_exabytes(self):
        assert units.format_bytes(2e18) == "2.00 EB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_bytes(-1)


class TestFormatRate:
    def test_terabytes_per_second(self):
        assert units.format_rate(2.5e12) == "2.50 TB/s"

    def test_gigabytes_per_second(self):
        assert units.format_rate(25e9) == "25.00 GB/s"


class TestFormatFlops:
    def test_exaflops(self):
        assert units.format_flops(1.13e18) == "1.13 EFLOP/s"

    def test_petaflops(self):
        assert units.format_flops(603e15) == "603.00 PFLOP/s"


class TestFormatTime:
    def test_milliseconds(self):
        assert units.format_time(0.008) == "8.00 ms"

    def test_microseconds(self):
        assert units.format_time(1.5e-6) == "1.50 us"

    def test_seconds(self):
        assert units.format_time(2.5) == "2.50 s"

    def test_minutes(self):
        assert units.format_time(90) == "1.50 min"

    def test_hours(self):
        assert units.format_time(7200) == "2.00 h"

    def test_zero(self):
        assert units.format_time(0) == "0 s"


@given(st.floats(min_value=0, max_value=1e21, allow_nan=False))
def test_format_bytes_never_raises_on_nonnegative(value):
    out = units.format_bytes(value)
    assert out.endswith("B")


@given(st.floats(min_value=1e-9, max_value=1e6, allow_nan=False))
def test_format_time_always_has_unit(value):
    out = units.format_time(value)
    assert any(out.endswith(u) for u in ("us", "ms", " s", "min", " h"))
