"""Binary-alloy lattice model and Metropolis Monte Carlo.

Stands in for the first-principles statistical-mechanics workflow of
Liu et al. (Section V-A): a two-species alloy on a square lattice whose
nearest-neighbour interaction favours unlike neighbours (B2-type chemical
ordering, as in CuZn). Mapping occupancy to Ising spins makes this the
antiferromagnetic Ising model, whose order-disorder transition temperature
is known exactly (Onsager): ``T_c = 2 / ln(1 + sqrt(2)) ~ 2.269 J/k_B`` —
giving the workflow reproduction a rigorous quantitative target.

The Hamiltonian may be the exact one or any callable energy model (e.g. a
learned :class:`~repro.science.cluster_expansion.ClusterExpansion`), which
is precisely how the ML-accelerated workflow swaps in its surrogate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def exact_critical_temperature(j: float = 1.0) -> float:
    """Onsager's exact T_c for the 2-D square-lattice Ising model."""
    if j <= 0:
        raise ConfigurationError("coupling must be positive")
    return 2.0 * j / math.log(1.0 + math.sqrt(2.0))


class AlloyLattice:
    """An L x L binary alloy configuration with periodic boundaries.

    Spins are +1 (species A) / -1 (species B). ``j > 0`` is the ordering
    energy: H = +j * sum_<nn> s_i s_j, so unlike neighbours are favoured
    and the ground state is the checkerboard (B2) superstructure.
    """

    def __init__(self, size: int, j: float = 1.0, seed: int | None = None):
        if size < 2:
            raise ConfigurationError("lattice size must be >= 2")
        if size % 2:
            raise ConfigurationError(
                "size must be even so the checkerboard ground state fits"
            )
        if j <= 0:
            raise ConfigurationError("coupling j must be positive")
        self.size = size
        self.j = j
        rng = np.random.default_rng(seed)
        self.spins = rng.choice(np.array([-1, 1], dtype=np.int8), size=(size, size))
        # staggered sign mask for the order parameter
        ii, jj = np.indices((size, size))
        self._stagger = np.where((ii + jj) % 2 == 0, 1, -1).astype(np.int8)

    # -- observables ---------------------------------------------------------------

    def neighbour_sum(self) -> np.ndarray:
        """Sum of the four nearest-neighbour spins at every site."""
        s = self.spins
        return (
            np.roll(s, 1, 0) + np.roll(s, -1, 0) + np.roll(s, 1, 1) + np.roll(s, -1, 1)
        )

    def energy(self) -> float:
        """Total configurational energy (each bond counted once)."""
        s = self.spins
        bonds = s * (np.roll(s, -1, 0) + np.roll(s, -1, 1))
        return float(self.j * bonds.sum())

    def energy_per_site(self) -> float:
        return self.energy() / self.spins.size

    def order_parameter(self) -> float:
        """Long-range (staggered) order in [0, 1]: 1 = perfect B2 order."""
        return float(abs((self.spins * self._stagger).mean()))

    def composition(self) -> float:
        """Fraction of species A."""
        return float((self.spins == 1).mean())

    # -- correlation features (inputs to the cluster expansion) ----------------------

    def correlations(self) -> np.ndarray:
        """Per-site cluster correlation functions [point, nn-pair, 2nn-pair,
        3nn-pair] — the descriptor vector the cluster expansion fits to."""
        s = self.spins.astype(float)
        n = s.size
        point = s.mean()
        nn = (s * (np.roll(s, -1, 0) + np.roll(s, -1, 1))).sum() / (2 * n)
        second = (
            s * (np.roll(np.roll(s, -1, 0), -1, 1) + np.roll(np.roll(s, -1, 0), 1, 1))
        ).sum() / (2 * n)
        third = (s * (np.roll(s, -2, 0) + np.roll(s, -2, 1))).sum() / (2 * n)
        return np.array([point, nn, second, third])


@dataclass
class MCResult:
    """Averages collected over the measurement phase of a Monte Carlo run."""

    temperature: float
    energy_per_site: float
    order_parameter: float
    specific_heat: float
    susceptibility: float
    acceptance_rate: float


class MonteCarlo:
    """Metropolis sampler with vectorised checkerboard updates.

    The checkerboard decomposition updates all same-colour sites at once
    (they do not interact), giving numpy-speed sweeps — the guide-recommended
    vectorisation of the classic site-by-site loop. :meth:`sweep_scalar` is
    the site-by-site reference: it consumes the random stream in exactly the
    same pattern (one full-lattice uniform draw per colour), so the fast and
    reference paths produce **bit-identical spin trajectories** for the same
    seed — asserted at the observable level by the parity tests.
    """

    def __init__(self, lattice: AlloyLattice, seed: int | None = None):
        self.lattice = lattice
        self.rng = np.random.default_rng(seed)
        size = lattice.size
        ii, jj = np.indices((size, size))
        self._color = (ii + jj) % 2 == 0

    def sweep(self, temperature: float) -> float:
        """One full lattice sweep (both colours); returns acceptance rate.

        Fast path: all same-colour sites update simultaneously from the
        pre-update neighbour sums — valid because same-colour sites never
        neighbour each other on the square lattice.
        """
        if temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        accepted = 0
        for color in (self._color, ~self._color):
            s = self.lattice.spins
            nbr = self.lattice.neighbour_sum()
            # Energy change of flipping spin i: dE = -2 j s_i * nbr_i
            # (H = +j sum s s', flipping s_i changes bond energy by -2 j s_i nbr_i)
            d_e = -2.0 * self.lattice.j * s * nbr
            accept = (d_e <= 0) | (
                self.rng.random(s.shape) < np.exp(-np.clip(d_e, 0, None) / temperature)
            )
            flip = accept & color
            s[flip] = -s[flip]
            accepted += int(flip.sum())
        return accepted / self.lattice.spins.size

    def sweep_scalar(self, temperature: float) -> float:
        """Site-by-site reference implementation of one full sweep.

        Walks each colour sub-lattice in row-major order, recomputing the
        local neighbour sum per site. Same-colour sites do not interact, so
        this is mathematically the simultaneous checkerboard update; drawing
        the *same* full-lattice uniform array per colour makes the two paths
        agree bit for bit on every spin, not just in distribution.
        """
        if temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        accepted = 0
        size = self.lattice.size
        j = self.lattice.j
        for color in (self._color, ~self._color):
            s = self.lattice.spins
            uniform = self.rng.random(s.shape)
            for a in range(size):
                for b in range(size):
                    if not color[a, b]:
                        continue
                    nbr = (
                        int(s[(a + 1) % size, b]) + int(s[a - 1, b])
                        + int(s[a, (b + 1) % size]) + int(s[a, b - 1])
                    )
                    d_e = -2.0 * j * int(s[a, b]) * nbr
                    if d_e <= 0 or uniform[a, b] < float(
                        np.exp(-max(d_e, 0.0) / temperature)
                    ):
                        s[a, b] = -s[a, b]
                        accepted += 1
        return accepted / self.lattice.spins.size

    def run(
        self,
        temperature: float,
        n_sweeps: int = 200,
        n_warmup: int = 100,
        energy_model=None,
        method: str = "checkerboard",
    ) -> MCResult:
        """Equilibrate then measure at ``temperature``.

        ``energy_model`` — if given, a callable mapping an
        :class:`AlloyLattice` to a total energy; measurements use it instead
        of the exact Hamiltonian (the surrogate-in-the-loop configuration).
        Proposal acceptance always uses the exact local rule; the surrogate
        path exercises the *measurement* substitution the materials workflow
        makes, keeping detailed balance intact.

        ``method`` selects the update path: ``"checkerboard"`` (the
        vectorised fast path) or ``"scalar"`` (the site-by-site reference) —
        the two produce identical trajectories for the same seed.
        """
        if n_sweeps < 1 or n_warmup < 0:
            raise ConfigurationError("need n_sweeps >= 1, n_warmup >= 0")
        try:
            step = {"checkerboard": self.sweep, "scalar": self.sweep_scalar}[method]
        except KeyError:
            raise ConfigurationError(
                f"unknown update method {method!r}; "
                "choose 'checkerboard' or 'scalar'"
            ) from None
        for _ in range(n_warmup):
            step(temperature)
        energies = np.empty(n_sweeps)
        orders = np.empty(n_sweeps)
        acc = 0.0
        n_sites = self.lattice.spins.size
        for i in range(n_sweeps):
            acc += step(temperature)
            if energy_model is None:
                energies[i] = self.lattice.energy_per_site()
            else:
                energies[i] = energy_model(self.lattice) / n_sites
            orders[i] = self.lattice.order_parameter()
        e_mean = float(energies.mean())
        m_mean = float(orders.mean())
        return MCResult(
            temperature=temperature,
            energy_per_site=e_mean,
            order_parameter=m_mean,
            specific_heat=float(energies.var()) * n_sites / temperature**2,
            susceptibility=float(orders.var()) * n_sites / temperature,
            acceptance_rate=acc / n_sweeps,
        )

    def temperature_sweep(
        self,
        temperatures: list[float],
        n_sweeps: int = 200,
        n_warmup: int = 100,
        energy_model=None,
    ) -> list[MCResult]:
        """Anneal through ``temperatures`` (order preserved), measuring at
        each. Reusing the configuration between temperatures shortens
        equilibration, as in production annealing studies."""
        if not temperatures:
            raise ConfigurationError("temperatures must be non-empty")
        return [
            self.run(t, n_sweeps=n_sweeps, n_warmup=n_warmup, energy_model=energy_model)
            for t in temperatures
        ]


def estimate_critical_temperature(results: list[MCResult]) -> float:
    """T_c estimate: the temperature with the largest specific-heat peak."""
    if not results:
        raise ConfigurationError("results must be non-empty")
    peak = max(results, key=lambda r: r.specific_heat)
    return peak.temperature
