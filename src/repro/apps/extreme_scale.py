"""The five Section IV-B extreme-scale training applications.

Each :class:`ExtremeScaleApp` binds a catalog model to the parallel layout
the paper describes (data parallelism everywhere; model parallelism for
Yang's PI-GAN; gradient accumulation for Blanchard's SMILES-BERT) and to
per-app overlap/jitter calibrations, and carries the paper's reported
numbers for comparison. ``simulate()`` runs the training simulator and
returns measured-vs-reported rows.

Calibration notes: ``sustained_fraction`` (in the model catalog) fixes the
single-GPU rate; ``overlap_fraction`` and ``compute_jitter_cv`` are tuned so
the simulated scaling matches the reported efficiency at the reported node
count. The *shape* — which component (jitter/comm/IO) dominates at which
scale — is the reproduction target; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec
    from repro.resilience.report import ResilienceReport

from repro.errors import ConfigurationError
from repro.machine.summit import summit
from repro.machine.system import System
from repro.models import (
    ModelSpec,
    deeplabv3plus,
    fc_densenet,
    pi_gan,
    smiles_bert,
    wavenet_gw,
)
from repro.training.job import TrainingJob
from repro.training.parallelism import DataSource, ParallelismPlan


def _resolve_system(
    system: "System | None", machine: "MachineSpec | str | None"
) -> System:
    """An explicit ``system`` wins; else ``machine`` (registry name or
    spec) builds one; else the historical Summit default."""
    if system is not None:
        return system
    if machine is not None:
        from repro.machine.spec import resolve_machine

        return resolve_machine(machine).system()
    return summit(include_high_mem=False)


@dataclass(frozen=True)
class ExtremeScaleApp:
    """One Section IV-B application, ready to simulate."""

    key: str
    citation: str
    model_factory: Callable[[], ModelSpec]
    plan: ParallelismPlan
    data_source: DataSource
    baseline_nodes: int
    peak_nodes: int
    reported: dict  # the paper's numbers (subset of reference.EXTREME_SCALE_CLAIMS)

    def job(
        self,
        n_nodes: int,
        system: System | None = None,
        machine: "MachineSpec | str | None" = None,
    ) -> TrainingJob:
        return TrainingJob(
            model=self.model_factory(),
            system=_resolve_system(system, machine),
            n_nodes=n_nodes,
            plan=self.plan,
            data_source=self.data_source,
        )

    def simulate(
        self,
        system: System | None = None,
        machine: "MachineSpec | str | None" = None,
    ) -> dict:
        """Run baseline and peak configurations; return measured numbers."""
        system = _resolve_system(system, machine)
        base = self.job(self.baseline_nodes, system)
        peak = self.job(self.peak_nodes, system)
        return {
            "key": self.key,
            "nodes": self.peak_nodes,
            "measured_flops": peak.sustained_flops(),
            "measured_efficiency": peak.efficiency_vs(base),
            "step_time": peak.step_time(),
            "breakdown": peak.breakdown(),
            "reported": self.reported,
        }

    def cost_model(
        self,
        system: System | None = None,
        machine: "MachineSpec | str | None" = None,
    ):
        """The app's step-time composite from the :mod:`repro.cost` layer.

        Evaluate at one node count (``.evaluate(n_nodes=...)``) or across a
        grid (:meth:`sweep_nodes`); scalar results are bit-identical to
        ``job(n).breakdown()``.
        """
        from repro.training.step_time import step_cost

        return step_cost(
            self.model_factory(),
            _resolve_system(system, machine),
            self.plan,
            data_source=self.data_source,
        )

    def sweep_nodes(
        self,
        n_nodes,
        system: System | None = None,
        n_jobs: int = 1,
        cache=None,
        machine: "MachineSpec | str | None" = None,
    ):
        """Vectorized step-time sweep over a node-count axis.

        ``n_nodes`` is any 1-D integer sequence; node counts must be
        multiples of the replica span for model-parallel apps. Returns a
        :class:`~repro.cost.sweep.SweepResult`.

        ``n_jobs`` shards the grid over a process pool (bit-identical to
        the serial pass) and ``cache`` is an optional
        :class:`~repro.exec.ResultCache` for content-addressed reuse.
        """
        from repro.cost import sweep

        return sweep(
            self.cost_model(system, machine), {"n_nodes": n_nodes},
            n_jobs=n_jobs, cache=cache,
        )

    def resilience_report(
        self,
        n_nodes: int | None = None,
        node_mtbf_seconds: float | None = None,
        state_bytes_per_node: float | None = None,
        tier: str = "nvme",
        empirical: bool = True,
        seed: int = 0,
        system: System | None = None,
        machine: "MachineSpec | str | None" = None,
        engine_impl: str | None = None,
    ) -> "ResilienceReport":
        """Expected goodput at scale under failures and checkpointing.

        Runs the training simulator for the raw rate, then derates it with
        the Young/Daly model (and, when ``empirical``, the event-driven
        checkpoint-restart simulation) at the job's width — the step-time
        number the five scaling reproductions quote becomes a
        time-to-solution number.
        """
        nodes = n_nodes if n_nodes is not None else self.peak_nodes
        model = self.goodput_model(
            nodes, node_mtbf_seconds, state_bytes_per_node, system, machine
        )
        return model.report(
            name=f"{self.key} @ {nodes} nodes ({tier})",
            tier=tier,
            empirical=empirical,
            seed=seed,
            engine_impl=engine_impl,
        )

    def goodput_model(
        self,
        n_nodes: int | None = None,
        node_mtbf_seconds: float | None = None,
        state_bytes_per_node: float | None = None,
        system: System | None = None,
        machine: "MachineSpec | str | None" = None,
    ) -> "GoodputModel":
        """The resilience-aware throughput model at this app's width.

        With ``machine`` set, the checkpoint tiers (NVMe, shared FS) come
        from that machine's spec instead of Summit's.
        """
        from repro.resilience.faults import DEFAULT_NODE_MTBF_SECONDS
        from repro.training.goodput import (
            DEFAULT_STATE_BYTES_PER_NODE,
            GoodputModel,
        )

        nodes = n_nodes if n_nodes is not None else self.peak_nodes
        kwargs = dict(
            node_mtbf_seconds=(
                node_mtbf_seconds
                if node_mtbf_seconds is not None
                else DEFAULT_NODE_MTBF_SECONDS
            ),
            state_bytes_per_node=(
                state_bytes_per_node
                if state_bytes_per_node is not None
                else DEFAULT_STATE_BYTES_PER_NODE
            ),
        )
        job = self.job(nodes, system, machine)
        if machine is not None:
            return GoodputModel.for_machine(job, machine, **kwargs)
        return GoodputModel(job=job, **kwargs)

    def resilience_ensemble(
        self,
        n_nodes: int | None = None,
        node_mtbf_seconds: float | None = None,
        state_bytes_per_node: float | None = None,
        tier: str = "nvme",
        n_replicas: int = 8,
        seed: int = 0,
        n_jobs: int = 1,
        system: System | None = None,
        machine: "MachineSpec | str | None" = None,
        engine_impl: str | None = None,
    ) -> "list[RestartStats]":
        """A Monte-Carlo ensemble of checkpoint-restart runs for this app.

        Replica ``i`` uses the ``i``-th child of ``seed``; the replica list
        is identical at every ``n_jobs``, so averaging the overheads gives
        an ``n_jobs``-invariant error bar around the Young/Daly optimum.
        """
        model = self.goodput_model(
            n_nodes, node_mtbf_seconds, state_bytes_per_node, system, machine
        )
        return model.simulate_ensemble(
            tier=tier, seed=seed, n_replicas=n_replicas, n_jobs=n_jobs,
            engine_impl=engine_impl,
        )


def _app(key, citation, model_factory, plan, source, baseline, peak, reported):
    return ExtremeScaleApp(
        key=key, citation=citation, model_factory=model_factory, plan=plan,
        data_source=source, baseline_nodes=baseline, peak_nodes=peak,
        reported=reported,
    )


EXTREME_SCALE_APPS: dict[str, ExtremeScaleApp] = {
    app.key: app
    for app in (
        # Kurth et al.: climate segmentation; LARC, fp16 gradient lag, NVMe
        # staging with MPI inter-node sample exchange. 1.13 EF / 90.7 %.
        _app(
            "kurth",
            "Kurth et al., Exascale Deep Learning for Climate Analytics (SC18)",
            deeplabv3plus,
            ParallelismPlan(
                local_batch=2,
                overlap_fraction=0.9,
                compute_jitter_cv=0.042,
            ),
            DataSource.NVME,
            1,
            4560,
            {"peak_flops": 1.13e18, "efficiency": 0.907},
        ),
        # Yang et al.: PI-GAN for stochastic PDEs; model parallelism within
        # the node (GAN batch limits) + data parallelism. >1.2 EF / 93 %.
        _app(
            "yang",
            "Yang et al., Highly-scalable physics-informed GANs (DLS 2019)",
            pi_gan,
            ParallelismPlan(
                local_batch=2048,
                model_shards=6,
                overlap_fraction=0.8,
                compute_jitter_cv=0.03,
            ),
            DataSource.MEMORY,  # PDE collocation points are generated, not read
            1,
            4584,
            {"peak_flops": 1.2e18, "efficiency": 0.93},
        ),
        # Laanait et al.: microscopy inverse problem; LARS/Adam, novel
        # gradient-reduction optimisations, global batch 27,600. 2.15 EF.
        _app(
            "laanait",
            "Laanait et al., Exascale deep learning for scientific inverse "
            "problems (2019)",
            fc_densenet,
            ParallelismPlan(
                local_batch=1,
                overlap_fraction=0.95,
                compute_jitter_cv=0.012,
            ),
            DataSource.NVME,
            1,
            4600,
            {"peak_flops": 2.15e18, "global_batch": 27600},
        ),
        # Khan et al.: gravitational-wave parameter inference; LAMB.
        # 80 % efficiency scaling 8 -> 1024 nodes.
        _app(
            "khan",
            "Khan et al., Physics-inspired deep learning for black hole "
            "mergers (Phys. Lett. B 2020)",
            wavenet_gw,
            ParallelismPlan(
                local_batch=16,
                overlap_fraction=0.0,
                compute_jitter_cv=0.07,
            ),
            DataSource.NVME,
            8,
            1024,
            {"efficiency": 0.80},
        ),
        # Blanchard et al.: SMILES-BERT pretraining; LAMB + gradient
        # accumulation to a 5.8 M global batch. 603 PF; 68 % with I/O,
        # 83.3 % without.
        _app(
            "blanchard",
            "Blanchard et al., Language models for SARS-CoV-2 inhibitors (SC21)",
            smiles_bert,
            ParallelismPlan(
                local_batch=30,
                accumulation_steps=8,
                overlap_fraction=0.5,
                io_overlap_fraction=0.35,
                compute_jitter_cv=0.015,
            ),
            DataSource.SHARED_FS,
            1,
            4032,
            {
                "peak_flops": 603e15,
                "efficiency_with_io": 0.68,
                "efficiency_without_io": 0.833,
                "max_global_batch": 5.8e6,
            },
        ),
    )
}


def get_app(key: str) -> ExtremeScaleApp:
    try:
        return EXTREME_SCALE_APPS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {key!r}; available: {sorted(EXTREME_SCALE_APPS)}"
        ) from None
