"""Standardized Hypothesis settings profiles for property tests.

Tiers:
- DETERMINISM_SETTINGS: 100 examples — seed-reproducibility invariants
- STANDARD_SETTINGS: 50 examples — regular property tests
- SLOW_SETTINGS: 20 examples — tests running event-driven simulations
- QUICK_SETTINGS: 10 examples — fast validation tests
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=100, deadline=None)
STANDARD_SETTINGS = settings(max_examples=50, deadline=None)
SLOW_SETTINGS = settings(max_examples=20, deadline=None)
QUICK_SETTINGS = settings(max_examples=10, deadline=None)
