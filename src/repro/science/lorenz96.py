"""Two-scale Lorenz-96: the canonical ML-subgrid-closure testbed.

Table I's example for the *submodel* motif is "physics-based radiation model
in a climate code replaced by ML model", and the paper cites Rasp et al.
(deep learning for subgrid processes in climate models) for both the promise
and the failure modes. Lorenz-96 with two scales is the standard laptop-size
stand-in used throughout that literature:

    dX_k/dt = -X_{k-1}(X_{k-2} - X_{k+1}) - X_k + F - (h c / b) sum_j Y_{j,k}
    dY_j/dt = -c b Y_{j+1}(Y_{j+2} - Y_{j-1}) - c Y_j + (h c / b) X_{k(j)}

The slow variables X are the resolved "climate"; the fast Y are unresolved
"convection" whose aggregate effect on X — the coupling term — is what a
subgrid parameterisation must supply. The ML-closure workflow
(:mod:`repro.workflows.case_submodel`) trains a network on coupled-run data
and runs the reduced model with it, checking exactly the properties the
paper's Section VI-A discusses: out-of-distribution behaviour, stability
under iteration, and climate (long-run statistics) preservation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class L96Params:
    """Standard two-scale Lorenz-96 parameters (Lorenz 1996 / Wilks 2005)."""

    n_slow: int = 8
    fast_per_slow: int = 8
    forcing: float = 10.0
    coupling: float = 1.0  # h
    time_scale: float = 10.0  # c
    amplitude: float = 10.0  # b

    def __post_init__(self) -> None:
        if self.n_slow < 4:
            raise ConfigurationError("need at least 4 slow variables")
        if self.fast_per_slow < 1:
            raise ConfigurationError("need at least 1 fast variable per slow")
        if self.time_scale <= 0 or self.amplitude <= 0:
            raise ConfigurationError("time_scale and amplitude must be positive")


class TwoScaleLorenz96:
    """The coupled truth model, integrated with RK4."""

    def __init__(self, params: L96Params | None = None, seed: int | None = 0):
        self.params = params or L96Params()
        rng = np.random.default_rng(seed)
        p = self.params
        self.x = p.forcing * (0.5 + rng.standard_normal(p.n_slow) * 0.1)
        self.y = rng.standard_normal(p.n_slow * p.fast_per_slow) * 0.1

    # -- tendencies -----------------------------------------------------------

    def coupling_term(self) -> np.ndarray:
        """The subgrid forcing on each X_k: -(h c / b) sum_j Y_{j,k}."""
        p = self.params
        y_sums = self.y.reshape(p.n_slow, p.fast_per_slow).sum(axis=1)
        return -(p.coupling * p.time_scale / p.amplitude) * y_sums

    def _dx(self, x: np.ndarray, coupling: np.ndarray) -> np.ndarray:
        p = self.params
        return (
            -np.roll(x, 1) * (np.roll(x, 2) - np.roll(x, -1))
            - x + p.forcing + coupling
        )

    def _dy(self, y: np.ndarray, x: np.ndarray) -> np.ndarray:
        p = self.params
        xk = np.repeat(x, p.fast_per_slow)
        return (
            -p.time_scale * p.amplitude
            * np.roll(y, -1) * (np.roll(y, -2) - np.roll(y, 1))
            - p.time_scale * y
            + (p.coupling * p.time_scale / p.amplitude) * xk
        )

    def step(self, dt: float = 0.001) -> None:
        """One RK4 step of the coupled system."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        x0, y0 = self.x, self.y
        p = self.params
        scale = -(p.coupling * p.time_scale / p.amplitude)

        def coupled(x, y):
            c = scale * y.reshape(p.n_slow, p.fast_per_slow).sum(axis=1)
            return self._dx(x, c), self._dy(y, x)

        k1x, k1y = coupled(x0, y0)
        k2x, k2y = coupled(x0 + 0.5 * dt * k1x, y0 + 0.5 * dt * k1y)
        k3x, k3y = coupled(x0 + 0.5 * dt * k2x, y0 + 0.5 * dt * k2y)
        k4x, k4y = coupled(x0 + dt * k3x, y0 + dt * k3y)
        self.x = x0 + dt / 6 * (k1x + 2 * k2x + 2 * k3x + k4x)
        self.y = y0 + dt / 6 * (k1y + 2 * k2y + 2 * k3y + k4y)

    def run(self, n_steps: int, dt: float = 0.001) -> None:
        for _ in range(n_steps):
            self.step(dt)

    def generate_training_data(
        self, n_samples: int, dt: float = 0.001, stride: int = 5,
        warmup_steps: int = 2000,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(X_k state windows, true coupling term) pairs from a coupled run.

        Inputs are local stencils (X_{k-2..k+2}) so the learned closure is
        translation-equivariant, like a column physics scheme.
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        self.run(warmup_steps, dt)
        inputs, targets = [], []
        while len(inputs) < n_samples:
            self.run(stride, dt)
            coupling = self.coupling_term()
            x = self.x
            stencil = np.stack([np.roll(x, s) for s in (2, 1, 0, -1, -2)], axis=1)
            inputs.extend(stencil)
            targets.extend(coupling)
        inputs = np.array(inputs[:n_samples])
        targets = np.array(targets[:n_samples]).reshape(-1, 1)
        return inputs, targets


class ReducedLorenz96:
    """The slow-only model with a pluggable subgrid closure.

    ``closure(x) -> coupling`` maps the slow state to the per-site subgrid
    forcing; ``None`` runs the uncorrected truncation (the no-physics
    baseline every parameterisation must beat).
    """

    def __init__(
        self,
        params: L96Params | None = None,
        closure=None,
        x0: np.ndarray | None = None,
        conserve_mean: bool = False,
    ):
        self.params = params or L96Params()
        self.closure = closure
        self.conserve_mean = conserve_mean
        if x0 is not None:
            x0 = np.asarray(x0, dtype=float)
            if x0.shape != (self.params.n_slow,):
                raise ConfigurationError("x0 dimension mismatch")
            self.x = x0.copy()
        else:
            # break the homogeneous symmetry (the uniform state is a fixed
            # point of L96 and would otherwise just decay to X = F)
            k = np.arange(self.params.n_slow)
            self.x = self.params.forcing * 0.5 + np.sin(
                2 * np.pi * k / self.params.n_slow
            )

    def _closure_term(self, x: np.ndarray) -> np.ndarray:
        if self.closure is None:
            return np.zeros_like(x)
        stencil = np.stack([np.roll(x, s) for s in (2, 1, 0, -1, -2)], axis=1)
        term = np.asarray(self.closure(stencil), dtype=float).reshape(-1)
        if term.shape != x.shape:
            raise ConfigurationError("closure returned wrong shape")
        if self.conserve_mean:
            # impose the domain-integral constraint by final correction
            # (Section VI-A.3: constraints "imposed by a final correction")
            term = term - term.mean() + self._reference_mean
        return term

    #: climatological mean of the true coupling term; set by calibrate().
    _reference_mean: float = 0.0

    def calibrate_conservation(self, reference_mean: float) -> None:
        self._reference_mean = float(reference_mean)

    def _dx(self, x: np.ndarray) -> np.ndarray:
        p = self.params
        return (
            -np.roll(x, 1) * (np.roll(x, 2) - np.roll(x, -1))
            - x + p.forcing + self._closure_term(x)
        )

    def step(self, dt: float = 0.001) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        x0 = self.x
        k1 = self._dx(x0)
        k2 = self._dx(x0 + 0.5 * dt * k1)
        k3 = self._dx(x0 + 0.5 * dt * k2)
        k4 = self._dx(x0 + dt * k3)
        self.x = x0 + dt / 6 * (k1 + 2 * k2 + 2 * k3 + k4)

    def run(self, n_steps: int, dt: float = 0.001) -> np.ndarray:
        """Integrate and return the (n_steps, n_slow) trajectory."""
        out = np.empty((n_steps, self.params.n_slow))
        for i in range(n_steps):
            self.step(dt)
            out[i] = self.x
        return out
