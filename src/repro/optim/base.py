"""Optimizer interface.

Parameters are a list of numpy arrays (one per layer tensor); gradients are
a parallel list. ``step`` updates parameters in place, which mirrors how the
:mod:`repro.ml` networks hold their weights.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError


class Optimizer(abc.ABC):
    """Base class handling learning-rate plumbing and shape checks."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.t = 0  # step counter (1-based after the first step)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update in place."""
        if len(params) != len(grads):
            raise ConfigurationError(
                f"{len(params)} parameter tensors but {len(grads)} gradients"
            )
        for i, (p, g) in enumerate(zip(params, grads)):
            if p.shape != g.shape:
                raise ConfigurationError(
                    f"tensor {i}: parameter shape {p.shape} != gradient shape {g.shape}"
                )
        self.t += 1
        self._update(params, grads)

    @abc.abstractmethod
    def _update(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Subclass hook: apply the update. ``self.t`` is already advanced."""


def trust_ratio(param: np.ndarray, update: np.ndarray, eps: float = 1e-9) -> float:
    """Layer-wise trust ratio ||w|| / ||update|| used by LARS/LAMB/LARC.

    Returns 1.0 when either norm vanishes (e.g. at initialisation of a bias),
    matching the published implementations.
    """
    w_norm = float(np.linalg.norm(param))
    u_norm = float(np.linalg.norm(update))
    if w_norm == 0.0 or u_norm < eps:
        return 1.0
    return w_norm / u_norm
