"""The model catalog.

Calibration sources (see DESIGN.md and EXPERIMENTS.md):

- ResNet-50 / BERT-large: parameter counts chosen so the FP32 gradient
  messages are ~100 MB and ~1.4 GB, the exact sizes Section VI-B quotes.
  ResNet-50's sustained fraction reproduces the ~1 445 samples/s/V100 the
  20 TB/s read-requirement estimate implies.
- The Section IV-B applications (Kurth, Yang, Laanait, Khan, Blanchard):
  sustained fractions back-solved from the reported sustained FLOP rates and
  parallel efficiencies (e.g. Laanait's 2.15 EF over 27 600 GPUs is
  77.9 TF/GPU = 62 % of V100 tensor peak — the paper notes his gradient-
  reduction optimisations; Kurth's 1.13 EF at 90.7 % efficiency implies
  ~45.5 TF/GPU = 36 % single-GPU).
- Workflow-component models (CVAE, DeePMD, PointNet-AAE): representative
  literature sizes; only their relative cost matters to the workflow studies.
"""

from __future__ import annotations

from repro import units
from repro.errors import ConfigurationError
from repro.models.base import ModelSpec


def resnet50() -> ModelSpec:
    """ResNet-50 for the ImageNet benchmark of Section VI-B."""
    return ModelSpec(
        name="ResNet-50",
        parameters=25.6e6,  # -> 102 MB FP32 gradient ("about 100MB")
        flops_per_sample=7.8 * units.GFLOPS,
        bytes_per_sample=500 * units.KB,
        sustained_fraction=0.0902,  # -> ~1445 samples/s on a V100
        default_local_batch=128,
        activation_bytes_per_sample=3.0 * units.MB,
    )


def bert_large() -> ModelSpec:
    """BERT-large: the communication-bound boundary case of Section VI-B."""
    return ModelSpec(
        name="BERT-large",
        parameters=350e6,  # -> 1.4 GB FP32 gradient
        flops_per_sample=6 * 350e6 * 128,  # 6 * params * tokens, seq len 128
        bytes_per_sample=2 * units.KB,
        sustained_fraction=0.30,
        default_local_batch=32,
        activation_bytes_per_sample=48 * units.MB,
    )


def tiramisu() -> ModelSpec:
    """Tiramisu (FC-DenseNet-103 variant) from Kurth et al. climate
    segmentation."""
    return ModelSpec(
        name="Tiramisu-103 (climate)",
        parameters=9.4e6,
        flops_per_sample=4.8 * units.TFLOPS,
        bytes_per_sample=28 * units.MB,  # 1152x768, 16 channels, fp16
        sustained_fraction=0.25,
        default_local_batch=2,
        gradient_bytes_per_param=2.0,  # fp16 gradient compression
        activation_bytes_per_sample=1.5 * units.GB,
    )


def deeplabv3plus() -> ModelSpec:
    """Modified DeepLabv3+ from Kurth et al. — the 1.13 EF configuration."""
    return ModelSpec(
        name="DeepLabv3+ (climate)",
        parameters=43.6e6,
        flops_per_sample=14.4 * units.TFLOPS,
        bytes_per_sample=28 * units.MB,
        sustained_fraction=0.3932,  # calibrated: 1.13 EF at 90.7 % efficiency
        default_local_batch=2,
        gradient_bytes_per_param=2.0,
        activation_bytes_per_sample=2.0 * units.GB,
    )


def pi_gan() -> ModelSpec:
    """Physics-informed GAN (Yang et al.), stochastic-PDE UQ: small network,
    huge effective batch via combined data+model parallelism."""
    return ModelSpec(
        name="PI-GAN (subsurface flow)",
        parameters=6.0e6,
        flops_per_sample=1.5 * units.GFLOPS,
        bytes_per_sample=1 * units.KB,
        sustained_fraction=0.41,  # calibrated: >1.2 EF at 93 % efficiency
        default_local_batch=2048,
        activation_bytes_per_sample=4 * units.KB,  # small MLP-based nets
    )


def fc_densenet() -> ModelSpec:
    """FC-DenseNet variant from Laanait et al. electron-microscopy inverse
    problem — the 2.15 EF peak with heavy gradient-reduction optimisation."""
    return ModelSpec(
        name="FC-DenseNet (microscopy)",
        parameters=220e6,
        flops_per_sample=30 * units.TFLOPS,
        bytes_per_sample=2 * units.MB,  # 512x512 diffraction patterns
        sustained_fraction=0.657,  # calibrated: 2.15 EF peak at 4600 nodes
        default_local_batch=1,
        gradient_bytes_per_param=2.0,
        activation_bytes_per_sample=4.0 * units.GB,
    )


def wavenet_gw() -> ModelSpec:
    """Modified WaveNet from Khan et al. gravitational-wave parameter
    inference (LAMB optimizer, 8 -> 1024 nodes at 80 % efficiency)."""
    return ModelSpec(
        name="WaveNet (gravitational waves)",
        parameters=23e6,
        flops_per_sample=5.0 * units.GFLOPS,
        bytes_per_sample=32 * units.KB,  # 1-second strain time series
        sustained_fraction=0.15,
        default_local_batch=64,
        activation_bytes_per_sample=2.0 * units.MB,
    )


def smiles_bert() -> ModelSpec:
    """Blanchard et al. SMILES-BERT compound model (custom vocabulary),
    pretrained with LAMB and gradient accumulation to a 5.8 M global batch.

    ``bytes_per_sample`` is an *effective* per-sample I/O cost (tokenised
    sample plus its share of data-pipeline stalls) calibrated so the
    simulated with-I/O vs. without-I/O efficiencies reproduce the paper's
    68 % vs. 83.3 % at 4 032 nodes.
    """
    return ModelSpec(
        name="SMILES-BERT (drug discovery)",
        parameters=110e6,  # -> 440 MB FP32 gradient
        flops_per_sample=6 * 110e6 * 64,  # seq len 64 SMILES tokens
        bytes_per_sample=29 * units.KB,
        sustained_fraction=0.293,  # -> 603 PF peak at 4032 nodes
        default_local_batch=32,
        activation_bytes_per_sample=12 * units.MB,
    )


def deepmd() -> ModelSpec:
    """DeePMD-style machine-learned MD potential (Jia et al., GB 2020)."""
    return ModelSpec(
        name="DeePMD potential",
        parameters=1.1e6,
        flops_per_sample=0.2 * units.GFLOPS,
        bytes_per_sample=10 * units.KB,
        sustained_fraction=0.12,
        default_local_batch=8,
    )


def cvae() -> ModelSpec:
    """Convolutional variational autoencoder used by the DeepDriveMD-style
    steering workflows (Casalino, Amaro, Trifan et al.)."""
    return ModelSpec(
        name="CVAE (MD contact maps)",
        parameters=10e6,
        flops_per_sample=1.2 * units.GFLOPS,
        bytes_per_sample=30 * units.KB,
        sustained_fraction=0.18,
        default_local_batch=64,
    )


def pointnet_aae() -> ModelSpec:
    """3D PointNet-based adversarial autoencoder (Casalino et al. spike
    dynamics steering)."""
    return ModelSpec(
        name="PointNet-AAE (spike dynamics)",
        parameters=15e6,
        flops_per_sample=2.5 * units.GFLOPS,
        bytes_per_sample=200 * units.KB,
        sustained_fraction=0.2,
        default_local_batch=32,
    )


#: Catalog keys are short snake_case identifiers; values are factories so
#: every lookup returns a fresh (immutable) spec.
CATALOG = {
    "resnet50": resnet50,
    "bert_large": bert_large,
    "tiramisu": tiramisu,
    "deeplabv3plus": deeplabv3plus,
    "pi_gan": pi_gan,
    "fc_densenet": fc_densenet,
    "wavenet_gw": wavenet_gw,
    "smiles_bert": smiles_bert,
    "deepmd": deepmd,
    "cvae": cvae,
    "pointnet_aae": pointnet_aae,
}


def get_model(key: str) -> ModelSpec:
    """Look up a model by catalog key.

    >>> get_model("resnet50").name
    'ResNet-50'
    """
    try:
        return CATALOG[key]()
    except KeyError:
        raise ConfigurationError(
            f"unknown model {key!r}; available: {sorted(CATALOG)}"
        ) from None
