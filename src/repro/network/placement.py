"""Topology-aware job placement.

A data-parallel job's ring allreduce sends each rank's gradient to its ring
neighbour; whether those neighbours share a leaf switch or sit across the
tree decides how much fabric the collective crosses. This module places a
job's ranks on a :class:`~repro.network.topology.FatTree` under different
strategies and measures the resulting worst link load — quantifying why
schedulers prefer contiguous (leaf-packed) allocations for wide training
jobs.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError
from repro.network.pattern import ring_pattern
from repro.network.routing import Router, RoutingPolicy
from repro.network.topology import FatTree


class PlacementStrategy(enum.Enum):
    CONTIGUOUS = "contiguous"  # pack leaves in order (scheduler's ideal)
    RANDOM = "random"  # fragmented machine (busy-system reality)
    STRIDED = "strided"  # worst case: every rank on a different leaf region


def place(
    tree: FatTree, job_size: int, strategy: PlacementStrategy, seed: int = 0
) -> list[int]:
    """Choose ``job_size`` host indices under a placement strategy."""
    n = tree.n_hosts
    if not 1 <= job_size <= n:
        raise ConfigurationError(f"job size {job_size} out of range 1..{n}")
    if strategy is PlacementStrategy.CONTIGUOUS:
        return list(range(job_size))
    if strategy is PlacementStrategy.RANDOM:
        rng = np.random.default_rng(seed)
        return sorted(int(i) for i in rng.choice(n, size=job_size, replace=False))
    stride = max(1, n // job_size)
    return [(i * stride) % n for i in range(job_size)]


def ring_link_load(
    tree: FatTree,
    hosts: list[int],
    policy: RoutingPolicy = RoutingPolicy.ADAPTIVE,
) -> float:
    """Worst switch-to-switch cable load for the job's ring-allreduce step.

    Host NIC links are excluded: they carry exactly one send and one receive
    regardless of placement; the fabric (leaf uplinks and above) is where
    placement decides contention.
    """
    if len(hosts) < 2:
        raise ConfigurationError("need at least two ranks")
    if len(set(hosts)) != len(hosts):
        raise ConfigurationError("duplicate host in placement")
    ring = ring_pattern(len(hosts))
    flows = [(hosts[src], hosts[dst]) for src, dst in ring]
    return Router(tree, policy).route(flows, switch_links_only=True).max_load


def cross_leaf_fraction(tree: FatTree, hosts: list[int]) -> float:
    """Fraction of the job's ring hops that leave their leaf switch —
    the fabric traffic a packed placement avoids entirely."""
    if len(hosts) < 2:
        raise ConfigurationError("need at least two ranks")
    per_leaf = tree.spec.hosts_per_leaf
    ring = ring_pattern(len(hosts))
    crossings = sum(
        1 for src, dst in ring
        if hosts[src] // per_leaf != hosts[dst] // per_leaf
    )
    return crossings / len(ring)


def placement_study(
    tree: FatTree, job_size: int, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Ring-allreduce placement comparison.

    For each strategy: the worst switch-link load under static and adaptive
    routing, and the fraction of ring hops that cross the fabric at all.
    The expected shape: packing cuts fabric traffic; where traffic remains,
    adaptive routing (Summit's fabric feature, Section I) flattens the
    static hot spots.
    """
    out: dict[str, dict[str, float]] = {}
    for strategy in PlacementStrategy:
        hosts = place(tree, job_size, strategy, seed=seed)
        out[strategy.value] = {
            "static_max_load": ring_link_load(
                tree, hosts, RoutingPolicy.STATIC
            ),
            "adaptive_max_load": ring_link_load(
                tree, hosts, RoutingPolicy.ADAPTIVE
            ),
            "cross_leaf_fraction": cross_leaf_fraction(tree, hosts),
        }
    return out
