"""Span and instant-event records for the telemetry layer.

A :class:`Span` is one timed interval of simulated (or wall-clock) time with
an explicit parent link — no thread-locals, no global "current span": the
code being instrumented passes the parent handle it holds, which is what
keeps traces deterministic under the discrete-event engine's interleaving.

``facility`` and ``track`` are the two levels of the Chrome-trace layout the
exporters emit: one trace *process* per facility (a machine, the scheduler
queue, the workflow layer) and one *track* (thread row) per node, resource
or task within it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError


@dataclass
class Span:
    """One timed operation: ``[start, end]`` in the owning clock's units."""

    span_id: int
    name: str
    category: str
    start: float
    facility: str = "sim"
    track: str = "main"
    parent_id: int | None = None
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length; raises until the span has been ended."""
        if self.end is None:
            raise ConfigurationError(f"span {self.name!r} is still open")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = f"{self.start:g}..{self.end:g}" if self.finished else f"{self.start:g}.."
        return f"<Span #{self.span_id} {self.name} [{when}]>"


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration mark — a fault injection, a requeue, a trace event."""

    time: float
    name: str
    category: str
    facility: str = "sim"
    track: str = "main"
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a monotonically-stepped quantity (resource occupancy,
    queue depth) — the raw material of counter tracks and utilization
    timelines."""

    time: float
    resource: str
    value: float
    capacity: float | None = None
    facility: str = "sim"
