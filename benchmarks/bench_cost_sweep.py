"""Vectorized cost-model sweep vs the scalar reference loop.

Maps the Section VI-B crossover surface — gradient message size x node count
x link bandwidth — through :class:`repro.cost.DataParallelCrossoverModel`
twice: once as a single ``evaluate_batch`` pass (:func:`repro.cost.sweep`)
and once as a Python loop of scalar ``evaluate`` calls
(:func:`repro.cost.sweep_scalar`). Asserts the two are element-wise
bit-identical, that the vectorized pass is >= 50x faster on a >= 10,000-point
grid, and that the surface reproduces the paper's ResNet-50 ~8 ms /
BERT-large ~110 ms allreduce estimates.

Set ``REPRO_SMOKE=1`` for a small-grid CI smoke run with a relaxed speedup
threshold (timing under CI noise is not a benchmark).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from _record import record
from conftest import report

from repro.constants import (
    SUMMIT_INJECTION_BANDWIDTH,
    SUMMIT_INJECTION_LATENCY,
    SUMMIT_NODE_COUNT,
)
from repro.cost import (
    DataParallelCrossoverModel,
    crossover_nodes,
    crossover_sweep,
    sweep,
    sweep_scalar,
)

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

#: Per-step compute budget the crossover is judged against (a mid-size model).
COMPUTE_TIME = 0.05

#: Relative speedup the vectorized path must deliver on the full grid; the
#: smoke grid is too small for stable timing, so it only sanity-checks > 1x.
MIN_SPEEDUP = 2.0 if SMOKE else 50.0


def _grid() -> dict[str, np.ndarray]:
    """Model size x node count x link bandwidth axes (>= 10k points full)."""
    if SMOKE:
        sizes = np.linspace(10e6, 2e9, 10)
        nodes = np.array([2, 64, 1024, SUMMIT_NODE_COUNT])
        bandwidths = np.linspace(12.5e9, 50e9, 4)
    else:
        sizes = np.linspace(10e6, 2e9, 100)
        nodes = np.unique(
            np.geomspace(2, SUMMIT_NODE_COUNT, 25).round().astype(int)
        )
        bandwidths = np.linspace(5e9, 50e9, 8)
    return {
        "message_bytes": sizes,
        "n_ranks": nodes,
        "bandwidth": bandwidths,
    }


def _fixed() -> dict:
    return {
        "latency": SUMMIT_INJECTION_LATENCY,
        "compute_time": COMPUTE_TIME,
        # "best" evaluates all three allreduce algorithms per point, which is
        # exactly where vectorization pays.
        "allreduce_algorithm": "best",
    }


def test_cost_sweep_vectorized_vs_scalar(benchmark):
    model = DataParallelCrossoverModel()
    grid, fixed = _grid(), _fixed()
    n_points = int(np.prod([len(v) for v in grid.values()]))
    if not SMOKE:
        assert n_points >= 10_000

    fast = benchmark(lambda: sweep(model, grid, **fixed))

    t0 = time.perf_counter()
    vec_again = sweep(model, grid, **fixed)
    t_vec = time.perf_counter() - t0
    t0 = time.perf_counter()
    slow = sweep_scalar(model, grid, **fixed)
    t_scalar = time.perf_counter() - t0

    # -- bit-identical parity, every term, every grid point ---------------------
    assert set(fast.breakdown) == set(slow.breakdown)
    for term in fast.breakdown:
        assert np.array_equal(
            np.asarray(fast.term(term), dtype=float), slow.term(term)
        ), f"term {term!r} diverged from the scalar reference"
    assert np.array_equal(np.asarray(vec_again.total(), dtype=float), slow.total())

    speedup = t_scalar / t_vec
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized sweep only {speedup:.1f}x faster than the scalar loop "
        f"on {n_points} points (need >= {MIN_SPEEDUP}x)"
    )

    report(
        "Cost-model sweep — vectorized vs scalar reference",
        [
            ("grid points", ">= 10,000", f"{n_points:,}"),
            ("scalar loop", "-", f"{t_scalar * 1e3:.1f} ms"),
            ("vectorized pass", "-", f"{t_vec * 1e3:.1f} ms"),
            ("speedup", f">= {MIN_SPEEDUP:g}x", f"{speedup:.0f}x"),
            ("bit-identical", "yes", "yes"),
        ],
        header=("metric", "target", "measured"),
    )
    record(
        "cost_sweep",
        {
            "grid_points": n_points,
            "scalar_seconds": t_scalar,
            "vectorized_seconds": t_vec,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        wall_seconds=t_vec + t_scalar,
    )


def test_crossover_surface_reproduces_paper_estimates(benchmark):
    """Section VI-B: 102.4 MB ResNet-50 -> ~8 ms, 1.4 GB BERT-large ->
    ~110 ms at 25 GB/s injection (12.5 GB/s algorithmic bandwidth)."""
    sizes = np.array([102.4e6, 1.4e9])

    result = benchmark(
        lambda: crossover_sweep(
            sizes,
            np.arange(2, SUMMIT_NODE_COUNT + 1, 2 if not SMOKE else 512),
            SUMMIT_INJECTION_BANDWIDTH,
            latency=SUMMIT_INJECTION_LATENCY,
            compute_time=COMPUTE_TIME,
        )
    )

    paper = result.term("paper_estimate")[:, 0]
    assert paper[0] == pytest.approx(8e-3, rel=0.05)  # "roughly 8 ms"
    assert paper[1] == pytest.approx(110e-3, rel=0.05)  # "roughly ... 110 ms"

    # The full ring formula adds 2(p-1) latency terms on top of the paper's
    # bandwidth-only closed form: strictly slower everywhere, and converging
    # to it (relatively) for bandwidth-dominated large messages.
    ring_full = result.term("comm")[:, -1]
    assert np.all(ring_full > paper)
    assert ring_full[1] == pytest.approx(paper[1], rel=0.15)

    cross = crossover_nodes(result)
    # With a 50 ms/step compute budget, BERT-large's 112 ms allreduce is
    # comm-bound from the start; ResNet-50's 8 ms never catches compute.
    assert np.isnan(cross[0])
    assert cross[1] == result.axes["n_ranks"][0]

    report(
        "Section VI-B crossover — paper figures from the sweep surface",
        [
            ("ResNet-50 estimate", "~8 ms", f"{paper[0] * 1e3:.2f} ms"),
            ("BERT-large estimate", "~110 ms", f"{paper[1] * 1e3:.2f} ms"),
            ("ResNet-50 comm-bound", "never (50 ms budget)",
             "never" if np.isnan(cross[0]) else f"{int(cross[0])} nodes"),
            ("BERT-large comm-bound", "always (50 ms budget)",
             f"from {int(cross[1])} nodes"),
        ],
        header=("quantity", "paper", "measured"),
    )
