"""Campaign-service throughput: journal fsync cost and end-to-end job rate.

Times three things against an in-process campaign server on a unix socket:

- **journal append+fsync latency** — the per-transition durability price
  the WAL contract charges (ISSUE: counted in ``journal.fsyncs``);
- **end-to-end campaign throughput** — jobs/second through ingest → lease
  → heartbeat → complete with one worker, fsync on;
- **fsync-off throughput** — the same campaign with ``fsync=False``, which
  brackets how much of the wall-clock the durability guarantee costs.

All scalars land in ``BENCH_service.json``. ``REPRO_SMOKE=1`` shrinks the
campaign for CI; the throughput floor is only enforced on the full run.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import threading
import time
from pathlib import Path

from _record import record
from conftest import report

from repro.service import CampaignSpec, JobSpec, ServiceClient, run_worker, serve
from repro.service.journal import Journal

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

N_JOBS = 40 if SMOKE else 200
N_APPENDS = 200 if SMOKE else 2000

#: Full-run floor: a tiny-job campaign must clear this many jobs/second
#: through the full lease/heartbeat/complete protocol (fsync on).
MIN_JOBS_PER_SECOND = 20.0


def _spec(n_jobs: int) -> CampaignSpec:
    return CampaignSpec(
        name="bench-service",
        jobs=tuple(
            JobSpec(f"j{i:05d}", "quadrature", {"n_samples": 16}, seed=i)
            for i in range(n_jobs)
        ),
        lease_timeout_s=30.0,
        heartbeat_interval_s=5.0,
    )


@contextlib.contextmanager
def _server(spec: CampaignSpec, fsync: bool):
    tmp = Path(tempfile.mkdtemp(prefix="rsvc-"))
    os.environ["REPRO_CACHE_DIR"] = str(tmp / "cache")  # no cross-run hits
    thread = threading.Thread(
        target=serve, args=(spec, tmp / "journal", tmp / "s"),
        kwargs=dict(fsync=fsync), daemon=True,
    )
    thread.start()
    client = ServiceClient(tmp / "s", session="bench")
    client.wait_ready(timeout_s=30.0)
    try:
        yield client
    finally:
        with contextlib.suppress(Exception):
            client.drain()
        thread.join(timeout=15)


def _campaign_seconds(fsync: bool) -> float:
    spec = _spec(N_JOBS)
    with _server(spec, fsync=fsync) as client:
        t0 = time.perf_counter()
        run_worker(str(client.socket_path), session="bench-w", max_jobs=8)
        client.wait_finished(timeout_s=120.0)
        return time.perf_counter() - t0


def test_service_throughput_and_fsync_cost(tmp_path):
    # -- raw WAL append+fsync latency ------------------------------------------
    journal = Journal(tmp_path / "wal")
    t0 = time.perf_counter()
    for i in range(N_APPENDS):
        journal.append_commit("tick", i=i)
    fsync_total = time.perf_counter() - t0
    journal.close()
    append_ms = 1e3 * fsync_total / N_APPENDS

    # -- end-to-end campaign, durable vs not -----------------------------------
    durable_s = _campaign_seconds(fsync=True)
    fast_s = _campaign_seconds(fsync=False)
    jobs_per_s = N_JOBS / durable_s

    record("service", {
        "n_jobs": N_JOBS,
        "journal_append_fsync_ms": append_ms,
        "campaign_seconds_fsync": durable_s,
        "campaign_seconds_no_fsync": fast_s,
        "jobs_per_second": jobs_per_s,
        "fsync_overhead_ratio": durable_s / fast_s,
    }, wall_seconds=fsync_total + durable_s + fast_s)

    report(
        "Campaign service — durability cost "
        f"({N_JOBS} jobs, {N_APPENDS} WAL appends)",
        [
            ("WAL append+fsync", f"{append_ms:.3f} ms"),
            ("campaign (fsync on)", f"{durable_s:.2f} s"),
            ("campaign (fsync off)", f"{fast_s:.2f} s"),
            ("throughput", f"{jobs_per_s:.1f} jobs/s"),
        ],
        header=("measurement", "value"),
    )

    assert jobs_per_s > 0
    if not SMOKE:
        assert jobs_per_s >= MIN_JOBS_PER_SECOND
