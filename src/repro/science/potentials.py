"""Pair potentials, including a machine-learned one.

The "MD potentials" motif (Table I; Jia et al., Nguyen-Cong et al.): train a
model on expensive reference forces/energies, then run MD with the learned
potential at a fraction of the cost. :class:`MLPairPotential` learns a pair
energy curve from any reference potential's samples and then serves energies
and forces through the same interface, so it drops straight into
:class:`~repro.science.md.LennardJonesMD`.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.mlp import MLP


class PairPotential(Protocol):
    """Interface the MD engine consumes: vectorised e(r) and f(r)/r."""

    def energy(self, r: np.ndarray) -> np.ndarray: ...

    def force_over_r(self, r: np.ndarray) -> np.ndarray: ...


class LennardJonesPotential:
    """12-6 Lennard-Jones in reduced units: e(r) = 4 eps ((s/r)^12 - (s/r)^6)."""

    def __init__(self, epsilon: float = 1.0, sigma: float = 1.0):
        if epsilon <= 0 or sigma <= 0:
            raise ConfigurationError("epsilon and sigma must be positive")
        self.epsilon = epsilon
        self.sigma = sigma

    def energy(self, r: np.ndarray) -> np.ndarray:
        sr6 = (self.sigma / r) ** 6
        return 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def force_over_r(self, r: np.ndarray) -> np.ndarray:
        """f(r)/r with f = -de/dr; positive = repulsive."""
        sr6 = (self.sigma / r) ** 6
        return 24.0 * self.epsilon * (2.0 * sr6 * sr6 - sr6) / (r * r)


class MorsePotential:
    """Morse potential: e(r) = D (1 - exp(-a (r - r0)))^2 - D."""

    def __init__(self, depth: float = 1.0, a: float = 2.0, r0: float = 1.2):
        if depth <= 0 or a <= 0 or r0 <= 0:
            raise ConfigurationError("Morse parameters must be positive")
        self.depth = depth
        self.a = a
        self.r0 = r0

    def energy(self, r: np.ndarray) -> np.ndarray:
        x = np.exp(-self.a * (r - self.r0))
        return self.depth * (1.0 - x) ** 2 - self.depth

    def force_over_r(self, r: np.ndarray) -> np.ndarray:
        x = np.exp(-self.a * (r - self.r0))
        de_dr = 2.0 * self.depth * self.a * x * (1.0 - x)
        return -de_dr / r


class MLPairPotential:
    """An MLP fit to a reference pair-energy curve.

    Trains on (r, e(r)) samples; forces come from a centered finite
    difference of the learned curve. ``r_min`` guards the unphysical
    short-range region: below it the learned energy is extrapolated with a
    stiff harmonic wall so MD cannot fall into network artefacts — the
    out-of-distribution failure mode Section VI-A.2 warns about.
    """

    def __init__(
        self,
        r_min: float = 0.8,
        r_max: float = 3.0,
        hidden: list[int] | None = None,
        seed: int | None = None,
    ):
        if not 0 < r_min < r_max:
            raise ConfigurationError("need 0 < r_min < r_max")
        self.r_min = r_min
        self.r_max = r_max
        self.net = MLP([1, *(hidden or [48, 48]), 1], hidden_activation="tanh", seed=seed)
        self._fitted = False
        self._wall_energy = 0.0
        self._wall_slope = 0.0

    def fit(
        self,
        reference: PairPotential,
        n_samples: int = 512,
        epochs: int = 400,
        lr: float = 5e-3,
        seed: int | None = None,
    ) -> list[float]:
        """Sample the reference on [r_min, r_max] and train; returns loss
        history. Samples are denser at short range where the curve is stiff."""
        rng = np.random.default_rng(seed)
        # sqrt-spacing concentrates points at small r
        u = rng.uniform(0, 1, size=n_samples)
        r = self.r_min + (self.r_max - self.r_min) * u**2
        e = reference.energy(r)
        history = self.net.fit(
            r.reshape(-1, 1), e.reshape(-1, 1), epochs=epochs, lr=lr, batch_size=64,
            seed=seed,
        )
        self._fitted = True
        # calibrate the short-range wall to match value and slope at r_min
        h = 1e-4
        e0 = float(self.net.predict([[self.r_min + h]])[0, 0])
        e1 = float(self.net.predict([[self.r_min]])[0, 0])
        self._wall_energy = e1
        self._wall_slope = max(1.0, (e1 - e0) / h)  # keep it repulsive
        return history

    def _require_fit(self) -> None:
        if not self._fitted:
            raise ConfigurationError("MLPairPotential used before fit()")

    def energy(self, r: np.ndarray) -> np.ndarray:
        self._require_fit()
        r = np.asarray(r, dtype=float)
        flat = r.ravel()
        clipped = np.clip(flat, self.r_min, self.r_max)
        e = self.net.predict(clipped.reshape(-1, 1)).ravel()
        below = flat < self.r_min
        if below.any():
            d = self.r_min - flat[below]
            e[below] = self._wall_energy + self._wall_slope * d + 50.0 * d * d
        e[flat > self.r_max] = 0.0
        return e.reshape(r.shape)

    def force_over_r(self, r: np.ndarray) -> np.ndarray:
        self._require_fit()
        r = np.asarray(r, dtype=float)
        h = 1e-4
        de_dr = (self.energy(r + h) - self.energy(r - h)) / (2 * h)
        safe_r = np.where(np.isfinite(r) & (r > 0), r, np.inf)
        return -de_dr / safe_r

    def rmse_against(
        self, reference: PairPotential, n_points: int = 200
    ) -> float:
        """Validation RMSE on an even grid over the fitted range."""
        self._require_fit()
        r = np.linspace(self.r_min, self.r_max, n_points)
        return float(np.sqrt(np.mean((self.energy(r) - reference.energy(r)) ** 2)))
