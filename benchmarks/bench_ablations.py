"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes one ingredient of the Section IV-B recipes and
verifies the cost model degrades in the direction the papers report:

- allreduce algorithm choice (tuned auto-select vs pinned ring);
- communication/computation overlap;
- NVMe staging vs reading from the shared filesystem;
- gradient accumulation factor (Blanchard's 5.8M batch enabler);
- large-batch optimizer choice in time-to-solution.
"""

import dataclasses

from conftest import report

from repro.apps.extreme_scale import get_app
from repro.machine.summit import summit
from repro.models import resnet50
from repro.network.collectives import AllreduceAlgorithm
from repro.training import DataSource, ParallelismPlan, TrainingJob
from repro.training.convergence import RESNET50_CONVERGENCE, time_to_solution

SYSTEM = summit(include_high_mem=False)


def test_ablation_allreduce_algorithm(benchmark):
    """Pinning ring allreduce on a small-message model at scale exposes the
    latency wall that tuned algorithm selection avoids."""
    from repro.models import deepmd

    model = deepmd()  # ~4 MB gradient: latency-dominated in a 4096-way ring

    def run():
        out = {}
        for name, algo in (("auto", None), ("ring", AllreduceAlgorithm.RING)):
            job = TrainingJob(
                model, SYSTEM, 4096,
                ParallelismPlan(local_batch=8, overlap_fraction=0.0,
                                allreduce_algorithm=algo),
                DataSource.MEMORY,
            )
            out[name] = job.breakdown().comm
        return out

    comm = benchmark(run)
    assert comm["ring"] > comm["auto"]

    report(
        "Ablation — allreduce algorithm at 4096 nodes (DeePMD, 4 MB gradient)",
        [
            ("auto-selected", f"{comm['auto'] * 1e3:.2f} ms"),
            ("pinned ring", f"{comm['ring'] * 1e3:.2f} ms"),
            ("ring penalty", f"{comm['ring'] / comm['auto']:.2f}x"),
        ],
        header=("configuration", "allreduce time"),
    )


def test_ablation_overlap(benchmark):
    """Kurth et al.'s gradient lag / overlap is what hides the allreduce."""
    app = get_app("kurth")

    def run():
        out = {}
        for fraction in (0.0, 0.5, 0.9):
            plan = dataclasses.replace(app.plan, overlap_fraction=fraction)
            job = dataclasses.replace(app, plan=plan).job(app.peak_nodes)
            out[fraction] = job.breakdown().comm_exposed
        return out

    exposed = benchmark(run)
    assert exposed[0.0] >= exposed[0.5] >= exposed[0.9]

    report(
        "Ablation — comm/compute overlap (Kurth at 4560 nodes)",
        [(f"overlap={k:.1f}", f"{v * 1e3:.2f} ms") for k, v in exposed.items()],
        header=("configuration", "exposed comm"),
    )


def test_ablation_storage_tier(benchmark):
    """ResNet-50 at scale: NVMe staging vs GPFS reads (Section VI-B)."""

    def run():
        out = {}
        for source in (DataSource.NVME, DataSource.SHARED_FS):
            job = TrainingJob(
                resnet50(), SYSTEM, 4096,
                ParallelismPlan(local_batch=128), source,
            )
            out[source.value] = job.step_time()
        return out

    times = benchmark(run)
    assert times["shared_fs"] > 1.5 * times["nvme"]

    report(
        "Ablation — input source at 4096 nodes (ResNet-50)",
        [(k, f"{v * 1e3:.1f} ms") for k, v in times.items()],
        header=("source", "step time"),
    )


def test_ablation_gradient_accumulation(benchmark):
    """Blanchard's accumulation amortises the 440 MB allreduce."""
    app = get_app("blanchard")

    def run():
        out = {}
        for k in (1, 2, 8):
            plan = dataclasses.replace(app.plan, accumulation_steps=k)
            job = dataclasses.replace(app, plan=plan).job(app.peak_nodes)
            b = job.breakdown()
            out[k] = (b.comm_fraction, b.samples / b.total)
        return out

    results = benchmark(run)
    assert results[8][0] < results[1][0]  # comm share shrinks
    assert results[8][1] > results[1][1]  # throughput rises

    report(
        "Ablation — gradient accumulation (Blanchard at 4032 nodes)",
        [
            (f"k={k}", f"{frac:.1%}", f"{thr:.2e} samples/s")
            for k, (frac, thr) in results.items()
        ],
        header=("accumulation", "comm share", "throughput"),
    )


def test_ablation_optimizer_time_to_solution(benchmark):
    """At 1024 nodes, the statistical penalty of plain SGD dominates; LARS
    converts hardware throughput into actual time-to-solution."""
    job = TrainingJob(
        resnet50(), SYSTEM, 1024, ParallelismPlan(local_batch=64),
    )

    def run():
        return {
            opt: time_to_solution(job, RESNET50_CONVERGENCE, opt)
            for opt in ("sgd", "momentum", "lars", "lamb")
        }

    times = benchmark(run)
    assert times["lars"] < times["sgd"]
    assert times["lamb"] < times["momentum"]

    report(
        "Ablation — optimizer vs time-to-solution (ResNet-50, 1024 nodes)",
        [(opt, f"{t / 3600:.2f} h") for opt, t in sorted(times.items(), key=lambda kv: kv[1])],
        header=("optimizer", "time to target"),
    )


def test_ablation_pipeline_vs_data_parallel(benchmark):
    """The Section VI-B closing claim: past the BERT-large crossover,
    'generic model parallelization is essential for good scaling
    efficiency'. Compare pure data parallelism against a GPipe-style
    pipeline hybrid for BERT-large (at the crossover) and a 2.5x-BERT
    (past it)."""
    import dataclasses as _dc

    from repro.models import bert_large
    from repro.training.pipeline import compare_strategies

    bert = bert_large()
    giant = _dc.replace(
        bert, parameters=2.5 * 350e6, activation_bytes_per_sample=48e6
    )

    def run():
        return {
            "BERT-large": compare_strategies(bert, SYSTEM, 1024, 32),
            "2.5x BERT": compare_strategies(giant, SYSTEM, 1024, 8),
        }

    results = benchmark(run)

    assert results["2.5x BERT"]["pipeline_hybrid"] > results["2.5x BERT"][
        "data_parallel"
    ]

    report(
        "Ablation — data parallel vs pipeline hybrid (1024 nodes)",
        [
            (name,
             f"{row['data_parallel']:.2e}",
             f"{row['pipeline_hybrid']:.2e}",
             "pipeline" if row["pipeline_hybrid"] > row["data_parallel"]
             else "data parallel")
            for name, row in results.items()
        ],
        header=("model", "DP samples/s", "pipeline samples/s", "winner"),
    )
