"""Tests for the discrete-event engine, resources and tracing."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Process, Resource, Timeout, Trace


class TestTimeout:
    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)


class TestEngine:
    def test_single_process_advances_clock(self):
        eng = Engine()

        def job():
            yield Timeout(2.5)
            return "done"

        proc = eng.spawn(job())
        eng.run()
        assert proc.finished
        assert proc.result == "done"
        assert eng.now == 2.5

    def test_parallel_processes_overlap(self):
        eng = Engine()

        def job(d):
            yield Timeout(d)

        eng.spawn(job(3.0))
        eng.spawn(job(5.0))
        eng.run()
        assert eng.now == 5.0

    def test_child_process_result_propagates(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            return 42

        def parent():
            value = yield eng.spawn(child())
            yield Timeout(1.0)
            return value * 2

        proc = eng.spawn(parent())
        eng.run()
        assert proc.result == 84
        assert eng.now == 2.0

    def test_waiting_on_finished_child_is_instant(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            return "x"

        child_proc = eng.spawn(child())

        def parent():
            yield Timeout(5.0)
            value = yield child_proc
            return value

        proc = eng.spawn(parent())
        eng.run()
        assert proc.result == "x"
        assert eng.now == 5.0

    def test_run_until_pauses_clock(self):
        eng = Engine()

        def job():
            yield Timeout(10.0)

        eng.spawn(job())
        eng.run(until=4.0)
        assert eng.now == 4.0
        eng.run()
        assert eng.now == 10.0

    def test_simultaneous_events_fire_in_spawn_order(self):
        eng = Engine()
        order = []

        def job(tag):
            yield Timeout(1.0)
            order.append(tag)

        eng.spawn(job("a"))
        eng.spawn(job("b"))
        eng.run()
        assert order == ["a", "b"]

    def test_bad_yield_raises(self):
        eng = Engine()

        def job():
            yield "not an effect"

        eng.spawn(job())
        with pytest.raises(SimulationError):
            eng.run()

    def test_process_records_finish_time(self):
        eng = Engine()

        def job():
            yield Timeout(3.0)

        proc = eng.spawn(job())
        eng.run()
        assert proc.finished_at == 3.0


class TestResource:
    def test_acquire_release(self):
        eng = Engine()
        pool = Resource(eng, capacity=2)
        held = []

        def job(tag):
            yield pool.acquire(1)
            held.append(tag)
            yield Timeout(1.0)
            pool.release(1)

        for tag in ("a", "b", "c"):
            eng.spawn(job(tag))
        eng.run()
        assert held == ["a", "b", "c"]
        assert eng.now == 2.0  # two run concurrently, the third waits
        assert pool.in_use == 0

    def test_fifo_ordering_prevents_starvation(self):
        eng = Engine()
        pool = Resource(eng, capacity=4)
        starts = {}

        def wide():
            yield pool.acquire(4)
            starts["wide"] = eng.now
            yield Timeout(1.0)
            pool.release(4)

        def narrow(tag):
            yield pool.acquire(1)
            starts[tag] = eng.now
            yield Timeout(1.0)
            pool.release(1)

        def holder():
            yield pool.acquire(2)
            yield Timeout(1.0)
            pool.release(2)

        eng.spawn(holder())
        eng.spawn(wide())       # must wait for the holder
        eng.spawn(narrow("n"))  # would fit now, but queues behind wide
        eng.run()
        assert starts["wide"] == 1.0
        assert starts["n"] >= starts["wide"]

    def test_over_capacity_request_rejected(self):
        eng = Engine()
        pool = Resource(eng, capacity=2)
        with pytest.raises(SimulationError):
            pool.acquire(3)

    def test_bad_release_rejected(self):
        eng = Engine()
        pool = Resource(eng, capacity=2)
        with pytest.raises(SimulationError):
            pool.release(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record(0.0, "start", "a")
        trace.record(1.0, "end", "a", 1.0)
        trace.record(2.0, "end", "b", 2.0)
        assert trace.count("end") == 2
        assert len(trace.by_category("start")) == 1
        assert trace.span() == 2.0
        assert trace.busy_time("end") == 3.0

    def test_empty_trace_span_zero(self):
        assert Trace().span() == 0.0


class TestTraceDeterminism:
    """The engine micro-optimisations (slots, lazy heap deletion) must not
    move a single event: same-seed instrumented runs export byte-identical
    traces, checked through the existing invariant auditor."""

    @pytest.mark.parametrize("scenario", ["dag", "scheduler", "restart"])
    def test_same_seed_trace_byte_identical(self, scenario):
        from repro.verify.invariants import audit_trace_determinism

        result = audit_trace_determinism(scenario, seed=0)
        assert result.passed, result.detail


class TestTieBreakFIFO:
    """The documented ``(time, seq)`` contract: simultaneous events fire in
    scheduling order — spawn order for fresh processes — on both engine
    implementations, even at batch sizes where the calendar queue drains
    the whole instant in one pass."""

    N = 1000

    @pytest.mark.parametrize("impl", ["heap", "calendar"])
    def test_thousand_simultaneous_events_fire_in_spawn_order(self, impl):
        eng = Engine(impl=impl)
        order = []

        def job(i):
            yield Timeout(5.0)  # every process wakes at exactly t=5.0
            order.append(i)

        for i in range(self.N):
            eng.spawn(job(i))
        eng.run()
        assert eng.now == 5.0
        assert order == list(range(self.N))

    @pytest.mark.parametrize("impl", ["heap", "calendar"])
    def test_simultaneous_timer_fires_in_spawn_order(self, impl):
        from repro.sim import Timer

        eng = Engine(impl=impl)
        order = []
        procs = [
            eng.spawn(Timer(5.0, fire=(lambda i=i: order.append(i))))
            for i in range(self.N)
        ]
        eng.run()
        assert order == list(range(self.N))
        assert [p.finished_at for p in procs] == [5.0] * self.N

    @pytest.mark.parametrize("impl", ["heap", "calendar"])
    def test_mid_batch_schedules_join_the_same_instant_in_seq_order(
        self, impl
    ):
        """Zero-delay events scheduled while an instant is being drained
        still fire within that instant, after everything already queued."""
        eng = Engine(impl=impl)
        order = []

        def echo(i):
            yield Timeout(0.0)
            order.append(("echo", i))

        def job(i):
            yield Timeout(5.0)
            order.append(("job", i))
            eng.spawn(echo(i))

        for i in range(10):
            eng.spawn(job(i))
        eng.run()
        assert eng.now == 5.0
        assert order == [("job", i) for i in range(10)] + [
            ("echo", i) for i in range(10)
        ]
