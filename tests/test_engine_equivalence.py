"""Differential testing: heap vs calendar engine on random workloads.

The engine contract (see :mod:`repro.sim.engine`) is that ``impl="heap"``
and ``impl="calendar"`` are *indistinguishable*: same seed and workload
give the same event order, the same final process states, and — with
telemetry attached — byte-identical Chrome-trace exports.

Hypothesis generates adversarial programs over the full effect surface:
timeouts drawn from a small quantized delay set (so zero-delay cascades
and same-timestamp collisions are common, exercising the calendar's
batched dispatch), child waits, resource acquire/release over a shared
pool, interrupts (caught and uncaught, of generators and of timers), and
generator-free :class:`Timer` processes with re-arming fire callbacks.
Each program runs once per implementation; every observable is compared.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given

from .hypothesis_settings import SLOW_SETTINGS, STANDARD_SETTINGS
from repro.errors import SimulationError
from repro.sim import Engine, Interrupt, Resource, Timeout, Timer
from repro.telemetry import Telemetry, chrome_trace_json

# Quantized delays: duplicates make same-timestamp batches likely and 0.0
# exercises zero-delay scheduling at the current instant.
DELAYS = st.sampled_from([0.0, 0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 3.5])

ACTIONS = st.one_of(
    st.tuples(st.just("sleep"), DELAYS),
    st.tuples(st.just("interrupt"), st.integers(0, 11)),
    st.tuples(st.just("acquire"), st.integers(1, 2), DELAYS),
    st.tuples(st.just("wait"), st.integers(0, 11)),
)

#: (catches_interrupts, [actions...]) per generator process.
PROGRAMS = st.lists(
    st.tuples(st.booleans(), st.lists(ACTIONS, min_size=1, max_size=5)),
    min_size=1,
    max_size=6,
)

#: (delay, n_rearms) per generator-free Timer process.
TIMERS = st.lists(st.tuples(DELAYS, st.integers(0, 2)), max_size=4)


def run_program(program, timers, impl, with_telemetry=False):
    """Run one generated workload; return every observable as plain data."""
    telemetry = Telemetry() if with_telemetry else None
    eng = Engine(telemetry, impl=impl)
    pool = Resource(eng, capacity=2, name="pool")
    log: list[tuple] = []
    procs = []

    for j, (delay, rearms) in enumerate(timers):
        remaining = [rearms]

        def fire(j=j, remaining=remaining):
            log.append(("fired", j, eng.now))
            if remaining[0]:
                remaining[0] -= 1
                return 1.0 + j
            return None

        procs.append(
            eng.spawn(Timer(delay, fire, result=("timer", j)), name=f"t{j}")
        )

    def body(i, catches, actions):
        try:
            for act in actions:
                if act[0] == "sleep":
                    yield Timeout(act[1])
                    log.append(("slept", i, eng.now))
                elif act[0] == "interrupt":
                    target = act[1] % len(procs)
                    procs[target].interrupt(f"by-{i}")
                    log.append(("interrupted", i, target, eng.now))
                elif act[0] == "acquire":
                    yield pool.acquire(act[1])
                    log.append(("acquired", i, eng.now))
                    yield Timeout(act[2])
                    pool.release(act[1])
                    log.append(("released", i, eng.now))
                else:  # wait
                    target = act[1] % len(procs)
                    if procs[target] is not procs[i + len(timers)]:
                        value = yield procs[target]
                        log.append(("waited", i, target, value, eng.now))
        except Interrupt as exc:
            log.append(("caught", i, str(exc.cause), eng.now))
            if not catches:
                raise
        return f"result-{i}"

    for i, (catches, actions) in enumerate(program):
        procs.append(eng.spawn(body(i, catches, actions), name=f"p{i}"))

    error = None
    try:
        eng.run()
    except SimulationError as exc:
        # e.g. a process interrupting itself mid-step double-schedules it;
        # both impls must fail identically, at the same event
        error = str(exc)

    states = [
        (p.name, p.finished, p.killed, p.result, p.finished_at)
        for p in procs
    ]
    trace = chrome_trace_json(telemetry) if with_telemetry else None
    return {
        "log": log,
        "states": states,
        "now": eng.now,
        "pool": (pool.in_use, len(pool._queue)),
        "error": error,
        "trace": trace,
    }


@STANDARD_SETTINGS
@given(program=PROGRAMS, timers=TIMERS)
def test_event_order_and_final_state_equivalent(program, timers):
    heap = run_program(program, timers, "heap")
    calendar = run_program(program, timers, "calendar")
    assert heap == calendar


@SLOW_SETTINGS
@given(program=PROGRAMS, timers=TIMERS)
def test_telemetry_traces_byte_identical(program, timers):
    heap = run_program(program, timers, "heap", with_telemetry=True)
    calendar = run_program(program, timers, "calendar", with_telemetry=True)
    assert heap["trace"] == calendar["trace"]
    assert heap == calendar


@STANDARD_SETTINGS
@given(
    delays=st.lists(DELAYS, min_size=1, max_size=40),
    impl=st.sampled_from(["heap", "calendar"]),
)
def test_spawn_timers_matches_loop_spawn(delays, impl):
    """Bulk spawn is observably identical to a loop of single spawns."""
    bulk_eng = Engine(impl=impl)
    bulk = bulk_eng.spawn_timers(delays)
    bulk_eng.run()

    loop_eng = Engine(impl=impl)
    loop = [loop_eng.spawn(Timer(d)) for d in delays]
    loop_eng.run()

    assert bulk_eng.now == loop_eng.now
    assert [
        (p.finished, p.killed, p.result, p.finished_at) for p in bulk
    ] == [
        (p.finished, p.killed, p.result, p.finished_at) for p in loop
    ]


@SLOW_SETTINGS
@given(program=PROGRAMS, timers=TIMERS)
def test_same_impl_rerun_is_deterministic(program, timers):
    """Sanity anchor for the differential tests: reruns are identical."""
    first = run_program(program, timers, "calendar")
    second = run_program(program, timers, "calendar")
    assert first == second
