"""The crash-safe asyncio campaign server.

One process, one campaign, one unix socket. Requests are JSON lines
(``{"op": ..., ...}\\n``); responses are ``{"ok": true, ...}`` or a typed
error envelope clients re-raise (see :mod:`repro.service.client`).

Robustness discipline, in order of importance:

1. **Journal before ack.** Every state transition is appended to the
   write-ahead journal and fsync'd *before* the response is sent. A
   SIGKILL at any instant loses at most transitions nobody was told about;
   :meth:`CampaignServer.start` replays the journal and resumes.
2. **Leases, not assignments.** Work is handed out under a time-bounded
   lease refreshed by heartbeats. The sweeper requeues expired leases with
   attempt accounting through the campaign's shared
   :class:`~repro.resilience.retry.RetryPolicy` — a SIGKILL'd worker
   strands nothing, and a worker that misses its deadline cannot complete
   stale work (:class:`~repro.errors.LeaseExpired`).
3. **Bounded everything.** Ingest beyond ``max_pending`` in-flight jobs is
   shed with :class:`~repro.errors.Saturated` rather than buffered into an
   OOM; request lines are size-capped; one request per connection is
   processed at a time.
4. **Memoize completions.** Results are stored in the shared
   :class:`~repro.exec.cache.ResultCache`; ingesting a job whose content
   key is already cached completes it immediately without a lease.

All journal and state mutation happens synchronously between awaits, so
request handling is atomic with respect to the event loop — the fsync cost
is the price of the durability contract and is counted in
``journal.fsyncs``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from pathlib import Path
from typing import Any

from repro.errors import (
    ProtocolError,
    ReproError,
    Saturated,
    ServiceError,
)
from repro.exec.cache import ResultCache, content_key
from repro.telemetry import Telemetry

from repro.service.journal import Journal, read_journal
from repro.service.pubsub import (
    Frame,
    HubSink,
    PubSubHub,
    TOPICS,
    encode_frame,
    eos_frame,
    frames_from_journal,
)
from repro.service.spec import CampaignSpec, JobSpec
from repro.service.state import CampaignState, DONE, FAILED, LEASED, PENDING

__all__ = ["CampaignServer", "serve"]

#: Cap on one request line (a bulk ingest of ~10k small jobs fits well under).
MAX_LINE_BYTES = 32 * 1024 * 1024
#: Jobs journaled per ingest record (bounds single-record size).
INGEST_CHUNK = 500
#: Result-cache namespace for completed service jobs.
CACHE_KIND = "service-job"


def _cacheable(spec: JobSpec) -> bool:
    """Chaos handlers are attempt-dependent; never memoize them."""
    return not spec.handler.startswith("chaos:")


class CampaignServer:
    """See the module docstring. Construct, then ``await start()``."""

    def __init__(
        self,
        spec: CampaignSpec,
        journal_dir: str | Path,
        socket_path: str | Path,
        cache: ResultCache | None = None,
        sweep_interval_s: float | None = None,
        fsync: bool = True,
    ):
        self.spec = spec
        self.journal_dir = Path(journal_dir)
        self.socket_path = Path(socket_path)
        self.telemetry = Telemetry(clock=time.monotonic)
        self.cache = cache if cache is not None else ResultCache(
            metrics=self.telemetry.metrics
        )
        self.sweep_interval_s = (
            sweep_interval_s if sweep_interval_s is not None
            else max(0.05, spec.heartbeat_interval_s / 2.0)
        )
        self.journal = Journal(
            self.journal_dir, fsync=fsync, metrics=self.telemetry.metrics
        )
        # The live observability plane: every committed journal record and
        # every closed telemetry record fans out to socket subscribers.
        self.hub = PubSubHub(
            metrics=self.telemetry.metrics, history=spec.event_history
        )
        self.telemetry.add_tap(HubSink(self.hub))
        self.state = CampaignState(spec)
        self.recovered = False
        self._server: asyncio.AbstractServer | None = None
        self._sweeper: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        self._draining = False

    # -- record plumbing: journal first, then mutate, then (caller) acks -----------

    def _commit(self, type: str, **payload: Any) -> dict[str, Any]:
        # Apply first: every _apply_* validates before it mutates, so a bad
        # transition raises here and never reaches the journal (a record
        # that fails replay must never be written). Then make it durable —
        # the caller acks only after the fsync returns.
        record = {"type": type, **payload}
        self.state.apply(record)
        journaled = self.journal.append_commit(type, **payload)
        # Publish strictly after the fsync: a subscriber never sees a
        # record that a crash could still un-happen, so the live stream's
        # seq numbering is the journal's and survives SIGKILL exactly-once.
        self.hub.publish("journal", journaled, seq=journaled["seq"])
        return record

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.telemetry.metrics.counter(name).inc(amount)

    def _sample_depth(self) -> None:
        counts = self.state.counts()
        gauge = self.telemetry.metrics.gauge("service.queue_depth")
        gauge.set(float(counts["pending"]))
        self.telemetry.sample(
            "service.queue_depth", float(counts["pending"]),
            facility="service",
        )

    # -- startup / recovery --------------------------------------------------------

    async def start(self) -> None:
        """Replay the journal (if any), ingest the spec, open the socket."""
        with self.telemetry.span("recover", "service", facility="service"):
            replay = read_journal(self.journal_dir)
            if replay.records:
                self.recovered = True
                self.state = CampaignState.replay(replay.records, self.spec)
                self.spec = self.state.spec
                self._count("service.recovered_records",
                            len(replay.records))
                if replay.discarded_tails:
                    self._count("service.discarded_tails",
                                replay.discarded_tails)
            else:
                self._commit("campaign", spec=self.spec.to_dict())
            # Idempotent spec ingest: only jobs the journal does not know.
            new = [j for j in self.spec.jobs if j.job_id not in self.state.jobs]
            if new:
                self._ingest_jobs(new)
        self._sample_depth()
        loop = asyncio.get_running_loop()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path),
            limit=MAX_LINE_BYTES,
        )
        self._sweeper = loop.create_task(self._sweep_loop())
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(self.drain())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def _ingest_jobs(self, specs: list[JobSpec]) -> None:
        """Journal ingest records (chunked) and cache-complete known results."""
        if self.state.in_flight + len(specs) > self.spec.max_pending:
            raise Saturated(
                f"ingest of {len(specs)} jobs would exceed max_pending="
                f"{self.spec.max_pending} ({self.state.in_flight} in flight); "
                "back off and retry"
            )
        for start in range(0, len(specs), INGEST_CHUNK):
            chunk = specs[start:start + INGEST_CHUNK]
            self._commit("ingest", jobs=[j.to_dict() for j in chunk])
        self._count("service.ingested", len(specs))
        for spec in specs:
            if not _cacheable(spec):
                continue
            hit, result = self.cache.load(
                content_key(CACHE_KIND, spec.content_payload())
            )
            if hit:
                self._commit("cached", job_id=spec.job_id, result=result)
                self._count("service.cache_completions")
        self._sample_depth()

    # -- the lease sweeper ---------------------------------------------------------

    async def _sweep_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                self.sweep(time.time())
            except ReproError:  # pragma: no cover - sweeper must survive
                pass
            await asyncio.sleep(self.sweep_interval_s)

    def sweep(self, now: float) -> int:
        """Requeue (or fail) every expired lease; returns transitions made."""
        moved = 0
        for job_id in self.state.expired_leases(now):
            job = self.state.jobs[job_id]
            self._retire_lease(job_id, now, reason=(
                f"lease expired (attempt {job.attempts}, "
                f"session {job.session_id!r})"
            ))
            moved += 1
        if moved:
            self._sample_depth()
        return moved

    def _retire_lease(self, job_id: str, now: float, reason: str) -> None:
        """The one requeue-or-fail decision point, shared by sweeper and
        failure reports — the decision is journaled, so replay never
        re-decides."""
        job = self.state.jobs[job_id]
        if self.state.policy.exhausted(job.attempts):
            self._commit("fail", job_id=job_id, reason=reason)
            self._count("service.failed")
        else:
            delay = self.state.policy.delay(job.attempts)
            self._commit(
                "requeue", job_id=job_id, reason=reason,
                not_before=now + delay,
            )
            self._count("service.requeues")
            self.telemetry.instant(
                "requeue", "service", facility="service",
                job_id=job_id, reason=reason,
            )

    # -- request handling ----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_error_bytes(ProtocolError(
                        f"request exceeds {MAX_LINE_BYTES} bytes"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response, stream = self._dispatch(line)
                writer.write(response)
                await writer.drain()
                if stream is not None:
                    # The connection is now a one-way event stream; it
                    # never goes back to request/response.
                    await self._pump(writer, *stream)
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    def _dispatch(self, line: bytes) -> tuple[bytes, tuple | None]:
        try:
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict) or "op" not in request:
                    raise ValueError
            except (ValueError, UnicodeDecodeError):
                raise ProtocolError("requests must be JSON objects "
                                    "with an 'op' field") from None
            op = request["op"]
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None or op.startswith("_"):
                raise ProtocolError(f"unknown op {op!r}")
            with self.telemetry.span(f"op:{op}", "service",
                                     facility="service"):
                payload = handler(request)
            stream = payload.pop("_stream", None)
            return _json_bytes({"ok": True, **payload}), stream
        except ReproError as exc:
            self._count("service.errors")
            return _error_bytes(exc), None

    async def _pump(
        self,
        writer: asyncio.StreamWriter,
        token: int | None,
        topic: str,
        backlog: list[Frame],
        queue: "asyncio.Queue[Frame | None]" | None,
    ) -> None:
        """Write a subscriber's backlog, then live frames until the hub
        closes (``None`` sentinel) or the subscriber hangs up. A clean end
        is announced in-band with the seq-0 :func:`eos_frame`, so clients
        can tell a drained campaign from a severed connection. A ``None``
        queue means backlog-only (subscribing during drain): no live tail
        is coming, so the eos follows the backlog immediately."""
        try:
            for frame in backlog:
                writer.write(encode_frame(frame))
            await writer.drain()
            if queue is not None:
                while True:
                    frame = await queue.get()
                    if frame is None:
                        break
                    writer.write(encode_frame(frame))
                    await writer.drain()
            writer.write(encode_frame(eos_frame(topic)))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if token is not None:
                self.hub.unsubscribe(token)

    # -- ops -----------------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"campaign": self.spec.name, "time": time.time()}

    def _op_ingest(self, request: dict) -> dict:
        specs = [JobSpec.from_dict(j) for j in request.get("jobs", ())]
        if not specs:
            raise ProtocolError("ingest requires a non-empty 'jobs' list")
        new = [j for j in specs if j.job_id not in self.state.jobs]
        self._ingest_jobs(new)
        return {"ingested": len(new), "known": len(specs) - len(new)}

    def _op_acquire(self, request: dict) -> dict:
        session = str(request.get("session", ""))
        if not session:
            raise ProtocolError("acquire requires a 'session' id")
        limit = int(request.get("max_jobs", 1))
        now = time.time()
        job_ids = self.state.leasable(now, max(1, limit))
        leases: list[dict[str, Any]] = []
        if job_ids:
            deadline = now + self.spec.lease_timeout_s
            self._commit("lease", session=session, jobs=job_ids,
                         deadline=deadline)
            self._count("service.leases", len(job_ids))
            for job_id in job_ids:
                job = self.state.jobs[job_id]
                leases.append({
                    "job": job.spec.to_dict(),
                    "attempt": job.attempts,
                    "deadline": deadline,
                })
            self._sample_depth()
        return {
            "leases": leases,
            "heartbeat_interval_s": self.spec.heartbeat_interval_s,
            "draining": self._draining,
            "finished": self.state.finished,
        }

    def _op_heartbeat(self, request: dict) -> dict:
        session = str(request.get("session", ""))
        jobs = list(request.get("jobs", ()))
        if not session or not jobs:
            raise ProtocolError("heartbeat requires 'session' and 'jobs'")
        deadline = time.time() + self.spec.lease_timeout_s
        self._commit("heartbeat", session=session, jobs=jobs,
                     deadline=deadline)
        self._count("service.heartbeats")
        return {"deadline": deadline}

    def _op_complete(self, request: dict) -> dict:
        session = str(request.get("session", ""))
        job_id = str(request.get("job_id", ""))
        if not session or not job_id:
            raise ProtocolError("complete requires 'session' and 'job_id'")
        job = self.state.jobs.get(job_id)
        if job is not None and job.state == DONE:
            # Idempotent ack for a retried complete the first ack of which
            # was lost — the result is already durable; do not re-apply.
            return {"duplicate": True}
        self._commit("complete", session=session, job_id=job_id,
                     result=request.get("result"))
        self._count("service.completes")
        job = self.state.jobs[job_id]
        if _cacheable(job.spec):
            self.cache.store(
                content_key(CACHE_KIND, job.spec.content_payload()),
                job.result,
            )
        self._sample_depth()
        return {"duplicate": False, "finished": self.state.finished}

    def _op_report_failure(self, request: dict) -> dict:
        session = str(request.get("session", ""))
        job_id = str(request.get("job_id", ""))
        if not session or not job_id:
            raise ProtocolError("report-failure requires 'session' "
                                "and 'job_id'")
        job = self.state.jobs.get(job_id)
        if job is None or job.state != LEASED or job.session_id != session:
            # The lease already expired and was requeued; nothing to do.
            return {"requeued": False, "stale": True}
        error = str(request.get("error", "handler failure"))
        self._retire_lease(job_id, time.time(),
                           reason=f"handler failed: {error}")
        self._sample_depth()
        return {"requeued": self.state.jobs[job_id].state == PENDING,
                "stale": False}

    def _op_status(self, request: dict) -> dict:
        counts = self.state.counts()
        attempts = {
            job_id: job.attempts for job_id, job in self.state.jobs.items()
        }
        return {
            "campaign": self.spec.name,
            "counts": counts,
            "n_jobs": len(self.state.jobs),
            "finished": self.state.finished,
            "draining": self._draining,
            "recovered": self.recovered,
            "total_attempts": sum(attempts.values()),
            "total_requeues": sum(
                j.requeues for j in self.state.jobs.values()
            ),
            "failed_jobs": sorted(
                job_id for job_id, job in self.state.jobs.items()
                if job.state == FAILED
            ),
            "journal_seq": self.journal.last_seq,
            "event_seqs": {t: self.hub.last_seq(t) for t in TOPICS},
            "metrics": self.telemetry.metrics.as_dict(),
        }

    def _op_results(self, request: dict) -> dict:
        return {"results": self.state.results()}

    # -- event streaming ------------------------------------------------------------

    def _topic_backlog(self, topic: str, since_seq: int) -> list[Frame]:
        """Frames a new reader catches up on. ``journal`` reads the WAL on
        disk (durable, complete — this is what makes reconnect-with-
        ``since_seq`` exactly-once across SIGKILL); other topics serve the
        bounded in-memory ring, which may have aged frames out."""
        if topic == "journal":
            return frames_from_journal(
                read_journal(self.journal_dir).records, since_seq
            )
        return self.hub.backlog(topic, since_seq)

    def _op_subscribe(self, request: dict) -> dict:
        topic = str(request.get("topic", "journal"))
        if topic not in TOPICS:
            raise ProtocolError(
                f"unknown event topic {topic!r}; choose from {list(TOPICS)}"
            )
        since_seq = int(request.get("since_seq", 0))
        if self._draining:
            # No live tail is coming: serve the remaining backlog (for the
            # journal topic that includes the drain record itself) and end
            # the stream cleanly so a reconnecting follower still catches
            # up instead of being rejected into its give-up timer.
            token: int | None = None
            queue: "asyncio.Queue[Frame | None]" | None = None
            backlog = self._topic_backlog(topic, since_seq)
        else:
            # subscribe() and the backlog read happen synchronously between
            # awaits, so every frame is in exactly one of backlog or queue.
            token, ring_backlog, queue = self.hub.subscribe(topic, since_seq)
            backlog = (
                self._topic_backlog(topic, since_seq)
                if topic == "journal" else ring_backlog
            )
        self._count("service.subscriptions")
        return {
            "topic": topic,
            "since_seq": since_seq,
            "backlog": len(backlog),
            "last_seq": self.hub.last_seq(topic),
            "_stream": (token, topic, backlog, queue),
        }

    def _op_events(self, request: dict) -> dict:
        """One-shot catch-up: backlog frames, no live tail."""
        topic = str(request.get("topic", "journal"))
        if topic not in TOPICS:
            raise ProtocolError(
                f"unknown event topic {topic!r}; choose from {list(TOPICS)}"
            )
        since_seq = int(request.get("since_seq", 0))
        limit = int(request.get("max_frames", 1000))
        backlog = self._topic_backlog(topic, since_seq)[:max(0, limit)]
        return {
            "topic": topic,
            "frames": [f.to_wire() for f in backlog],
            "last_seq": self.hub.last_seq(topic),
        }

    def _op_drain(self, request: dict) -> dict:
        asyncio.get_running_loop().create_task(self.drain())
        return {"draining": True}

    # -- shutdown ------------------------------------------------------------------

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, journal the marker, flush."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sweeper is not None:
            self._sweeper.cancel()
        self._commit("drain", at=time.time())
        # Close the hub *after* the drain record published: every live
        # subscriber sees the drain frame, then end-of-stream.
        self.hub.close()
        self.journal.close()
        try:
            from repro.telemetry import write_chrome_trace

            write_chrome_trace(
                self.telemetry, str(self.journal_dir / "service.trace.json")
            )
        except ReproError:  # pragma: no cover - trace export is best-effort
            pass
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()


def _json_bytes(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def _error_bytes(exc: ReproError) -> bytes:
    return _json_bytes({
        "ok": False, "error": type(exc).__name__, "message": str(exc),
    })


async def _serve_async(
    spec: CampaignSpec,
    journal_dir: str | Path,
    socket_path: str | Path,
    fsync: bool = True,
    sweep_interval_s: float | None = None,
) -> CampaignServer:
    server = CampaignServer(
        spec, journal_dir, socket_path, fsync=fsync,
        sweep_interval_s=sweep_interval_s,
    )
    await server.start()
    await server.wait_stopped()
    return server


def serve(
    spec: CampaignSpec,
    journal_dir: str | Path,
    socket_path: str | Path,
    fsync: bool = True,
    sweep_interval_s: float | None = None,
) -> None:
    """Run the campaign server until drained (blocking entry point).

    Safe to SIGKILL at any moment: restart with the same ``journal_dir``
    and the campaign resumes where the journal left off.
    """
    if isinstance(spec, (str, Path)):
        raise ServiceError(
            "serve() takes a CampaignSpec; use CampaignSpec.from_file"
        )
    asyncio.run(_serve_async(
        spec, journal_dir, socket_path, fsync=fsync,
        sweep_interval_s=sweep_interval_s,
    ))
