"""Facility-wide observability: spans, metrics, and trace export.

The quantitative telemetry the paper's evidence rests on — per-phase
timings, utilizations, bandwidths, lost node-hours — captured from the
simulation stack behind one opt-in :class:`Telemetry` handle and exported
as Chrome trace-event JSON (Perfetto-loadable), JSON-lines, or a text
summary. See the README's "Observability" section for a walkthrough.

>>> from repro.telemetry import Telemetry
>>> tel = Telemetry(clock=lambda: 0.0)
>>> with tel.span("step", "training") as sp:
...     tel.metrics.counter("steps").inc()
>>> len(tel.finished_spans())
1
"""

from repro.telemetry.context import DEFAULT_MAX_NODE_TRACKS, Telemetry
from repro.telemetry.export import (
    chrome_trace,
    chrome_trace_json,
    summary,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_SECONDS_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import CounterSample, InstantEvent, Span
from repro.telemetry.stream import (
    DEFAULT_SHARD_MAX_BYTES,
    ShardAggregator,
    ShardedJsonlSink,
    SpanSink,
    iter_shard_records,
    load_shards,
    shard_paths,
)
from repro.telemetry.timeline import UtilizationAccumulator, UtilizationTimeline

__all__ = [
    "DEFAULT_MAX_NODE_TRACKS",
    "DEFAULT_SECONDS_EDGES",
    "DEFAULT_SHARD_MAX_BYTES",
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "ShardAggregator",
    "ShardedJsonlSink",
    "Span",
    "SpanSink",
    "Telemetry",
    "UtilizationAccumulator",
    "UtilizationTimeline",
    "chrome_trace",
    "chrome_trace_json",
    "iter_shard_records",
    "load_shards",
    "shard_paths",
    "summary",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
