"""Ensemble surrogate with uncertainty — the generic "surrogate model" motif.

Wraps an ensemble of MLPs trained on bootstrap resamples. The ensemble
spread provides the uncertainty signal that drives active learning in the
materials workflow (query where the surrogate is unsure, refine with the
expensive first-principles evaluation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.mlp import MLP


class EnsembleSurrogate:
    """Bootstrap ensemble of MLP regressors.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-1, 1, size=(200, 2))
    >>> y = x[:, :1] ** 2 + x[:, 1:] ** 2
    >>> s = EnsembleSurrogate(n_features=2, n_members=3, seed=0)
    >>> _ = s.fit(x, y, epochs=150)
    >>> mean, std = s.predict(x[:5])
    >>> mean.shape, std.shape
    ((5, 1), (5, 1))
    """

    def __init__(
        self,
        n_features: int,
        n_outputs: int = 1,
        n_members: int = 5,
        hidden: list[int] | None = None,
        seed: int | None = None,
    ):
        if n_members < 1:
            raise ConfigurationError("n_members must be >= 1")
        hidden = hidden if hidden is not None else [32, 32]
        base = 0 if seed is None else seed
        self.members = [
            MLP([n_features, *hidden, n_outputs], seed=base + i)
            for i in range(n_members)
        ]
        self.seed = seed
        self._fitted = False

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 200,
        lr: float = 1e-2,
        batch_size: int = 32,
    ) -> "EnsembleSurrogate":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        rng = np.random.default_rng(self.seed)
        n = x.shape[0]
        for member in self.members:
            idx = rng.integers(0, n, size=n)
            member.fit(
                x[idx], y[idx], epochs=epochs, lr=lr, batch_size=batch_size,
                seed=int(rng.integers(2**31)),
            )
        self._fitted = True
        return self

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, std) over ensemble members."""
        if not self._fitted:
            raise ConfigurationError("predict called before fit")
        preds = np.stack([m.predict(x) for m in self.members])
        return preds.mean(axis=0), preds.std(axis=0)

    def acquisition(self, x: np.ndarray) -> np.ndarray:
        """Active-learning acquisition score: per-point mean ensemble std."""
        _, std = self.predict(x)
        return std.mean(axis=1)
