"""Queue ordering policies.

Summit's scheduler prioritises *capability* jobs — the wider the job, the
higher its queue priority — with aging so small jobs eventually run, and
backfill so idle nodes are used by jobs that cannot delay the queue head.
"""

from __future__ import annotations

import enum

from repro.scheduler.jobs import Job


class Policy(enum.Enum):
    """Queue ordering discipline."""

    FIFO = "fifo"
    CAPABILITY = "capability"  # Summit: wide jobs first, with aging
    SMALLEST_FIRST = "smallest_first"  # throughput-greedy anti-policy


def priority_key(policy: Policy, job: Job, now: float, aging_rate: float = 4.0):
    """Sort key (lower = runs earlier) for ``job`` under ``policy`` at ``now``.

    Capability priority: node count dominates, but waiting time buys
    priority at ``aging_rate`` nodes-equivalent per hour so small jobs are
    not starved.
    """
    wait_hours = max(0.0, (now - job.submit_time) / 3600.0)
    if policy is Policy.FIFO:
        return (job.submit_time,)
    if policy is Policy.CAPABILITY:
        return (-(job.nodes + aging_rate * wait_hours), job.submit_time)
    if policy is Policy.SMALLEST_FIRST:
        return (job.nodes, job.submit_time)
    raise AssertionError(f"unhandled policy {policy}")
