"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause, while still
distinguishing configuration mistakes from simulation-time failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class CapacityError(ReproError):
    """A request exceeded a modelled hardware capacity (memory, nodes, storage)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ConvergenceError(ReproError):
    """An iterative algorithm (training, Monte Carlo, GA) failed to converge."""


class TaxonomyError(ReproError, KeyError):
    """An unknown motif, domain, program, or other taxonomy label was used."""
