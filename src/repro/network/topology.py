"""Fat-tree topology construction.

Summit's interconnect is a three-level non-blocking fat tree of EDR
InfiniBand switches. We build an explicit switch/host graph with networkx so
routing, congestion and bisection properties can be measured rather than
assumed. For full-Summit-scale analytic work the collectives cost models in
:mod:`repro.network.collectives` do not require instantiating the graph; the
graph is used by the routing/congestion studies and the tests that verify the
non-blocking property.

The construction is the standard k-ary fat tree generalised to a configurable
radix and a "slimming" factor for tapered (oversubscribed) variants:

- ``leaf`` switches connect ``down`` hosts and ``up`` uplinks;
- a non-blocking tree has ``up == down`` at every level (taper = 1.0);
- a tapered tree has ``up = down / taper`` with ``taper > 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigurationError
from repro.network.link import LinkSpec


def _default_link() -> LinkSpec:
    # Resolved at instantiation time: EDR_RAIL is a lazy (PEP 562) attribute
    # backed by the machine registry, which imports this module's package.
    from repro.network.link import EDR_RAIL

    return EDR_RAIL


@dataclass(frozen=True)
class FatTreeSpec:
    """Parameters for a two- or three-level fat tree.

    Parameters
    ----------
    hosts:
        Number of terminal (compute-node) ports required.
    radix:
        Switch port count (36 for the EDR switches in Summit's fabric).
    levels:
        2 or 3 switch levels.
    taper:
        Uplink oversubscription factor at the leaf level. ``1.0`` is
        non-blocking (Summit); ``2.0`` halves the uplinks.
    link:
        Link spec used for every cable in the fabric.
    """

    hosts: int
    radix: int = 36
    levels: int = 3
    taper: float = 1.0
    link: LinkSpec = field(default_factory=_default_link)

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ConfigurationError("need at least one host")
        if self.radix < 2 or self.radix % 2:
            raise ConfigurationError("radix must be an even integer >= 2")
        if self.levels not in (2, 3):
            raise ConfigurationError("levels must be 2 or 3")
        if self.taper < 1.0:
            raise ConfigurationError("taper must be >= 1.0")

    @property
    def hosts_per_leaf(self) -> int:
        """Down-ports per leaf switch (half the radix, times the taper)."""
        down = self.radix // 2
        # A tapered tree dedicates more ports to hosts at the leaf.
        extra = int((self.radix // 2) * (1 - 1 / self.taper))
        return down + extra

    @property
    def uplinks_per_leaf(self) -> int:
        return self.radix - self.hosts_per_leaf

    @property
    def n_leaves(self) -> int:
        return math.ceil(self.hosts / self.hosts_per_leaf)

    @property
    def max_hosts(self) -> int:
        """Largest host count this radix/level combination can serve
        (non-blocking construction)."""
        half = self.radix // 2
        if self.levels == 2:
            return self.hosts_per_leaf * self.radix
        return self.hosts_per_leaf * half * self.radix


class FatTree:
    """An instantiated fat-tree fabric.

    Nodes of the internal graph are labelled ``("host", i)``,
    ``("leaf", i)``, ``("spine", i)`` and — for three-level trees —
    ``("core", i)``. Every edge carries the fabric :class:`LinkSpec` and a
    mutable ``load`` counter used by the congestion studies.
    """

    def __init__(self, spec: FatTreeSpec):
        if spec.hosts > spec.max_hosts:
            raise ConfigurationError(
                f"{spec.hosts} hosts exceed capacity {spec.max_hosts} of a "
                f"{spec.levels}-level radix-{spec.radix} fat tree"
            )
        self.spec = spec
        self.graph = nx.Graph()
        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        spec = self.spec
        half = spec.radix // 2
        n_leaves = spec.n_leaves

        for h in range(spec.hosts):
            self.graph.add_node(("host", h), kind="host")
        for l in range(n_leaves):
            self.graph.add_node(("leaf", l), kind="leaf")

        # host <-> leaf
        for h in range(spec.hosts):
            leaf = h // spec.hosts_per_leaf
            self._add_link(("host", h), ("leaf", leaf))

        if spec.levels == 2:
            n_spines = max(1, math.ceil(n_leaves * spec.uplinks_per_leaf / spec.radix))
            for s in range(n_spines):
                self.graph.add_node(("spine", s), kind="spine")
            for l in range(n_leaves):
                for u in range(spec.uplinks_per_leaf):
                    self._add_link(("leaf", l), ("spine", u % n_spines))
            return

        # Three levels: group leaves into pods of `half` leaves; each pod has
        # `uplinks_per_leaf` spine switches; cores connect pods.
        pod_size = half
        n_pods = math.ceil(n_leaves / pod_size)
        spines_per_pod = spec.uplinks_per_leaf
        n_cores = max(1, math.ceil(n_pods * spines_per_pod * half / spec.radix))

        for p in range(n_pods):
            for s in range(spines_per_pod):
                self.graph.add_node(("spine", p * spines_per_pod + s), kind="spine")
        for c in range(n_cores):
            self.graph.add_node(("core", c), kind="core")

        for l in range(n_leaves):
            pod = l // pod_size
            for u in range(spec.uplinks_per_leaf):
                spine = ("spine", pod * spines_per_pod + u)
                self._add_link(("leaf", l), spine)
        for p in range(n_pods):
            for s in range(spines_per_pod):
                spine = ("spine", p * spines_per_pod + s)
                for u in range(half):
                    core = ("core", (s * half + u) % n_cores)
                    self._add_link(spine, core)

    def _add_link(self, a: tuple, b: tuple) -> None:
        # parallel cables between the same pair aggregate into one edge with
        # a multiplicity count
        if self.graph.has_edge(a, b):
            self.graph[a][b]["multiplicity"] += 1
        else:
            self.graph.add_edge(a, b, link=self.spec.link, load=0, multiplicity=1)

    # -- queries ---------------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return self.spec.hosts

    @property
    def n_switches(self) -> int:
        return sum(1 for _, d in self.graph.nodes(data=True) if d["kind"] != "host")

    def host(self, i: int) -> tuple:
        if not 0 <= i < self.spec.hosts:
            raise ConfigurationError(f"host index {i} out of range")
        return ("host", i)

    def hop_count(self, src: int, dst: int) -> int:
        """Switch-to-switch hops on a shortest path between two hosts."""
        if src == dst:
            return 0
        return nx.shortest_path_length(self.graph, self.host(src), self.host(dst))

    def diameter_hops(self) -> int:
        """Worst-case host-to-host hop count: 2 per level in a fat tree."""
        return 2 * self.spec.levels

    def bisection_links(self) -> int:
        """Number of cables crossing an even leaf bisection.

        In a fat tree every cross-bisection path climbs through the leaf
        uplinks, so the bisection capacity is the aggregate uplink count of
        half the leaves. For a non-blocking tree this equals roughly half the
        host count (full bisection bandwidth); a tapered tree proportionally
        fewer.
        """
        n_leaves_half = self.spec.n_leaves // 2
        return n_leaves_half * self.spec.uplinks_per_leaf

    def reset_loads(self) -> None:
        for _, _, data in self.graph.edges(data=True):
            data["load"] = 0
