"""Event-driven checkpoint-restart simulation of one long job.

The empirical counterpart of the analytical Young/Daly model in
:mod:`repro.storage.checkpoint`: a job that must complete ``work_seconds``
of useful compute runs on the discrete-event engine, writing a checkpoint
after every ``interval`` seconds of progress; a :class:`FailureInjector`
kills it at exponential times drawn from the job-wide MTBF, and each failure
rolls the job back to its last *committed* checkpoint (a checkpoint whose
write was cut short by the failure is invalid — the whole segment is lost).

The measured ``overhead_fraction`` of the resulting :class:`RestartStats`
converges to ``CheckpointPlan.overhead_fraction`` as the run accumulates
failures, which is exactly what :mod:`repro.resilience.validate` checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import Engine, Interrupt, Timeout

from repro.resilience.faults import FailureInjector, NodeFailureModel


@dataclass(frozen=True)
class RestartStats:
    """Outcome of a checkpoint-restart run."""

    work_seconds: float  # useful compute the job had to do
    wall_seconds: float  # wall-clock it actually took
    n_failures: int
    n_checkpoints: int  # committed checkpoint writes
    checkpoint_seconds: float  # wall-clock spent writing committed checkpoints
    lost_seconds: float  # wall-clock spent on work/writes later rolled back
    restart_seconds: float  # wall-clock spent in post-failure restart delays

    def __post_init__(self) -> None:
        if self.wall_seconds < self.work_seconds:
            raise ConfigurationError("wall-clock cannot beat the useful work")

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall-clock not spent on useful, kept work."""
        if self.wall_seconds == 0:
            return 0.0
        return (self.wall_seconds - self.work_seconds) / self.wall_seconds

    @property
    def goodput_fraction(self) -> float:
        """Useful work per wall-clock second — 1 minus the overhead."""
        return 1.0 - self.overhead_fraction


def simulate_checkpoint_restart(
    work_seconds: float,
    interval: float,
    write_time: float,
    n_nodes: int,
    node_mtbf_seconds: float,
    seed: int = 0,
    restart_delay: float = 0.0,
    telemetry=None,
    engine_impl: str | None = None,
) -> RestartStats:
    """Run one job to completion under failure injection; return the stats.

    Deterministic in ``seed``: identical seeds give identical failure times
    and therefore identical wall-clock. ``engine_impl`` selects the event
    scheduler (``heap`` | ``calendar``; default: the engine's
    ``REPRO_ENGINE_IMPL`` knob) — the run is byte-identical either way,
    and the injector's exponential clocks ride the calendar engine's
    generator-free timer fast path.

    An optional :class:`~repro.telemetry.Telemetry` handle records one span
    per compute segment, checkpoint write and restart delay (facility
    "job"), the injector's fault instants, and restart counters/histograms;
    the simulated timeline is identical with telemetry on or off.
    """
    if work_seconds <= 0:
        raise ConfigurationError("work_seconds must be positive")
    if interval <= 0:
        raise ConfigurationError("checkpoint interval must be positive")
    if write_time < 0 or restart_delay < 0:
        raise ConfigurationError("write/restart times must be non-negative")

    engine = Engine(telemetry, impl=engine_impl)
    stats = {
        "failures": 0,
        "checkpoints": 0,
        "checkpoint_seconds": 0.0,
        "lost_seconds": 0.0,
        "restart_seconds": 0.0,
    }

    def job():
        committed = 0.0  # useful seconds safely behind a checkpoint
        open_span = None  # telemetry span cut short by an interrupt
        while committed < work_seconds:
            target = min(committed + interval, work_seconds)
            segment_start = engine.now
            try:
                # compute the segment, then (unless the job is done) commit it
                if telemetry is not None:
                    open_span = telemetry.begin(
                        "segment", "compute", facility="job",
                        track="progress", committed=committed,
                    )
                yield Timeout(target - committed)
                if telemetry is not None:
                    telemetry.end(open_span)
                    open_span = None
                if target < work_seconds:
                    if telemetry is not None:
                        open_span = telemetry.begin(
                            "checkpoint", "checkpoint", facility="job",
                            track="progress", committed=target,
                        )
                    yield Timeout(write_time)
                    stats["checkpoints"] += 1
                    stats["checkpoint_seconds"] += write_time
                    if telemetry is not None:
                        telemetry.end(open_span)
                        open_span = None
                        telemetry.metrics.counter(
                            "restart.checkpoints"
                        ).inc()
                committed = target
            except Interrupt:
                stats["failures"] += 1
                stats["lost_seconds"] += engine.now - segment_start
                if telemetry is not None:
                    if open_span is not None:
                        telemetry.end(open_span, failed=True)
                        open_span = None
                    telemetry.metrics.counter("restart.failures").inc()
                    telemetry.metrics.counter(
                        "restart.lost_seconds"
                    ).inc(engine.now - segment_start)
                if restart_delay > 0:
                    restart_start = engine.now
                    try:
                        if telemetry is not None:
                            open_span = telemetry.begin(
                                "restart", "restart", facility="job",
                                track="progress",
                            )
                        yield Timeout(restart_delay)
                    except Interrupt:
                        stats["failures"] += 1
                        if telemetry is not None:
                            telemetry.metrics.counter(
                                "restart.failures"
                            ).inc()
                    if telemetry is not None:
                        telemetry.end(open_span)
                        open_span = None
                    stats["restart_seconds"] += engine.now - restart_start
        return committed

    proc = engine.spawn(job(), name="checkpointed-job")
    injector = FailureInjector(
        engine, NodeFailureModel(node_mtbf_seconds), seed=seed
    )
    injector.attach(proc, n_nodes)
    engine.run()

    assert proc.finished_at is not None
    return RestartStats(
        work_seconds=work_seconds,
        wall_seconds=proc.finished_at,
        n_failures=stats["failures"],
        n_checkpoints=stats["checkpoints"],
        checkpoint_seconds=stats["checkpoint_seconds"],
        lost_seconds=stats["lost_seconds"],
        restart_seconds=stats["restart_seconds"],
    )


def _restart_replica(kwargs: dict, child_seed: int) -> RestartStats:
    return simulate_checkpoint_restart(seed=child_seed, **kwargs)


def restart_ensemble(
    work_seconds: float,
    interval: float,
    write_time: float,
    n_nodes: int,
    node_mtbf_seconds: float,
    n_replicas: int = 8,
    seed: int = 0,
    n_jobs: int = 1,
    restart_delay: float = 0.0,
    engine_impl: str | None = None,
) -> list[RestartStats]:
    """A Monte-Carlo ensemble of checkpoint-restart runs, one per child seed.

    Replica ``i`` runs :func:`simulate_checkpoint_restart` with the ``i``-th
    ``SeedSequence`` child of ``seed`` — independent failure streams whose
    assignment never depends on ``n_jobs``, so the returned list (replica
    order) is identical whether the ensemble ran serially or fanned out
    over a process pool. Averaging ``overhead_fraction`` across replicas is
    how the Young/Daly validation shrinks its stochastic error bar.
    """
    from functools import partial

    from repro.exec.replicas import monte_carlo

    kwargs = dict(
        work_seconds=work_seconds,
        interval=interval,
        write_time=write_time,
        n_nodes=n_nodes,
        node_mtbf_seconds=node_mtbf_seconds,
        restart_delay=restart_delay,
        engine_impl=engine_impl,
    )
    return monte_carlo(
        partial(_restart_replica, kwargs), n_replicas, seed=seed, n_jobs=n_jobs
    )
