"""Lennard-Jones molecular-dynamics mini-engine.

Stands in for NAMD/OpenMM in the steering and multiscale workflows
(Sections V-B, V-C): velocity-Verlet integration, periodic boundaries,
reduced LJ units, optional Langevin thermostat, and trajectory capture in a
form the autoencoders consume (flattened pair-distance "contact" features).

The implementation follows the vectorisation guidance of the HPC-Python
guides: the O(N^2) pair interactions are computed with broadcasting, with
the minimum-image convention applied arraywise — no Python-level pair loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.science.potentials import LennardJonesPotential, PairPotential


@dataclass
class MDState:
    """Positions/velocities plus box size, in reduced units."""

    positions: np.ndarray  # (n, dim)
    velocities: np.ndarray  # (n, dim)
    box: float

    def __post_init__(self) -> None:
        if self.positions.ndim != 2:
            raise ConfigurationError("positions must be (n, dim)")
        if self.positions.shape != self.velocities.shape:
            raise ConfigurationError("positions/velocities shape mismatch")
        if self.box <= 0:
            raise ConfigurationError("box must be positive")

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    def kinetic_energy(self) -> float:
        return 0.5 * float((self.velocities**2).sum())

    def temperature(self) -> float:
        """Instantaneous kinetic temperature (k_B = 1, m = 1)."""
        dof = self.n_atoms * self.dim
        return 2.0 * self.kinetic_energy() / dof


def lattice_state(
    n_side: int,
    density: float = 0.8,
    temperature: float = 1.0,
    dim: int = 2,
    seed: int | None = None,
) -> MDState:
    """Atoms on a cubic lattice with Maxwell-Boltzmann velocities — the
    standard melt-from-lattice starting point."""
    if n_side < 1 or dim not in (2, 3):
        raise ConfigurationError("need n_side >= 1 and dim in (2, 3)")
    if density <= 0 or temperature <= 0:
        raise ConfigurationError("density and temperature must be positive")
    n = n_side**dim
    box = (n / density) ** (1.0 / dim)
    spacing = box / n_side
    grids = np.meshgrid(*([np.arange(n_side) * spacing + spacing / 2] * dim))
    positions = np.column_stack([g.ravel() for g in grids])
    rng = np.random.default_rng(seed)
    velocities = rng.normal(0.0, np.sqrt(temperature), size=(n, dim))
    velocities -= velocities.mean(axis=0)  # zero total momentum
    return MDState(positions=positions, velocities=velocities, box=box)


class LennardJonesMD:
    """Velocity-Verlet integrator over a pair potential.

    >>> state = lattice_state(5, density=0.5, seed=0)
    >>> md = LennardJonesMD(state, dt=0.001)
    >>> e0 = md.total_energy()
    >>> md.run(50)
    >>> abs(md.total_energy() - e0) < 1e-3 * abs(e0)   # NVE conservation
    True
    """

    def __init__(
        self,
        state: MDState,
        potential: PairPotential | None = None,
        dt: float = 0.005,
        cutoff: float = 2.5,
    ):
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        if cutoff <= 0:
            raise ConfigurationError("cutoff must be positive")
        if cutoff > state.box / 2:
            raise ConfigurationError("cutoff must be <= half the box")
        self.state = state
        self.potential = potential or LennardJonesPotential()
        self.dt = dt
        self.cutoff = cutoff
        # truncated-and-shifted potential: subtracting e(r_c) removes the
        # energy discontinuity when pairs cross the cutoff (standard LJ
        # practice; essential for clean NVE conservation measurements)
        self._energy_shift = float(self.potential.energy(np.array([cutoff]))[0])
        self._forces = self._compute_forces()

    # -- pair machinery -----------------------------------------------------------

    def _pair_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Minimum-image displacement vectors and distances for all pairs.

        Returns (dr, r): dr is (n, n, dim) antisymmetric, r is (n, n) with
        inf on the diagonal so self-interaction vanishes naturally.
        """
        pos = self.state.positions
        box = self.state.box
        dr = pos[:, None, :] - pos[None, :, :]
        dr -= box * np.round(dr / box)
        r = np.sqrt((dr**2).sum(-1))
        np.fill_diagonal(r, np.inf)
        return dr, r

    def _compute_forces(self) -> np.ndarray:
        dr, r = self._pair_vectors()
        within = r < self.cutoff
        f_over_r = np.where(within, self.potential.force_over_r(r), 0.0)
        # F_i = sum_j f(r_ij)/r * dr_ij
        return (f_over_r[:, :, None] * dr).sum(axis=1)

    def potential_energy(self) -> float:
        _, r = self._pair_vectors()
        within = r < self.cutoff
        e = np.where(within, self.potential.energy(r) - self._energy_shift, 0.0)
        return 0.5 * float(e.sum())  # each pair counted twice

    def total_energy(self) -> float:
        return self.potential_energy() + self.state.kinetic_energy()

    # -- integration ------------------------------------------------------------------

    def step(self) -> None:
        """One velocity-Verlet step (NVE)."""
        s, dt = self.state, self.dt
        s.velocities += 0.5 * dt * self._forces
        s.positions += dt * s.velocities
        s.positions %= s.box
        self._forces = self._compute_forces()
        s.velocities += 0.5 * dt * self._forces

    def langevin_step(
        self, temperature: float, friction: float, rng: np.random.Generator
    ) -> None:
        """BAOAB-style Langevin step for canonical sampling."""
        if temperature <= 0 or friction <= 0:
            raise ConfigurationError("temperature and friction must be positive")
        s, dt = self.state, self.dt
        s.velocities += 0.5 * dt * self._forces
        s.positions += 0.5 * dt * s.velocities
        c1 = np.exp(-friction * dt)
        c2 = np.sqrt((1 - c1**2) * temperature)
        s.velocities = c1 * s.velocities + c2 * rng.standard_normal(
            s.velocities.shape
        )
        s.positions += 0.5 * dt * s.velocities
        s.positions %= s.box
        self._forces = self._compute_forces()
        s.velocities += 0.5 * dt * self._forces

    def run(self, n_steps: int) -> None:
        if n_steps < 1:
            raise ConfigurationError("n_steps must be >= 1")
        for _ in range(n_steps):
            self.step()

    def sample_trajectory(
        self,
        n_frames: int,
        steps_per_frame: int = 10,
        temperature: float | None = None,
        friction: float = 1.0,
        seed: int | None = None,
    ) -> np.ndarray:
        """Collect ``n_frames`` feature vectors (sorted pair distances).

        With ``temperature`` set, samples the canonical ensemble via
        Langevin dynamics; otherwise NVE. Sorted pair distances are a
        permutation-invariant conformation descriptor — the role contact
        maps play for the CVAE in the DeepDriveMD-style workflows.
        """
        if n_frames < 1 or steps_per_frame < 1:
            raise ConfigurationError("frame counts must be >= 1")
        rng = np.random.default_rng(seed)
        frames = []
        for _ in range(n_frames):
            for _ in range(steps_per_frame):
                if temperature is None:
                    self.step()
                else:
                    self.langevin_step(temperature, friction, rng)
            frames.append(self.descriptor())
        return np.array(frames)

    def descriptor(self) -> np.ndarray:
        """Sorted upper-triangle pair distances of the current frame."""
        _, r = self._pair_vectors()
        iu = np.triu_indices(self.state.n_atoms, k=1)
        return np.sort(r[iu])

    def radial_distribution(
        self, n_bins: int = 50, r_max: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """g(r) histogram of the current configuration; returns (r, g)."""
        if n_bins < 2:
            raise ConfigurationError("n_bins must be >= 2")
        r_max = r_max or self.state.box / 2
        _, r = self._pair_vectors()
        iu = np.triu_indices(self.state.n_atoms, k=1)
        dists = r[iu]
        hist, edges = np.histogram(dists[dists < r_max], bins=n_bins, range=(0, r_max))
        centers = 0.5 * (edges[1:] + edges[:-1])
        n = self.state.n_atoms
        density = n / self.state.box**self.state.dim
        if self.state.dim == 2:
            shell = 2 * np.pi * centers * np.diff(edges)
        else:
            shell = 4 * np.pi * centers**2 * np.diff(edges)
        ideal = density * shell * n / 2
        g = np.divide(hist, ideal, out=np.zeros_like(centers), where=ideal > 0)
        return centers, g
