"""Utilization timelines derived from resource occupancy samples.

Every grant and release of an instrumented :class:`repro.sim.Resource`
appends a :class:`~repro.telemetry.spans.CounterSample`; a
:class:`UtilizationTimeline` integrates that step function into the numbers
the paper reports per facility — busy node-seconds, time-averaged
utilization, and peak occupancy. Invariants (checked by the property
suite): ``0 <= utilization <= 1`` and ``busy_node_seconds <= capacity *
span`` whenever every sample satisfies ``0 <= value <= capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

from repro.telemetry.spans import CounterSample

__all__ = ["UtilizationAccumulator", "UtilizationTimeline"]


@dataclass(frozen=True)
class UtilizationTimeline:
    """A right-continuous step function ``value(t)`` over ``[t0, tN]``.

    ``values[i]`` holds from ``times[i]`` until ``times[i+1]`` (the last
    value contributes no area — the timeline ends at its final sample).
    """

    resource: str
    capacity: float
    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"{self.resource}: capacity must be > 0")
        if len(self.times) != len(self.values):
            raise ConfigurationError(
                f"{self.resource}: times and values must align"
            )
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ConfigurationError(
                f"{self.resource}: sample times must be non-decreasing"
            )

    @classmethod
    def from_samples(
        cls, resource: str, samples: list[CounterSample]
    ) -> "UtilizationTimeline":
        """Build from the telemetry samples recorded for one resource."""
        ours = [s for s in samples if s.resource == resource]
        if not ours:
            raise ConfigurationError(f"no samples recorded for {resource!r}")
        capacities = [s.capacity for s in ours if s.capacity is not None]
        capacity = max(capacities) if capacities else max(s.value for s in ours)
        return cls(
            resource=resource,
            capacity=capacity or 1.0,
            times=tuple(s.time for s in ours),
            values=tuple(s.value for s in ours),
        )

    @property
    def span(self) -> float:
        """Wall/simulated time between the first and last sample."""
        if not self.times:
            return 0.0
        return self.times[-1] - self.times[0]

    def busy_time(self) -> float:
        """Integral of ``value(t) dt`` — busy node-seconds for node pools."""
        return sum(
            v * (t1 - t0)
            for v, t0, t1 in zip(self.values, self.times, self.times[1:])
        )

    def utilization(self) -> float:
        """Time-averaged occupancy fraction over the sampled span.

        When no sample ever exceeds the capacity the true fraction is <= 1
        by construction, so summation round-off (the busy-time integral is
        a float sum) is clamped away rather than reported as utilization
        above 100%.
        """
        if self.span == 0.0:
            return 0.0
        utilization = self.busy_time() / (self.capacity * self.span)
        if utilization > 1.0 and self.peak() <= self.capacity:
            return 1.0
        return utilization

    def peak(self) -> float:
        """Highest sampled occupancy."""
        return max(self.values) if self.values else 0.0

    def value_at(self, t: float) -> float:
        """Occupancy at time ``t`` (0 before the first sample)."""
        value = 0.0
        for time, v in zip(self.times, self.values):
            if time > t:
                break
            value = v
        return value


@dataclass
class UtilizationAccumulator:
    """Streaming step-integral over one resource's samples, O(1) memory.

    Feeding every sample (in record order) through :meth:`add` yields the
    same ``busy_time``/``utilization``/``peak``/``capacity`` a materialized
    :meth:`UtilizationTimeline.from_samples` would compute — *float-exact*
    for ``busy_time``, because the incremental sum adds the identical
    ``value * dt`` terms in the identical order. This is what lets shard
    aggregation report utilizations for a million-sample trace without
    holding the timeline.

    >>> acc = UtilizationAccumulator("pool")
    >>> for t, v in [(0.0, 2.0), (1.0, 4.0), (3.0, 0.0)]:
    ...     acc.add(t, v, capacity=4.0)
    >>> acc.busy_time(), acc.peak(), acc.capacity()
    (10.0, 4.0, 4.0)

    Two accumulators over a time-ordered split of the same sample stream
    merge with :meth:`merge` (the right-hand one strictly later); the only
    reordering is the single bridge term across the split point.
    """

    resource: str
    n_samples: int = 0
    _busy: float = 0.0
    _capacity_max: float | None = None
    _value_max: float = 0.0
    _first_time: float | None = None
    _last_time: float | None = None
    _last_value: float = 0.0

    def add(self, time: float, value: float,
            capacity: float | None = None) -> None:
        """Fold in the next sample (times must be non-decreasing)."""
        if self._last_time is not None:
            if time < self._last_time:
                raise ConfigurationError(
                    f"{self.resource}: sample times must be non-decreasing"
                )
            self._busy += self._last_value * (time - self._last_time)
        else:
            self._first_time = time
        self._last_time = time
        self._last_value = value
        self.n_samples += 1
        if capacity is not None and (
            self._capacity_max is None or capacity > self._capacity_max
        ):
            self._capacity_max = capacity
        if self.n_samples == 1 or value > self._value_max:
            self._value_max = value

    def add_sample(self, sample: CounterSample) -> None:
        if sample.resource == self.resource:
            self.add(sample.time, sample.value, sample.capacity)

    def merge(self, other: "UtilizationAccumulator") -> None:
        """Append a strictly-later accumulator over the same resource."""
        if other.n_samples == 0:
            return
        if self.n_samples == 0:
            for name in ("n_samples", "_busy", "_capacity_max", "_value_max",
                         "_first_time", "_last_time", "_last_value"):
                setattr(self, name, getattr(other, name))
            return
        assert other._first_time is not None and self._last_time is not None
        if other._first_time < self._last_time:
            raise ConfigurationError(
                f"{self.resource}: merged accumulator overlaps in time"
            )
        self._busy += self._last_value * (other._first_time - self._last_time)
        self._busy += other._busy
        self._last_time = other._last_time
        self._last_value = other._last_value
        self.n_samples += other.n_samples
        if other._capacity_max is not None and (
            self._capacity_max is None
            or other._capacity_max > self._capacity_max
        ):
            self._capacity_max = other._capacity_max
        if other._value_max > self._value_max:
            self._value_max = other._value_max

    # -- the same derived numbers UtilizationTimeline reports ----------------------

    def capacity(self) -> float:
        """Same resolution rule as ``UtilizationTimeline.from_samples``."""
        if self._capacity_max is not None:
            return self._capacity_max or 1.0
        return self._value_max or 1.0

    def span(self) -> float:
        if self._first_time is None or self._last_time is None:
            return 0.0
        return self._last_time - self._first_time

    def busy_time(self) -> float:
        return self._busy

    def peak(self) -> float:
        return self._value_max if self.n_samples else 0.0

    def utilization(self) -> float:
        if self.span() == 0.0:
            return 0.0
        utilization = self._busy / (self.capacity() * self.span())
        if utilization > 1.0 and self.peak() <= self.capacity():
            return 1.0
        return utilization
