"""Figure 1 — overall AI/ML usage percentages.

Paper: "a substantial number of projects, 1/3 over Summit's lifespan, have
actively used AI/ML methods, with another 8% indirect use."
"""

import pytest
from conftest import report

from repro.portfolio import AdoptionStatus, PortfolioAnalytics, generate_portfolio
from repro.portfolio import reference as ref


def test_fig1_overall_usage(benchmark):
    projects = generate_portfolio()

    def compute():
        return PortfolioAnalytics(projects).overall_usage()

    usage = benchmark(compute)

    assert usage[AdoptionStatus.ACTIVE] == pytest.approx(1 / 3, abs=0.02)
    assert usage[AdoptionStatus.INACTIVE] == pytest.approx(0.08, abs=0.005)
    for status, expected in ref.FIG1_EXPECTED.items():
        assert usage[status] == pytest.approx(expected, abs=1e-9)

    report(
        "Fig. 1 — overall AI/ML usage (fraction of projects)",
        [
            (s.value, f"{ref.FIG1_EXPECTED[s]:.1%}", f"{usage[s]:.1%}")
            for s in AdoptionStatus
        ],
        header=("status", "paper", "measured"),
    )
