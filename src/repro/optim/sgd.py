"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """SGD: ``v = m v + g + wd w;  w -= lr v``.

    >>> import numpy as np
    >>> w = [np.array([1.0, 2.0])]
    >>> SGD(lr=0.5).step(w, [np.array([1.0, 1.0])])
    >>> w[0].tolist()
    [0.5, 1.5]
    """

    def __init__(self, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray] | None = None

    def _update(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            step = g if self.weight_decay == 0 else g + self.weight_decay * p
            if self.momentum:
                v *= self.momentum
                v += step
                step = v
            p -= self.lr * step
