"""k-means clustering (Lloyd's algorithm with k-means++ seeding).

Used by the steering workflows to pick diverse restart conformations from
the latent space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError


class KMeans:
    """Vectorised Lloyd iterations; empty clusters are reseeded from the
    point farthest from its centroid."""

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: int | None = None,
    ):
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int | None = None

    def _init_centroids(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n = x.shape[0]
        centroids = [x[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            d2 = np.min(
                ((x[:, None, :] - np.array(centroids)[None]) ** 2).sum(-1), axis=1
            )
            total = d2.sum()
            if total == 0:
                centroids.append(x[rng.integers(n)])
                continue
            probs = d2 / total
            centroids.append(x[rng.choice(n, p=probs)])
        return np.array(centroids)

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[0] < self.n_clusters:
            raise ConfigurationError(
                f"{x.shape[0]} samples < {self.n_clusters} clusters"
            )
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(x, rng)
        for iteration in range(self.max_iter):
            d2 = ((x[:, None, :] - centroids[None]) ** 2).sum(-1)
            labels = d2.argmin(axis=1)
            new_centroids = centroids.copy()
            for k in range(self.n_clusters):
                members = x[labels == k]
                if members.size == 0:
                    # reseed from the worst-fit point
                    worst = int(d2.min(axis=1).argmax())
                    new_centroids[k] = x[worst]
                else:
                    new_centroids[k] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < self.tol:
                break
        else:
            iteration = self.max_iter - 1
        self.centroids_ = centroids
        d2 = ((x[:, None, :] - centroids[None]) ** 2).sum(-1)
        self.inertia_ = float(d2.min(axis=1).sum())
        self.n_iter_ = iteration + 1
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise ConvergenceError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        d2 = ((x[:, None, :] - self.centroids_[None]) ** 2).sum(-1)
        return d2.argmin(axis=1)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).predict(x)
