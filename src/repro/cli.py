"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the paper's strands:

- ``machine``   — describe Summit (or a companion cluster);
- ``comm``      — Section VI-B allreduce analysis for a catalog model;
- ``io``        — Section VI-B read-bandwidth feasibility;
- ``scaling``   — weak/strong scaling table for a catalog model;
- ``apps``      — simulate the five Section IV-B applications;
- ``survey``    — regenerate Figures 1-6 from the calibrated portfolio;
- ``gordon-bell`` — print Table III and the AI finalist list;
- ``resilience`` — goodput under node failures and checkpoint-restart for a
  Section IV-B application, with empirical Young/Daly validation.
"""

from __future__ import annotations

import argparse
import sys

from repro import units
from repro.core import ScalingStudyRunner, SummitSimulator, UsageSurvey
from repro.models.catalog import CATALOG
from repro.training.parallelism import DataSource, ParallelismPlan
from repro.training.scaling import ScalingStudy


def _cmd_machine(args: argparse.Namespace) -> int:
    from repro.machine.summit import andes, rhea, summit

    factory = {"summit": summit, "rhea": rhea, "andes": andes}[args.system]
    print(factory().describe())
    return 0


def _cmd_comm(args: argparse.Namespace) -> int:
    sim = SummitSimulator()
    estimate = sim.allreduce_estimate(args.model)
    detailed = sim.allreduce_detailed(args.model, args.nodes)
    print(f"model:            {args.model}")
    print(f"paper estimate:   {units.format_time(estimate)} "
          f"(message / 12.5 GB/s)")
    print(f"ring at {args.nodes} nodes: {units.format_time(detailed)} "
          f"(latency included)")
    return 0


def _cmd_io(args: argparse.Namespace) -> int:
    sim = SummitSimulator()
    print(sim.io_report(args.model, n_nodes=args.nodes)["summary"])
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    plan = ParallelismPlan(
        local_batch=args.batch,
        accumulation_steps=args.accumulation,
        model_shards=args.shards,
        overlap_fraction=args.overlap,
        compute_jitter_cv=args.jitter,
    )
    runner = ScalingStudyRunner(
        args.model, plan, data_source=DataSource(args.data_source)
    )
    nodes = [int(n) for n in args.nodes.split(",")]
    print(runner.table(nodes, strong=args.strong))
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    from repro.apps.extreme_scale import EXTREME_SCALE_APPS

    print(f"{'app':<11}{'nodes':>7}{'PFLOP/s':>10}{'efficiency':>12}  reported")
    for key, app in EXTREME_SCALE_APPS.items():
        result = app.simulate()
        print(
            f"{key:<11}{app.peak_nodes:>7}"
            f"{result['measured_flops'] / 1e15:>10.1f}"
            f"{result['measured_efficiency']:>11.1%}  {result['reported']}"
        )
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    print(UsageSurvey.calibrated(seed=args.seed).report())
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.apps.extreme_scale import get_app

    app = get_app(args.app)
    nodes = args.nodes if args.nodes is not None else app.peak_nodes
    report = app.resilience_report(
        n_nodes=nodes,
        node_mtbf_seconds=args.mtbf_years * 365 * 24 * 3600.0,
        state_bytes_per_node=args.state_gb * 1e9,
        tier=args.tier,
        empirical=not args.analytic_only,
        seed=args.seed,
    )
    print(report.format())
    if not args.analytic_only:
        agreement = report.agreement()
        assert agreement is not None
        print(
            "empirical checkpoint+rework overhead "
            f"{'matches' if report.matches_analytical() else 'DEVIATES FROM'} "
            f"the Young/Daly optimum (rel. err {agreement:.1%}, tol 20%)"
        )
    return 0


def _cmd_gordon_bell(args: argparse.Namespace) -> int:
    from repro.apps.registry import GORDON_BELL_FINALISTS, gordon_bell_table

    print("Table III — Summit Gordon Bell finalists (total / AI-ML)")
    for (year, category), (total, ai) in sorted(gordon_bell_table().items()):
        print(f"  {year} {category:<6} {total} / {ai}")
    if args.verbose:
        for f in GORDON_BELL_FINALISTS:
            if f.uses_ai:
                print(f"  {f.year} [{f.category}] {f.name}: {f.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Learning to Scale the Summit'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("machine", help="describe an OLCF system")
    p.add_argument("--system", choices=("summit", "rhea", "andes"),
                   default="summit")
    p.set_defaults(fn=_cmd_machine)

    p = sub.add_parser("comm", help="Section VI-B allreduce analysis")
    p.add_argument("--model", choices=sorted(CATALOG), default="bert_large")
    p.add_argument("--nodes", type=int, default=4608)
    p.set_defaults(fn=_cmd_comm)

    p = sub.add_parser("io", help="Section VI-B read-bandwidth feasibility")
    p.add_argument("--model", choices=sorted(CATALOG), default="resnet50")
    p.add_argument("--nodes", type=int, default=None)
    p.set_defaults(fn=_cmd_io)

    p = sub.add_parser("scaling", help="scaling study for a catalog model")
    p.add_argument("--model", choices=sorted(CATALOG), default="resnet50")
    p.add_argument("--nodes", default="1,16,256,4096",
                   help="comma-separated node counts")
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--accumulation", type=int, default=1)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--overlap", type=float, default=0.7)
    p.add_argument("--jitter", type=float, default=0.0)
    p.add_argument("--data-source", choices=[s.value for s in DataSource],
                   default="nvme")
    p.add_argument("--strong", action="store_true",
                   help="strong scaling (fixed global batch)")
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("apps", help="simulate the Section IV-B applications")
    p.set_defaults(fn=_cmd_apps)

    p = sub.add_parser("survey", help="regenerate the usage-survey figures")
    p.add_argument("--seed", type=int, default=2022)
    p.set_defaults(fn=_cmd_survey)

    p = sub.add_parser("gordon-bell", help="Table III and AI finalists")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_gordon_bell)

    from repro.apps.extreme_scale import EXTREME_SCALE_APPS

    p = sub.add_parser(
        "resilience",
        help="goodput under node failures + checkpoint-restart",
    )
    p.add_argument("--app", choices=sorted(EXTREME_SCALE_APPS),
                   default="laanait")
    p.add_argument("--nodes", type=int, default=None,
                   help="job width (default: the app's peak node count)")
    p.add_argument("--mtbf-years", type=float, default=5.0,
                   help="per-node MTBF in years")
    p.add_argument("--state-gb", type=float, default=30.0,
                   help="checkpoint payload per node in GB")
    p.add_argument("--tier", choices=("nvme", "shared_fs"), default="nvme")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--analytic-only", action="store_true",
                   help="skip the event-driven empirical simulation")
    p.set_defaults(fn=_cmd_resilience)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
