"""The fault-detection motif (Table I): "detect algorithmic or other failure
in execution, send signal for automatic or manual remediation."

Scenario: a production MD campaign occasionally suffers silent numerical
faults (an integration blow-up seeded by a corrupted force evaluation —
"detect simulation defect caused by execution error"). An autoencoder
trained on healthy per-frame observables (energy components, temperature,
maximum force) flags faulty segments by reconstruction error, and the
workflow remediates by rolling the simulation back to the last healthy
snapshot — exactly the automatic-remediation loop the motif describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.autoencoder import Autoencoder
from repro.science.md import LennardJonesMD, lattice_state


def _observables(md: LennardJonesMD) -> np.ndarray:
    """Per-frame health vector: KE, PE, temperature, max |force|, max |v|."""
    return np.array([
        md.state.kinetic_energy(),
        md.potential_energy(),
        md.state.temperature(),
        float(np.abs(md._forces).max()),
        float(np.abs(md.state.velocities).max()),
    ])


@dataclass
class FaultDetectionResult:
    """Outcome of a monitored campaign."""

    frames: int
    faults_injected: int
    faults_detected: int
    false_alarms: int
    rollbacks: int
    final_energy_finite: bool

    @property
    def recall(self) -> float:
        if self.faults_injected == 0:
            return 1.0
        return self.faults_detected / self.faults_injected


class FaultDetectionWorkflow:
    """AE-monitored MD campaign with rollback remediation."""

    def __init__(
        self,
        n_side: int = 5,
        threshold_sigma: float = 6.0,
        seed: int | None = 0,
    ):
        if threshold_sigma <= 0:
            raise ConfigurationError("threshold_sigma must be positive")
        self.threshold_sigma = threshold_sigma
        self.seed = seed
        state = lattice_state(n_side, density=0.4, temperature=0.5, seed=seed)
        self.md = LennardJonesMD(state, dt=0.002)
        self.rng = np.random.default_rng(seed)
        self.detector: Autoencoder | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._threshold: float | None = None

    # -- training on healthy data ---------------------------------------------

    def train_detector(
        self, n_frames: int = 120, steps_per_frame: int = 5, epochs: int = 250
    ) -> float:
        """Collect healthy observables and fit the detector; returns the
        detection threshold (mean + sigma * std of healthy scores)."""
        frames = np.empty((n_frames, 5))
        for i in range(n_frames):
            for _ in range(steps_per_frame):
                self.md.langevin_step(0.5, 1.0, self.rng)
            frames[i] = _observables(self.md)
        self._mean = frames.mean(axis=0)
        self._std = frames.std(axis=0) + 1e-9
        normalised = (frames - self._mean) / self._std
        self.detector = Autoencoder(5, 2, hidden=[8], seed=self.seed)
        self.detector.fit(normalised, epochs=epochs, seed=self.seed)
        scores = self.detector.reconstruction_error(normalised)
        # floor the spread: when the AE fits the healthy data almost exactly
        # the score std collapses toward zero and the threshold degenerates
        # to the mean, alarming on every frame
        spread = max(float(scores.std()), 0.1 * float(scores.mean()), 1e-12)
        self._threshold = float(scores.mean() + self.threshold_sigma * spread)
        return self._threshold

    def _score(self) -> float:
        assert self.detector is not None
        assert self._mean is not None and self._std is not None
        obs = (_observables(self.md) - self._mean) / self._std
        return float(self.detector.reconstruction_error(obs[None, :])[0])

    # -- the monitored campaign ------------------------------------------------

    def run(
        self,
        n_frames: int = 100,
        steps_per_frame: int = 5,
        fault_probability: float = 0.05,
        fault_magnitude: float = 25.0,
    ) -> FaultDetectionResult:
        """Run a campaign with random injected faults and AE monitoring.

        A fault multiplies a few velocities by ``fault_magnitude`` (the
        signature of a corrupted force evaluation propagating through the
        integrator). Detection rolls back to the last healthy snapshot.
        """
        if self.detector is None:
            raise ConfigurationError("call train_detector() first")
        if not 0 <= fault_probability <= 1:
            raise ConfigurationError("fault_probability must be in [0, 1]")

        injected = detected = false_alarms = rollbacks = 0
        healthy_snapshot = (
            self.md.state.positions.copy(), self.md.state.velocities.copy()
        )
        fault_live = False
        for _ in range(n_frames):
            if not fault_live and self.rng.random() < fault_probability:
                victim = self.rng.integers(0, self.md.state.n_atoms)
                self.md.state.velocities[victim] *= fault_magnitude
                injected += 1
                fault_live = True
            for _ in range(steps_per_frame):
                self.md.langevin_step(0.5, 1.0, self.rng)
            score = self._score()
            if score > self._threshold:
                if fault_live:
                    detected += 1
                else:
                    false_alarms += 1
                # remediation: roll back to the last healthy snapshot, then
                # re-anchor the snapshot at the restored frame — otherwise a
                # run of false alarms keeps replaying ever-older state
                self.md.state.positions[...] = healthy_snapshot[0]
                self.md.state.velocities[...] = healthy_snapshot[1]
                self.md._forces = self.md._compute_forces()
                healthy_snapshot = (
                    self.md.state.positions.copy(),
                    self.md.state.velocities.copy(),
                )
                rollbacks += 1
                fault_live = False
            elif not fault_live:
                healthy_snapshot = (
                    self.md.state.positions.copy(),
                    self.md.state.velocities.copy(),
                )
        return FaultDetectionResult(
            frames=n_frames,
            faults_injected=injected,
            faults_detected=detected,
            false_alarms=false_alarms,
            rollbacks=rollbacks,
            final_energy_finite=bool(np.isfinite(self.md.total_energy())),
        )
