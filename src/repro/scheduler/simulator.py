"""Event-driven batch-scheduler simulation.

A simple but faithful space-sharing model: the machine is a pool of
``n_nodes``; at every scheduling point (job arrival or completion) the
queue is reordered by the policy and jobs are started in order, with
conservative backfill (a job may jump ahead only if it fits in the
currently idle nodes AND would finish before the queue head could start).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scheduler.jobs import Job
from repro.scheduler.policy import Policy, priority_key


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate outcome of a scheduling run."""

    makespan: float
    utilization: float  # busy node-seconds / (nodes * makespan)
    mean_wait: float
    max_wait: float
    mean_wait_wide: float  # jobs using >= 20 % of the machine
    delivered_node_hours: float
    ai_node_hours: float
    start_times: dict[str, float]
    end_times: dict[str, float]

    @property
    def ai_share(self) -> float:
        """AI/ML share of delivered node-hours — the 'actual hours used'
        metric Section II-C contrasts with allocation counting."""
        if self.delivered_node_hours == 0:
            return 0.0
        return self.ai_node_hours / self.delivered_node_hours


class Scheduler:
    """Space-sharing scheduler over a homogeneous node pool."""

    def __init__(self, n_nodes: int, policy: Policy = Policy.CAPABILITY):
        if n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.policy = policy

    def run(self, jobs: list[Job]) -> ScheduleResult:
        if not jobs:
            raise ConfigurationError("no jobs to schedule")
        for job in jobs:
            if job.nodes > self.n_nodes:
                raise ConfigurationError(
                    f"{job.job_id} needs {job.nodes} nodes, machine has "
                    f"{self.n_nodes}"
                )

        pending = sorted(jobs, key=lambda j: j.submit_time)
        queue: list[Job] = []
        running: list[tuple[float, int, Job]] = []  # (end_time, seq, job)
        seq = 0
        idle = self.n_nodes
        now = 0.0
        starts: dict[str, float] = {}
        ends: dict[str, float] = {}

        def try_start() -> None:
            nonlocal idle, seq
            queue.sort(key=lambda j: priority_key(self.policy, j, now))
            started = True
            while started:
                started = False
                if not queue:
                    return
                head = queue[0]
                if head.nodes <= idle:
                    queue.pop(0)
                    self._start(head, now, starts)
                    heapq.heappush(running, (now + head.duration, seq, head))
                    seq += 1
                    idle -= head.nodes
                    started = True
                    continue
                # conservative backfill: when could the head start?
                needed = head.nodes - idle
                freed = 0
                head_start = now
                for end_time, _, job in sorted(running):
                    freed += job.nodes
                    head_start = end_time
                    if freed >= needed:
                        break
                for candidate in list(queue[1:]):
                    if (
                        candidate.nodes <= idle
                        and now + candidate.duration <= head_start
                    ):
                        queue.remove(candidate)
                        self._start(candidate, now, starts)
                        heapq.heappush(
                            running, (now + candidate.duration, seq, candidate)
                        )
                        seq += 1
                        idle -= candidate.nodes
                        started = True

        while pending or queue or running:
            # next event: job arrival or completion
            next_arrival = pending[0].submit_time if pending else float("inf")
            next_completion = running[0][0] if running else float("inf")
            now = min(next_arrival, next_completion)
            if now == float("inf"):
                raise AssertionError("scheduler deadlock")
            while pending and pending[0].submit_time <= now:
                queue.append(pending.pop(0))
            while running and running[0][0] <= now:
                _, _, job = heapq.heappop(running)
                ends[job.job_id] = now
                idle += job.nodes
            try_start()

        makespan = max(ends.values())
        busy = sum(j.node_seconds for j in jobs)
        waits = [starts[j.job_id] - j.submit_time for j in jobs]
        wide_waits = [
            starts[j.job_id] - j.submit_time
            for j in jobs
            if j.nodes >= 0.2 * self.n_nodes
        ]
        ai_seconds = sum(j.node_seconds for j in jobs if j.uses_ai)
        return ScheduleResult(
            makespan=makespan,
            utilization=busy / (self.n_nodes * makespan),
            mean_wait=sum(waits) / len(waits),
            max_wait=max(waits),
            mean_wait_wide=(
                sum(wide_waits) / len(wide_waits) if wide_waits else 0.0
            ),
            delivered_node_hours=busy / 3600.0,
            ai_node_hours=ai_seconds / 3600.0,
            start_times=starts,
            end_times=ends,
        )

    @staticmethod
    def _start(job: Job, now: float, starts: dict[str, float]) -> None:
        if now < job.submit_time:
            raise AssertionError("job started before submission")
        starts[job.job_id] = now
