"""Distributed-training performance simulator.

Models a synchronous data-parallel (optionally model-parallel and
gradient-accumulating) training step on a machine from
:mod:`repro.machine`, composing:

- compute time from the model's calibrated sustained FLOP rate;
- gradient allreduce time from the hierarchical (NVLink intra-node +
  InfiniBand inter-node) ring model of :mod:`repro.network.collectives`;
- input-pipeline time from the storage models of :mod:`repro.storage`;
- configurable communication/computation and I/O overlap.

The same machinery reproduces each Section IV-B scaling result and the
Section VI-B communication-bound crossover.
"""

from repro.training.convergence import (
    OPTIMIZER_CRITICAL_BATCH_FACTOR,
    steps_to_target,
    time_to_solution,
)
from repro.training.goodput import GoodputModel
from repro.training.job import TrainingJob
from repro.training.parallelism import DataSource, ParallelismPlan
from repro.training.scaling import ScalingPoint, ScalingStudy
from repro.training.step_time import StepBreakdown, step_breakdown

__all__ = [
    "DataSource",
    "GoodputModel",
    "OPTIMIZER_CRITICAL_BATCH_FACTOR",
    "ParallelismPlan",
    "ScalingPoint",
    "ScalingStudy",
    "StepBreakdown",
    "TrainingJob",
    "step_breakdown",
    "steps_to_target",
    "time_to_solution",
]
