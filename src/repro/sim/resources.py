"""Capacity resources for the discrete-event engine.

A :class:`Resource` models a pool with integer capacity — e.g. a machine's
node count or a filesystem's concurrent-stager slots. Processes yield
``resource.acquire(n)`` and later call ``resource.release(n)``.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Engine, Process


class _AcquireRequest:
    """Yielded by :meth:`Resource.acquire`; resolves when capacity is free."""

    def __init__(self, resource: "Resource", amount: int):
        self.resource = resource
        self.amount = amount
        self._wait_span = None  # open telemetry span while queued

    def _bind_waiter(self, proc: Process) -> None:
        self.resource._enqueue(self, proc)

    def _cancel(self, proc: Process) -> None:
        """Withdraw this request (the waiter was interrupted while queued)."""
        self.resource._dequeue(proc)


class Resource:
    """A counted capacity pool tied to an :class:`Engine`.

    Grants are FIFO: a large request at the head of the queue blocks later
    smaller ones (no starvation of wide jobs — the same policy leadership
    batch schedulers use for capability queues).
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[tuple[_AcquireRequest, Process]] = deque()
        if engine.telemetry is not None:
            # anchor the occupancy timeline at the pool's creation time
            engine.telemetry.sample(
                self.name, 0, capacity, facility="resources"
            )

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, amount: int = 1) -> _AcquireRequest:
        """Build a request effect; yield it from a process to wait for grant."""
        if amount < 1:
            raise SimulationError(f"{self.name}: acquire amount must be >= 1")
        if amount > self.capacity:
            raise SimulationError(
                f"{self.name}: request {amount} exceeds capacity {self.capacity}"
            )
        return _AcquireRequest(self, amount)

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units and wake queued requests that now fit."""
        if amount < 1 or amount > self.in_use:
            raise SimulationError(
                f"{self.name}: release {amount} with {self.in_use} in use"
            )
        self.in_use -= amount
        self._sample()
        self._drain()

    def _enqueue(self, request: _AcquireRequest, proc: Process) -> None:
        telemetry = self.engine.telemetry
        if telemetry is not None and (self._queue or request.amount > self.available):
            # the request will wait: record the queue time as a span
            request._wait_span = telemetry.begin(
                f"wait:{proc.name}", "resource-wait",
                facility="resources", track=self.name,
                amount=request.amount,
            )
        self._queue.append((request, proc))
        self._drain()

    def _dequeue(self, proc: Process) -> None:
        """Drop ``proc``'s queued request; a removed head may unblock others."""
        telemetry = self.engine.telemetry
        if telemetry is not None:
            for req, waiter in self._queue:
                if waiter is proc and req._wait_span is not None:
                    telemetry.end(req._wait_span, cancelled=True)
                    req._wait_span = None
        self._queue = deque(
            (req, waiter) for req, waiter in self._queue if waiter is not proc
        )
        self._drain()

    def _drain(self) -> None:
        telemetry = self.engine.telemetry
        while self._queue:
            request, proc = self._queue[0]
            if request.amount > self.available:
                return
            self._queue.popleft()
            self.in_use += request.amount
            if telemetry is not None:
                if request._wait_span is not None:
                    wait = telemetry.end(request._wait_span)
                    request._wait_span = None
                    telemetry.metrics.histogram(
                        f"resource.{self.name}.wait_seconds"
                    ).record(wait.duration)
                self._sample()
            self.engine._resume(proc, request.amount)

    def _sample(self) -> None:
        """Record the occupancy step for the utilization timeline."""
        telemetry = self.engine.telemetry
        if telemetry is not None:
            telemetry.sample(
                self.name, self.in_use, self.capacity, facility="resources"
            )
