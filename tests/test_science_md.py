"""Tests for the MD engine, potentials, FFEA stand-in and docking oracle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.science.docking import CompoundLibrary, DockingOracle
from repro.science.ffea import MassSpringModel
from repro.science.md import LennardJonesMD, MDState, lattice_state
from repro.science.potentials import (
    LennardJonesPotential,
    MLPairPotential,
    MorsePotential,
)


class TestLattice:
    def test_atom_count(self):
        state = lattice_state(4, dim=2)
        assert state.n_atoms == 16

    def test_3d_lattice(self):
        state = lattice_state(3, dim=3)
        assert state.n_atoms == 27
        assert state.dim == 3

    def test_zero_total_momentum(self):
        state = lattice_state(5, seed=0)
        assert np.allclose(state.velocities.sum(axis=0), 0.0, atol=1e-12)

    def test_density_sets_box(self):
        state = lattice_state(4, density=0.5, dim=2)
        assert state.n_atoms / state.box**2 == pytest.approx(0.5)

    def test_temperature_near_request(self):
        state = lattice_state(10, temperature=2.0, seed=1)
        assert state.temperature() == pytest.approx(2.0, rel=0.15)

    def test_bad_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            lattice_state(4, dim=4)


class TestLennardJonesMD:
    @pytest.fixture
    def md(self):
        return LennardJonesMD(
            lattice_state(5, density=0.5, temperature=0.5, seed=0), dt=0.001
        )

    def test_nve_energy_conservation(self, md):
        e0 = md.total_energy()
        md.run(300)
        assert abs(md.total_energy() - e0) < 1e-4 * abs(e0)

    def test_forces_sum_to_zero(self, md):
        # Newton's third law: no net force on the whole system
        assert np.allclose(md._forces.sum(axis=0), 0.0, atol=1e-9)

    def test_positions_stay_in_box(self, md):
        md.run(200)
        assert (md.state.positions >= 0).all()
        assert (md.state.positions < md.state.box).all()

    def test_langevin_thermostats_to_target(self):
        md = LennardJonesMD(
            lattice_state(5, density=0.3, temperature=0.5, seed=1), dt=0.001
        )
        rng = np.random.default_rng(0)
        temps = []
        for _ in range(1500):
            md.langevin_step(1.0, friction=2.0, rng=rng)
        for _ in range(1000):
            md.langevin_step(1.0, friction=2.0, rng=rng)
            temps.append(md.state.temperature())
        assert np.mean(temps) == pytest.approx(1.0, rel=0.15)

    def test_langevin_exact_for_noninteracting_gas(self):
        """BAOAB samples the exact velocity marginal when forces vanish."""
        md = LennardJonesMD(
            lattice_state(5, density=0.005, temperature=1.0, seed=1), dt=0.002
        )
        rng = np.random.default_rng(0)
        temps = []
        for i in range(3000):
            md.langevin_step(1.0, friction=2.0, rng=rng)
            if i > 1000:
                temps.append(md.state.temperature())
        assert np.mean(temps) == pytest.approx(1.0, rel=0.05)

    def test_descriptor_sorted_and_sized(self, md):
        d = md.descriptor()
        n = md.state.n_atoms
        assert d.shape == (n * (n - 1) // 2,)
        assert (np.diff(d) >= 0).all()

    def test_trajectory_shape(self, md):
        traj = md.sample_trajectory(4, steps_per_frame=3, temperature=0.5, seed=2)
        assert traj.shape == (4, md.state.n_atoms * (md.state.n_atoms - 1) // 2)

    def test_rdf_peak_near_lj_minimum(self):
        md = LennardJonesMD(
            lattice_state(6, density=0.7, temperature=0.5, seed=3), dt=0.002
        )
        rng = np.random.default_rng(1)
        for _ in range(300):
            md.langevin_step(0.7, 1.0, rng)
        r, g = md.radial_distribution(n_bins=40)
        peak_r = r[g.argmax()]
        assert 0.9 < peak_r < 1.4  # LJ minimum at 2^(1/6) ~ 1.12

    def test_cutoff_exceeding_half_box_rejected(self):
        with pytest.raises(ConfigurationError):
            LennardJonesMD(lattice_state(3, density=1.0), cutoff=5.0)

    def test_state_validation(self):
        with pytest.raises(ConfigurationError):
            MDState(np.zeros((4, 2)), np.zeros((3, 2)), box=5.0)


class TestPotentials:
    def test_lj_minimum_location_and_depth(self):
        lj = LennardJonesPotential()
        r_min = 2 ** (1 / 6)
        assert lj.energy(np.array([r_min]))[0] == pytest.approx(-1.0)
        # force vanishes at the minimum
        assert lj.force_over_r(np.array([r_min]))[0] == pytest.approx(0.0, abs=1e-10)

    def test_lj_repulsive_inside_attractive_outside(self):
        lj = LennardJonesPotential()
        assert lj.force_over_r(np.array([0.9]))[0] > 0
        assert lj.force_over_r(np.array([1.5]))[0] < 0

    def test_morse_minimum_at_r0(self):
        morse = MorsePotential(depth=2.0, a=2.0, r0=1.2)
        assert morse.energy(np.array([1.2]))[0] == pytest.approx(-2.0)
        assert morse.force_over_r(np.array([1.2]))[0] == pytest.approx(0.0, abs=1e-10)

    def test_force_is_negative_energy_gradient(self):
        lj = LennardJonesPotential()
        r = np.linspace(0.95, 2.4, 50)
        h = 1e-6
        numeric = -(lj.energy(r + h) - lj.energy(r - h)) / (2 * h)
        assert np.allclose(lj.force_over_r(r) * r, numeric, rtol=1e-4)


class TestMLPairPotential:
    @pytest.fixture(scope="class")
    def fitted(self):
        pot = MLPairPotential(seed=0)
        pot.fit(LennardJonesPotential(), epochs=300, seed=0)
        return pot

    def test_use_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            MLPairPotential().energy(np.array([1.0]))

    def test_rmse_small_vs_reference(self, fitted):
        assert fitted.rmse_against(LennardJonesPotential()) < 1.0

    def test_accurate_near_minimum(self, fitted):
        r = np.linspace(1.0, 2.0, 50)
        err = np.abs(fitted.energy(r) - LennardJonesPotential().energy(r))
        assert err.max() < 0.3

    def test_zero_beyond_cutoff(self, fitted):
        assert fitted.energy(np.array([5.0]))[0] == 0.0

    def test_short_range_wall_repulsive(self, fitted):
        e_wall = fitted.energy(np.array([0.5]))[0]
        e_edge = fitted.energy(np.array([0.8]))[0]
        assert e_wall > e_edge

    def test_runs_md_stably(self, fitted):
        md = LennardJonesMD(
            lattice_state(4, density=0.4, temperature=0.3, seed=5),
            potential=fitted, dt=0.002,
        )
        md.run(50)
        assert np.isfinite(md.total_energy())


class TestMassSpring:
    def test_rest_configuration_zero_energy(self):
        model = MassSpringModel(n_side=4, seed=0)
        assert model.energy() == pytest.approx(0.0)

    def test_forces_restore_after_deformation(self):
        model = MassSpringModel(n_side=4, seed=0)
        model.apply_deformation(1.0)
        e0 = model.energy()
        for _ in range(500):
            model.step(dt=0.005, temperature=0.0)
        assert model.energy() < 0.1 * e0

    def test_descriptor_counts_springs(self):
        model = MassSpringModel(n_side=4)
        # 2 * n * (n-1) springs on an n x n grid
        assert model.descriptor().shape == (2 * 4 * 3,)

    def test_thermal_trajectory_fluctuates(self):
        model = MassSpringModel(n_side=4, seed=1)
        traj = model.sample_trajectory(10, steps_per_frame=10, temperature=0.2)
        assert traj.std() > 0

    def test_deformation_stretches_springs(self):
        model = MassSpringModel(n_side=4, seed=2)
        before = model.descriptor().max()
        model.apply_deformation(2.0)
        assert model.descriptor().max() > before + 1.0


class TestDocking:
    @pytest.fixture
    def setup(self):
        lib = CompoundLibrary.random(500, seed=0)
        return lib, DockingOracle(seed=0)

    def test_library_genome_range(self, setup):
        lib, _ = setup
        assert lib.genomes.min() >= 0
        assert lib.genomes.max() < lib.n_fragments

    def test_features_one_hot(self, setup):
        lib, _ = setup
        feats = lib.features()
        assert feats.shape == (500, 12 * 16)
        assert (feats.sum(axis=1) == 12).all()

    def test_true_affinity_deterministic(self, setup):
        lib, oracle = setup
        a = oracle.true_affinity(lib.genomes)
        b = oracle.true_affinity(lib.genomes)
        assert np.allclose(a, b)

    def test_docking_correlated_but_imperfect(self, setup):
        lib, oracle = setup
        truth = oracle.true_affinity(lib.genomes)
        dock = oracle.docking_score(lib.genomes)
        corr = np.corrcoef(truth, dock)[0, 1]
        assert 0.2 < corr < 0.95

    def test_md_refine_close_to_truth_and_counted(self, setup):
        lib, oracle = setup
        scores = oracle.md_refine(lib.genomes[:50])
        truth = oracle.true_affinity(lib.genomes[:50])
        assert oracle.md_calls == 50
        assert np.abs(scores - truth).mean() < 0.2

    def test_docking_is_free(self, setup):
        lib, oracle = setup
        oracle.docking_score(lib.genomes)
        assert oracle.md_calls == 0

    def test_enrichment_of_true_top_is_one(self, setup):
        lib, oracle = setup
        truth = oracle.true_affinity(lib.genomes)
        k = max(1, int(0.01 * len(lib)))
        top = lib.genomes[np.argsort(truth)[-k:]]
        assert oracle.enrichment(top, lib, top_fraction=0.01) == 1.0

    def test_wrong_genome_length_rejected(self, setup):
        _, oracle = setup
        with pytest.raises(ConfigurationError):
            oracle.true_affinity(np.zeros((3, 5), dtype=int))

    def test_out_of_range_fragment_rejected(self, setup):
        _, oracle = setup
        with pytest.raises(ConfigurationError):
            oracle.true_affinity(np.full((1, 12), 99))
