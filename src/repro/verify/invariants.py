"""Invariant auditors: structural properties that must hold for *any* input.

Where the expectation registry pins numbers and the differential runners
pin cross-path agreement, the auditors here check properties no
configuration is allowed to violate: conservation of node-seconds in a
workflow run, well-formedness of a telemetry span tree and its agreement
with the metric counters, monotone shape of scaling and crossover curves,
and byte-identical same-seed trace exports.

Each auditor returns an :class:`InvariantResult`; :func:`run_invariants`
runs the default battery used by ``repro verify``.

>>> r = audit_crossover_shape()
>>> r.passed
True
>>> audit_scaling_shape("kurth").key
'invariant.scaling_shape.kurth'
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

__all__ = [
    "InvariantResult",
    "audit_crossover_shape",
    "audit_scaling_shape",
    "audit_span_tree",
    "audit_streaming_identity",
    "audit_trace_determinism",
    "audit_workflow_conservation",
    "run_invariants",
]


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one structural audit."""

    key: str
    description: str
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def message(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"{self.key}: {verdict} — {self.detail}"


def _default_run(seed: int = 0):
    """A fault-injected multi-facility run with telemetry, for auditing."""
    from repro.telemetry import Telemetry
    from repro.workflows.dag import TaskGraph
    from repro.workflows.facility import Facility

    graph = TaskGraph({
        "summit": Facility(name="Summit", nodes=8, speed=1.0),
        "edge": Facility(name="Edge", nodes=2, speed=0.5),
    })
    graph.add_task("stage", 120.0, "summit", nodes=2)
    graph.add_task(
        "train", 3600.0, "summit", nodes=4, deps=("stage",),
        failure_rate=1 / 1800.0, checkpoint_interval=300.0,
        checkpoint_write_time=15.0,
    )
    graph.add_task(
        "simulate", 1800.0, "edge", nodes=2, deps=("stage",),
        failure_rate=1 / 3600.0,
    )
    graph.add_task("analyze", 300.0, "summit", deps=("train", "simulate"))
    telemetry = Telemetry()
    run = graph.execute(seed=seed, telemetry=telemetry)
    return run, graph, telemetry


def audit_workflow_conservation(run=None, graph=None, seed: int = 0) -> InvariantResult:
    """Node-second conservation and timestamp sanity of a WorkflowRun.

    ``busy == useful + checkpoint + lost`` (every occupied node-second is
    accounted for exactly once), per-facility start..end span totals bound
    the busy figure from above, every task ends no earlier than it starts,
    and the makespan is exactly the latest end time.
    """
    if run is None or graph is None:
        run, graph, _ = _default_run(seed)
    failures: list[str] = []

    accounted = (
        run.useful_node_seconds
        + run.checkpoint_node_seconds
        + run.lost_node_seconds
    )
    if not np.isclose(run.busy_node_seconds, accounted, rtol=1e-09):
        failures.append(
            f"busy {run.busy_node_seconds!r} != useful+checkpoint+lost "
            f"{accounted!r}"
        )
    # facility totals span each task's whole start..end window, which also
    # covers retry-backoff gaps — an upper bound on attempt wall time
    per_facility = sum(run.facility_busy_node_seconds(graph).values())
    if per_facility < run.busy_node_seconds * (1 - 1e-09):
        failures.append(
            f"per-facility span sum {per_facility!r} below "
            f"global busy {run.busy_node_seconds!r}"
        )
    for name, start in run.start_times.items():
        if run.end_times[name] < start:
            failures.append(f"task {name!r} ends before it starts")
    latest = max(run.end_times.values())
    if run.makespan != latest:
        failures.append(
            f"makespan {run.makespan!r} != latest end time {latest!r}"
        )
    if not (0.0 <= run.goodput_fraction <= 1.0):
        failures.append(f"goodput_fraction {run.goodput_fraction!r} not in [0, 1]")

    return InvariantResult(
        key="invariant.workflow_conservation",
        description="busy node-seconds == useful + checkpoint + lost; "
        "timestamps and makespan consistent",
        passed=not failures,
        detail="; ".join(failures)
        or f"{run.busy_node_seconds:.0f} busy node-seconds fully accounted "
        f"({run.goodput_fraction:.3f} goodput) across "
        f"{len(run.end_times)} tasks",
    )


def audit_span_tree(telemetry=None, seed: int = 0) -> InvariantResult:
    """Well-formedness of a telemetry span tree + counter/span parity.

    Every span is finished with ``end >= start``; parent links point to
    existing spans that were opened earlier (``parent_id < span_id``) and
    that enclose the child's start; and the DAG's node-second counters
    re-derive exactly from the attempt spans' recorded attributes.
    """
    run = None
    if telemetry is None:
        run, _, telemetry = _default_run(seed)
    failures: list[str] = []

    spans = telemetry.finished_spans()
    by_id = {s.span_id: s for s in spans}
    if not spans:
        failures.append("no finished spans recorded")
    for s in spans:
        if s.end is None or s.end < s.start:
            failures.append(f"span #{s.span_id} {s.name!r} has end < start")
        if s.parent_id is not None:
            parent = by_id.get(s.parent_id)
            if parent is None:
                failures.append(
                    f"span #{s.span_id} {s.name!r} has unknown parent "
                    f"#{s.parent_id}"
                )
                continue
            if s.parent_id >= s.span_id:
                failures.append(
                    f"span #{s.span_id} opened before its parent #{s.parent_id}"
                )
            if s.start < parent.start:
                failures.append(
                    f"span #{s.span_id} starts before parent #{s.parent_id}"
                )

    if run is not None:
        # counter/span accounting parity: the dag.* counters must re-derive
        # from the attempt spans' own attributes.
        attempts = [s for s in spans if s.category == "task"]
        busy = sum(s.attrs["wall"] * s.attrs["nodes"] for s in attempts)
        useful = sum(s.attrs["gained"] * s.attrs["nodes"] for s in attempts)
        counters = telemetry.metrics
        for name, derived in (
            ("dag.busy_node_seconds", busy),
            ("dag.useful_node_seconds", useful),
        ):
            counted = counters.counter(name).value
            if not np.isclose(counted, derived, rtol=1e-09):
                failures.append(
                    f"counter {name} = {counted!r} but spans re-sum to "
                    f"{derived!r}"
                )
        if not np.isclose(
            counters.counter("dag.busy_node_seconds").value,
            run.busy_node_seconds, rtol=1e-09,
        ):
            failures.append("dag.busy_node_seconds counter != WorkflowRun total")

    return InvariantResult(
        key="invariant.span_tree",
        description="span tree well-formed; node-second counters re-derive "
        "from attempt spans",
        passed=not failures,
        detail="; ".join(failures[:3])
        or f"{len(spans)} spans well-formed, counters re-derived exactly",
    )


def audit_scaling_shape(
    app_key: str = "kurth", n_nodes: tuple[int, ...] = (16, 64, 256, 1024, 4096)
) -> InvariantResult:
    """Monotone shape of an app's weak-scaling step-time curve.

    With per-node batch fixed, adding nodes can only grow the allreduce:
    the communication term and the total step time must be nondecreasing
    in node count, so measured efficiency is nonincreasing — the shape
    behind every Fig.-style scaling plot in Section IV-B.
    """
    from repro.apps.extreme_scale import get_app

    app = get_app(app_key)
    counts = [n for n in n_nodes if n >= app.baseline_nodes]
    result = app.sweep_nodes(counts)
    failures: list[str] = []
    comm = result.term("comm")
    total = result.total()
    if np.any(np.diff(comm) < 0):
        failures.append("comm term decreases with node count")
    if np.any(np.diff(total) < -1e-15):
        failures.append("total step time decreases with node count")
    if np.any(total < np.maximum(result.term("compute"), comm)):
        failures.append("total below its own critical-path lower bound")
    return InvariantResult(
        key=f"invariant.scaling_shape.{app_key}",
        description="weak-scaling comm and step time nondecreasing in nodes",
        passed=not failures,
        detail="; ".join(failures)
        or f"monotone over {len(counts)} node counts "
        f"({counts[0]} -> {counts[-1]})",
    )


def audit_crossover_shape(machine=None) -> InvariantResult:
    """Monotone shape of the Section VI-B allreduce crossover surface.

    Ring allreduce time must be nondecreasing in message size and in rank
    count; consequently the crossover node count (where comm overtakes a
    fixed compute budget) must be nonincreasing in message size, with NaN
    (never crosses) only ever appearing for *smaller* messages.

    Without ``machine`` this audits Summit's fabric exactly as the pinned
    conformance battery always has (key ``invariant.crossover_shape``);
    with a registry name or :class:`~repro.machine.spec.MachineSpec`, the
    same shape is asserted on that machine's injection link, under a
    machine-suffixed key.
    """
    from repro.cost.crossover import crossover_nodes, crossover_sweep
    from repro.network.collectives import ring_allreduce_time

    if machine is None:
        from repro.constants import SUMMIT_INJECTION_LATENCY
        from repro.network.link import SUMMIT_INJECTION

        key = "invariant.crossover_shape"
        link = SUMMIT_INJECTION
        latency = SUMMIT_INJECTION_LATENCY
        max_ranks = 4096
    else:
        from repro.machine.spec import resolve_machine

        spec = resolve_machine(machine)
        key = f"invariant.crossover_shape.{spec.key}"
        link = spec.interconnect
        latency = spec.injection_latency
        max_ranks = min(4096, spec.node_count)

    failures: list[str] = []

    sizes = [1e6, 1e7, 1e8, 1e9, 1e10]
    times = [ring_allreduce_time(64, s, link) for s in sizes]
    if np.any(np.diff(times) < 0):
        failures.append("ring allreduce time decreases with message size")
    ranks = [2, 4, 16, 64, 256, 1024]
    times = [ring_allreduce_time(p, 1e8, link) for p in ranks]
    if np.any(np.diff(times) < 0):
        failures.append("ring allreduce time decreases with rank count")

    result = crossover_sweep(
        message_bytes=np.array(sizes),
        n_ranks=np.arange(2, max_ranks + 1),
        bandwidth=link.bandwidth,
        latency=latency,
        compute_time=0.1,
    )
    nodes = crossover_nodes(result)
    finite = np.where(np.isnan(nodes), np.inf, nodes)
    if any(b > a for a, b in zip(finite, finite[1:]) if np.isfinite(b)):
        failures.append("crossover node count grows with message size")

    return InvariantResult(
        key=key,
        description="allreduce time monotone; crossover nodes nonincreasing "
        "in message size",
        passed=not failures,
        detail="; ".join(failures)
        or f"monotone over {len(sizes)} sizes x {len(ranks)} rank counts; "
        "crossover surface well-ordered",
    )


def audit_trace_determinism(scenario: str = "dag", seed: int = 0) -> InvariantResult:
    """Same-seed scenario runs must export byte-identical Chrome traces.

    This is the telemetry layer's determinism contract end to end: two
    fresh runs of the same instrumented scenario, serialized, must be equal
    as *strings* — no wall-clock, no iteration-order leaks, no id reuse.
    """
    from repro.telemetry.export import chrome_trace_json
    from repro.telemetry.scenarios import run_scenario

    first = chrome_trace_json(run_scenario(scenario, seed=seed).telemetry)
    second = chrome_trace_json(run_scenario(scenario, seed=seed).telemetry)
    passed = first == second
    return InvariantResult(
        key=f"invariant.trace_determinism.{scenario}",
        description="same-seed scenario exports byte-identical traces",
        passed=passed,
        detail=(
            f"{len(first)} bytes, identical across runs"
            if passed
            else f"exports differ ({len(first)} vs {len(second)} bytes)"
        ),
    )


def audit_streaming_identity(scenario: str = "dag", seed: int = 0) -> InvariantResult:
    """Out-of-core spill + stitch must reproduce the in-memory export exactly.

    The streaming contract of :mod:`repro.telemetry.stream`: run the same
    scenario once fully in memory and once spilling every record through a
    :class:`~repro.telemetry.stream.ShardedJsonlSink`, then stitch the
    shards back with :func:`~repro.telemetry.stream.load_shards`. The
    Chrome trace, the JSONL dump and the human summary must be equal as
    *strings* at every shard size — including pathological one-record
    shards — or the out-of-core path is not a faithful telemetry plane.
    """
    import tempfile
    from pathlib import Path

    from repro.telemetry.export import chrome_trace_json, summary, to_jsonl
    from repro.telemetry.scenarios import run_scenario
    from repro.telemetry.stream import ShardedJsonlSink, load_shards, shard_paths

    baseline = run_scenario(scenario, seed=seed).telemetry
    want = (chrome_trace_json(baseline), to_jsonl(baseline), summary(baseline))

    failures: list[str] = []
    shard_counts: list[int] = []
    with tempfile.TemporaryDirectory(prefix="repro-verify-stream-") as tmp:
        for shard_max_bytes in (1, 4096):
            directory = Path(tmp) / f"shards-{shard_max_bytes}"
            sink = ShardedJsonlSink(directory, shard_max_bytes=shard_max_bytes)
            streamed = run_scenario(scenario, seed=seed, sink=sink).telemetry
            streamed.close()
            shard_counts.append(len(shard_paths(directory)))
            stitched = load_shards(directory)
            got = (
                chrome_trace_json(stitched),
                to_jsonl(stitched),
                summary(stitched),
            )
            for label, w, g in zip(("chrome_trace", "jsonl", "summary"), want, got):
                if w != g:
                    failures.append(
                        f"{label} differs at shard_max_bytes={shard_max_bytes} "
                        f"({len(w)} vs {len(g)} bytes)"
                    )

    return InvariantResult(
        key=f"invariant.streaming_identity.{scenario}",
        description="sharded spill + stitch exports byte-identical to in-memory",
        passed=not failures,
        detail="; ".join(failures)
        or f"{len(want[0])}-byte trace identical from {shard_counts[0]} "
        f"one-record shards and {shard_counts[1]} 4 KiB shards",
    )


def run_invariants(seed: int = 0) -> list[InvariantResult]:
    """The default structural-audit battery, in deterministic order."""
    run, graph, telemetry = _default_run(seed)
    return [
        audit_workflow_conservation(run, graph),
        audit_span_tree(seed=seed),
        audit_scaling_shape("kurth"),
        audit_scaling_shape("blanchard", n_nodes=(96, 384, 1536, 4032)),
        audit_crossover_shape(),
        audit_trace_determinism("dag", seed=seed),
        audit_trace_determinism("scheduler", seed=seed),
        audit_streaming_identity("dag", seed=seed),
    ]
