"""Scaling studies: sweep a TrainingJob across node counts.

Weak scaling keeps the per-GPU batch fixed (the regime of every Section IV-B
result); strong scaling keeps the global batch fixed and shrinks the local
batch as nodes grow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.training.job import TrainingJob
from repro.training.parallelism import ParallelismPlan


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a scaling study."""

    n_nodes: int
    n_gpus: int
    step_time: float
    throughput: float  # samples/s
    sustained_flops: float
    efficiency: float  # vs. the study's baseline, weak-scaling definition
    comm_fraction: float
    io_fraction: float
    global_batch: int

    def row(self) -> str:
        """Fixed-width table row (see ScalingStudy.table)."""
        return (
            f"{self.n_nodes:>6} {self.n_gpus:>7} {self.step_time * 1e3:>10.2f} "
            f"{self.throughput:>12.0f} {self.sustained_flops / 1e15:>10.3f} "
            f"{self.efficiency * 100:>7.1f}% {self.comm_fraction * 100:>6.1f}% "
            f"{self.io_fraction * 100:>6.1f}% {self.global_batch:>10}"
        )


_HEADER = (
    f"{'nodes':>6} {'gpus':>7} {'step(ms)':>10} {'samples/s':>12} "
    f"{'PFLOP/s':>10} {'eff':>8} {'comm':>7} {'io':>7} {'batch':>10}"
)


class ScalingStudy:
    """Run a node-count sweep for a base job.

    >>> from repro.machine import summit
    >>> from repro.models import resnet50
    >>> from repro.training import ParallelismPlan, TrainingJob
    >>> base = TrainingJob(resnet50(), summit(), 1, ParallelismPlan(local_batch=128))
    >>> study = ScalingStudy(base)
    >>> points = study.weak_scaling([1, 4, 16])
    >>> points[0].efficiency
    1.0
    """

    def __init__(self, base: TrainingJob):
        self.base = base

    def weak_scaling(self, node_counts: list[int]) -> list[ScalingPoint]:
        """Fixed local batch; the global batch grows with the machine."""
        if not node_counts:
            raise ConfigurationError("node_counts must be non-empty")
        jobs = [self.base.with_nodes(n) for n in sorted(node_counts)]
        return self._evaluate(jobs)

    def strong_scaling(
        self, node_counts: list[int], global_batch: int | None = None
    ) -> list[ScalingPoint]:
        """Fixed global batch; the local batch shrinks as nodes grow.

        Node counts for which the global batch is not divisible into whole
        per-replica batches are rejected.
        """
        if not node_counts:
            raise ConfigurationError("node_counts must be non-empty")
        target = global_batch or self.base.global_batch()
        jobs = []
        for n in sorted(node_counts):
            gpus = n * self.base.system.node.gpu_count
            replicas = self.base.plan.replicas(gpus)
            denominator = replicas * self.base.plan.accumulation_steps
            if target % denominator:
                raise ConfigurationError(
                    f"global batch {target} not divisible across {replicas} "
                    f"replicas x {self.base.plan.accumulation_steps} accumulation"
                )
            local = target // denominator
            plan = replace(self.base.plan, local_batch=local)
            jobs.append(self.base.with_nodes(n).with_plan(plan))
        return self._evaluate(jobs)

    def _evaluate(self, jobs: list[TrainingJob]) -> list[ScalingPoint]:
        baseline = jobs[0]
        base_per_gpu = baseline.throughput() / baseline.n_gpus
        points = []
        for job in jobs:
            b = job.breakdown()
            throughput = b.samples / b.total
            per_gpu = throughput / job.n_gpus
            points.append(
                ScalingPoint(
                    n_nodes=job.n_nodes,
                    n_gpus=job.n_gpus,
                    step_time=b.total,
                    throughput=throughput,
                    sustained_flops=throughput * job.model.effective_flops_per_sample,
                    efficiency=per_gpu / base_per_gpu,
                    comm_fraction=b.comm_fraction,
                    io_fraction=b.io_fraction,
                    global_batch=job.global_batch(),
                )
            )
        return points

    @staticmethod
    def table(points: list[ScalingPoint], title: str = "") -> str:
        """Render points as the fixed-width table the benches print."""
        lines = []
        if title:
            lines.append(title)
        lines.append(_HEADER)
        lines.extend(p.row() for p in points)
        return "\n".join(lines)
