"""ModelSpec: the analytic contract between a network and the simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.gpu import GpuSpec, Precision


@dataclass(frozen=True)
class ModelSpec:
    """Analytic description of a neural network for performance modelling.

    Parameters
    ----------
    name:
        Model identifier.
    parameters:
        Trainable parameter count. The data-parallel allreduce message is
        ``parameters * gradient_bytes_per_param``.
    flops_per_sample:
        Training FLOPs (forward + backward) per sample.
    bytes_per_sample:
        Stored input size per training sample (drives the I/O model).
    sustained_fraction:
        Fraction of the accelerator's mixed-precision peak the single-GPU
        implementation sustains. Calibrated per model from Section IV-B
        (e.g. Laanait's FC-DenseNet sustains ~0.62 of V100 tensor peak,
        ResNet-50 ~0.09).
    default_local_batch:
        Per-GPU batch size typically used.
    gradient_bytes_per_param:
        4 for FP32 gradient buffers (the common Horovod configuration the
        paper's message sizes imply), 2 for FP16 compression.
    activation_bytes_per_sample:
        Peak activation memory per sample (for the memory-capacity check
        and the model-parallel decision).
    sparsity:
        Reserved: fraction of FLOPs elided by structured sparsity (paper
        Section IV-B closing remark). 0.0 = dense.
    """

    name: str
    parameters: float
    flops_per_sample: float
    bytes_per_sample: float
    sustained_fraction: float
    default_local_batch: int = 32
    gradient_bytes_per_param: float = 4.0
    activation_bytes_per_sample: float = 0.0
    sparsity: float = 0.0

    def __post_init__(self) -> None:
        if self.parameters <= 0:
            raise ConfigurationError(f"{self.name}: parameters must be positive")
        if self.flops_per_sample <= 0:
            raise ConfigurationError(f"{self.name}: flops_per_sample must be positive")
        if self.bytes_per_sample <= 0:
            raise ConfigurationError(f"{self.name}: bytes_per_sample must be positive")
        if not 0 < self.sustained_fraction <= 1:
            raise ConfigurationError(
                f"{self.name}: sustained_fraction must be in (0, 1]"
            )
        if self.default_local_batch < 1:
            raise ConfigurationError(f"{self.name}: local batch must be >= 1")
        if self.gradient_bytes_per_param not in (2.0, 4.0):
            raise ConfigurationError(
                f"{self.name}: gradient dtype must be fp16 (2) or fp32 (4) bytes"
            )
        if not 0 <= self.sparsity < 1:
            raise ConfigurationError(f"{self.name}: sparsity must be in [0, 1)")

    @property
    def gradient_bytes(self) -> float:
        """Allreduce message size per replica in bytes."""
        return self.parameters * self.gradient_bytes_per_param

    @property
    def effective_flops_per_sample(self) -> float:
        """FLOPs per sample after sparsity elision."""
        return self.flops_per_sample * (1.0 - self.sparsity)

    def sustained_flops(self, gpu: GpuSpec, precision: Precision = Precision.MIXED) -> float:
        """Sustained FLOP/s of this model's kernel mix on one ``gpu``."""
        return gpu.peak(precision) * self.sustained_fraction

    def samples_per_second(
        self, gpu: GpuSpec, precision: Precision = Precision.MIXED
    ) -> float:
        """Single-GPU training throughput in samples/s."""
        return self.sustained_flops(gpu, precision) / self.effective_flops_per_sample

    def step_compute_time(
        self,
        gpu: GpuSpec,
        local_batch: int | None = None,
        precision: Precision = Precision.MIXED,
    ) -> float:
        """Seconds of pure compute for one local step."""
        batch = local_batch if local_batch is not None else self.default_local_batch
        if batch < 1:
            raise ConfigurationError("local batch must be >= 1")
        return batch * self.effective_flops_per_sample / self.sustained_flops(gpu, precision)
