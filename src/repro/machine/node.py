"""Compute-node composition.

A :class:`NodeSpec` aggregates sockets, accelerators, memory tiers, the
node-local burst buffer and the network injection bandwidth. The derived
properties (peak FLOPs per precision, HBM capacity) are what the training
simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.cpu import CpuSpec
from repro.machine.gpu import GpuSpec, Precision


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node.

    Parameters
    ----------
    name:
        Node model, e.g. ``"IBM AC922"``.
    cpus / cpu_count:
        Socket spec and socket count.
    gpus / gpu_count:
        Accelerator spec and count; ``gpu_count == 0`` models CPU-only nodes.
    host_memory_bytes:
        DDR capacity.
    nvme_bytes:
        Node-local non-volatile (burst-buffer) capacity; 0 if absent.
    nvme_read_bandwidth / nvme_write_bandwidth:
        Node-local NVMe bandwidths in bytes/s. Summit's 1.6 TB drives read at
        ~6 GB/s, which is what makes the aggregate "over 27 TB/s" of
        Section VI-B.
    injection_bandwidth:
        NIC injection bandwidth in bytes/s (dual-rail EDR = 25 GB/s).
    """

    name: str
    cpus: CpuSpec
    cpu_count: int
    gpus: GpuSpec | None
    gpu_count: int
    host_memory_bytes: float
    nvme_bytes: float
    nvme_read_bandwidth: float
    nvme_write_bandwidth: float
    injection_bandwidth: float
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.cpu_count <= 0:
            raise ConfigurationError(f"{self.name}: need at least one CPU socket")
        if self.gpu_count < 0:
            raise ConfigurationError(f"{self.name}: negative gpu_count")
        if self.gpu_count > 0 and self.gpus is None:
            raise ConfigurationError(f"{self.name}: gpu_count > 0 but no GPU spec")
        if self.gpu_count == 0 and self.gpus is not None:
            raise ConfigurationError(f"{self.name}: GPU spec given but gpu_count is 0")
        if self.host_memory_bytes <= 0:
            raise ConfigurationError(f"{self.name}: host memory must be positive")
        if self.nvme_bytes < 0:
            raise ConfigurationError(f"{self.name}: negative NVMe capacity")
        if self.nvme_bytes > 0 and (
            self.nvme_read_bandwidth <= 0 or self.nvme_write_bandwidth <= 0
        ):
            raise ConfigurationError(
                f"{self.name}: NVMe present but bandwidth non-positive"
            )
        if self.injection_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: injection bandwidth must be positive")

    @property
    def has_gpus(self) -> bool:
        return self.gpu_count > 0

    @property
    def has_nvme(self) -> bool:
        return self.nvme_bytes > 0

    @property
    def usable_cores(self) -> int:
        """User-visible cores per node (42 on Summit: 2 x 21)."""
        return self.cpu_count * self.cpus.usable_cores

    @property
    def hbm_bytes(self) -> float:
        """Aggregate GPU high-bandwidth memory on the node."""
        if self.gpus is None:
            return 0.0
        return self.gpu_count * self.gpus.memory_bytes

    def peak_flops(self, precision: Precision = Precision.MIXED) -> float:
        """Peak node FLOP/s at ``precision``.

        GPU nodes are accounted by their accelerators alone (host FLOPs are
        negligible at these scales); CPU-only nodes use the socket peak.
        """
        if self.gpus is not None:
            return self.gpu_count * self.gpus.peak(precision)
        return self.cpu_count * self.cpus.peak_flops
