"""Survey analytics: recompute every figure and table from project records.

This is the real pipeline of Section III — aggregation by status, program,
year, ML method, science domain and AI motif — operating on whatever records
it is given (the calibrated synthetic portfolio, or any other corpus in the
same schema). Counts can be weighted by project-years (the paper's default)
or by allocation hours (the alternative basis Section II-C discusses).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from repro.errors import ConfigurationError
from repro.portfolio.project import Project
from repro.portfolio.taxonomy import (
    AdoptionStatus,
    Domain,
    MLMethod,
    Motif,
    Program,
)


class PortfolioAnalytics:
    """Aggregations over a list of :class:`Project` records."""

    def __init__(self, projects: list[Project]):
        if not projects:
            raise ConfigurationError("no projects to analyse")
        self.projects = list(projects)

    def _weight(self, project: Project, by_hours: bool) -> float:
        return project.allocation_hours if by_hours else 1.0

    def _total(self, projects: Iterable[Project], by_hours: bool) -> float:
        return sum(self._weight(p, by_hours) for p in projects)

    # -- Figure 1 ------------------------------------------------------------------

    def overall_usage(self, by_hours: bool = False) -> dict[AdoptionStatus, float]:
        """Fraction of projects (or hours) per adoption status."""
        total = self._total(self.projects, by_hours)
        out = {status: 0.0 for status in AdoptionStatus}
        for p in self.projects:
            out[p.status] += self._weight(p, by_hours)
        return {status: value / total for status, value in out.items()}

    # -- Figure 2 ------------------------------------------------------------------

    def usage_by_program_year(
        self,
    ) -> dict[tuple[Program, int], dict[AdoptionStatus, float]]:
        """Adoption-status fractions per (program, year) cohort."""
        groups: dict[tuple[Program, int], list[Project]] = defaultdict(list)
        for p in self.projects:
            groups[(p.program, p.year)].append(p)
        result = {}
        for key, members in sorted(groups.items(), key=lambda kv: (kv[0][0].value, kv[0][1])):
            counts = Counter(p.status for p in members)
            n = len(members)
            result[key] = {s: counts.get(s, 0) / n for s in AdoptionStatus}
        return result

    # -- Figure 3 ------------------------------------------------------------------

    def usage_by_method(self) -> dict[MLMethod, float]:
        """ML-method fractions among AI (active + inactive) projects."""
        ai = [p for p in self.projects if p.uses_ai]
        if not ai:
            raise ConfigurationError("no AI projects in the portfolio")
        counts = Counter(p.method for p in ai)
        return {m: counts.get(m, 0) / len(ai) for m in MLMethod}

    # -- Figure 4 ------------------------------------------------------------------

    def usage_by_domain(self) -> dict[Domain, dict[AdoptionStatus, int]]:
        """Project counts per domain per adoption status."""
        out: dict[Domain, dict[AdoptionStatus, int]] = {
            d: {s: 0 for s in AdoptionStatus} for d in Domain
        }
        for p in self.projects:
            out[p.domain][p.status] += 1
        return out

    def top_ai_domains(self, k: int = 3) -> list[Domain]:
        """Domains ranked by active AI usage (Figure 4's headline)."""
        table = self.usage_by_domain()
        ranked = sorted(
            Domain,
            key=lambda d: table[d][AdoptionStatus.ACTIVE],
            reverse=True,
        )
        return ranked[:k]

    # -- Figures 5 and 6 (INCITE + ALCC + ECP cohort) -------------------------------

    def _fig56_cohort(self, programs: tuple[Program, ...]) -> list[Project]:
        cohort = [
            p for p in self.projects if p.uses_ai and p.program in programs
        ]
        if not cohort:
            raise ConfigurationError("empty motif cohort")
        return cohort

    def usage_by_motif(
        self,
        programs: tuple[Program, ...] = (Program.INCITE, Program.ALCC, Program.ECP),
    ) -> dict[Motif, int]:
        """AI-motif counts over the cohort (Figure 5)."""
        cohort = self._fig56_cohort(programs)
        counts = Counter(p.motif for p in cohort)
        return {m: counts.get(m, 0) for m in Motif}

    def motif_by_domain(
        self,
        programs: tuple[Program, ...] = (Program.INCITE, Program.ALCC, Program.ECP),
    ) -> dict[Motif, dict[Domain, int]]:
        """The motif x domain count matrix (Figure 6)."""
        cohort = self._fig56_cohort(programs)
        out: dict[Motif, dict[Domain, int]] = {
            m: {d: 0 for d in Domain} for m in Motif
        }
        for p in cohort:
            assert p.motif is not None  # guaranteed by Project validation
            out[p.motif][p.domain] += 1
        return out

    def top_motifs(self, k: int = 5) -> list[Motif]:
        counts = self.usage_by_motif()
        return sorted(Motif, key=lambda m: counts[m], reverse=True)[:k]

    def motif_concentration(self, k: int = 5) -> float:
        """Fraction of cohort usage covered by the top ``k`` motifs
        (the paper's "over 3/4" claim for k=5)."""
        counts = self.usage_by_motif()
        total = sum(counts.values())
        top = sum(sorted(counts.values(), reverse=True)[:k])
        return top / total
