"""Alpha-beta link model.

Message transfer time is modelled as ``alpha + size / bandwidth`` — the
standard LogP-style first-order model. Summit's dual-rail EDR InfiniBand
gives 2 x 12.5 GB/s = 25 GB/s injection per node with ~1 microsecond
MPI-level latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link characterised by latency and bandwidth.

    Parameters
    ----------
    latency:
        One-way message latency in seconds (the "alpha" term).
    bandwidth:
        Sustained bandwidth in bytes/s (the inverse "beta" term).
    rails:
        Number of independent rails; bandwidth is *per rail* and aggregates
        linearly, latency does not improve with rails.
    """

    latency: float
    bandwidth: float
    rails: int = 1

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise ConfigurationError(f"non-positive bandwidth: {self.bandwidth}")
        if self.rails < 1:
            raise ConfigurationError(f"rails must be >= 1, got {self.rails}")

    @property
    def total_bandwidth(self) -> float:
        """Aggregate bandwidth across rails in bytes/s."""
        return self.bandwidth * self.rails

    def transfer_time(self, size_bytes: float) -> float:
        """Time to move ``size_bytes`` across the link (alpha-beta model)."""
        if size_bytes < 0:
            raise ConfigurationError(f"negative message size: {size_bytes}")
        return self.latency + size_bytes / self.total_bandwidth

    def effective_bandwidth(self, size_bytes: float) -> float:
        """Achieved bytes/s for a message of ``size_bytes`` (latency-degraded)."""
        if size_bytes <= 0:
            raise ConfigurationError(f"message size must be positive: {size_bytes}")
        return size_bytes / self.transfer_time(size_bytes)


#: One rail of EDR InfiniBand (100 Gb/s signalling -> 12.5 GB/s payload).
EDR_RAIL = LinkSpec(
    latency=constants.SUMMIT_INJECTION_LATENCY,
    bandwidth=constants.SUMMIT_EDR_RAIL_BANDWIDTH,
)

#: Summit's dual-rail EDR NIC: 25 GB/s injection per node.
SUMMIT_INJECTION = LinkSpec(
    latency=constants.SUMMIT_INJECTION_LATENCY,
    bandwidth=constants.SUMMIT_EDR_RAIL_BANDWIDTH,
    rails=constants.SUMMIT_INJECTION_RAILS,
)

#: NVLink 2.0 brick pair between GPUs inside a Summit node (per direction).
NVLINK2 = LinkSpec(
    latency=constants.SUMMIT_NVLINK_LATENCY,
    bandwidth=constants.SUMMIT_NVLINK_BANDWIDTH,
)
