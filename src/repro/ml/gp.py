"""Exact Gaussian-process regression with an RBF kernel.

Figure 3's "other" ML-method bucket includes Bayesian regression methods;
GPs are also the classic uncertainty-aware surrogate for small-data active
learning (an alternative to the bootstrap ensembles of
:mod:`repro.ml.surrogate`, with calibrated posterior variance instead of
ensemble spread).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float,
               variance: float) -> np.ndarray:
    """k(a, b) = variance * exp(-||a - b||^2 / (2 l^2)), vectorised."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
    return variance * np.exp(-0.5 * d2 / length_scale**2)


class GaussianProcess:
    """GP regression with fixed hyperparameters and jittered Cholesky solve.

    >>> import numpy as np
    >>> x = np.linspace(0, 1, 8).reshape(-1, 1)
    >>> y = np.sin(2 * np.pi * x).ravel()
    >>> gp = GaussianProcess(length_scale=0.2).fit(x, y)
    >>> mean, std = gp.predict(x)
    >>> bool(np.allclose(mean, y, atol=1e-3)), bool((std < 0.05).all())
    (True, True)
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        signal_variance: float = 1.0,
        noise: float = 1e-6,
    ):
        if length_scale <= 0 or signal_variance <= 0:
            raise ConfigurationError("kernel hyperparameters must be positive")
        if noise < 0:
            raise ConfigurationError("noise must be non-negative")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise = noise
        self._x: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError("x and y row counts differ")
        if x.shape[0] < 1:
            raise ConfigurationError("need at least one training point")
        self._y_mean = float(y.mean())
        k = rbf_kernel(x, x, self.length_scale, self.signal_variance)
        k[np.diag_indices_from(k)] += max(self.noise, 1e-10)
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y - self._y_mean)
        )
        self._x = x
        return self

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior (mean, std) at query points."""
        if self._x is None:
            raise ConfigurationError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        k_star = rbf_kernel(x, self._x, self.length_scale, self.signal_variance)
        mean = self._y_mean + k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        var = self.signal_variance - (v**2).sum(axis=0)
        return mean, np.sqrt(np.clip(var, 0.0, None))

    def log_marginal_likelihood(self, y: np.ndarray) -> float:
        """Log evidence of the training targets under the fitted kernel."""
        if self._chol is None or self._alpha is None:
            raise ConfigurationError("fit first")
        y = np.asarray(y, dtype=float).ravel() - self._y_mean
        n = y.shape[0]
        return float(
            -0.5 * y @ self._alpha
            - np.log(np.diag(self._chol)).sum()
            - 0.5 * n * np.log(2 * np.pi)
        )

    def acquisition(self, x: np.ndarray) -> np.ndarray:
        """Active-learning score: posterior std (maximum-variance design)."""
        _, std = self.predict(x)
        return std
