"""Autoencoders: plain and variational.

The biology and drug-design workflows (Sections V-B, V-C) use convolutional
variational autoencoders (CVAE) and anharmonic-conformational-analysis
autoencoders (ANCA-AE) to embed simulation conformations into a latent space
whose outliers drive steering. We implement dense (MLP-based) equivalents:
the latent-space mechanics — encode, sample, reconstruct, outlier score —
are identical, which is what the workflow logic exercises.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.mlp import MLP
from repro.optim.adam import Adam


class Autoencoder:
    """Deterministic autoencoder: encoder MLP -> latent -> decoder MLP."""

    def __init__(
        self,
        n_features: int,
        latent_dim: int,
        hidden: list[int] | None = None,
        seed: int | None = None,
    ):
        if latent_dim < 1 or latent_dim >= n_features:
            raise ConfigurationError("latent_dim must be in [1, n_features)")
        hidden = hidden if hidden is not None else [max(8, n_features // 2)]
        self.encoder = MLP([n_features, *hidden, latent_dim], seed=seed)
        self.decoder = MLP(
            [latent_dim, *reversed(hidden), n_features],
            seed=None if seed is None else seed + 1,
        )
        self.latent_dim = latent_dim

    def encode(self, x: np.ndarray) -> np.ndarray:
        return self.encoder.forward(x)

    def decode(self, z: np.ndarray) -> np.ndarray:
        return self.decoder.forward(z)

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(x))

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-sample squared reconstruction error — the outlier score the
        steering workflows threshold on."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        recon = self.reconstruct(x)
        return ((x - recon) ** 2).mean(axis=1)

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 100,
        lr: float = 1e-3,
        batch_size: int = 64,
        seed: int | None = None,
    ) -> list[float]:
        """Joint end-to-end training; returns per-epoch reconstruction loss."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        opt = Adam(lr=lr)
        rng = np.random.default_rng(seed)
        n = x.shape[0]
        history: list[float] = []
        params = self.encoder.parameters + self.decoder.parameters
        for _ in range(epochs):
            order = rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                xb = x[order[start : start + batch_size]]
                z = self.encoder.forward(xb)
                recon = self.decoder.forward(z)
                diff = recon - xb
                loss = float(np.mean(diff * diff))
                grad = 2.0 * diff / diff.size
                grad_z = self.decoder.backward(grad)
                self.encoder.backward(grad_z)
                grads = self.encoder.gradients + self.decoder.gradients
                opt.step(params, grads)
                total += loss
                batches += 1
            history.append(total / batches)
        return history


class VariationalAutoencoder(Autoencoder):
    """Dense VAE with a diagonal-Gaussian latent and the reparameterisation
    trick. The encoder outputs ``[mu, log_var]`` (2 x latent_dim)."""

    def __init__(
        self,
        n_features: int,
        latent_dim: int,
        hidden: list[int] | None = None,
        beta: float = 1.0,
        seed: int | None = None,
    ):
        if latent_dim < 1 or 2 * latent_dim >= n_features:
            raise ConfigurationError("need 2*latent_dim < n_features")
        if beta < 0:
            raise ConfigurationError("beta must be non-negative")
        hidden = hidden if hidden is not None else [max(8, n_features // 2)]
        self.encoder = MLP([n_features, *hidden, 2 * latent_dim], seed=seed)
        self.decoder = MLP(
            [latent_dim, *reversed(hidden), n_features],
            seed=None if seed is None else seed + 1,
        )
        self.latent_dim = latent_dim
        self.beta = beta

    def encode(self, x: np.ndarray) -> np.ndarray:
        """The latent mean (the deterministic embedding used downstream)."""
        stats = self.encoder.forward(x)
        return stats[:, : self.latent_dim]

    def encode_stats(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        stats = self.encoder.forward(x)
        mu = stats[:, : self.latent_dim]
        log_var = np.clip(stats[:, self.latent_dim :], -10.0, 10.0)
        return mu, log_var

    def sample_latent(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        mu, log_var = self.encode_stats(x)
        rng = rng or np.random.default_rng()
        eps = rng.standard_normal(mu.shape)
        return mu + np.exp(0.5 * log_var) * eps

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 100,
        lr: float = 1e-3,
        batch_size: int = 64,
        seed: int | None = None,
    ) -> list[float]:
        """ELBO training (reconstruction + beta * KL); returns loss history."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        opt = Adam(lr=lr)
        rng = np.random.default_rng(seed)
        n = x.shape[0]
        history: list[float] = []
        params = self.encoder.parameters + self.decoder.parameters
        L = self.latent_dim
        for _ in range(epochs):
            order = rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                xb = x[order[start : start + batch_size]]
                stats = self.encoder.forward(xb)
                mu = stats[:, :L]
                log_var = np.clip(stats[:, L:], -10.0, 10.0)
                eps = rng.standard_normal(mu.shape)
                sigma = np.exp(0.5 * log_var)
                z = mu + sigma * eps
                recon = self.decoder.forward(z)

                diff = recon - xb
                recon_loss = float(np.mean(diff * diff))
                kl = 0.5 * float(
                    np.mean(np.sum(mu**2 + np.exp(log_var) - 1.0 - log_var, axis=1))
                )
                loss = recon_loss + self.beta * kl

                grad_recon = 2.0 * diff / diff.size
                grad_z = self.decoder.backward(grad_recon)
                b = xb.shape[0]
                grad_mu = grad_z + self.beta * mu / b
                grad_log_var = (
                    grad_z * eps * 0.5 * sigma
                    + self.beta * 0.5 * (np.exp(log_var) - 1.0) / b
                )
                grad_stats = np.concatenate([grad_mu, grad_log_var], axis=1)
                self.encoder.backward(grad_stats)
                grads = self.encoder.gradients + self.decoder.gradients
                opt.step(params, grads)
                total += loss
                batches += 1
            history.append(total / batches)
        return history
