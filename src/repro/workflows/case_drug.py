"""Section V-C: the drug-discovery lead-optimisation loop (IMPECCABLE-style).

Pipeline, following Saadi et al. / Glaser et al. / Blanchard et al.:

1. cheap docking scores over the whole library (free tier);
2. a random-forest surrogate learns the *expensive* (MD-refined) affinity
   from a growing training set — using both the compound's fragment
   features and its docking score (multi-fidelity: the surrogate learns to
   *correct* the cheap tier's systematic bias rather than start from
   scratch);
3. each iteration, the surrogate (mean + uncertainty) ranks the library,
   the top candidates are escalated to MD refinement, and the surrogate is
   retrained on the accumulated MD data;
4. optionally, a genetic algorithm searches compound space against the
   surrogate (the Blanchard et al. pattern).

Figure of merit: enrichment of the true top binders among the MD-evaluated
compounds, against (a) random selection and (b) docking-rank selection at
equal MD budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.forest import RandomForestRegressor
from repro.ml.ga import GaResult, GeneticAlgorithm
from repro.science.docking import CompoundLibrary, DockingOracle


@dataclass
class DrugDiscoveryResult:
    """Outcome of a lead-discovery campaign."""

    evaluated_genomes: np.ndarray  # compounds sent to MD, in order
    md_calls: int
    enrichment: float  # fraction of true top-1% binders found
    enrichment_random: float
    enrichment_docking: float
    best_true_affinity: float
    iteration_best: list[float]  # best true affinity found per iteration

    @property
    def enrichment_gain(self) -> float:
        """Improvement factor over the docking-rank baseline."""
        if self.enrichment_docking == 0:
            return float("inf") if self.enrichment > 0 else 1.0
        return self.enrichment / self.enrichment_docking


class DrugDiscoveryWorkflow:
    """Surrogate-in-the-loop virtual screening over a compound library."""

    def __init__(
        self,
        library: CompoundLibrary,
        oracle: DockingOracle,
        n_trees: int = 64,
        max_depth: int = 12,
        exploration_weight: float = 0.5,
        seed: int | None = 0,
    ):
        if len(library) < 32:
            raise ConfigurationError("library too small to screen")
        if exploration_weight < 0:
            raise ConfigurationError("exploration_weight must be non-negative")
        self.library = library
        self.oracle = oracle
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.exploration_weight = exploration_weight
        self.seed = seed

    def run(
        self,
        initial: int = 48,
        per_iteration: int = 24,
        n_iterations: int = 5,
        top_fraction: float = 0.01,
    ) -> DrugDiscoveryResult:
        if initial < 8 or per_iteration < 1 or n_iterations < 1:
            raise ConfigurationError("bad campaign sizes")
        budget = initial + per_iteration * n_iterations
        if budget > len(self.library):
            raise ConfigurationError("MD budget exceeds library size")

        rng = np.random.default_rng(self.seed)
        docking = self.oracle.docking_score(self.library.genomes)
        # multi-fidelity descriptor: fragment one-hots + the docking score
        features = np.column_stack([self.library.features(), docking])

        # seed the training set with the docking tier's best guesses
        order = np.argsort(docking)[::-1]
        evaluated = list(order[:initial])
        md_scores = list(self.oracle.md_refine(self.library.genomes[evaluated]))
        iteration_best = [float(np.max(md_scores))]

        remaining = np.setdiff1d(np.arange(len(self.library)), evaluated)
        for _ in range(n_iterations):
            surrogate = RandomForestRegressor(
                n_trees=self.n_trees, max_depth=self.max_depth, seed=self.seed
            ).fit(features[evaluated], np.array(md_scores))
            mean, std = surrogate.predict_with_uncertainty(features[remaining])
            # UCB acquisition: exploit predicted affinity, explore uncertainty
            score = mean + self.exploration_weight * std
            pick_local = np.argsort(score)[-per_iteration:]
            pick = remaining[pick_local]
            new_scores = self.oracle.md_refine(self.library.genomes[pick])
            evaluated.extend(int(i) for i in pick)
            md_scores.extend(float(s) for s in new_scores)
            remaining = np.setdiff1d(remaining, pick)
            iteration_best.append(float(np.max(md_scores)))

        evaluated_genomes = self.library.genomes[evaluated]
        truth = self.oracle.true_affinity(self.library.genomes)

        # equal-budget baselines
        random_pick = rng.choice(len(self.library), size=len(evaluated), replace=False)
        docking_pick = order[: len(evaluated)]

        def enrich(indices: np.ndarray) -> float:
            k = max(1, int(len(self.library) * top_fraction))
            top = set(np.argsort(truth)[-k:].tolist())
            return len(top.intersection(int(i) for i in indices)) / k

        return DrugDiscoveryResult(
            evaluated_genomes=evaluated_genomes,
            md_calls=len(evaluated),
            enrichment=enrich(np.array(evaluated)),
            enrichment_random=enrich(random_pick),
            enrichment_docking=enrich(docking_pick),
            best_true_affinity=float(truth[evaluated].max()),
            iteration_best=iteration_best,
        )

    def ga_search(
        self,
        training_fraction: float = 0.2,
        generations: int = 40,
        population: int = 64,
    ) -> tuple[GaResult, float]:
        """Blanchard-style generative search: train the surrogate on a
        sample of MD data, then let a GA optimise compounds against it.

        Returns (GA result, true affinity of the GA's best compound).
        """
        if not 0 < training_fraction <= 1:
            raise ConfigurationError("training_fraction must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        n_train = max(16, int(len(self.library) * training_fraction))
        idx = rng.choice(len(self.library), size=n_train, replace=False)
        genomes = self.library.genomes[idx]
        x = np.column_stack(
            [self.library.features(genomes), self.oracle.docking_score(genomes)]
        )
        y = self.oracle.md_refine(genomes)
        surrogate = RandomForestRegressor(
            n_trees=self.n_trees, max_depth=self.max_depth, seed=self.seed
        ).fit(x, y)

        def fitness(genomes: np.ndarray) -> np.ndarray:
            feats = np.column_stack(
                [self.library.features(genomes), self.oracle.docking_score(genomes)]
            )
            return surrogate.predict(feats)

        ga = GeneticAlgorithm(
            genome_length=self.oracle.genome_length,
            n_alleles=self.oracle.n_fragments,
            population=population,
            seed=self.seed,
        )
        result = ga.run(fitness, generations=generations)
        true_best = float(self.oracle.true_affinity(result.best_genome[None, :])[0])
        return result, true_best
