"""Section IV-B.3 — Laanait et al., exascale microscopy inverse problem.

Paper: "global batch size 27,600 ... scalability to 4600 nodes and peak
2.15 mixed precision ExaFlops performance."
"""

import pytest
from _record import record
from conftest import report

from repro.apps.extreme_scale import get_app
from repro.training.scaling import ScalingStudy


def test_scaling_laanait(benchmark):
    app = get_app("laanait")

    def run():
        study = ScalingStudy(app.job(1))
        return study.weak_scaling([1, 16, 128, 1024, 4600])

    points = benchmark(run)
    peak = points[-1]

    assert peak.sustained_flops == pytest.approx(2.15e18, rel=0.03)
    assert peak.global_batch == 27600
    # Laanait's sustained-per-GPU is the highest of the five applications
    assert peak.sustained_flops / (4600 * 6) > 70e12

    record(
        "scaling_laanait",
        {"peak_flops": peak.sustained_flops, "global_batch": peak.global_batch,
         "nodes": peak.n_nodes},
    )

    print()
    print(ScalingStudy.table(points, "Laanait et al. — FC-DenseNet weak scaling"))
    report(
        "Section IV-B.3 paper-vs-measured",
        [
            ("peak sustained", "2.15 EFLOP/s", f"{peak.sustained_flops / 1e18:.3f} EFLOP/s"),
            ("global batch", 27600, peak.global_batch),
            ("nodes", 4600, peak.n_nodes),
        ],
        header=("metric", "paper", "measured"),
    )
