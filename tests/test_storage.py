"""Tests for repro.storage: filesystem, datasets, burst buffers, I/O model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import CapacityError, ConfigurationError
from repro.storage.burst_buffer import SUMMIT_NVME, BurstBuffer, CachingLayer, StagingPlan
from repro.storage.dataset import IMAGENET, Dataset, ShardingPlan
from repro.storage.filesystem import SUMMIT_GPFS, SharedFileSystem
from repro.storage.io_model import io_feasibility, read_requirement


class TestSharedFileSystem:
    def test_single_client_capped_by_client_limit(self):
        assert SUMMIT_GPFS.read_bandwidth(1) == SUMMIT_GPFS.per_client_read_bandwidth

    def test_many_clients_share_aggregate(self):
        bw = SUMMIT_GPFS.read_bandwidth(4608)
        assert bw == pytest.approx(2.5e12 / 4608)

    def test_random_access_derated(self):
        seq = SUMMIT_GPFS.read_bandwidth(4608, random_access=False)
        rnd = SUMMIT_GPFS.read_bandwidth(4608, random_access=True)
        assert rnd == pytest.approx(seq * SUMMIT_GPFS.random_read_derate)

    def test_read_time_scales_with_size(self):
        t1 = SUMMIT_GPFS.read_time(1e9, n_clients=100)
        t2 = SUMMIT_GPFS.read_time(2e9, n_clients=100)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_read_free(self):
        assert SUMMIT_GPFS.read_time(0) == 0.0

    def test_invalid_client_count(self):
        with pytest.raises(ConfigurationError):
            SUMMIT_GPFS.read_bandwidth(0)

    def test_bad_derate_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedFileSystem("x", 1e12, 1e12, 1e9, 1e15, random_read_derate=0.0)


class TestDataset:
    def test_imagenet_total_size(self):
        assert IMAGENET.total_bytes == pytest.approx(1_281_167 * 500e3)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Dataset("x", 0, 1e3)


class TestShardingPlan:
    def test_fits_on_summit_nvme(self):
        plan = ShardingPlan(IMAGENET, n_nodes=64, nvme_bytes_per_node=1.6e12)
        assert plan.fits
        plan.require_fits()

    def test_replicated_shard_grows(self):
        base = ShardingPlan(IMAGENET, 64, 1.6e12)
        reps = ShardingPlan(IMAGENET, 64, 1.6e12, replication=4)
        assert reps.bytes_per_node == pytest.approx(4 * base.bytes_per_node)

    def test_oversized_dataset_detected(self):
        big = Dataset("sim-output", n_samples=10_000_000, bytes_per_sample=2e6)
        plan = ShardingPlan(big, n_nodes=4, nvme_bytes_per_node=1.6e12)
        assert not plan.fits
        with pytest.raises(CapacityError):
            plan.require_fits()

    def test_full_replication_sees_everything(self):
        plan = ShardingPlan(IMAGENET, n_nodes=2, nvme_bytes_per_node=1e15,
                            replication=2)
        assert plan.shuffle_fraction() == 1.0

    def test_sharded_shuffle_window_shrinks(self):
        plan = ShardingPlan(IMAGENET, n_nodes=128, nvme_bytes_per_node=1.6e12)
        assert plan.shuffle_fraction() == pytest.approx(1 / 128, rel=0.01)

    def test_replication_cannot_exceed_nodes(self):
        with pytest.raises(ConfigurationError):
            ShardingPlan(IMAGENET, n_nodes=2, nvme_bytes_per_node=1e15,
                         replication=3)


class TestBurstBuffer:
    def test_aggregate_scales_linearly(self):
        assert SUMMIT_NVME.aggregate_read_bandwidth(4608) == pytest.approx(
            4608 * 6e9
        )

    def test_summit_aggregate_over_27_tbs(self):
        assert SUMMIT_NVME.aggregate_read_bandwidth(4608) > 27e12

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            BurstBuffer(capacity_bytes=0, read_bandwidth=1e9, write_bandwidth=1e9)


class TestStagingPlan:
    @pytest.fixture
    def staging(self):
        plan = ShardingPlan(IMAGENET, n_nodes=256, nvme_bytes_per_node=1.6e12)
        return StagingPlan(plan, SUMMIT_GPFS, SUMMIT_NVME)

    def test_staging_time_positive(self, staging):
        assert staging.staging_time() > 0

    def test_staging_bounded_by_nvme_write(self, staging):
        per_node = staging.plan.bytes_per_node
        assert staging.staging_time() >= per_node / SUMMIT_NVME.write_bandwidth

    def test_epoch_read_faster_than_staging(self, staging):
        assert staging.epoch_read_time() < staging.staging_time()

    def test_reshuffle_costs_roundtrip(self, staging):
        t = staging.reshuffle_time(1.0)
        moved = IMAGENET.total_bytes
        expected = moved / 2.5e12 + moved / 2.5e12
        assert t == pytest.approx(expected)

    def test_partial_reshuffle_cheaper(self, staging):
        assert staging.reshuffle_time(0.1) == pytest.approx(
            staging.reshuffle_time(1.0) * 0.1
        )

    def test_zero_reshuffle_free(self, staging):
        assert staging.reshuffle_time(0.0) == 0.0

    def test_bad_fraction(self, staging):
        with pytest.raises(ConfigurationError):
            staging.reshuffle_time(1.5)


class TestCachingLayer:
    def test_first_epoch_slow_later_fast(self):
        cache = CachingLayer(SUMMIT_GPFS, SUMMIT_NVME)
        first = cache.epoch_read_time(IMAGENET, n_nodes=1024, epoch=0)
        later = cache.epoch_read_time(IMAGENET, n_nodes=1024, epoch=3)
        assert later < first

    def test_warm_epoch_reads_at_nvme_speed(self):
        cache = CachingLayer(SUMMIT_GPFS, SUMMIT_NVME)
        per_node = IMAGENET.total_bytes / 1024
        assert cache.epoch_read_time(IMAGENET, 1024, 1) == pytest.approx(
            per_node / SUMMIT_NVME.read_bandwidth
        )

    def test_negative_epoch_rejected(self):
        cache = CachingLayer(SUMMIT_GPFS, SUMMIT_NVME)
        with pytest.raises(ConfigurationError):
            cache.epoch_read_time(IMAGENET, 8, -1)


class TestIoModel:
    """Section VI-B's read-requirement arithmetic."""

    def test_resnet50_needs_about_20_tbs(self):
        # 1445 samples/s/GPU x 500 kB x 27648 GPUs ~ 20 TB/s
        req = read_requirement(1445, 500e3, 27648)
        assert req.required_bandwidth == pytest.approx(20e12, rel=0.01)

    def test_summary_mentions_devices(self):
        req = read_requirement(1000, 1e6, 64)
        assert "64 devices" in req.summary()

    def test_gpfs_infeasible_nvme_feasible_at_full_summit(self):
        req = read_requirement(1445, 500e3, 27648)
        feas = io_feasibility(req, SUMMIT_GPFS, SUMMIT_NVME, 4608,
                              random_access=False)
        assert not feas.shared_fs_feasible
        assert feas.nvme_feasible

    def test_gpfs_feasible_at_small_scale(self):
        req = read_requirement(1445, 500e3, 6 * 64)
        feas = io_feasibility(req, SUMMIT_GPFS, SUMMIT_NVME, 64,
                              random_access=False)
        assert feas.shared_fs_feasible

    def test_io_bound_throughput_fraction(self):
        req = read_requirement(1445, 500e3, 27648)
        feas = io_feasibility(req, SUMMIT_GPFS, SUMMIT_NVME, 4608,
                              random_access=False)
        assert feas.io_bound_throughput_fraction(use_nvme=True) == 1.0
        assert feas.io_bound_throughput_fraction(use_nvme=False) == pytest.approx(
            2.5 / 20, rel=0.02
        )

    @given(st.integers(min_value=1, max_value=100_000))
    def test_requirement_linear_in_devices(self, n):
        one = read_requirement(100, 1e6, 1).required_bandwidth
        many = read_requirement(100, 1e6, n).required_bandwidth
        assert many == pytest.approx(one * n)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            read_requirement(0, 1e6, 1)
        with pytest.raises(ConfigurationError):
            read_requirement(100, 0, 1)
        with pytest.raises(ConfigurationError):
            read_requirement(100, 1e6, 0)
