"""Property tests for the differential runners: random inputs, same parity.

The hand-picked grids in :mod:`repro.verify.differential` prove the
equivalent code paths agree *somewhere*; these Hypothesis suites prove
they agree on arbitrary grids — random axis lengths, magnitudes spanning
ten orders, and random DAG seeds — under the shared settings profiles.
"""

from hypothesis import given
from hypothesis import strategies as st
from .hypothesis_settings import (
    QUICK_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
)

from repro.verify.differential import (
    checkpoint_replay_parity,
    sweep_bit_parity,
    telemetry_sweep_parity,
    workflow_telemetry_parity,
)

#: Grid axes with magnitudes from single digits to 1e9 — wide enough to
#: surface broadcasting or accumulation-order divergence if it existed.
_axis = st.lists(
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    min_size=1, max_size=6, unique=True,
)


@STANDARD_SETTINGS
@given(batches=_axis, min_samples=st.floats(1e3, 1e12),
       critical_batch=st.floats(1.0, 1e7))
def test_sweep_paths_bit_agree_on_random_grids(
    batches, min_samples, critical_batch
):
    from repro.cost.models import ConvergenceCostModel

    result = sweep_bit_parity(
        ConvergenceCostModel(), {"batch": batches},
        min_samples=min_samples, critical_batch=critical_batch,
    )
    assert result.passed, result.message()


@QUICK_SETTINGS
@given(
    sizes=st.lists(st.floats(1e3, 1e11), min_size=1, max_size=4, unique=True),
    ranks=st.lists(st.integers(2, 4096), min_size=1, max_size=4, unique=True),
    compute=st.floats(1e-4, 10.0),
)
def test_crossover_sweep_paths_bit_agree(sizes, ranks, compute):
    from repro.constants import SUMMIT_INJECTION_LATENCY
    from repro.cost.crossover import DataParallelCrossoverModel
    from repro.network.link import SUMMIT_INJECTION

    grid = {"message_bytes": sizes, "n_ranks": ranks}
    fixed = {
        "latency": SUMMIT_INJECTION_LATENCY,
        "bandwidth": SUMMIT_INJECTION.bandwidth,
        "compute_time": compute,
    }
    model = DataParallelCrossoverModel()
    assert sweep_bit_parity(model, grid, **fixed).passed
    assert telemetry_sweep_parity(model, grid, **fixed).passed


@QUICK_SETTINGS
@given(nodes=st.lists(st.integers(1, 4608), min_size=2, max_size=5,
                      unique=True).map(sorted))
def test_app_telemetry_sweep_parity_on_random_node_grids(nodes):
    from repro.apps.extreme_scale import get_app

    result = telemetry_sweep_parity(
        get_app("kurth").cost_model(), {"n_nodes": nodes}
    )
    assert result.passed, result.message()


@SLOW_SETTINGS
@given(seed=st.integers(0, 2**31 - 1))
def test_dag_telemetry_parity_for_any_seed(seed):
    result = workflow_telemetry_parity(seed=seed)
    assert result.passed, result.message()


@SLOW_SETTINGS
@given(seed=st.integers(0, 2**31 - 1))
def test_checkpoint_replay_parity_for_any_seed(seed):
    result = checkpoint_replay_parity(seed=seed)
    assert result.passed, result.message()
