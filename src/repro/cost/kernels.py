"""Vectorizable cost kernels — every analytic formula, written exactly once.

Each kernel accepts plain Python numbers *or* NumPy arrays (broadcast
together) and returns the same kind: scalars in, Python floats out; arrays
in, arrays out. The scalar path runs pure Python arithmetic, so rewiring the
seed call sites (``network.collectives``, ``training.step_time``,
``storage.io_model``, ``storage.checkpoint``, ...) onto these kernels keeps
their results **bit-identical** to the original formulas, while the array
path evaluates thousands of configurations in one NumPy pass.

Bit-parity between the two paths is a design requirement (the Hypothesis
suite in ``tests/test_cost_properties.py`` asserts element-wise equality),
which dictates two non-obvious choices:

- ``_ln`` routes array inputs through ``math.log`` on the unique values
  rather than ``np.log``: NumPy's SIMD log can differ from libm in the last
  ulp, and sweep axes have few unique values so the cost is negligible.
- ``_ceil_log2`` uses exact integer arithmetic (``bit_length`` /
  ``np.frexp``) instead of ``ceil(log2(p))`` floating-point round-trips.

>>> ring_allreduce_time(4, 100e6, 1e-6, 25e9)   # doctest: +ELLIPSIS
0.006006...
>>> import numpy as np
>>> t = ring_allreduce_time(np.array([1, 4]), 100e6, 1e-6, 25e9)
>>> float(t[0]), float(t[1]) == ring_allreduce_time(4, 100e6, 1e-6, 25e9)
(0.0, True)
"""

from __future__ import annotations

import math
from typing import Any, Union

import numpy as np

from repro.errors import ConfigurationError

Number = Union[float, int, np.ndarray]

#: Allreduce algorithm keys accepted by :func:`allreduce_time`.
ALLREDUCE_ALGORITHMS = ("ring", "recursive_doubling", "binomial_tree")


# -- scalar/array dispatch helpers ---------------------------------------------


def _is_array(*xs: Any) -> bool:
    return any(isinstance(x, np.ndarray) for x in xs)


def _maximum(a: Number, b: Number) -> Number:
    if _is_array(a, b):
        return np.maximum(a, b)
    return a if a >= b else b


def _minimum(a: Number, b: Number) -> Number:
    if _is_array(a, b):
        return np.minimum(a, b)
    return a if a <= b else b


def _sqrt(x: Number) -> Number:
    # Both are correctly rounded per IEEE-754, so the paths agree bitwise.
    return np.sqrt(x) if _is_array(x) else math.sqrt(x)


def _ln(x: Number) -> Number:
    """Natural log with exact scalar/array parity (see module docstring)."""
    if _is_array(x):
        flat = np.asarray(x, dtype=float).ravel()
        uniq, inverse = np.unique(flat, return_inverse=True)
        logs = np.array([math.log(v) for v in uniq], dtype=float)
        return logs[inverse].reshape(np.shape(x))
    return math.log(x)


def _ceil_log2(p: Number) -> Number:
    """``ceil(log2(p))`` for integer-valued ``p >= 1``, computed exactly."""
    if _is_array(p):
        mantissa, exponent = np.frexp(np.asarray(p, dtype=float))
        return exponent - (mantissa == 0.5)
    return (int(p) - 1).bit_length()


def _one_if_not_pow2(p: Number) -> Number:
    if _is_array(p):
        mantissa, _ = np.frexp(np.asarray(p, dtype=float))
        return np.where(mantissa == 0.5, 0, 1)
    return 0 if int(p) & (int(p) - 1) == 0 else 1


def check_participants(p: Number, size_bytes: Number) -> None:
    """Shared validation for the collective kernels."""
    if np.min(p) < 1:
        raise ConfigurationError(f"need at least one participant, got {p}")
    if np.min(size_bytes) < 0:
        raise ConfigurationError(f"negative message size: {size_bytes}")


# -- collectives (alpha-beta models, Section VI-B) ------------------------------


def ring_allreduce_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Ring allreduce: ``2 (p-1) alpha + 2 (p-1)/p * M / B``.

    Exactly ``0.0`` at ``p == 1`` (both factors vanish), so no guard is
    needed for degenerate rings.
    """
    return 2 * (p - 1) * latency + 2 * (p - 1) / p * size_bytes / bandwidth


def recursive_doubling_allreduce_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Recursive doubling: ``ceil(log2 p)`` rounds (+1 fold-in round for
    non-power-of-two ``p``), full message each round."""
    rounds = _ceil_log2(p) + _one_if_not_pow2(p)
    return rounds * (latency + size_bytes / bandwidth)


def binomial_tree_allreduce_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Binomial reduce to a root followed by binomial broadcast."""
    return 2 * _ceil_log2(p) * (latency + size_bytes / bandwidth)


def best_allreduce_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Minimum over the three algorithms — tuned NCCL/MPI behaviour."""
    return _minimum(
        _minimum(
            ring_allreduce_time(p, size_bytes, latency, bandwidth),
            recursive_doubling_allreduce_time(p, size_bytes, latency, bandwidth),
        ),
        binomial_tree_allreduce_time(p, size_bytes, latency, bandwidth),
    )


def allreduce_time(
    p: Number,
    size_bytes: Number,
    latency: Number,
    bandwidth: Number,
    algorithm: str | None = "ring",
) -> Number:
    """Allreduce cost under ``algorithm``; ``None`` (or ``"best"``) picks the
    fastest per configuration.

    >>> allreduce_time(8, 1e6, 0.0, 25e9, "ring") < allreduce_time(
    ...     8, 1e6, 0.0, 25e9, "binomial_tree")
    True
    """
    if algorithm is None or algorithm == "best":
        return best_allreduce_time(p, size_bytes, latency, bandwidth)
    if algorithm == "ring":
        return ring_allreduce_time(p, size_bytes, latency, bandwidth)
    if algorithm == "recursive_doubling":
        return recursive_doubling_allreduce_time(p, size_bytes, latency, bandwidth)
    if algorithm == "binomial_tree":
        return binomial_tree_allreduce_time(p, size_bytes, latency, bandwidth)
    raise ConfigurationError(
        f"unknown allreduce algorithm {algorithm!r}; "
        f"known: {ALLREDUCE_ALGORITHMS} or None"
    )


def reduce_scatter_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Ring reduce-scatter: ``(p-1) alpha + (p-1)/p * M / B``."""
    return (p - 1) * latency + (p - 1) / p * size_bytes / bandwidth


def allgather_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Ring allgather of a ``size_bytes`` total result."""
    return (p - 1) * latency + (p - 1) / p * size_bytes / bandwidth


def broadcast_time(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Scatter + allgather broadcast (van de Geijn)."""
    scatter = _ceil_log2(p) * latency + (p - 1) / p * size_bytes / bandwidth
    return scatter + allgather_time(p, size_bytes, latency, bandwidth)


def paper_allreduce_estimate(size_bytes: Number, bandwidth: Number) -> Number:
    """The paper's bandwidth-only estimate: message over half the injection
    bandwidth (Section VI-B's 8 ms / 110 ms numbers).

    >>> paper_allreduce_estimate(1.4e9, 25e9)
    0.112
    """
    return size_bytes / (bandwidth / 2.0)


def algorithmic_bandwidth(
    p: Number, size_bytes: Number, latency: Number, bandwidth: Number
) -> Number:
    """Achieved allreduce bytes/s; tends to ``bandwidth / 2`` as p, M grow."""
    t = ring_allreduce_time(p, size_bytes, latency, bandwidth)
    if _is_array(t):
        return np.where(t == 0.0, math.inf, size_bytes / np.where(t == 0.0, 1.0, t))
    if t == 0.0:
        return math.inf
    return size_bytes / t


def transfer_time(size_bytes: Number, latency: Number, bandwidth: Number) -> Number:
    """Point-to-point alpha-beta transfer: ``alpha + M / B``."""
    return latency + size_bytes / bandwidth


# -- training step terms (Section IV-B decomposition) ---------------------------


def step_compute_time(
    local_batch: Number, flops_per_sample: Number, sustained_flops: Number
) -> Number:
    """Seconds of pure compute for one local micro-step."""
    return local_batch * flops_per_sample / sustained_flops


def exposed_time(total: Number, overlap_fraction: Number, hideable: Number) -> Number:
    """What survives compute overlap: ``max(0, total - overlap * hideable)``."""
    return _maximum(0.0, total - overlap_fraction * hideable)


def straggler_penalty(compute: Number, jitter_cv: Number, n_ranks: Number) -> Number:
    """Synchronous-SGD straggler term: ``compute * cv * sqrt(2 ln n)``.

    Exactly ``0.0`` when ``cv == 0`` or ``n_ranks == 1`` (``ln 1 == 0``),
    matching the guarded scalar implementation it replaces.
    """
    return compute * jitter_cv * _sqrt(2.0 * _ln(n_ranks))


# -- storage (Section VI-B I/O analysis) ----------------------------------------


def shared_pool_bandwidth(
    aggregate: Number, per_client_cap: Number, n_clients: Number
) -> Number:
    """Per-client bytes/s from a shared pool: ``min(cap, aggregate / n)``."""
    return _minimum(per_client_cap, aggregate / n_clients)


def input_read_time(
    samples_per_step: Number, bytes_per_sample: Number, rate: Number
) -> Number:
    """Input-pipeline seconds per step at ``rate`` bytes/s (inf rate -> 0)."""
    return samples_per_step * bytes_per_sample / rate


def per_device_read_bandwidth(
    samples_per_second_per_device: Number, bytes_per_sample: Number
) -> Number:
    """Bytes/s one accelerator consumes at full training rate."""
    return samples_per_second_per_device * bytes_per_sample


def required_read_bandwidth(
    samples_per_second_per_device: Number, bytes_per_sample: Number, n_devices: Number
) -> Number:
    """Aggregate read bytes/s for ideal data-parallel scaling — the paper's
    ~20 TB/s full-Summit ResNet-50 number.

    >>> required_read_bandwidth(5000, 150e3, 6) == 5000 * 150e3 * 6
    True
    """
    return (
        per_device_read_bandwidth(samples_per_second_per_device, bytes_per_sample)
        * n_devices
    )


def bandwidth_margin(available: Number, required: Number) -> Number:
    """Headroom ratio: > 1 means the tier sustains the requirement."""
    return available / required


# -- checkpointing (Young/Daly) --------------------------------------------------


def system_mtbf(node_mtbf_seconds: Number, n_nodes: Number) -> Number:
    """Job-wide MTBF: failures compose across nodes."""
    return node_mtbf_seconds / n_nodes


def young_interval(write_time: Number, mtbf: Number) -> Number:
    """Young's optimal checkpoint interval: ``sqrt(2 * delta * MTBF)``."""
    return _sqrt(2.0 * write_time * mtbf)


def young_overhead(write_time: Number, interval: Number, mtbf: Number) -> Number:
    """Checkpoint + expected-rework fraction:
    ``delta / tau + (tau / 2 + delta) / MTBF``."""
    return write_time / interval + (interval / 2.0 + write_time) / mtbf


# -- rooflines and convergence ----------------------------------------------------


def roofline_attainable(
    peak_flops: Number, memory_bandwidth: Number, intensity: Number
) -> Number:
    """Attainable FLOP/s on a device roofline: ``min(peak, I * BW)``."""
    return _minimum(peak_flops, intensity * memory_bandwidth)


def two_regime_samples(
    batch: Number, min_samples: Number, critical_batch: Number
) -> Number:
    """Samples-to-target under the two-regime law:
    ``S_min * (1 + B / B_crit)`` (Shallue et al., McCandlish et al.)."""
    return min_samples * (1.0 + batch / critical_batch)


def two_regime_steps(
    batch: Number, min_samples: Number, critical_batch: Number
) -> Number:
    """Steps-to-target: samples-to-target over the batch size.

    >>> round(two_regime_steps(1, 1000.0, 1e12), 6)  # tiny batch: ~S_min steps
    1000.0
    """
    return two_regime_samples(batch, min_samples, critical_batch) / batch
