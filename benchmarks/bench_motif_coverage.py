"""Motif-coverage benchmarks: the remaining Table I motifs as live systems.

- classification motif at campaign scale: MENNDL-style evolutionary
  hyperparameter search (Patton et al., GB 2018) — GA over real network
  trainings, plus the machine-level parallel-evaluation campaign;
- analysis motif: PCA -> k-means -> Markov-state-model post-processing of a
  simulation trajectory, with the MSM invariants checked;
- submodel motif: an ML subgrid closure for two-scale Lorenz-96 (the
  Table I "physics model in a climate code replaced by ML model" example,
  per the paper's Rasp et al. citation) — forecast skill, climate fidelity,
  and iterative stability.
"""

import numpy as np
from conftest import report

from repro.workflows.case_analysis import TrajectoryAnalysis, two_state_toy_trajectory
from repro.workflows.case_nas import HyperparameterSearch
from repro.workflows.case_submodel import SubmodelWorkflow


def test_motif_classification_evolutionary_search(benchmark):
    def run():
        search = HyperparameterSearch(seed=0, train_epochs=25)
        return search.run(population=8, generations=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.best_accuracy > 0.9
    assert result.best_accuracy >= result.random_search_accuracy - 0.02

    graph = HyperparameterSearch.campaign_graph(population=8, generations=3)
    run_result = graph.execute()
    report(
        "Classification motif — evolutionary hyperparameter search",
        [
            ("best held-out accuracy", f"{result.best_accuracy:.1%}"),
            ("equal-budget random search", f"{result.random_search_accuracy:.1%}"),
            ("real network trainings", result.evaluations),
            ("best configuration", str(result.best_hyperparameters)),
            ("campaign makespan", f"{run_result.makespan / 3600:.2f} h"),
            ("serial evaluation", f"{graph.serial_time() / 3600:.2f} h"),
        ],
        header=("metric", "value"),
    )


def test_motif_analysis_markov_state_model(benchmark):
    frames, truth = two_state_toy_trajectory(n_frames=2000, seed=1)

    def run():
        return TrajectoryAnalysis(n_states=2, seed=1).run(frames, lag=2)

    result = benchmark(run)
    result.validate()

    agreement = max(
        (result.labels == truth).mean(), (result.labels == 1 - truth).mean()
    )
    assert agreement > 0.95
    assert np.allclose(result.stationary, result.occupancy, atol=0.05)

    report(
        "Analysis motif — MSM over a metastable trajectory",
        [
            ("state recovery vs truth", f"{agreement:.1%}"),
            ("stationary distribution", np.array2string(
                result.stationary, precision=3)),
            ("empirical occupancy", np.array2string(
                result.occupancy, precision=3)),
            ("slowest implied timescale", f"{result.implied_timescales.max():.0f} lags"),
        ],
        header=("metric", "value"),
    )


def test_motif_submodel_ml_subgrid_closure(benchmark):
    def run():
        workflow = SubmodelWorkflow(seed=0)
        workflow.train_closure(n_samples=3000, epochs=100)
        return workflow.run(forecast_steps=1500, climate_steps=5000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.stable
    assert result.skill_horizon_ml >= result.skill_horizon_truncated
    assert result.climate_error_ml < result.climate_error_truncated

    report(
        "Submodel motif — ML subgrid closure (two-scale Lorenz-96)",
        [
            ("offline closure RMSE", f"{result.offline_rmse:.3f}"),
            ("forecast horizon (ML closure)", f"{result.skill_horizon_ml:.3f} MTU"),
            ("forecast horizon (no closure)",
             f"{result.skill_horizon_truncated:.3f} MTU"),
            ("climate mean error (ML)", f"{result.climate_error_ml:.3f}"),
            ("climate mean error (no closure)",
             f"{result.climate_error_truncated:.3f}"),
            ("stable under iteration", str(result.stable)),
        ],
        header=("metric", "value"),
    )
