"""The campaign state machine — one mutation path for live serving *and*
journal replay.

:class:`CampaignState` is deliberately pure: no clock (every transition
takes an explicit ``now``), no I/O, no randomness. The server applies each
journaled record to it as the record is written; recovery applies the same
records in the same order from disk. Because there is exactly one mutation
path, "replayed state" and "live state" cannot drift — the crash-recovery
guarantee reduces to the journal's durability contract.

Job lifecycle::

    PENDING --lease--> LEASED --complete--> DONE
       ^                  |
       |               requeue (lease expired / handler failed,
       +------------------+  attempts remaining; backoff via RetryPolicy)
                          |
                        fail (attempts exhausted)  --> FAILED

Guards raise the typed errors callers need to map to wire responses: a
``complete`` from a session whose lease has been requeued raises
:class:`~repro.errors.LeaseExpired` (the job may already be running
elsewhere — acknowledging it would risk double-completion), and a second
``complete`` for a DONE job is reported as a duplicate, never re-applied,
so no job is ever counted twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, LeaseExpired, ServiceError
from repro.resilience.retry import RetryPolicy

from repro.service.spec import CampaignSpec, JobSpec

__all__ = ["CampaignState", "JobRecord", "PENDING", "LEASED", "DONE", "FAILED"]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


@dataclass
class JobRecord:
    """One job's current position in the lifecycle, with attempt accounting."""

    spec: JobSpec
    state: str = PENDING
    attempts: int = 0          # executions started (leases granted)
    requeues: int = 0
    session_id: str | None = None
    lease_deadline: float | None = None
    not_before: float = 0.0    # requeue backoff: ineligible until this time
    result: Any = None
    error: str | None = None
    completed_by: str | None = None


class CampaignState:
    """In-memory truth for one campaign (see the module docstring)."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec
        self.policy: RetryPolicy = spec.retry_policy()
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []  # ingest order; scan order for leasing

    # -- derived views -------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        out = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for job in self.jobs.values():
            out[job.state] += 1
        return out

    @property
    def in_flight(self) -> int:
        """Jobs the server is still responsible for (bounded by backpressure)."""
        counts = self.counts()
        return counts[PENDING] + counts[LEASED]

    @property
    def finished(self) -> bool:
        return self.in_flight == 0 and bool(self.jobs)

    def results(self) -> dict[str, Any]:
        """``job_id -> result`` for every DONE job, in ingest order."""
        return {
            job_id: self.jobs[job_id].result
            for job_id in self._order
            if self.jobs[job_id].state == DONE
        }

    def leasable(self, now: float, limit: int) -> list[str]:
        """Up to ``limit`` PENDING job ids eligible at ``now`` (FIFO order)."""
        out: list[str] = []
        for job_id in self._order:
            if len(out) >= limit:
                break
            job = self.jobs[job_id]
            if job.state == PENDING and job.not_before <= now:
                out.append(job_id)
        return out

    def expired_leases(self, now: float) -> list[str]:
        """Leased job ids whose deadline has passed — sweeper fodder."""
        return [
            job_id for job_id in self._order
            if self.jobs[job_id].state == LEASED
            and self.jobs[job_id].lease_deadline is not None
            and self.jobs[job_id].lease_deadline < now
        ]

    # -- the one mutation path -----------------------------------------------------

    def apply(self, record: dict[str, Any]) -> None:
        """Apply one journal record; raises (mutation-free) on a bad transition."""
        handler = getattr(self, f"_apply_{record['type']}", None)
        if handler is None:
            raise ConfigurationError(
                f"unknown journal record type {record['type']!r}"
            )
        handler(record)

    def _job(self, job_id: str) -> JobRecord:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    def _apply_campaign(self, record: dict[str, Any]) -> None:
        spec = CampaignSpec.from_dict(record["spec"])
        if self.jobs and spec.name != self.spec.name:
            raise ServiceError(
                f"journal belongs to campaign {spec.name!r}, "
                f"not {self.spec.name!r}"
            )
        self.spec = spec
        self.policy = spec.retry_policy()

    def _apply_ingest(self, record: dict[str, Any]) -> None:
        specs = [JobSpec.from_dict(j) for j in record["jobs"]]
        dup = [j.job_id for j in specs if j.job_id in self.jobs]
        if dup:
            raise ServiceError(f"jobs already ingested: {dup}")
        for spec in specs:
            self.jobs[spec.job_id] = JobRecord(spec=spec)
            self._order.append(spec.job_id)

    def _apply_lease(self, record: dict[str, Any]) -> None:
        session, deadline = record["session"], record["deadline"]
        jobs = [self._job(job_id) for job_id in record["jobs"]]
        for job in jobs:
            if job.state != PENDING:
                raise ServiceError(
                    f"job {job.spec.job_id!r} is {job.state}, not leasable"
                )
        for job in jobs:
            job.state = LEASED
            job.attempts += 1
            job.session_id = session
            job.lease_deadline = deadline

    def _apply_heartbeat(self, record: dict[str, Any]) -> None:
        session, deadline = record["session"], record["deadline"]
        for job_id in record["jobs"]:
            job = self._job(job_id)
            if job.state != LEASED or job.session_id != session:
                raise LeaseExpired(
                    f"session {session!r} no longer holds job {job_id!r} "
                    f"(state {job.state}, holder {job.session_id!r})"
                )
        for job_id in record["jobs"]:
            self.jobs[job_id].lease_deadline = deadline

    def _apply_complete(self, record: dict[str, Any]) -> None:
        job = self._job(record["job_id"])
        session = record["session"]
        if job.state == DONE:
            raise ServiceError(
                f"job {job.spec.job_id!r} already completed "
                f"by {job.completed_by!r}"
            )
        if job.state != LEASED or job.session_id != session:
            raise LeaseExpired(
                f"session {session!r} no longer holds job "
                f"{job.spec.job_id!r} (state {job.state}, "
                f"holder {job.session_id!r}); completion rejected"
            )
        job.state = DONE
        job.result = record["result"]
        job.completed_by = session
        job.session_id = None
        job.lease_deadline = None
        job.error = None

    def _apply_cached(self, record: dict[str, Any]) -> None:
        """PENDING -> DONE without a lease: the shared result cache already
        holds this job's content-keyed result (the memoization tier)."""
        job = self._job(record["job_id"])
        if job.state != PENDING:
            raise ServiceError(
                f"job {job.spec.job_id!r} is {job.state}, "
                "not cache-completable"
            )
        job.state = DONE
        job.result = record["result"]
        job.completed_by = "cache"

    def _apply_requeue(self, record: dict[str, Any]) -> None:
        job = self._job(record["job_id"])
        if job.state != LEASED:
            raise ServiceError(
                f"job {job.spec.job_id!r} is {job.state}, not requeueable"
            )
        job.state = PENDING
        job.requeues += 1
        job.session_id = None
        job.lease_deadline = None
        job.not_before = record.get("not_before", 0.0)
        job.error = record.get("reason")

    def _apply_fail(self, record: dict[str, Any]) -> None:
        job = self._job(record["job_id"])
        if job.state not in (LEASED, PENDING):
            raise ServiceError(
                f"job {job.spec.job_id!r} is {job.state}, cannot fail"
            )
        job.state = FAILED
        job.session_id = None
        job.lease_deadline = None
        job.error = record.get("reason")

    def _apply_drain(self, record: dict[str, Any]) -> None:
        pass  # informational: a clean shutdown marker

    # -- replay --------------------------------------------------------------------

    @classmethod
    def replay(cls, records: list[dict[str, Any]],
               spec: CampaignSpec) -> "CampaignState":
        """Rebuild state by applying ``records`` in order (see module docs)."""
        state = cls(spec)
        for record in records:
            state.apply(record)
        return state
