"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause, while still
distinguishing configuration mistakes from simulation-time failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class CapacityError(ReproError):
    """A request exceeded a modelled hardware capacity (memory, nodes, storage)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ConvergenceError(ReproError):
    """An iterative algorithm (training, Monte Carlo, GA) failed to converge."""


class TaxonomyError(ReproError, KeyError):
    """An unknown motif, domain, program, or other taxonomy label was used."""


class ServiceError(ReproError):
    """Base class for campaign-service failures (server, client, protocol)."""


class Saturated(ServiceError):
    """The service shed load: a bounded queue was full and the request was
    rejected rather than buffered without bound. Clients should back off and
    retry under their :class:`~repro.resilience.retry.RetryPolicy`."""


class LeaseExpired(ServiceError):
    """A session acted on a lease it no longer holds (expired or requeued)."""


class JournalCorrupt(ServiceError):
    """The write-ahead journal is damaged beyond the tolerated torn tail."""


class ProtocolError(ServiceError):
    """A malformed request or response crossed the service wire protocol."""
