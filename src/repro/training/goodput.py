"""Expected goodput of a distributed training job under failures.

Combines the step-time simulator with the Young/Daly checkpoint model and
the event-driven resilience layer: a :class:`GoodputModel` takes a
:class:`~repro.training.job.TrainingJob`, derives (or is told) the
checkpoint payload per node, prices the write on either storage tier, and
reports what fraction of the job's raw sustained throughput survives
checkpointing and failure-rework at the job's width — the paper's point
that full-machine time-to-solution is a resilience number, not a peak one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cost import CheckpointCostModel, CostBreakdown, kernels
from repro.errors import ConfigurationError
from repro.resilience.faults import DEFAULT_NODE_MTBF_SECONDS
from repro.resilience.report import ResilienceReport
from repro.resilience.restart import RestartStats, simulate_checkpoint_restart
from repro.storage.burst_buffer import BurstBuffer
from repro.storage.checkpoint import CheckpointPlan
from repro.storage.filesystem import SharedFileSystem
from repro.training.job import _OPTIMIZER_STATE_BYTES_PER_PARAM, TrainingJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


def _summit_nvme() -> BurstBuffer:
    from repro.storage.burst_buffer import SUMMIT_NVME

    return SUMMIT_NVME


def _summit_gpfs() -> SharedFileSystem:
    from repro.storage.filesystem import SUMMIT_GPFS

    return SUMMIT_GPFS

#: How much useful work the empirical run simulates, in units of the
#: job-wide MTBF — enough failures for the rework term to converge.
_EMPIRICAL_WORK_MTBF_MULTIPLE = 150.0

#: Default checkpoint payload per node for campaign-level reports (30 GB):
#: real jobs persist framework and data-pipeline state alongside the model,
#: so the sharded model weights alone would be unrealistically small.
DEFAULT_STATE_BYTES_PER_NODE = 30e9


@dataclass(frozen=True)
class GoodputModel:
    """Resilience-aware throughput for one training configuration.

    ``state_bytes_per_node`` is the checkpoint payload each node writes;
    when ``None`` it is derived from the model (FP16 weights + FP32 master
    weights and optimizer moments, sharded across the job's nodes) — real
    jobs usually also persist framework and data-loader state, so a larger
    explicit payload is often the honest choice.
    """

    job: TrainingJob
    node_mtbf_seconds: float = DEFAULT_NODE_MTBF_SECONDS
    state_bytes_per_node: float | None = None
    nvme: BurstBuffer | None = field(default_factory=_summit_nvme)
    shared_fs: SharedFileSystem = field(default_factory=_summit_gpfs)

    def __post_init__(self) -> None:
        if self.node_mtbf_seconds <= 0:
            raise ConfigurationError("node MTBF must be positive")
        if self.state_bytes_per_node is not None and self.state_bytes_per_node <= 0:
            raise ConfigurationError("state size must be positive")

    @classmethod
    def for_machine(
        cls,
        job: TrainingJob,
        machine: "MachineSpec | str | None" = None,
        **kwargs,
    ) -> "GoodputModel":
        """A goodput model whose storage tiers come from ``machine``
        (default Summit). Machines without node-local NVMe get
        ``nvme=None``; the ``"nvme"`` checkpoint tier then raises."""
        from repro.machine.spec import resolve_machine

        spec = resolve_machine(machine)
        kwargs.setdefault("nvme", spec.nvme)
        kwargs.setdefault("shared_fs", spec.shared_fs)
        return cls(job=job, **kwargs)

    def _require_nvme(self) -> BurstBuffer:
        if self.nvme is None:
            raise ConfigurationError(
                "this machine has no node-local NVMe tier; use tier='shared_fs'"
            )
        return self.nvme

    # -- checkpoint configuration ----------------------------------------------

    def checkpoint_bytes_per_node(self) -> float:
        if self.state_bytes_per_node is not None:
            return self.state_bytes_per_node
        total = self.job.model.parameters * (
            2.0 + _OPTIMIZER_STATE_BYTES_PER_PARAM
        )
        return total / self.job.n_nodes

    def plan(self) -> CheckpointPlan:
        return CheckpointPlan(
            state_bytes_per_node=self.checkpoint_bytes_per_node(),
            n_nodes=self.job.n_nodes,
            node_mtbf_seconds=self.node_mtbf_seconds,
        )

    def write_time(self, tier: str = "nvme") -> float:
        plan = self.plan()
        if tier == "nvme":
            return plan.write_time_nvme(self._require_nvme())
        if tier == "shared_fs":
            return plan.write_time_shared(self.shared_fs)
        raise ConfigurationError(
            f"unknown storage tier {tier!r}; use 'nvme' or 'shared_fs'"
        )

    def optimal_interval(self, tier: str = "nvme") -> float:
        return self.plan().optimal_interval(self.write_time(tier))

    def _write_rate(self, tier: str) -> float:
        if tier == "nvme":
            return self._require_nvme().write_bandwidth
        if tier == "shared_fs":
            return kernels.shared_pool_bandwidth(
                self.shared_fs.aggregate_write_bandwidth,
                self.shared_fs.per_client_read_bandwidth,
                self.job.n_nodes,
            )
        raise ConfigurationError(
            f"unknown storage tier {tier!r}; use 'nvme' or 'shared_fs'"
        )

    def breakdown(self, tier: str = "nvme") -> CostBreakdown:
        """Structured checkpoint-economics breakdown for one tier, via the
        :class:`~repro.cost.CheckpointCostModel` (sweepable over node-count
        or MTBF axes with :func:`repro.cost.sweep`)."""
        return CheckpointCostModel().evaluate(
            state_bytes_per_node=self.checkpoint_bytes_per_node(),
            write_rate=self._write_rate(tier),
            n_nodes=self.job.n_nodes,
            node_mtbf_seconds=self.node_mtbf_seconds,
        )

    # -- analytic goodput --------------------------------------------------------

    def overhead_fraction(self, tier: str = "nvme") -> float:
        """Young/Daly checkpoint + rework overhead at the optimal interval."""
        return self.plan().overhead_fraction(self.write_time(tier))

    def goodput_fraction(self, tier: str = "nvme") -> float:
        return 1.0 - self.overhead_fraction(tier)

    def goodput_flops(self, tier: str = "nvme") -> float:
        """Sustained FLOP/s after checkpoint + failure-rework derating."""
        return self.job.sustained_flops() * self.goodput_fraction(tier)

    # -- empirical simulation -----------------------------------------------------

    def simulate(
        self,
        tier: str = "nvme",
        seed: int = 0,
        work_seconds: float | None = None,
        telemetry=None,
        engine_impl: str | None = None,
    ) -> RestartStats:
        """Event-driven checkpoint-restart run at this job's parameters.

        An optional :class:`~repro.telemetry.Telemetry` handle is passed
        through to :func:`simulate_checkpoint_restart`, capturing segment /
        checkpoint / restart spans and fault instants for this run.
        ``engine_impl`` picks the event scheduler (``heap`` | ``calendar``);
        the simulated timeline is byte-identical either way.
        """
        plan = self.plan()
        if work_seconds is None:
            work_seconds = _EMPIRICAL_WORK_MTBF_MULTIPLE * plan.system_mtbf
        return simulate_checkpoint_restart(
            work_seconds=work_seconds,
            interval=self.optimal_interval(tier),
            write_time=self.write_time(tier),
            n_nodes=self.job.n_nodes,
            node_mtbf_seconds=self.node_mtbf_seconds,
            seed=seed,
            telemetry=telemetry,
            engine_impl=engine_impl,
        )

    def simulate_ensemble(
        self,
        tier: str = "nvme",
        seed: int = 0,
        n_replicas: int = 8,
        n_jobs: int = 1,
        work_seconds: float | None = None,
        engine_impl: str | None = None,
    ) -> list[RestartStats]:
        """A Monte-Carlo ensemble of empirical runs over child seeds.

        Replica ``i`` always gets the ``i``-th ``SeedSequence`` child of
        ``seed``, so the returned list is identical at every ``n_jobs`` —
        fanning out over a process pool changes the wall-clock, never the
        statistics. Averaging ``overhead_fraction`` across replicas tightens
        the stochastic error bar around the Young/Daly expectation.
        """
        from repro.resilience.restart import restart_ensemble

        plan = self.plan()
        if work_seconds is None:
            work_seconds = _EMPIRICAL_WORK_MTBF_MULTIPLE * plan.system_mtbf
        return restart_ensemble(
            work_seconds=work_seconds,
            interval=self.optimal_interval(tier),
            write_time=self.write_time(tier),
            n_nodes=self.job.n_nodes,
            node_mtbf_seconds=self.node_mtbf_seconds,
            n_replicas=n_replicas,
            seed=seed,
            n_jobs=n_jobs,
            engine_impl=engine_impl,
        )

    def report(
        self,
        name: str,
        tier: str = "nvme",
        empirical: bool = True,
        seed: int = 0,
        work_seconds: float | None = None,
        telemetry=None,
        engine_impl: str | None = None,
    ) -> ResilienceReport:
        """Build the :class:`ResilienceReport` for this configuration.

        ``empirical=True`` runs the event-driven simulation so the report
        carries measured overhead next to the Young/Daly prediction;
        ``empirical=False`` fills the report with the analytic expectation.
        A ``telemetry`` handle instruments the empirical run (ignored on
        the analytic path, which performs no simulation).
        """
        analytical = self.overhead_fraction(tier)
        raw = self.job.sustained_flops()
        if empirical:
            stats = self.simulate(
                tier, seed=seed, work_seconds=work_seconds,
                telemetry=telemetry, engine_impl=engine_impl,
            )
            return ResilienceReport.from_restart(
                name=name,
                n_nodes=self.job.n_nodes,
                node_mtbf_seconds=self.node_mtbf_seconds,
                stats=stats,
                analytical_overhead=analytical,
                raw_flops=raw,
            )
        plan = self.plan()
        work = (
            work_seconds
            if work_seconds is not None
            else _EMPIRICAL_WORK_MTBF_MULTIPLE * plan.system_mtbf
        )
        tau = self.optimal_interval(tier)
        delta = self.write_time(tier)
        wall = work / (1.0 - analytical)
        n_checkpoints = int(work / tau)
        checkpoint_seconds = n_checkpoints * delta
        return ResilienceReport(
            name=name,
            n_nodes=self.job.n_nodes,
            node_mtbf_seconds=self.node_mtbf_seconds,
            wall_seconds=wall,
            useful_seconds=work,
            n_failures=int(round(wall / plan.system_mtbf)),
            n_checkpoints=n_checkpoints,
            checkpoint_seconds=checkpoint_seconds,
            lost_seconds=max(0.0, wall - work - checkpoint_seconds),
            analytical_overhead=analytical,
            raw_flops=raw,
        )
