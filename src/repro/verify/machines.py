"""Machine-registry conformance: expectation sets for non-Summit machines.

Summit's 80 paper-pinned entries live in :mod:`repro.verify.expectations`
and never change. Non-Summit registry machines (``frontier-like``,
``perlmutter-like``, ``tpu-pod-like``) have no paper to pin against, so
their conformance battery is *structural*: every derived quantity the
:class:`~repro.machine.spec.MachineSpec` exposes must re-derive from its
primitive fields (aggregate NVMe = per-node x node count, injection =
rails x rail bandwidth, peak FLOPs = nodes x GPUs x per-GPU), the spec
must round-trip through its System/LinkSpec/filesystem adapters without
drift, and the Section VI-B analytics replayed on the machine must keep
their shape (crossover node count nonincreasing in message size; grid
sweeps bit-identical to scalar evaluation).

:func:`run_machine_conformance` folds these into the same
:class:`~repro.verify.report.ConformanceReport` artifact the Summit
battery produces, so ``repro verify --machine frontier-like`` emits the
familiar deterministic JSON for CI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.verify.expectations import Expectation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec

__all__ = ["build_machine_registry", "run_machine_conformance"]

#: Scales exercised by the per-machine sweep checks; small on purpose —
#: the battery must stay cheap enough for a CI smoke matrix.
_CHECK_SIZES = (1e6, 1e8, 1e9, 1e10)
_CHECK_RANK_MAX = 1024


def _structural(spec: "MachineSpec", key: str, description: str, measure,
                expected=True, cmp="true", **kwargs) -> Expectation:
    """A structural self-consistency expectation for one machine.

    ``provenance`` follows the registry convention: machines whose numbers
    come from the paper keep ``stated``; estimated machines are tagged
    ``estimated`` so report consumers can tell the classes apart.
    """
    return Expectation(
        key=f"machine.{spec.key}.{key}",
        section=f"machine.{spec.key}",
        description=description,
        paper=f"registry:{spec.key}",
        provenance="stated" if spec.provenance == "paper" else "estimated",
        expected=expected,
        measure=measure,
        cmp=cmp,
        **kwargs,
    )


def build_machine_registry(spec: "MachineSpec") -> tuple[Expectation, ...]:
    """The structural expectation set for one registry machine.

    Every measurement closes over ``spec`` and ignores the
    :class:`~repro.verify.expectations.VerifyContext` — machine checks need
    no portfolio or app artifacts, only the spec and the analytics layers.
    """
    checks: list[Expectation] = [
        _structural(
            spec, "injection_bandwidth",
            "aggregate injection = rails x per-rail bandwidth",
            lambda ctx: spec.injection_bandwidth,
            expected=spec.injection_rails * spec.injection_rail_bandwidth,
            cmp="exact", units="B/s",
        ),
        _structural(
            spec, "algorithmic_bandwidth",
            "paper's closed-form allreduce bandwidth is half of injection",
            lambda ctx: spec.algorithmic_bandwidth,
            expected=spec.injection_bandwidth / 2.0,
            cmp="exact", units="B/s",
        ),
        _structural(
            spec, "system_round_trip",
            "System adapter preserves node count, GPU count and link rates",
            lambda ctx: _system_round_trip(spec),
        ),
        _structural(
            spec, "crossover_monotone",
            "crossover node count nonincreasing in message size",
            lambda ctx: _crossover_monotone(spec),
        ),
        _structural(
            spec, "sweep_scalar_parity",
            "crossover grid sweep bit-identical to scalar evaluation",
            lambda ctx: _sweep_scalar_parity(spec),
        ),
    ]
    if spec.gpus is not None:
        from repro.machine.gpu import Precision

        checks.insert(2, _structural(
            spec, "peak_flops",
            "machine peak = nodes x GPUs/node x per-GPU peak",
            lambda ctx: spec.peak_flops(Precision.MIXED),
            expected=(
                spec.node_count
                * (spec.gpus_per_node * spec.gpus.peak(Precision.MIXED))
            ),
            cmp="exact", units="FLOP/s",
        ))
    if spec.has_nvme:
        checks.insert(2, _structural(
            spec, "aggregate_nvme_read",
            "aggregate NVMe read = per-node rate x node count",
            lambda ctx: spec.aggregate_nvme_read_bandwidth,
            expected=spec.nvme_read_bandwidth * spec.node_count,
            cmp="exact", units="B/s",
        ))
    return tuple(checks)


def _system_round_trip(spec: "MachineSpec") -> bool:
    """The System built from the spec re-exposes the spec's numbers."""
    system = spec.system()
    node = system.node
    checks = [
        system.node_count == spec.node_count,
        node.gpu_count == spec.gpus_per_node,
        system.interconnect.total_bandwidth == spec.injection_bandwidth,
        system.interconnect.latency == spec.injection_latency,
        system.shared_fs is not None
        and system.shared_fs.aggregate_read_bandwidth
        == spec.fs_aggregate_read_bandwidth,
    ]
    if spec.has_nvme:
        checks.append(
            system.nvme is not None
            and system.nvme.aggregate_read_bandwidth(spec.node_count)
            == spec.aggregate_nvme_read_bandwidth
        )
    else:
        checks.append(system.nvme is None)
    return all(checks)


def _crossover_monotone(spec: "MachineSpec") -> bool:
    """Crossover node count must be nonincreasing in message size."""
    from repro.cost.crossover import crossover_nodes, machine_crossover_sweep

    result = machine_crossover_sweep(
        np.array(_CHECK_SIZES),
        np.arange(2, min(_CHECK_RANK_MAX, spec.node_count) + 1),
        machine=spec,
        compute_time=0.1,
    )
    nodes = crossover_nodes(result)
    finite = np.where(np.isnan(nodes), np.inf, nodes)
    return not any(
        b > a for a, b in zip(finite, finite[1:]) if np.isfinite(b)
    )


def _sweep_scalar_parity(spec: "MachineSpec") -> bool:
    """The vectorized crossover sweep equals scalar evaluation bit for bit."""
    from repro.cost.crossover import (
        DataParallelCrossoverModel,
        machine_crossover_sweep,
    )

    ranks = [2, 16, 64]
    grid = machine_crossover_sweep(
        np.array(_CHECK_SIZES), np.array(ranks), machine=spec,
        compute_time=0.1,
    )
    model = DataParallelCrossoverModel()
    for i, size in enumerate(_CHECK_SIZES):
        for j, p in enumerate(ranks):
            scalar = model.evaluate(
                message_bytes=size, n_ranks=p,
                bandwidth=spec.injection_bandwidth,
                latency=spec.injection_latency, compute_time=0.1,
            )
            for term, value in scalar.terms.items():
                if grid.term(term)[i, j] != value:
                    return False
    return True


def run_machine_conformance(machine, seed: int = 0):
    """The conformance report for one non-Summit registry machine.

    The battery is the structural expectation set from
    :func:`build_machine_registry` plus the crossover-shape invariant
    replayed on the machine's fabric. It is deliberately small (a CI smoke
    battery, not the 80-entry Summit gate) and fully deterministic — the
    JSON bytes depend only on ``seed`` and the spec.
    """
    from repro.machine.spec import resolve_machine
    from repro.verify.expectations import VerifyContext
    from repro.verify.invariants import audit_crossover_shape
    from repro.verify.report import ConformanceReport

    spec = resolve_machine(machine)
    ctx = VerifyContext(seed=seed)
    registry = build_machine_registry(spec)
    return ConformanceReport(
        seed=seed,
        sections=(f"machine.{spec.key}",),
        expectations=[e.check(ctx) for e in registry],
        differentials=[],
        invariants=[audit_crossover_shape(machine=spec)],
    )
