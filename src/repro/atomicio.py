"""Crash-safe file writes: the tmp + ``os.replace`` pattern, in one place.

A bare ``path.write_text(...)`` can be interrupted half way — by a SIGKILL,
an OOM kill, or a full disk — leaving a torn artifact that the next reader
parses as garbage. Every writer of a load-bearing artifact (benchmark
records, conformance reports, cache entries, journal segments) instead
writes to a sibling temporary file and atomically renames it into place:
readers see either the old complete file or the new complete file, never a
prefix.

``fsync=True`` additionally flushes the file *and its directory entry* to
stable storage before returning — the durability half of the contract the
write-ahead journal in :mod:`repro.service.journal` is built on.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "fsync_dir",
]


def fsync_dir(directory: str | Path) -> None:
    """Flush a directory entry so a just-renamed file survives power loss."""
    fd = os.open(str(directory), os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path, data: bytes, fsync: bool = False
) -> Path:
    """Write ``data`` to ``path`` atomically; return the final path.

    The temporary sibling carries the writer's PID so two processes racing
    the same destination never clobber each other's scratch file — the last
    ``os.replace`` wins and both leave a complete artifact behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(data)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)
    return path


@contextmanager
def atomic_writer(path: str | Path, fsync: bool = False):
    """Stream into ``path`` atomically: yields a binary file handle.

    The incremental sibling of :func:`atomic_write_bytes` for writers that
    cannot (or should not) materialize the whole payload first — JSONL
    exports, telemetry shards. The handle writes to the temporary sibling;
    the rename into place happens only when the ``with`` body exits
    cleanly. On an exception the scratch file is removed and the
    destination is untouched.

    >>> import tempfile, pathlib
    >>> p = pathlib.Path(tempfile.mkdtemp()) / "out.jsonl"
    >>> with atomic_writer(p) as fh:
    ...     _ = fh.write(b'{"a":1}\\n')
    ...     _ = fh.write(b'{"b":2}\\n')
    >>> p.read_text()
    '{"a":1}\\n{"b":2}\\n'
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            yield fh
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
    except BaseException:
        if tmp.exists():
            tmp.unlink()
        raise
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)


def atomic_write_text(
    path: str | Path, text: str, fsync: bool = False
) -> Path:
    """Text-mode convenience over :func:`atomic_write_bytes` (UTF-8).

    >>> import tempfile, pathlib
    >>> p = pathlib.Path(tempfile.mkdtemp()) / "out.json"
    >>> _ = atomic_write_text(p, '{"ok": true}')
    >>> p.read_text()
    '{"ok": true}'
    """
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
