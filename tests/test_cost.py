"""The repro.cost layer: golden scalar regression, composition semantics,
and sweep API.

The golden values below were captured from the seed implementation (the
handwritten formulas in training/step_time.py, network/collectives.py,
storage/*.py before the cost-layer refactor) and are asserted with **exact**
float equality: the cost layer's scalar path must be bit-identical to the
formulas it replaced.
"""

import math

import numpy as np
import pytest

from repro.apps.extreme_scale import EXTREME_SCALE_APPS
from repro.cost import (
    AnalyticCostModel,
    CheckpointCostModel,
    ConvergenceCostModel,
    CostBreakdown,
    CostModel,
    DataParallelCrossoverModel,
    IoRequirementModel,
    RooflineCostModel,
    compose,
    crossover_nodes,
    crossover_sweep,
    kernels,
    step_cost_model,
    sweep,
    sweep_scalar,
)
from repro.errors import CapacityError, ConfigurationError
from repro.machine.gpu import NVIDIA_V100
from repro.machine.summit import summit
from repro.models.catalog import resnet50
from repro.network.collectives import (
    AllreduceAlgorithm,
    allreduce_time,
    algorithmic_bandwidth,
    paper_allreduce_estimate,
)
from repro.network.link import NVLINK2, SUMMIT_INJECTION
from repro.storage.checkpoint import CheckpointPlan
from repro.storage.filesystem import SUMMIT_GPFS
from repro.storage.burst_buffer import SUMMIT_NVME
from repro.storage.io_model import read_requirement
from repro.training.convergence import RESNET50_CONVERGENCE
from repro.training.step_time import step_breakdown

SYSTEM = summit(include_high_mem=False)

# -- golden values captured from the seed implementation -------------------------

GOLDEN_STEP = {
    ("kurth", 1): dict(
        compute=0.5859613428280773, comm=0.002913666666666667, comm_exposed=0.0,
        io=0.056, io_exposed=0.0, mp_exchange=0.0,
        straggler=0.046587897146061714, samples=12, total=0.632549239974139),
    ("kurth", 4560): dict(
        compute=0.5859613428280773, comm=0.01900613684210526, comm_exposed=0.0,
        io=0.056, io_exposed=0.0, mp_exchange=0.0,
        straggler=0.11124781608356993, samples=54720, total=0.6972091589116473),
    ("yang", 1): dict(
        compute=0.009990243902439024, comm=0.0, comm_exposed=0.0,
        io=0.0, io_exposed=0.0, mp_exchange=0.0002737666666666667,
        straggler=0.0005673514876602853, samples=2048,
        total=0.010831362056765976),
    ("yang", 4584): dict(
        compute=0.009990243902439024, comm=0.002254, comm_exposed=0.0,
        io=0.0, io_exposed=0.0, mp_exchange=0.0002737666666666667,
        straggler=0.0013551336339908534, samples=9388032,
        total=0.011619144203096543),
    ("laanait", 1): dict(
        compute=0.365296803652968, comm=0.014673666666666668, comm_exposed=0.0,
        io=0.002, io_exposed=0.0, mp_exchange=0.0,
        straggler=0.008298163168547267, samples=6, total=0.3735949668215153),
    ("laanait", 4600): dict(
        compute=0.365296803652968, comm=0.05906401449275362, comm_exposed=0.0,
        io=0.002, io_exposed=0.0, mp_exchange=0.0,
        straggler=0.01982375407513185, samples=27600,
        total=0.3851205577280999),
    ("khan", 8): dict(
        compute=0.004266666666666667, comm=0.009527666666666667,
        comm_exposed=0.009527666666666667, io=0.000512, io_exposed=0.0,
        mp_exchange=0.0, straggler=0.0008310451399389981, samples=768,
        total=0.014625378473272332),
    ("khan", 1024): dict(
        compute=0.004266666666666667, comm=0.012472479166666666,
        comm_exposed=0.012472479166666666, io=0.000512, io_exposed=0.0,
        mp_exchange=0.0, straggler=0.0012474996895240694, samples=98304,
        total=0.017986645522857402),
    ("blanchard", 1): dict(
        compute=0.27679453924914676, comm=0.014673666666666668,
        comm_exposed=0.0, io=0.0033408, io_exposed=0.0, mp_exchange=0.0,
        straggler=0.007859657639635148, samples=1440,
        total=0.2846541968887819),
    ("blanchard", 4032): dict(
        compute=0.27679453924914676, comm=0.05792693650793651,
        comm_exposed=0.04062727780486484, io=0.16837632,
        io_exposed=0.07149823126279864, mp_exchange=0.0,
        straggler=0.01865480156073221, samples=5806080,
        total=0.40757484987754244),
}

#: (p, golden) for BERT-large's 1.4 GB gradient over SUMMIT_INJECTION.
GOLDEN_ALLREDUCE = {
    2: dict(ring=0.056002, recursive_doubling=0.056001, binomial_tree=0.112002,
            best=0.056001),
    48: dict(ring=0.10976066666666666, recursive_doubling=0.392007,
             binomial_tree=0.672012, best=0.10976066666666666),
    4608: dict(ring=0.12118969444444444, recursive_doubling=0.784014,
               binomial_tree=1.456026, best=0.12118969444444444),
}

BERT_GRADIENT_BYTES = 1.4e9


def _app_cost_model(key):
    app = EXTREME_SCALE_APPS[key]
    return step_cost_model(
        app.model_factory(), SYSTEM, app.plan,
        data_source=app.data_source, intra_node_link=NVLINK2,
    )


class TestGoldenStepRegression:
    @pytest.mark.parametrize("key,n_nodes", sorted(GOLDEN_STEP))
    def test_scalar_evaluate_is_bit_identical_to_seed(self, key, n_nodes):
        bd = _app_cost_model(key).evaluate(n_nodes=n_nodes)
        golden = GOLDEN_STEP[(key, n_nodes)]
        for term, expected in golden.items():
            if term == "total":
                continue
            assert bd[term] == expected, f"{key}@{n_nodes}: {term}"
        assert bd.total == golden["total"]

    @pytest.mark.parametrize("key,n_nodes", sorted(GOLDEN_STEP))
    def test_step_breakdown_matches_cost_layer(self, key, n_nodes):
        app = EXTREME_SCALE_APPS[key]
        sb = step_breakdown(
            app.model_factory(), SYSTEM, n_nodes, app.plan,
            data_source=app.data_source,
        )
        bd = _app_cost_model(key).evaluate(n_nodes=n_nodes)
        assert sb.total == bd.total
        assert sb.comm == bd["comm"]
        assert sb.samples == bd["samples"]


class TestGoldenCollectives:
    @pytest.mark.parametrize("p", sorted(GOLDEN_ALLREDUCE))
    def test_algorithms(self, p):
        golden = GOLDEN_ALLREDUCE[p]
        for name in ("ring", "recursive_doubling", "binomial_tree"):
            got = allreduce_time(
                p, BERT_GRADIENT_BYTES, SUMMIT_INJECTION,
                AllreduceAlgorithm(name),
            )
            assert got == golden[name], f"{name}@{p}"
        assert allreduce_time(
            p, BERT_GRADIENT_BYTES, SUMMIT_INJECTION, None
        ) == golden["best"]

    @pytest.mark.parametrize("p", sorted(GOLDEN_ALLREDUCE))
    def test_kernels_match_linkspec_adapter(self, p):
        lat, bw = SUMMIT_INJECTION.latency, SUMMIT_INJECTION.total_bandwidth
        for name in ("ring", "recursive_doubling", "binomial_tree"):
            assert kernels.allreduce_time(
                p, BERT_GRADIENT_BYTES, lat, bw, name
            ) == GOLDEN_ALLREDUCE[p][name]
        assert kernels.best_allreduce_time(
            p, BERT_GRADIENT_BYTES, lat, bw
        ) == GOLDEN_ALLREDUCE[p]["best"]

    def test_paper_estimates(self):
        assert paper_allreduce_estimate(102.4e6, SUMMIT_INJECTION) == 0.008192
        assert paper_allreduce_estimate(1.4e9, SUMMIT_INJECTION) == 0.112

    def test_algorithmic_bandwidth(self):
        assert algorithmic_bandwidth(
            4608, BERT_GRADIENT_BYTES, SUMMIT_INJECTION
        ) == 11552137386.085955


class TestGoldenStorageModels:
    def test_io_requirement_model_matches_seed(self):
        model = resnet50()
        samples_per_s = model.samples_per_second(NVIDIA_V100)
        n_devices = 4608 * 6
        seed = read_requirement(samples_per_s, model.bytes_per_sample, n_devices)
        bd = IoRequirementModel().evaluate(
            samples_per_second_per_device=samples_per_s,
            bytes_per_sample=model.bytes_per_sample,
            n_devices=n_devices,
        )
        assert bd["required_bandwidth"] == seed.required_bandwidth
        assert bd["per_device_bandwidth"] == seed.per_device_bandwidth
        assert seed.required_bandwidth == 19982769230769.23
        assert seed.per_device_bandwidth == 722756410.2564102

    @pytest.mark.parametrize("tier,write_rate", [
        ("nvme", SUMMIT_NVME.write_bandwidth),
        ("shared_fs", min(SUMMIT_GPFS.per_client_read_bandwidth,
                          SUMMIT_GPFS.aggregate_write_bandwidth / 4600)),
    ])
    def test_checkpoint_model_matches_seed_plan(self, tier, write_rate):
        plan = CheckpointPlan(
            state_bytes_per_node=30e9, n_nodes=4600,
            node_mtbf_seconds=5 * 365 * 24 * 3600.0,
        )
        write_time = 30e9 / write_rate
        bd = CheckpointCostModel().evaluate(
            state_bytes_per_node=30e9, write_rate=write_rate,
            n_nodes=4600, node_mtbf_seconds=5 * 365 * 24 * 3600.0,
        )
        assert bd["write_time"] == write_time
        assert bd["system_mtbf"] == plan.system_mtbf
        assert bd["optimal_interval"] == plan.optimal_interval(write_time)
        assert bd["overhead_fraction"] == plan.overhead_fraction(write_time)

    def test_checkpoint_goldens(self):
        nvme = CheckpointCostModel().evaluate(
            state_bytes_per_node=30e9, write_rate=SUMMIT_NVME.write_bandwidth,
            n_nodes=4600, node_mtbf_seconds=5 * 365 * 24 * 3600.0,
        )
        assert nvme["write_time"] == 14.285714285714286
        assert nvme["optimal_interval"] == 989.6357319678679
        assert nvme["overhead_fraction"] == 0.029287409010441898


class TestGoldenAnalysisModels:
    def test_roofline_matches_seed(self):
        from repro.analysis.roofline import roofline_point
        from repro.machine.gpu import Precision

        seed = roofline_point(NVIDIA_V100, flops=2.2e10, bytes_moved=1.1e8)
        bd = RooflineCostModel().evaluate(
            flops=2.2e10, bytes_moved=1.1e8,
            peak_flops=NVIDIA_V100.peak(Precision.MIXED),
            memory_bandwidth=NVIDIA_V100.memory_bandwidth,
        )
        assert bd["attainable_flops"] == seed.attainable_flops
        assert bd["arithmetic_intensity"] == seed.arithmetic_intensity
        assert bd["ridge_intensity"] == seed.ridge_intensity

    def test_convergence_matches_seed(self):
        seed = RESNET50_CONVERGENCE.samples_to_target(32768, "lars")
        bd = ConvergenceCostModel().evaluate(
            batch=32768, min_samples=RESNET50_CONVERGENCE.min_samples,
            critical_batch=RESNET50_CONVERGENCE.critical_batch("lars"),
        )
        assert bd["samples_to_target"] == seed
        assert bd["steps_to_target"] == seed / 32768


class TestCostBreakdown:
    def _bd(self, **kwargs):
        defaults = dict(
            model="demo", terms={"a": 1.0, "b": 2.0}, critical=("a", "b"))
        defaults.update(kwargs)
        return CostBreakdown(**defaults)

    def test_mapping_protocol(self):
        bd = self._bd()
        assert bd["a"] == 1.0
        assert set(bd) == {"a", "b"}
        assert len(bd) == 2
        assert dict(bd) == {"a": 1.0, "b": 2.0}

    def test_total_and_fraction(self):
        bd = self._bd()
        assert bd.total == 3.0
        assert bd.fraction("b") == 2.0 / 3.0

    def test_total_accumulates_in_critical_order(self):
        bd = CostBreakdown(
            model="demo", terms={"x": 0.1, "y": 0.2, "z": 0.3},
            critical=("z", "x"))
        assert bd.total == 0.3 + 0.1

    def test_empty_terms_rejected(self):
        with pytest.raises(ConfigurationError):
            CostBreakdown(model="demo", terms={})

    def test_unknown_critical_rejected(self):
        with pytest.raises(ConfigurationError):
            self._bd(critical=("a", "nope"))

    def test_at_picks_grid_point(self):
        bd = CostBreakdown(
            model="demo",
            terms={"a": np.array([1.0, 2.0]), "b": 10.0},
            critical=("a", "b"))
        assert not bd.is_scalar
        assert bd.shape == (2,)
        point = bd.at(1)
        assert point.is_scalar
        assert point["a"] == 2.0 and point["b"] == 10.0
        assert point.total == 12.0

    def test_summary_marks_critical_terms(self):
        text = self._bd().summary()
        assert "demo" in text and "total" in text and "*" in text


class _Double(AnalyticCostModel):
    name = "double"
    requires = ("x",)
    critical = ("doubled",)

    def _terms(self, c):
        return {"doubled": 2 * c["x"]}


class _PlusOne(AnalyticCostModel):
    name = "plus_one"
    requires = ("doubled",)
    critical = ("plus_one",)

    def _terms(self, c):
        return {"plus_one": c["doubled"] + 1}


class TestCompositionAndProtocol:
    def test_protocol_runtime_checkable(self):
        assert isinstance(_Double(), CostModel)
        assert isinstance(_app_cost_model("kurth"), CostModel)

    def test_dataflow_composition(self):
        combined = _Double() | _PlusOne()
        bd = combined.evaluate(x=5)
        assert bd["doubled"] == 10 and bd["plus_one"] == 11

    def test_compose_with_defaults_and_critical(self):
        model = compose(_Double(), _PlusOne(), name="pipeline",
                        critical=("plus_one",), defaults={"x": 3})
        bd = model.evaluate()
        assert model.name == "pipeline"
        assert bd.total == 7

    def test_missing_config_raises(self):
        with pytest.raises(ConfigurationError, match="missing config"):
            _Double().evaluate()

    def test_duplicate_terms_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            (_Double() | _Double()).evaluate(x=1)

    def test_evaluate_rejects_arrays(self):
        with pytest.raises(ConfigurationError, match="evaluate_batch"):
            _Double().evaluate(x=np.array([1.0, 2.0]))

    def test_evaluate_batch_promotes_sequences(self):
        bd = _Double().evaluate_batch(x=[1.0, 2.0])
        assert np.array_equal(bd["doubled"], np.array([2.0, 4.0]))


class TestSweepApi:
    def _result(self):
        return sweep(
            DataParallelCrossoverModel(),
            {"message_bytes": [1e8, 1.4e9], "n_ranks": [2, 48, 4608]},
            latency=1e-6, bandwidth=25e9, compute_time=0.05,
        )

    def test_shape_and_axes(self):
        r = self._result()
        assert r.shape == (2, 3)
        assert r.size == 6
        assert r.axis_names == ("message_bytes", "n_ranks")

    def test_point_and_at(self):
        r = self._result()
        assert r.point(1, 2) == {"message_bytes": 1.4e9, "n_ranks": 4608}
        assert r.at(1, 2)["comm"] == GOLDEN_ALLREDUCE[4608]["ring"]

    def test_argmin_and_best(self):
        r = self._result()
        assert r.argmin("comm") == (0, 0)
        assert r.best("comm") == {"message_bytes": 1e8, "n_ranks": 2}

    def test_crossover_along(self):
        r = self._result()
        cross = r.crossover_along("n_ranks", "compute", "comm")
        assert cross.shape == (2,)
        assert math.isnan(cross[0])  # 100 MB never beats 50 ms compute
        assert cross[1] == 2.0  # 1.4 GB is comm-bound everywhere

    def test_table_renders(self):
        text = self._result().table(limit=3)
        assert "n_ranks" in text and "more rows" in text

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(DataParallelCrossoverModel(), {})
        with pytest.raises(ConfigurationError):
            sweep(DataParallelCrossoverModel(), {"n_ranks": []},
                  latency=0.0, bandwidth=1.0, compute_time=1.0,
                  message_bytes=1.0)

    def test_sweep_scalar_matches_sweep(self):
        grid = {"message_bytes": [1e8, 1.4e9], "n_ranks": [2, 48, 4608]}
        fixed = dict(latency=1e-6, bandwidth=25e9, compute_time=0.05)
        fast = sweep(DataParallelCrossoverModel(), grid, **fixed)
        slow = sweep_scalar(DataParallelCrossoverModel(), grid, **fixed)
        for term in fast.breakdown:
            assert np.array_equal(
                np.asarray(fast.term(term), dtype=float), slow.term(term))


class TestCrossoverHelpers:
    def test_crossover_sweep_scalar_and_axis_mix(self):
        r = crossover_sweep(
            np.array([102.4e6, 1.4e9]), 4608, 25e9,
            latency=1e-6, compute_time=0.05,
        )
        assert r.axis_names == ("message_bytes",)
        paper = r.term("paper_estimate")
        assert paper[0] == 0.008192 and paper[1] == 0.112

    def test_crossover_nodes(self):
        r = crossover_sweep(
            1.4e9, np.array([2, 48, 4608]), 25e9,
            latency=1e-6, compute_time=0.05,
        )
        assert crossover_nodes(r) == 2.0


class TestStepModelErrors:
    def test_too_many_nodes_is_capacity_error(self):
        with pytest.raises(CapacityError):
            _app_cost_model("kurth").evaluate(n_nodes=5000)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            _app_cost_model("kurth").evaluate(n_nodes=0)

    def test_array_capacity_check_uses_max(self):
        with pytest.raises(CapacityError):
            _app_cost_model("kurth").evaluate_batch(
                n_nodes=np.array([1, 5000]))

    def test_vectorized_matches_scalar_for_apps(self):
        nodes = np.array([1, 16, 256, 4096])
        model = _app_cost_model("blanchard")
        fast = sweep(model, {"n_nodes": nodes})
        slow = sweep_scalar(model, {"n_nodes": nodes})
        for term in fast.breakdown:
            assert np.array_equal(
                np.asarray(fast.term(term), dtype=float), slow.term(term))


class TestGoodputBreakdown:
    def test_breakdown_matches_goodput_methods(self):
        from repro.training.goodput import GoodputModel

        app = EXTREME_SCALE_APPS["laanait"]
        gp = GoodputModel(job=app.job(4600), state_bytes_per_node=30e9)
        for tier in ("nvme", "shared_fs"):
            bd = gp.breakdown(tier)
            assert bd["write_time"] == gp.write_time(tier)
            assert bd["optimal_interval"] == gp.optimal_interval(tier)
            assert bd["overhead_fraction"] == gp.overhead_fraction(tier)
            assert bd["goodput_fraction"] == gp.goodput_fraction(tier)
