"""Numpy implementations of the optimizers behind the paper's scale-out results.

Every Section IV-B application uses a large-batch optimizer — LARC (Kurth),
LARS (Laanait), LAMB (Khan, Blanchard). These are real, tested
implementations that operate on lists of numpy parameter arrays, used by the
:mod:`repro.ml` networks and by the large-batch ablation benchmarks.
"""

from repro.optim.adam import Adam
from repro.optim.base import Optimizer
from repro.optim.lamb import LAMB
from repro.optim.larc import LARC
from repro.optim.lars import LARS
from repro.optim.schedule import LinearScalingRule, WarmupSchedule
from repro.optim.sgd import SGD

__all__ = [
    "Adam",
    "LAMB",
    "LARC",
    "LARS",
    "LinearScalingRule",
    "Optimizer",
    "SGD",
    "WarmupSchedule",
]
