"""Tests for the pipeline-parallel analysis."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.summit import summit
from repro.models import bert_large
from repro.training.pipeline import (
    PipelineBreakdown,
    PipelinePlan,
    compare_strategies,
    pipeline_step,
)

SYSTEM = summit(include_high_mem=False)


class TestPipelinePlan:
    def test_bubble_formula(self):
        plan = PipelinePlan(stages=4, micro_batches=12)
        assert plan.bubble_fraction == pytest.approx(3 / 15)

    def test_single_stage_has_no_bubble(self):
        assert PipelinePlan(stages=1, micro_batches=8).bubble_fraction == 0.0

    def test_more_micro_batches_shrink_bubble(self):
        few = PipelinePlan(stages=6, micro_batches=6)
        many = PipelinePlan(stages=6, micro_batches=60)
        assert many.bubble_fraction < few.bubble_fraction

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelinePlan(stages=0, micro_batches=1)
        with pytest.raises(ConfigurationError):
            PipelinePlan(stages=1, micro_batches=0)

    @settings(max_examples=30)
    @given(s=st.integers(min_value=1, max_value=32),
           m=st.integers(min_value=1, max_value=256))
    def test_bubble_fraction_bounds(self, s, m):
        frac = PipelinePlan(stages=s, micro_batches=m).bubble_fraction
        assert 0.0 <= frac < 1.0


class TestPipelineStep:
    def test_breakdown_components_positive(self):
        b = pipeline_step(
            bert_large(), SYSTEM, 64, PipelinePlan(stages=6, micro_batches=16)
        )
        assert b.compute > 0
        assert b.bubble > 0
        assert b.total == pytest.approx(
            b.compute + b.bubble + b.stage_comm + b.dp_allreduce
        )

    def test_bubble_matches_plan_fraction_roughly(self):
        plan = PipelinePlan(stages=6, micro_batches=16)
        b = pipeline_step(bert_large(), SYSTEM, 64, plan)
        measured = b.bubble / (b.compute + b.bubble)
        assert measured == pytest.approx(plan.bubble_fraction, rel=0.05)

    def test_single_replica_has_no_allreduce(self):
        b = pipeline_step(
            bert_large(), SYSTEM, 1, PipelinePlan(stages=6, micro_batches=8),
            dp_replicas=1,
        )
        assert b.dp_allreduce == 0.0

    def test_sample_accounting(self):
        b = pipeline_step(
            bert_large(), SYSTEM, 4,
            PipelinePlan(stages=6, micro_batches=8, micro_batch_size=2),
        )
        assert b.samples == (4 * 6 // 6) * 16

    def test_too_many_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            pipeline_step(
                bert_large(), SYSTEM, 1, PipelinePlan(stages=7, micro_batches=8)
            )

    def test_oversubscribed_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            pipeline_step(
                bert_large(), SYSTEM, 1,
                PipelinePlan(stages=6, micro_batches=8), dp_replicas=2,
            )


class TestStrategyComparison:
    """The paper's closing claim: past the data-parallel crossover, 'generic
    model parallelization is essential'."""

    def test_data_parallel_wins_below_crossover(self):
        result = compare_strategies(bert_large(), SYSTEM, 1024, 32)
        assert result["data_parallel"] > 0.9 * result["pipeline_hybrid"]

    def test_pipeline_wins_past_crossover(self):
        giant = dataclasses.replace(
            bert_large(), parameters=2.5 * 350e6,
            activation_bytes_per_sample=48e6,
        )
        result = compare_strategies(giant, SYSTEM, 1024, 8)
        assert result["pipeline_hybrid"] > result["data_parallel"]

    def test_both_strategies_scale_with_nodes(self):
        small = compare_strategies(bert_large(), SYSTEM, 64, 32)
        large = compare_strategies(bert_large(), SYSTEM, 512, 32)
        for key in small:
            assert large[key] > small[key]
