"""Tests for the task-graph executor, facilities, steering and active learning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml.data import latent_manifold
from repro.science.ffea import MassSpringModel
from repro.workflows import (
    ActiveLearningLoop,
    FACILITIES,
    Facility,
    SteeringLoop,
    Task,
    TaskGraph,
)
from repro.workflows.steering import SteeringResult


class TestFacility:
    def test_speed_rescales_duration(self):
        fast = Facility("f", nodes=4, speed=2.0)
        assert fast.duration(10.0) == 5.0

    def test_paper_facilities_present(self):
        assert set(FACILITIES) == {"summit", "perlmutter", "thetagpu", "cs2"}

    def test_invalid_specs(self):
        with pytest.raises(ConfigurationError):
            Facility("x", nodes=0)
        with pytest.raises(ConfigurationError):
            Facility("x", nodes=1, speed=0)


class TestTaskGraph:
    def _graph(self):
        return TaskGraph({"a": Facility("A", nodes=4), "b": Facility("B", nodes=2)})

    def test_chain_serialises(self):
        g = self._graph()
        g.add_task("t1", 10.0, "a")
        g.add_task("t2", 5.0, "a", deps=("t1",))
        run = g.execute()
        assert run.makespan == 15.0
        assert run.start_times["t2"] == 10.0

    def test_independent_tasks_run_concurrently(self):
        g = self._graph()
        g.add_task("t1", 10.0, "a", nodes=2)
        g.add_task("t2", 10.0, "a", nodes=2)
        run = g.execute()
        assert run.makespan == 10.0

    def test_resource_contention_serialises(self):
        g = self._graph()
        g.add_task("t1", 10.0, "b", nodes=2)
        g.add_task("t2", 10.0, "b", nodes=2)
        run = g.execute()
        assert run.makespan == 20.0

    def test_fan_in_waits_for_all(self):
        g = self._graph()
        g.add_task("x", 3.0, "a")
        g.add_task("y", 7.0, "a")
        g.add_task("z", 1.0, "a", deps=("x", "y"))
        run = g.execute()
        assert run.start_times["z"] == 7.0
        assert run.makespan == 8.0

    def test_critical_path_follows_gating_dependency(self):
        g = self._graph()
        g.add_task("x", 3.0, "a")
        g.add_task("y", 7.0, "a")
        g.add_task("z", 1.0, "a", deps=("x", "y"))
        run = g.execute()
        assert run.critical_path(g) == ["y", "z"]

    def test_serial_time_is_upper_bound(self):
        g = self._graph()
        g.add_task("t1", 4.0, "a")
        g.add_task("t2", 6.0, "b")
        g.add_task("t3", 2.0, "a", deps=("t1",))
        run = g.execute()
        assert run.makespan <= g.serial_time()

    def test_busy_node_seconds(self):
        g = self._graph()
        g.add_task("t1", 10.0, "a", nodes=3)
        run = g.execute()
        assert run.facility_busy_node_seconds(g) == {"a": 30.0}

    def test_unknown_facility_rejected(self):
        g = self._graph()
        with pytest.raises(ConfigurationError):
            g.add_task("t", 1.0, "nowhere")

    def test_oversized_task_rejected(self):
        g = self._graph()
        with pytest.raises(ConfigurationError):
            g.add_task("t", 1.0, "b", nodes=10)

    def test_forward_dependency_rejected(self):
        g = self._graph()
        with pytest.raises(ConfigurationError):
            g.add_task("t", 1.0, "a", deps=("later",))

    def test_duplicate_name_rejected(self):
        g = self._graph()
        g.add_task("t", 1.0, "a")
        with pytest.raises(ConfigurationError):
            g.add_task("t", 2.0, "a")

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            self._graph().execute()

    def test_speed_applied_to_duration(self):
        g = TaskGraph({"fast": Facility("F", nodes=1, speed=4.0)})
        g.add_task("t", 8.0, "fast")
        assert g.execute().makespan == 2.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(name="t", duration=-1.0, facility="a")


class _RandomWalkSim:
    """Minimal steerable simulator: a biased random walk in feature space."""

    def __init__(self, dim=6, seed=0):
        self.rng = np.random.default_rng(seed)
        self.pos = np.zeros(dim)

    def run_segment(self, n_frames):
        frames = []
        for _ in range(n_frames):
            self.pos = self.pos + 0.05 * self.rng.standard_normal(self.pos.size)
            frames.append(self.pos.copy())
        return np.array(frames)

    def snapshot(self):
        return self.pos.copy()

    def restore(self, state):
        self.pos = state.copy()


class TestSteeringLoop:
    def test_runs_and_collects_frames(self):
        sims = [_RandomWalkSim(seed=i) for i in range(3)]
        loop = SteeringLoop(sims, frames_per_segment=10, ae_epochs=15, seed=0)
        result = loop.run(n_rounds=3)
        assert result.frames.shape == (3 * 3 * 10, 6)
        assert result.rounds == 3
        assert result.restarts > 0
        assert len(result.novelty_history) == 3

    def test_unsteered_baseline_has_no_restarts(self):
        sims = [_RandomWalkSim(seed=i) for i in range(2)]
        loop = SteeringLoop(sims, frames_per_segment=8, seed=0)
        result = loop.run_unsteered(n_rounds=2)
        assert result.restarts == 0
        assert result.frames.shape[0] == 2 * 2 * 8

    def test_steering_explores_ffea_conformations(self):
        """Steered sampling of the mass-spring model should cover at least
        as much descriptor space as unsteered sampling at equal budget."""

        class FfeaAdapter:
            def __init__(self, seed):
                self.model = MassSpringModel(n_side=4, seed=seed)

            def run_segment(self, n_frames):
                return self.model.sample_trajectory(
                    n_frames, steps_per_frame=5, temperature=0.3
                )

            def snapshot(self):
                return self.model.positions.copy()

            def restore(self, state):
                self.model.positions = state.copy()

        steered = SteeringLoop(
            [FfeaAdapter(i) for i in range(3)],
            frames_per_segment=8, ae_epochs=30, seed=1,
        ).run(n_rounds=3)
        unsteered = SteeringLoop(
            [FfeaAdapter(i + 10) for i in range(3)],
            frames_per_segment=8, seed=1,
        ).run_unsteered(n_rounds=3)
        assert steered.coverage > 0.5 * unsteered.coverage

    def test_coverage_requires_two_frames(self):
        with pytest.raises(ConfigurationError):
            SteeringResult.measure_coverage(np.zeros((1, 3)))

    def test_invalid_settings(self):
        with pytest.raises(ConfigurationError):
            SteeringLoop([], seed=0)
        with pytest.raises(ConfigurationError):
            SteeringLoop([_RandomWalkSim()], frames_per_segment=1)
        with pytest.raises(ConfigurationError):
            SteeringLoop([_RandomWalkSim()]).run(0)


class TestActiveLearning:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        pool = rng.uniform(-1, 1, size=(300, 2))
        val_x = rng.uniform(-1, 1, size=(80, 2))

        def oracle(x):
            return (x**2).sum(axis=1, keepdims=True)

        return pool, (val_x, oracle(val_x)), oracle

    def test_rmse_improves_over_rounds(self):
        pool, val, oracle = self._setup()
        loop = ActiveLearningLoop(oracle, pool, val, n_members=3, seed=0)
        result = loop.run(initial=16, per_round=16, n_rounds=4, epochs=120)
        assert result.final_rmse < result.rmse_history[0]

    def test_oracle_calls_counted(self):
        pool, val, oracle = self._setup(1)
        loop = ActiveLearningLoop(oracle, pool, val, n_members=2, seed=1)
        result = loop.run(initial=16, per_round=8, n_rounds=3, epochs=50)
        assert result.oracle_calls == 16 + 8 * 2  # last round trains only

    def test_random_acquisition_supported(self):
        pool, val, oracle = self._setup(2)
        loop = ActiveLearningLoop(oracle, pool, val, n_members=2, seed=2)
        result = loop.run(initial=16, per_round=8, n_rounds=2, epochs=50,
                          random_acquisition=True)
        assert result.rounds == 2

    def test_budget_exceeding_pool_rejected(self):
        pool, val, oracle = self._setup(3)
        loop = ActiveLearningLoop(oracle, pool, val, seed=3)
        with pytest.raises(ConfigurationError):
            loop.run(initial=200, per_round=100, n_rounds=5)

    def test_gp_surrogate_variant(self):
        pool, val, oracle = self._setup(5)
        loop = ActiveLearningLoop(
            oracle, pool, val, surrogate_kind="gp", gp_length_scale=0.5, seed=5
        )
        result = loop.run(initial=16, per_round=12, n_rounds=3, epochs=1)
        assert result.final_rmse < result.rmse_history[0] * 1.5
        assert result.final_rmse < 0.3

    def test_gp_beats_small_ensemble_on_smooth_target(self):
        """On a smooth low-dimensional target with few samples, the exact GP
        posterior is a stronger surrogate than a tiny bootstrap ensemble."""
        pool, val, oracle = self._setup(6)
        gp_loop = ActiveLearningLoop(
            oracle, pool, val, surrogate_kind="gp", gp_length_scale=0.5, seed=6
        )
        ens_loop = ActiveLearningLoop(
            oracle, pool, val, n_members=2, seed=6
        )
        gp = gp_loop.run(initial=16, per_round=12, n_rounds=3, epochs=40)
        ens = ens_loop.run(initial=16, per_round=12, n_rounds=3, epochs=40)
        assert gp.final_rmse < ens.final_rmse

    def test_unknown_surrogate_kind_rejected(self):
        pool, val, oracle = self._setup(7)
        with pytest.raises(ConfigurationError):
            ActiveLearningLoop(oracle, pool, val, surrogate_kind="svm")
