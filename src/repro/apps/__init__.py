"""Application registry: Gordon Bell finalists (Section IV-A) and the
extreme-scale training configurations of Section IV-B."""

from repro.apps.extreme_scale import EXTREME_SCALE_APPS, ExtremeScaleApp
from repro.apps.registry import (
    GORDON_BELL_FINALISTS,
    GordonBellFinalist,
    gordon_bell_table,
)
from repro.apps.reproductions import GB_REPRODUCTIONS, verify_coverage

__all__ = [
    "EXTREME_SCALE_APPS",
    "ExtremeScaleApp",
    "GB_REPRODUCTIONS",
    "GORDON_BELL_FINALISTS",
    "GordonBellFinalist",
    "gordon_bell_table",
    "verify_coverage",
]
