"""Job records and synthetic campaign generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.portfolio.project import Project

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class Job:
    """One batch job.

    ``uses_ai`` tags the job for the delivered-hours accounting; ``project``
    optionally links back to the portfolio record it was generated from.
    """

    job_id: str
    nodes: int
    duration: float  # seconds of execution once started
    submit_time: float
    uses_ai: bool = False
    project: Project | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"{self.job_id}: nodes must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError(f"{self.job_id}: duration must be positive")
        if self.submit_time < 0:
            raise ConfigurationError(f"{self.job_id}: negative submit time")

    @property
    def node_seconds(self) -> float:
        return self.nodes * self.duration


#: Summit's batch-queue size/walltime structure ("bins"): wider jobs get
#: longer walltime limits — the capability-computing policy of Section II-B.
SUMMIT_QUEUE_BINS = (
    # (min_nodes, max_walltime_hours)
    (2765, 24.0),  # bin 1: >= 60 % of the machine
    (922, 24.0),
    (92, 12.0),
    (46, 6.0),
    (1, 2.0),
)

#: The bins as machine fractions: Summit's thresholds are 60 % / 20 % /
#: 2 % / 1 % of 4 608 nodes (rounded), which is how the policy transfers
#: to other machine sizes.
QUEUE_BIN_FRACTIONS = (
    (0.6, 24.0),
    (0.2, 24.0),
    (0.02, 12.0),
    (0.01, 6.0),
    (None, 2.0),  # catch-all: 1 node and up
)


def queue_bins_for(
    machine: "MachineSpec | str | None" = None,
) -> tuple[tuple[int, float], ...]:
    """The capability-queue bins scaled to ``machine``'s node count.

    Summit reproduces :data:`SUMMIT_QUEUE_BINS` exactly (the fractions
    round back to the paper's thresholds).
    """
    from repro.machine.spec import resolve_machine

    nodes = resolve_machine(machine).node_count
    return tuple(
        (1 if fraction is None else max(1, round(fraction * nodes)), hours)
        for fraction, hours in QUEUE_BIN_FRACTIONS
    )


def walltime_limit(
    nodes: int, machine: "MachineSpec | str | None" = None
) -> float:
    """Walltime limit in seconds for a job of ``nodes`` nodes.

    Without ``machine`` this is Summit's exact queue policy; with one, the
    bins scale as fractions of that machine's node count.
    """
    if nodes < 1:
        raise ConfigurationError("nodes must be >= 1")
    bins = SUMMIT_QUEUE_BINS if machine is None else queue_bins_for(machine)
    for min_nodes, hours in bins:
        if nodes >= min_nodes:
            return hours * 3600.0
    raise AssertionError("unreachable: last bin matches all sizes")


def synthetic_facility_year(
    seed: int = 0,
    n_nodes: int = 4608,
    horizon: float = 365.0 * 86400.0,
    utilization_target: float = 0.85,
    ai_fraction: float = 0.3,
    capability_fraction: float = 0.02,
) -> list[Job]:
    """A utilization-targeted synthetic job stream over ``horizon`` seconds.

    The whole-facility replay workload (ROADMAP item 3's stream, sized for
    the facility-year demo): most jobs are narrow (log-uniform up to ~2 %
    of the machine — the long tail of the Section II job census) with a
    ``capability_fraction`` of wide jobs (log-uniform from ~20 % of the
    machine up to all of it) that carry most of the node-hours, the INCITE
    shape. Durations are log-normal within each width's Summit walltime
    bin, submissions uniform over the horizon, and the stream is cut when
    offered load reaches ``utilization_target`` of the machine's
    node-seconds — so the queue stays statistically stable across a year
    instead of exploding or draining. At Summit scale this yields roughly
    a hundred thousand jobs per simulated year.

    All draws are vectorized in fixed-size blocks from one seeded
    ``Generator``, so the stream is deterministic in ``seed`` and
    independent of how the budget rounds against block boundaries.
    """
    if n_nodes < 1:
        raise ConfigurationError("n_nodes must be >= 1")
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    if not 0.0 < utilization_target <= 1.0:
        raise ConfigurationError("utilization_target must be in (0, 1]")
    if not 0.0 <= capability_fraction <= 1.0:
        raise ConfigurationError("capability_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    budget = utilization_target * n_nodes * horizon
    narrow_cap = max(2, n_nodes // 50)  # Summit: 92 nodes, the 12 h bin edge
    wide_floor = max(1, n_nodes // 5)  # Summit: 921 nodes, the 20 % bin edge
    block = 8192
    jobs: list[Job] = []
    filled = 0.0
    while filled < budget:
        is_wide = rng.random(block) < capability_fraction
        narrow = np.exp(
            rng.uniform(0.0, np.log(narrow_cap), block)
        ).astype(np.int64)
        wide = np.exp(
            rng.uniform(np.log(wide_floor), np.log(n_nodes), block)
        ).astype(np.int64)
        nodes = np.minimum(
            np.maximum(1, np.where(is_wide, wide, narrow)), n_nodes
        )
        # Summit's queue bins, vectorized (matches walltime_limit exactly)
        limits = np.select(
            [nodes >= 2765, nodes >= 922, nodes >= 92, nodes >= 46],
            [24 * 3600.0, 24 * 3600.0, 12 * 3600.0, 6 * 3600.0],
            2 * 3600.0,
        )
        durations = np.clip(
            limits * rng.lognormal(mean=-1.2, sigma=0.6, size=block),
            300.0, limits,
        )
        submits = rng.uniform(0.0, horizon, block)
        uses_ai = rng.random(block) < ai_fraction
        cum = filled + np.cumsum(nodes * durations)
        take = min(int(np.searchsorted(cum, budget, side="left")) + 1, block)
        base = len(jobs)
        jobs.extend(
            Job(
                job_id=f"y{seed}-j{base + j}",
                nodes=int(nodes[j]),
                duration=float(durations[j]),
                submit_time=float(submits[j]),
                uses_ai=bool(uses_ai[j]),
            )
            for j in range(take)
        )
        filled = float(cum[take - 1])
    jobs.sort(key=lambda job: job.submit_time)
    return jobs


def campaign_from_portfolio(
    projects: list[Project],
    jobs_per_project: int = 3,
    machine_nodes: int | None = None,
    horizon: float = 7 * 24 * 3600.0,
    seed: int = 0,
    machine: "MachineSpec | str | None" = None,
) -> list[Job]:
    """Generate a synthetic job stream from portfolio records.

    Job sizes follow a log-uniform distribution from 1 node to a per-project
    cap that scales with the project's allocation (bigger awards run wider,
    the INCITE capability expectation); durations are log-normal within the
    size bin's walltime limit; submissions are uniform over the horizon.

    ``machine`` sizes the campaign (node-count cap and queue bins) to a
    registry machine; an explicit ``machine_nodes`` overrides its node
    count. The default is Summit's 4 608 nodes with Summit's exact bins.
    """
    if not projects:
        raise ConfigurationError("no projects")
    if jobs_per_project < 1:
        raise ConfigurationError("jobs_per_project must be >= 1")
    if machine_nodes is None:
        if machine is None:
            machine_nodes = 4608
        else:
            from repro.machine.spec import resolve_machine

            machine_nodes = resolve_machine(machine).node_count
    rng = np.random.default_rng(seed)
    max_alloc = max(p.allocation_hours for p in projects)
    jobs: list[Job] = []
    for p_idx, project in enumerate(projects):
        # cap grows with allocation share: DD projects run small, INCITE wide
        cap = max(1, int(machine_nodes * (project.allocation_hours / max_alloc)))
        for j in range(jobs_per_project):
            log_nodes = rng.uniform(0, np.log(max(2, cap)))
            nodes = max(1, int(np.exp(log_nodes)))
            limit = walltime_limit(nodes, machine)
            duration = float(
                np.clip(limit * rng.lognormal(mean=-1.2, sigma=0.6), 300.0, limit)
            )
            jobs.append(
                Job(
                    job_id=f"{project.project_id}-j{j}",
                    nodes=nodes,
                    duration=duration,
                    submit_time=float(rng.uniform(0, horizon)),
                    uses_ai=project.uses_ai,
                    project=project,
                )
            )
    jobs.sort(key=lambda job: job.submit_time)
    return jobs
