"""Section VI-B (communication considerations).

Paper: "the per device allreduce message size for the ResNet50 and
BERT-large models is about 100MB and 1.4 GB ... communication time is
roughly 8 ms and 110 ms. The latter is close to the time of per-batch
forward and backward propagation and hence hard to hide ... Thus models
larger than BERT-large become communication-bound."
"""

import pytest
from _record import record
from conftest import report

from repro.machine.gpu import NVIDIA_V100
from repro.models import bert_large, resnet50
from repro.network.collectives import paper_allreduce_estimate
from repro.network.link import SUMMIT_INJECTION


def test_section6b_allreduce_times(benchmark):
    r50, bert = resnet50(), bert_large()

    def compute():
        return (
            paper_allreduce_estimate(r50.gradient_bytes, SUMMIT_INJECTION),
            paper_allreduce_estimate(bert.gradient_bytes, SUMMIT_INJECTION),
        )

    t_resnet, t_bert = benchmark(compute)

    assert t_resnet == pytest.approx(8e-3, rel=0.05)
    assert t_bert == pytest.approx(110e-3, rel=0.05)

    record(
        "section6b_allreduce",
        {"resnet50_seconds": t_resnet, "bert_large_seconds": t_bert,
         "resnet50_message_bytes": r50.gradient_bytes,
         "bert_large_message_bytes": bert.gradient_bytes},
    )

    report(
        "Section VI-B — data-parallel allreduce estimates",
        [
            ("ResNet-50 message", "~100 MB", f"{r50.gradient_bytes / 1e6:.0f} MB"),
            ("BERT-large message", "~1.4 GB", f"{bert.gradient_bytes / 1e9:.2f} GB"),
            ("ResNet-50 allreduce", "~8 ms", f"{t_resnet * 1e3:.1f} ms"),
            ("BERT-large allreduce", "~110 ms", f"{t_bert * 1e3:.1f} ms"),
        ],
        header=("metric", "paper", "measured"),
    )


def test_section6b_communication_bound_crossover(benchmark):
    """BERT-large's allreduce is 'close to' its per-batch compute; models
    larger than BERT-large are communication-bound in data parallelism."""
    r50, bert = resnet50(), bert_large()

    def ratios():
        out = {}
        for model, batch in ((r50, 128), (bert, 32)):
            comm = paper_allreduce_estimate(model.gradient_bytes, SUMMIT_INJECTION)
            compute = model.step_compute_time(NVIDIA_V100, batch)
            out[model.name] = comm / compute
        return out

    result = benchmark(ratios)

    # ResNet-50 comfortably hides communication; BERT-large barely does
    assert result["ResNet-50"] < 0.15
    assert 0.3 < result["BERT-large"] < 1.0

    report(
        "Section VI-B — allreduce / per-batch-compute ratio",
        [
            ("ResNet-50", "negligible", f"{result['ResNet-50']:.2f}"),
            ("BERT-large", "'close to' 1", f"{result['BERT-large']:.2f}"),
            ("larger than BERT-large", "comm-bound", "> 1 (see tests)"),
        ],
        header=("model", "paper", "measured"),
    )
