"""Calendar-queue event scheduling: a bucketed ring with an overflow heap.

A :class:`CalendarQueue` is a priority queue over event tuples whose first
two fields are ``(time, seq)`` — time is the sort key, the monotonically
increasing sequence number breaks ties, and because ``seq`` is unique the
comparison never reaches the payload fields. The structure is the classic
calendar queue (Brown 1988) tuned for discrete-event simulation with many
broadly homogeneous timers, organised in three tiers:

- a small *near* tier holding every entry due before the near horizon —
  a sorted list consumed through a cursor, so the hot pop path is an
  index bump and a same-time batch is one ``bisect`` plus one slice;
- a *ring* of buckets, each covering one ``width``-wide window of the
  current revolution: far inserts are an O(1) list append instead of an
  O(log n) heap sift;
- an *overflow* heap for entries beyond the ring's current revolution,
  folded back into the ring when the revolution completes.

As simulated time advances, buckets are migrated wholesale into the near
tier (one C-level ``list.sort`` per bucket), so per-event cost stays flat
as the pending-event count grows. The queue periodically rebuilds its geometry (bucket count from the
pending count, bucket width from the observed event-time span), which
changes only the constant factors, never the pop order.

Ordering contract: pops are strictly ``(time, seq)``-ordered — exactly the
order a binary heap over the same tuples yields. :class:`HeapQueue` wraps
``heapq`` behind the same interface and is kept as the differential-testing
reference; :func:`make_event_queue` picks the implementation from the
``REPRO_ENGINE_IMPL`` knob.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right, insort
from typing import Any, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ENGINE_IMPLS",
    "CalendarQueue",
    "HeapQueue",
    "make_event_queue",
    "resolve_engine_impl",
]

#: Recognised event-queue implementations. ``calendar`` is the production
#: default; ``heap`` is the legacy reference the differential suite and the
#: CI matrix keep green.
ENGINE_IMPLS = ("heap", "calendar")

#: Environment knob consulted when no explicit implementation is passed.
ENGINE_IMPL_ENV = "REPRO_ENGINE_IMPL"

_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 15
_INF = float("inf")


def resolve_engine_impl(impl: str | None = None) -> str:
    """Resolve an event-queue implementation name.

    ``None`` falls back to ``$REPRO_ENGINE_IMPL``, then to ``calendar``.
    Unknown names raise :class:`~repro.errors.ConfigurationError`.
    """
    if impl is None:
        impl = os.environ.get(ENGINE_IMPL_ENV) or "calendar"
    if impl not in ENGINE_IMPLS:
        raise ConfigurationError(
            f"unknown engine impl {impl!r}; choose from {ENGINE_IMPLS}"
        )
    return impl


def make_event_queue(impl: str | None = None) -> "HeapQueue | CalendarQueue":
    """Build an event queue for the resolved implementation name."""
    if resolve_engine_impl(impl) == "heap":
        return HeapQueue()
    return CalendarQueue()


class HeapQueue:
    """The legacy binary-heap event queue, behind the shared interface."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: tuple) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> tuple:
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Earliest pending event time, or ``None`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def pop_time_batch(self) -> list[tuple] | None:
        """Pop every entry at the earliest pending time, in ``seq`` order."""
        heap = self._heap
        if not heap:
            return None
        batch = [heapq.heappop(heap)]
        when = batch[0][0]
        while heap and heap[0][0] == when:
            batch.append(heapq.heappop(heap))
        return batch

    def sorted_entries(self) -> list[tuple]:
        """All pending entries in ``(time, seq)`` order (non-destructive)."""
        return sorted(self._heap)


class CalendarQueue:
    """Bucketed-ring calendar queue with a sorted near list + overflow heap.

    The near tier is a *sorted list* consumed through the ``_ni`` cursor
    (not a heap): bucket migration is one C-level ``list.sort``, a pop is
    an index bump, and a same-time batch is one ``bisect_right`` plus one
    slice — no per-entry heap sifting anywhere on the hot drain path.
    """

    __slots__ = (
        "_near", "_ni", "_buckets", "_overflow", "_n", "_width",
        "_base", "_cur", "_near_end", "_ring_end", "_count", "_resize_at",
    )

    def __init__(
        self, width: float = 1.0, n_buckets: int = _MIN_BUCKETS
    ) -> None:
        if width <= 0:
            raise ConfigurationError("bucket width must be positive")
        if n_buckets < 1:
            raise ConfigurationError("need at least one bucket")
        self._near: list[tuple] = []  # sorted; entries before _ni consumed
        self._ni = 0  # near-consume cursor
        self._n = n_buckets
        self._buckets: list[list[tuple]] = [[] for _ in range(n_buckets)]
        self._overflow: list[tuple] = []
        self._width = float(width)
        self._base = 0.0  # absolute time of bucket 0's window start
        self._cur = 0  # next bucket index to migrate into the near tier
        self._near_end = 0.0  # entries strictly before this live in _near
        self._ring_end = n_buckets * float(width)
        self._count = 0
        self._resize_at = 8 * n_buckets

    def __len__(self) -> int:
        return self._count

    def push(self, entry: tuple) -> None:
        self._count += 1
        self._place(entry)
        if self._count >= self._resize_at:
            self._rebuild()

    def push_many(self, entries: list[tuple]) -> None:
        """Bulk push with the placement loop inlined.

        Same pop order as pushing one at a time; the geometry is re-derived
        up front when the bulk would cross the resize threshold, so the
        entries land in a ring already sized for them.
        """
        self._count += len(entries)
        if self._count >= self._resize_at:
            self._rebuild(extra=entries)
            return
        near_end = self._near_end
        ring_end = self._ring_end
        base = self._base
        width = self._width
        n = self._n
        buckets = self._buckets
        cur = self._cur
        overflow = self._overflow
        for entry in entries:
            t = entry[0]
            if t < near_end:
                insort(self._near, entry, lo=self._ni)
            elif t < ring_end:
                idx = int((t - base) / width)
                if idx >= n:
                    idx = n - 1
                while idx > cur and base + idx * width > t:
                    idx -= 1
                if idx < cur:
                    idx = cur
                buckets[idx].append(entry)
            else:
                heapq.heappush(overflow, entry)

    def _place(self, entry: tuple) -> None:
        """Route one entry to the correct tier (no counting, no resizing)."""
        t = entry[0]
        if t < self._near_end:
            # rare path: only entries scheduled inside the already-migrated
            # window land here, and they sort after the consumed prefix
            # because their seq is newer than everything already popped
            insort(self._near, entry, lo=self._ni)
        elif t < self._ring_end:
            base, width, cur = self._base, self._width, self._cur
            idx = int((t - base) / width)
            # Float division can land one bucket off at window boundaries;
            # the pop order only stays correct if the chosen bucket's window
            # starts at or before t and has not been migrated yet.
            if idx >= self._n:
                idx = self._n - 1
            while idx > cur and base + idx * width > t:
                idx -= 1
            if idx < cur:
                idx = cur
            self._buckets[idx].append(entry)
        else:
            heapq.heappush(self._overflow, entry)

    def _ensure_near(self) -> bool:
        """Make the near tier non-empty; ``False`` when fully drained."""
        near = self._near
        ni = self._ni
        while ni >= len(near):
            if ni:  # drop the fully consumed prefix
                self._near = near = []
                self._ni = ni = 0
            if not self._count:
                return False
            if self._cur < self._n:
                bucket = self._buckets[self._cur]
                self._cur += 1
                self._near_end = self._base + self._cur * self._width
                if bucket:
                    # one C-level sort migrates the whole bucket; appends
                    # made in seq order at equal times are already sorted,
                    # which timsort detects in linear time
                    bucket.sort()
                    self._buckets[self._cur - 1] = []
                    self._near = bucket
                    self._ni = 0
                    return True
                continue
            # revolution complete: rebase the ring where the overflow starts
            overflow = self._overflow
            if not overflow:  # pragma: no cover - guarded by _count
                return False
            if self._count * 8 < self._n and self._n > _MIN_BUCKETS:
                self._rebuild()  # the queue drained: shrink the ring
                continue
            self._base = overflow[0][0]
            self._cur = 0
            self._near_end = self._base
            self._ring_end = self._base + self._n * self._width
            while overflow and overflow[0][0] < self._ring_end:
                self._place(heapq.heappop(overflow))
        return True

    def pop(self) -> tuple:
        if not self._ensure_near():
            raise IndexError("pop from an empty CalendarQueue")
        self._count -= 1
        entry = self._near[self._ni]
        self._ni += 1
        return entry

    def peek_time(self) -> float | None:
        """Earliest pending event time, or ``None`` when empty."""
        if not self._ensure_near():
            return None
        return self._near[self._ni][0]

    def pop_time_batch(self) -> list[tuple] | None:
        """Pop every entry at the earliest pending time, in ``seq`` order.

        Complete by construction: entries still in the ring or overflow are
        at or beyond the near horizon, which is strictly after the popped
        time, so no same-time entry can be left behind.
        """
        if not self._ensure_near():
            return None
        near = self._near
        ni = self._ni
        # (when, inf) sorts after every (when, seq) and before any later time
        j = bisect_right(near, (near[ni][0], _INF), ni)
        self._ni = j
        self._count -= j - ni
        return near[ni:j]

    def sorted_entries(self) -> list[tuple]:
        """All pending entries in ``(time, seq)`` order (non-destructive)."""
        out = self._near[self._ni:]
        for bucket in self._buckets:
            out.extend(bucket)
        out.extend(self._overflow)
        out.sort()
        return out

    def _rebuild(self, extra: list[tuple] | None = None) -> None:
        """Re-derive the ring geometry from the pending population.

        Bucket count tracks the pending count (so density stays near one
        entry per bucket) and width tracks the observed event-time span.
        Pop order is unaffected — geometry only moves constant factors.
        ``extra`` lets :meth:`push_many` fold not-yet-placed entries into
        the new geometry directly.
        """
        entries = self._near[self._ni:]
        for bucket in self._buckets:
            entries.extend(bucket)
        entries.extend(self._overflow)
        if extra is not None:
            entries.extend(extra)
        count = len(entries)
        n = _MIN_BUCKETS
        while n < count and n < _MAX_BUCKETS:
            n <<= 1
        if entries:
            # min/max over the tuples themselves stays a C-level scan
            # (ties fall through to the integer seq, still C)
            lo = min(entries)[0]
            hi = max(entries)[0]
            span = hi - lo
            width = (2.0 * span / n) if span > 0 else self._width
            base = lo
        else:
            width, base = self._width, self._base
        if width <= 0 or width != width:  # zero span or NaN guard
            width = 1.0
        self._n = n
        buckets = [[] for _ in range(n)]
        self._buckets = buckets
        self._near = []
        self._ni = 0
        overflow: list[tuple] = []
        self._overflow = overflow
        self._width = width
        self._base = base
        self._cur = 0
        self._near_end = base
        ring_end = base + n * width
        self._ring_end = ring_end
        self._resize_at = max(8 * n, 4 * count)
        # _place inlined: base == lo means the near tier is unreachable,
        # so every entry lands in the ring (or the overflow in the rare
        # float-rounding case where base + n*width rounds below hi)
        for entry in entries:
            t = entry[0]
            if t < ring_end:
                idx = int((t - base) / width)
                if idx >= n:
                    idx = n - 1
                while idx and base + idx * width > t:
                    idx -= 1
                buckets[idx].append(entry)
            else:  # pragma: no cover - one-ulp rounding at the ring edge
                heapq.heappush(overflow, entry)


def _selftest(entries: Sequence[tuple[float, int]]) -> list[Any]:
    """Drain ``entries`` through a CalendarQueue; used by the doctests.

    >>> _selftest([(3.0, 1), (1.0, 2), (1.0, 0), (2.0, 3)])
    [(1.0, 0), (1.0, 2), (2.0, 3), (3.0, 1)]
    """
    q = CalendarQueue()
    for e in entries:
        q.push(e)
    out = []
    while len(q):
        out.append(q.pop())
    return out
