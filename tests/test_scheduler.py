"""Tests for the batch-scheduler simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.portfolio import generate_portfolio
from repro.scheduler import Job, Policy, Scheduler, campaign_from_portfolio
from repro.scheduler.jobs import SUMMIT_QUEUE_BINS, walltime_limit
from repro.scheduler.policy import priority_key


class TestJob:
    def test_node_seconds(self):
        job = Job("j", nodes=10, duration=100.0, submit_time=0.0)
        assert job.node_seconds == 1000.0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            Job("j", nodes=0, duration=1.0, submit_time=0.0)
        with pytest.raises(ConfigurationError):
            Job("j", nodes=1, duration=0.0, submit_time=0.0)
        with pytest.raises(ConfigurationError):
            Job("j", nodes=1, duration=1.0, submit_time=-1.0)


class TestWalltimeLimits:
    def test_wider_jobs_get_longer_walltime(self):
        assert walltime_limit(4000) >= walltime_limit(100) >= walltime_limit(2)

    def test_bins_cover_all_sizes(self):
        for nodes in (1, 45, 46, 92, 921, 922, 2765, 4608):
            assert walltime_limit(nodes) > 0

    def test_smallest_bin_two_hours(self):
        assert walltime_limit(1) == 2 * 3600.0

    def test_capability_bin_24_hours(self):
        assert walltime_limit(SUMMIT_QUEUE_BINS[0][0]) == 24 * 3600.0


class TestPriorityKey:
    def test_fifo_orders_by_submit(self):
        early = Job("a", 1, 10.0, submit_time=0.0)
        late = Job("b", 4000, 10.0, submit_time=5.0)
        assert priority_key(Policy.FIFO, early, 10.0) < priority_key(
            Policy.FIFO, late, 10.0
        )

    def test_capability_prefers_wide(self):
        wide = Job("w", 4000, 10.0, submit_time=5.0)
        narrow = Job("n", 2, 10.0, submit_time=0.0)
        assert priority_key(Policy.CAPABILITY, wide, 10.0) < priority_key(
            Policy.CAPABILITY, narrow, 10.0
        )

    def test_capability_aging_lifts_waiting_jobs(self):
        narrow = Job("n", 2, 10.0, submit_time=0.0)
        fresh_mid = Job("m", 50, 10.0, submit_time=0.0)
        long_wait = 3600.0 * 24
        assert priority_key(Policy.CAPABILITY, narrow, long_wait) < priority_key(
            Policy.CAPABILITY, fresh_mid, 0.0
        )


class TestScheduler:
    def test_single_job(self):
        result = Scheduler(10).run([Job("j", 4, 100.0, 0.0)])
        assert result.makespan == 100.0
        assert result.mean_wait == 0.0
        assert result.utilization == pytest.approx(0.4)

    def test_serialisation_when_full(self):
        jobs = [Job(f"j{i}", 8, 100.0, 0.0) for i in range(3)]
        result = Scheduler(10).run(jobs)
        assert result.makespan == 300.0

    def test_packing_when_jobs_fit(self):
        jobs = [Job(f"j{i}", 5, 100.0, 0.0) for i in range(4)]
        result = Scheduler(10).run(jobs)
        assert result.makespan == 200.0
        assert result.utilization == pytest.approx(1.0)

    def test_backfill_uses_idle_nodes(self):
        # wide job blocked behind a long runner; a short small job should
        # backfill into the idle nodes without delaying the wide job
        jobs = [
            Job("long", 6, 1000.0, 0.0),
            Job("wide", 10, 100.0, 1.0),
            Job("small", 2, 50.0, 2.0),
        ]
        result = Scheduler(10, Policy.FIFO).run(jobs)
        assert result.start_times["small"] < result.start_times["wide"]
        assert result.start_times["wide"] == 1000.0  # not delayed by backfill

    def test_backfill_never_delays_queue_head(self):
        jobs = [
            Job("long", 6, 1000.0, 0.0),
            Job("wide", 10, 100.0, 1.0),
            Job("blocker", 4, 5000.0, 2.0),  # fits now but would delay wide
        ]
        result = Scheduler(10, Policy.FIFO).run(jobs)
        assert result.start_times["wide"] == 1000.0
        assert result.start_times["blocker"] >= result.start_times["wide"]

    def test_capability_policy_reduces_wide_job_wait(self):
        """Under a loaded queue of mostly-small jobs, capability priority
        cuts the waits of the wide (capability) jobs relative to
        smallest-first, at the cost of mean wait — the Summit trade-off."""
        rng = np.random.default_rng(0)
        jobs = []
        for i in range(300):
            nodes = int(rng.choice([1, 2, 4, 8, 32, 512],
                                   p=[.3, .25, .2, .1, .1, .05]))
            jobs.append(Job(f"j{i}", nodes, float(rng.uniform(600, 7200)),
                            float(rng.uniform(0, 3600))))
        cap = Scheduler(4096, Policy.CAPABILITY).run(jobs)
        small = Scheduler(4096, Policy.SMALLEST_FIRST).run(jobs)
        assert cap.mean_wait_wide <= small.mean_wait_wide
        assert cap.mean_wait >= small.mean_wait  # the price of capability

    def test_oversized_job_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(10).run([Job("j", 11, 1.0, 0.0)])

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(10).run([])

    def test_all_jobs_complete(self):
        rng = np.random.default_rng(1)
        jobs = [
            Job(f"j{i}", int(rng.integers(1, 64)), float(rng.uniform(60, 600)),
                float(rng.uniform(0, 100)))
            for i in range(60)
        ]
        result = Scheduler(128).run(jobs)
        assert set(result.end_times) == {j.job_id for j in jobs}
        for job in jobs:
            assert result.start_times[job.job_id] >= job.submit_time
            assert result.end_times[job.job_id] == pytest.approx(
                result.start_times[job.job_id] + job.duration
            )

    def test_concurrent_node_usage_never_exceeds_capacity(self):
        rng = np.random.default_rng(2)
        jobs = [
            Job(f"j{i}", int(rng.integers(1, 40)), float(rng.uniform(60, 900)),
                float(rng.uniform(0, 300)))
            for i in range(50)
        ]
        capacity = 64
        result = Scheduler(capacity).run(jobs)
        events = []
        for job in jobs:
            events.append((result.start_times[job.job_id], job.nodes))
            events.append((result.end_times[job.job_id], -job.nodes))
        in_use = 0
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            in_use += delta
            assert in_use <= capacity


class TestCampaignGeneration:
    def test_jobs_per_project(self):
        projects = generate_portfolio()[:50]
        jobs = campaign_from_portfolio(projects, jobs_per_project=3, seed=0)
        assert len(jobs) == 150

    def test_jobs_sorted_by_submit_time(self):
        projects = generate_portfolio()[:30]
        jobs = campaign_from_portfolio(projects, seed=1)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)

    def test_durations_respect_walltime_limits(self):
        projects = generate_portfolio()[:100]
        jobs = campaign_from_portfolio(projects, seed=2)
        for job in jobs:
            assert job.duration <= walltime_limit(job.nodes) + 1e-9

    def test_ai_flag_propagates(self):
        projects = generate_portfolio()
        jobs = campaign_from_portfolio(projects[:20] + projects[-20:], seed=3)
        flags = {j.uses_ai for j in jobs}
        assert flags == {True, False}  # generator emits AI first, none last

    def test_ai_share_of_delivered_hours_computable(self):
        rng = np.random.default_rng(4)
        projects = generate_portfolio()
        sample = [projects[i] for i in rng.choice(len(projects), 120, replace=False)]
        jobs = campaign_from_portfolio(sample, jobs_per_project=2,
                                       horizon=24 * 3600.0, seed=4)
        result = Scheduler(4608).run(jobs)
        assert 0.0 < result.ai_share < 1.0
        assert result.delivered_node_hours > 0
