"""Per-step time decomposition for synchronous distributed training.

One optimizer step consists of ``k`` (accumulation) micro-steps of
forward+backward compute, one hierarchical gradient allreduce, and the
input-pipeline reads feeding the micro-batches. The exposed (critical-path)
time is::

    step = k * compute_micro * (1 + jitter_cv * sqrt(2 ln n_ranks))
         + max(0, comm  - overlap_fraction    * compute_micro)
         + max(0, io    - io_overlap_fraction * k * compute_micro)

The jitter term is the synchronous-SGD straggler penalty: every step waits
for the slowest of ``n_ranks`` ranks, and the expected maximum of n i.i.d.
rank times exceeds the mean by ~``sigma * sqrt(2 ln n)``.

The allreduce is modelled as an intra-node NVLink ring followed by an
inter-node InfiniBand ring over the node count (the NCCL hierarchical
scheme), and model-parallel activation exchange is added to each micro-step.

The formulas themselves live in the :mod:`repro.cost` layer:
:func:`step_breakdown` binds the configuration into the step composite from
:func:`repro.cost.step_cost_model` and evaluates it on the scalar path —
bit-identical to the handwritten decomposition it replaced. Use the
composite directly (``step_cost_model(...)`` + :func:`repro.cost.sweep`) to
evaluate whole node-count grids in one vectorized pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost import CompositeCostModel, step_cost_model
from repro.machine.gpu import Precision
from repro.machine.system import System
from repro.models.base import ModelSpec
from repro.network.link import LinkSpec
from repro.training.parallelism import DataSource, ParallelismPlan


def resolve_intra_node_link(system: System, link: LinkSpec | None) -> LinkSpec:
    """An explicit link wins; else the system's own intra-node fabric; else
    Summit's NVLink2 (the historical default, kept for compatibility)."""
    if link is not None:
        return link
    if system.intra_node_link is not None:
        return system.intra_node_link
    from repro.network.link import NVLINK2

    return NVLINK2


@dataclass(frozen=True)
class StepBreakdown:
    """Timing decomposition of one optimizer step (seconds).

    ``comm`` / ``io`` are the *total* costs; ``comm_exposed`` /
    ``io_exposed`` are what survives overlap and lands on the critical path.
    """

    compute: float
    comm: float
    comm_exposed: float
    io: float
    io_exposed: float
    mp_exchange: float
    straggler: float
    samples: int  # samples consumed per step by the whole job

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.straggler
            + self.mp_exchange
            + self.comm_exposed
            + self.io_exposed
        )

    @property
    def comm_fraction(self) -> float:
        """Share of the critical path spent in exposed gradient communication."""
        return self.comm_exposed / self.total if self.total else 0.0

    @property
    def io_fraction(self) -> float:
        return self.io_exposed / self.total if self.total else 0.0

    @property
    def compute_fraction(self) -> float:
        busy = self.compute + self.mp_exchange + self.straggler
        return busy / self.total if self.total else 0.0


def step_cost(
    model: ModelSpec,
    system: System,
    plan: ParallelismPlan,
    data_source: DataSource = DataSource.NVME,
    precision: Precision = Precision.MIXED,
    intra_node_link: LinkSpec | None = None,
) -> CompositeCostModel:
    """The step-time composite for this configuration, ready to evaluate
    at one node count (``evaluate(n_nodes=...)``) or across a whole grid
    (:func:`repro.cost.sweep` over an ``n_nodes`` axis)."""
    return step_cost_model(
        model,
        system,
        plan,
        data_source=data_source,
        precision=precision,
        intra_node_link=resolve_intra_node_link(system, intra_node_link),
    )


def step_breakdown(
    model: ModelSpec,
    system: System,
    n_nodes: int,
    plan: ParallelismPlan,
    data_source: DataSource = DataSource.NVME,
    precision: Precision = Precision.MIXED,
    intra_node_link: LinkSpec | None = None,
) -> StepBreakdown:
    """Compute the step-time decomposition for a job configuration."""
    system.require_nodes(n_nodes)
    cost = step_cost(
        model, system, plan,
        data_source=data_source,
        precision=precision,
        intra_node_link=intra_node_link,
    )
    bd = cost.evaluate(n_nodes=n_nodes)
    return StepBreakdown(
        compute=bd["compute"],
        comm=bd["comm"],
        comm_exposed=bd["comm_exposed"],
        io=bd["io"],
        io_exposed=bd["io_exposed"],
        mp_exchange=bd["mp_exchange"],
        straggler=bd["straggler"],
        samples=bd["samples"],
    )
