"""Tests for the MLP, autoencoders and gradient correctness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml import MLP, Autoencoder, VariationalAutoencoder
from repro.ml.data import latent_manifold
from repro.ml.losses import mse
from repro.ml.mlp import Dense


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 5)

    def test_wrong_input_dim_rejected(self):
        layer = Dense(3, 5)
        with pytest.raises(ConfigurationError):
            layer.forward(np.zeros((7, 4)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ConfigurationError):
            Dense(3, 5).backward(np.zeros((7, 5)))


class TestMLPGradients:
    def test_gradient_matches_finite_difference(self):
        """Backprop gradient check against central differences."""
        rng = np.random.default_rng(0)
        net = MLP([4, 6, 2], hidden_activation="tanh", seed=0)
        x = rng.normal(size=(5, 4))
        y = rng.normal(size=(5, 2))

        pred = net.forward(x)
        _, grad_out = mse(pred, y)
        net.backward(grad_out)
        analytic = [g.copy() for g in net.gradients]

        eps = 1e-6
        for p_idx, param in enumerate(net.parameters):
            flat = param.ravel()
            for k in range(0, flat.size, max(1, flat.size // 5)):
                orig = flat[k]
                flat[k] = orig + eps
                lp, _ = mse(net.forward(x), y)
                flat[k] = orig - eps
                lm, _ = mse(net.forward(x), y)
                flat[k] = orig
                numeric = (lp - lm) / (2 * eps)
                assert analytic[p_idx].ravel()[k] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                )

    def test_parameter_count(self):
        net = MLP([4, 8, 2])
        assert net.n_parameters == 4 * 8 + 8 + 8 * 2 + 2

    def test_relu_hidden_by_default(self):
        net = MLP([2, 4, 1])
        assert net.layers[0].activation_name == "relu"
        assert net.layers[-1].activation_name == "identity"


class TestMLPTraining:
    def test_learns_quadratic(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 3))
        y = (x**2).sum(axis=1, keepdims=True)
        net = MLP([3, 32, 1], seed=0)
        history = net.fit(x, y, epochs=200, lr=1e-2)
        assert history[-1] < history[0] * 0.1

    def test_custom_optimizer(self):
        from repro.optim import LAMB

        rng = np.random.default_rng(1)
        x = rng.normal(size=(128, 2))
        y = x.sum(axis=1, keepdims=True)
        net = MLP([2, 16, 1], seed=1)
        history = net.fit(x, y, epochs=100, optimizer=LAMB(lr=0.01))
        assert history[-1] < history[0]

    def test_row_mismatch_rejected(self):
        net = MLP([2, 4, 1])
        with pytest.raises(ConfigurationError):
            net.fit(np.zeros((10, 2)), np.zeros((9, 1)))

    def test_too_few_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            MLP([4])


class TestAutoencoder:
    def test_reconstruction_improves(self):
        x = latent_manifold(200, n_features=16, latent_dim=2, seed=0)
        ae = Autoencoder(16, 2, hidden=[12], seed=0)
        history = ae.fit(x, epochs=80, seed=0)
        assert history[-1] < history[0] * 0.5

    def test_encode_shape(self):
        ae = Autoencoder(16, 3, seed=0)
        z = ae.encode(np.zeros((5, 16)))
        assert z.shape == (5, 3)

    def test_outliers_score_higher(self):
        x = latent_manifold(300, n_features=16, latent_dim=2, seed=1)
        ae = Autoencoder(16, 2, hidden=[12], seed=1)
        ae.fit(x, epochs=200, seed=1)
        inlier = float(np.median(ae.reconstruction_error(x)))
        outliers = x + 3.0  # far off the training manifold
        outlier = float(np.median(ae.reconstruction_error(outliers)))
        assert outlier > 3 * inlier

    def test_invalid_latent_dim(self):
        with pytest.raises(ConfigurationError):
            Autoencoder(8, 8)


class TestVariationalAutoencoder:
    def test_elbo_decreases(self):
        x = latent_manifold(200, n_features=20, latent_dim=2, seed=2)
        vae = VariationalAutoencoder(20, 2, hidden=[16], seed=2)
        history = vae.fit(x, epochs=60, seed=2)
        assert history[-1] < history[0]

    def test_encode_returns_mean_only(self):
        vae = VariationalAutoencoder(20, 3, seed=0)
        assert vae.encode(np.zeros((4, 20))).shape == (4, 3)

    def test_sampling_is_stochastic_around_mean(self):
        x = latent_manifold(50, n_features=20, latent_dim=2, seed=3)
        vae = VariationalAutoencoder(20, 2, hidden=[16], seed=3)
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(1)
        z1 = vae.sample_latent(x, rng1)
        z2 = vae.sample_latent(x, rng2)
        assert not np.allclose(z1, z2)

    def test_latent_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            VariationalAutoencoder(8, 4)

    def test_kl_pulls_latent_toward_prior(self):
        """With a large beta the latent distribution should be near N(0,1)."""
        x = latent_manifold(300, n_features=20, latent_dim=2, seed=4)
        vae = VariationalAutoencoder(20, 2, hidden=[16], beta=10.0, seed=4)
        vae.fit(x, epochs=150, seed=4)
        mu, log_var = vae.encode_stats(x)
        assert abs(float(mu.mean())) < 0.5
        assert abs(float(np.exp(log_var).mean()) - 1.0) < 0.5
