"""repro — a reproduction of *Learning to Scale the Summit: AI for Science on
a Leadership Supercomputer* (Joubert et al., IPPS 2022).

The library has four strata (see DESIGN.md for the full inventory):

1. **Machine models** (:mod:`repro.machine`, :mod:`repro.network`,
   :mod:`repro.storage`) — Summit's nodes, fat-tree fabric and storage
   hierarchy, with the analytic cost models of Section VI-B.
2. **Training simulator** (:mod:`repro.models`, :mod:`repro.training`) —
   data/model-parallel step-time decomposition reproducing the Section IV-B
   extreme-scale results (:mod:`repro.apps`).
3. **Real ML + science substrates** (:mod:`repro.ml`, :mod:`repro.optim`,
   :mod:`repro.science`) — from-scratch networks, large-batch optimizers,
   Monte Carlo / MD / FFEA / docking engines powering the Section V
   AI-coordinated workflow case studies (:mod:`repro.workflows`).
4. **The usage survey** (:mod:`repro.portfolio`) — the Section III taxonomy,
   calibrated portfolio and analytics behind Figures 1-6 and Table III.

Quick start::

    from repro.core import SummitSimulator, ScalingStudyRunner, UsageSurvey
    from repro.training import ParallelismPlan

    sim = SummitSimulator()
    print(sim.io_report("resnet50")["summary"])

    runner = ScalingStudyRunner("bert_large", ParallelismPlan(local_batch=32))
    print(runner.table([1, 16, 256, 4032]))

    print(UsageSurvey.calibrated().report())
"""

from repro.version import __version__

__all__ = ["__version__"]
