"""A small, real machine-learning library (numpy).

The paper's workflow case studies (Section V) depend on a specific toolbox:
MLP regressors/classifiers, (variational) autoencoders for conformational
latent spaces, random forests for binding-affinity surrogates, PCA/k-means
for analysis, and genetic algorithms for compound search. This package
implements all of them from scratch so the workflow reproductions exercise
genuine training/inference code rather than placeholders.
"""

from repro.ml.autoencoder import Autoencoder, VariationalAutoencoder
from repro.ml.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.ga import GeneticAlgorithm
from repro.ml.gp import GaussianProcess
from repro.ml.kmeans import KMeans
from repro.ml.mlp import MLP, Dense
from repro.ml.pca import PCA
from repro.ml.surrogate import EnsembleSurrogate

__all__ = [
    "Autoencoder",
    "Dense",
    "DecisionTreeRegressor",
    "EnsembleSurrogate",
    "GaussianProcess",
    "GeneticAlgorithm",
    "KMeans",
    "MLP",
    "PCA",
    "RandomForestRegressor",
    "VariationalAutoencoder",
]
