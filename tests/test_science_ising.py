"""Tests for the alloy lattice model, Monte Carlo and cluster expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ConvergenceError
from repro.science.cluster_expansion import ClusterExpansion, bic_select, bic_score
from repro.science.ising import (
    AlloyLattice,
    MonteCarlo,
    estimate_critical_temperature,
    exact_critical_temperature,
)


class TestAlloyLattice:
    def test_spins_are_binary(self):
        lat = AlloyLattice(8, seed=0)
        assert set(np.unique(lat.spins)) <= {-1, 1}

    def test_odd_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AlloyLattice(7)

    def test_checkerboard_is_ground_state(self):
        lat = AlloyLattice(8, seed=0)
        lat.spins = lat._stagger.copy()
        # every bond is unlike: energy = -j * 2N
        assert lat.energy_per_site() == pytest.approx(-2.0)
        assert lat.order_parameter() == pytest.approx(1.0)

    def test_uniform_state_is_highest_energy(self):
        lat = AlloyLattice(8, seed=0)
        lat.spins = np.ones_like(lat.spins)
        assert lat.energy_per_site() == pytest.approx(2.0)
        assert lat.order_parameter() == pytest.approx(0.0)

    def test_energy_translation_invariant(self):
        lat = AlloyLattice(8, seed=1)
        e = lat.energy()
        lat.spins = np.roll(lat.spins, 3, axis=0)
        assert lat.energy() == pytest.approx(e)

    def test_correlations_shape_and_range(self):
        lat = AlloyLattice(10, seed=2)
        corr = lat.correlations()
        assert corr.shape == (4,)
        assert (np.abs(corr) <= 1.0 + 1e-12).all()

    def test_energy_consistent_with_nn_correlation(self):
        lat = AlloyLattice(12, seed=3)
        # E/site = 2 j <s s>_nn by construction
        assert lat.energy_per_site() == pytest.approx(2 * lat.correlations()[1])

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_order_parameter_bounded(self, seed):
        lat = AlloyLattice(6, seed=seed)
        assert 0.0 <= lat.order_parameter() <= 1.0


class TestMonteCarlo:
    def test_sweep_returns_acceptance_rate(self):
        mc = MonteCarlo(AlloyLattice(8, seed=0), seed=0)
        rate = mc.sweep(2.0)
        assert 0.0 <= rate <= 1.0

    def test_high_temperature_accepts_more(self):
        mc_hot = MonteCarlo(AlloyLattice(12, seed=0), seed=0)
        mc_cold = MonteCarlo(AlloyLattice(12, seed=0), seed=0)
        hot = np.mean([mc_hot.sweep(10.0) for _ in range(20)])
        cold = np.mean([mc_cold.sweep(0.5) for _ in range(20)])
        assert hot > cold

    def test_disordered_above_tc_ordered_below(self):
        lat = AlloyLattice(16, seed=0)
        mc = MonteCarlo(lat, seed=0)
        hot = mc.run(2 * exact_critical_temperature(), n_sweeps=80, n_warmup=80)
        cold = mc.run(0.5 * exact_critical_temperature(), n_sweeps=80, n_warmup=200)
        assert hot.order_parameter < 0.35
        assert cold.order_parameter > 0.9

    def test_energy_decreases_on_cooling(self):
        lat = AlloyLattice(12, seed=1)
        mc = MonteCarlo(lat, seed=1)
        results = mc.temperature_sweep([4.0, 2.0, 1.0], n_sweeps=60, n_warmup=60)
        energies = [r.energy_per_site for r in results]
        assert energies[0] > energies[-1]

    def test_specific_heat_peaks_near_tc(self):
        lat = AlloyLattice(16, seed=2)
        mc = MonteCarlo(lat, seed=2)
        temps = list(np.linspace(3.2, 1.4, 10))
        results = mc.temperature_sweep(temps, n_sweeps=150, n_warmup=120)
        tc = estimate_critical_temperature(results)
        assert abs(tc - exact_critical_temperature()) < 0.35

    def test_surrogate_energy_model_used_for_measurement(self):
        lat = AlloyLattice(8, seed=3)
        mc = MonteCarlo(lat, seed=3)
        calls = []

        def model(lattice):
            calls.append(1)
            return lattice.energy()

        result = mc.run(2.0, n_sweeps=5, n_warmup=2, energy_model=model)
        assert len(calls) == 5
        assert np.isfinite(result.energy_per_site)

    def test_invalid_temperature_rejected(self):
        mc = MonteCarlo(AlloyLattice(8, seed=0))
        with pytest.raises(ConfigurationError):
            mc.sweep(0.0)

    def test_empty_temperature_sweep_rejected(self):
        mc = MonteCarlo(AlloyLattice(8, seed=0))
        with pytest.raises(ConfigurationError):
            mc.temperature_sweep([])

    def test_estimate_requires_results(self):
        with pytest.raises(ConfigurationError):
            estimate_critical_temperature([])


class TestScalarReferenceParity:
    """The vectorised checkerboard sweep vs the site-by-site reference.

    Both paths draw one full-lattice uniform array per colour, so for the
    same seed they must agree on every spin — asserted here at the spin and
    observable level, across temperatures spanning the transition.
    """

    @pytest.mark.parametrize("temperature", [1.5, 2.27, 4.0])
    def test_sweep_trajectories_bit_identical(self, temperature):
        fast = MonteCarlo(AlloyLattice(8, seed=4), seed=9)
        ref = MonteCarlo(AlloyLattice(8, seed=4), seed=9)
        for _ in range(25):
            acc_fast = fast.sweep(temperature)
            acc_ref = ref.sweep_scalar(temperature)
            assert acc_fast == acc_ref
            assert np.array_equal(fast.lattice.spins, ref.lattice.spins)

    def test_run_observables_identical(self):
        fast = MonteCarlo(AlloyLattice(8, seed=5), seed=6)
        ref = MonteCarlo(AlloyLattice(8, seed=5), seed=6)
        a = fast.run(2.0, n_sweeps=30, n_warmup=10)
        b = ref.run(2.0, n_sweeps=30, n_warmup=10, method="scalar")
        assert a.energy_per_site == b.energy_per_site
        assert a.order_parameter == b.order_parameter
        assert a.specific_heat == b.specific_heat
        assert a.susceptibility == b.susceptibility
        assert a.acceptance_rate == b.acceptance_rate

    def test_scalar_temperature_validated(self):
        mc = MonteCarlo(AlloyLattice(8, seed=0))
        with pytest.raises(ConfigurationError):
            mc.sweep_scalar(0.0)

    def test_unknown_method_rejected(self):
        mc = MonteCarlo(AlloyLattice(8, seed=0))
        with pytest.raises(ConfigurationError):
            mc.run(2.0, n_sweeps=1, n_warmup=0, method="typo")


class TestExactTc:
    def test_onsager_value(self):
        assert exact_critical_temperature() == pytest.approx(2.26918, rel=1e-4)

    def test_scales_with_coupling(self):
        assert exact_critical_temperature(2.0) == pytest.approx(
            2 * exact_critical_temperature(1.0)
        )


def _training_data(n=40, size=10, seed=0):
    rng = np.random.default_rng(seed)
    feats, energies = [], []
    for i in range(n):
        lat = AlloyLattice(size, seed=seed + i)
        mc = MonteCarlo(lat, seed=seed + i)
        mc.run(rng.uniform(1.0, 5.0), n_sweeps=3, n_warmup=15)
        feats.append(lat.correlations())
        energies.append(lat.energy_per_site())
    return np.array(feats), np.array(energies)


class TestClusterExpansion:
    def test_bic_selects_only_the_true_term(self):
        feats, energies = _training_data()
        assert bic_select(feats, energies) == (1,)

    def test_fit_recovers_coupling(self):
        feats, energies = _training_data()
        ce = ClusterExpansion.fit(feats, energies)
        # E/site = 2 j <ss>_nn with j = 1
        assert ce.coefficients[-1] == pytest.approx(2.0, abs=1e-6)
        assert ce.training_rmse < 1e-10

    def test_callable_returns_total_energy(self):
        feats, energies = _training_data()
        ce = ClusterExpansion.fit(feats, energies)
        lat = AlloyLattice(8, seed=99)
        assert ce(lat) == pytest.approx(lat.energy(), abs=1e-6)

    def test_validation_passes_below_tolerance(self):
        feats, energies = _training_data(seed=1)
        ce = ClusterExpansion.fit(feats, energies)
        vf, ve = _training_data(n=10, seed=50)
        rmse = ce.validate(vf, ve, rmse_tolerance=1e-6)
        assert rmse < 1e-6

    def test_validation_fails_above_tolerance(self):
        feats, energies = _training_data(seed=2)
        ce = ClusterExpansion.fit(feats, energies)
        vf, ve = _training_data(n=10, seed=60)
        with pytest.raises(ConvergenceError):
            ce.validate(vf, ve + 1.0, rmse_tolerance=1e-6)

    def test_no_selection_keeps_all_terms(self):
        feats, energies = _training_data(seed=3)
        ce = ClusterExpansion.fit(feats, energies, select=False)
        assert ce.terms == (0, 1, 2, 3)

    def test_bic_penalises_extra_parameters(self):
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        pred = y + 0.1
        assert bic_score(y, pred, n_params=2) < bic_score(y, pred, n_params=5)

    def test_too_few_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterExpansion.fit(np.zeros((1, 4)), np.zeros(1))
