"""Tests for repro.network.collectives — the Section VI-B cost models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.collectives import (
    AllreduceAlgorithm,
    algorithmic_bandwidth,
    allgather_time,
    allreduce_time,
    best_allreduce_algorithm,
    binomial_tree_allreduce_time,
    broadcast_time,
    paper_allreduce_estimate,
    recursive_doubling_allreduce_time,
    reduce_scatter_time,
    ring_allreduce_time,
)
from repro.network.link import SUMMIT_INJECTION, LinkSpec

LINK = SUMMIT_INJECTION


class TestPaperEstimates:
    """The two numbers Section VI-B quotes."""

    def test_resnet50_roughly_8ms(self):
        t = paper_allreduce_estimate(100e6, LINK)
        assert t == pytest.approx(8e-3)

    def test_bert_large_roughly_110ms(self):
        t = paper_allreduce_estimate(1.4e9, LINK)
        assert t == pytest.approx(112e-3)
        assert abs(t - 110e-3) / 110e-3 < 0.05  # "roughly 110 ms"

    def test_algorithmic_bandwidth_is_half_injection(self):
        # "the algorithm (ring-based allreduce) bandwidth being half of
        # network bandwidth, i.e., 12.5 GB/s"
        bw = algorithmic_bandwidth(4608, 10e9, LINK)  # bandwidth regime
        assert bw == pytest.approx(12.5e9, rel=0.05)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_allreduce_estimate(-1, LINK)


class TestRingAllreduce:
    def test_single_rank_free(self):
        assert ring_allreduce_time(1, 1e9, LINK) == 0.0

    def test_two_ranks(self):
        t = ring_allreduce_time(2, 1e6, LINK)
        expected = 2 * LINK.latency + 2 * 0.5 * 1e6 / LINK.total_bandwidth
        assert t == pytest.approx(expected)

    def test_matches_formula_at_scale(self):
        p, m = 4608, 100e6
        t = ring_allreduce_time(p, m, LINK)
        expected = 2 * (p - 1) * LINK.latency + 2 * (p - 1) / p * m / 25e9
        assert t == pytest.approx(expected)

    def test_latency_dominates_small_messages(self):
        t = ring_allreduce_time(4608, 1e3, LINK)
        assert t > 2 * 4607 * LINK.latency * 0.99

    @given(st.integers(min_value=1, max_value=10000),
           st.floats(min_value=0, max_value=1e10))
    def test_nonnegative(self, p, m):
        assert ring_allreduce_time(p, m, LINK) >= 0.0

    @given(st.integers(min_value=2, max_value=5000))
    def test_monotone_in_message_size(self, p):
        assert ring_allreduce_time(p, 1e6, LINK) < ring_allreduce_time(p, 2e6, LINK)


class TestOtherAlgorithms:
    def test_recursive_doubling_power_of_two(self):
        t = recursive_doubling_allreduce_time(8, 1e6, LINK)
        assert t == pytest.approx(3 * (LINK.latency + 1e6 / 25e9))

    def test_recursive_doubling_non_power_pays_extra_round(self):
        t8 = recursive_doubling_allreduce_time(8, 1e6, LINK)
        t9 = recursive_doubling_allreduce_time(9, 1e6, LINK)
        assert t9 > t8

    def test_tree_is_two_phase(self):
        t = binomial_tree_allreduce_time(8, 1e6, LINK)
        assert t == pytest.approx(2 * 3 * (LINK.latency + 1e6 / 25e9))

    def test_single_rank_free_everywhere(self):
        for fn in (recursive_doubling_allreduce_time, binomial_tree_allreduce_time):
            assert fn(1, 1e9, LINK) == 0.0


class TestAlgorithmSelection:
    def test_ring_wins_large_messages(self):
        assert (
            best_allreduce_algorithm(1024, 1e9, LINK) is AllreduceAlgorithm.RING
        )

    def test_latency_optimal_wins_small_messages_many_ranks(self):
        best = best_allreduce_algorithm(4096, 1e3, LINK)
        assert best is not AllreduceAlgorithm.RING

    def test_auto_never_worse_than_ring(self):
        for p in (2, 64, 4608):
            for m in (1e3, 1e6, 1e9):
                assert allreduce_time(p, m, LINK, None) <= ring_allreduce_time(
                    p, m, LINK
                ) * (1 + 1e-12)

    def test_explicit_algorithm_dispatch(self):
        t = allreduce_time(16, 1e6, LINK, AllreduceAlgorithm.BINOMIAL_TREE)
        assert t == pytest.approx(binomial_tree_allreduce_time(16, 1e6, LINK))

    def test_invalid_p_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_time(0, 1e6, LINK)


class TestOtherCollectives:
    def test_reduce_scatter_half_of_ring_allreduce_bandwidth(self):
        p, m = 64, 1e9
        rs = reduce_scatter_time(p, m, LINK)
        ar = ring_allreduce_time(p, m, LINK)
        assert rs == pytest.approx(ar / 2)

    def test_allgather_equals_reduce_scatter_cost(self):
        assert allgather_time(32, 1e8, LINK) == pytest.approx(
            reduce_scatter_time(32, 1e8, LINK)
        )

    def test_broadcast_large_message_about_2x_bandwidth(self):
        m = 10e9
        t = broadcast_time(1024, m, LINK)
        assert t == pytest.approx(2 * m / LINK.total_bandwidth, rel=0.05)

    def test_collectives_free_for_single_rank(self):
        for fn in (reduce_scatter_time, allgather_time, broadcast_time):
            assert fn(1, 1e9, LINK) == 0.0


class TestCommunicationBoundCrossover:
    """Section VI-B: 'models larger than BERT-large become communication-
    bound for the widely used data-parallel training on Summit'."""

    def test_bert_allreduce_comparable_to_step_time(self):
        # BERT-large per-batch fwd+bwd on a V100 at ~30 % of tensor peak
        # with local batch 32 is ~230 ms; its 110 ms allreduce is "close to"
        # that and hard to hide.
        comm = paper_allreduce_estimate(1.4e9, LINK)
        compute = 32 * (6 * 350e6 * 128) / (0.30 * 125e12)
        assert 0.25 < comm / compute < 1.0

    def test_resnet_allreduce_negligible(self):
        comm = paper_allreduce_estimate(100e6, LINK)
        compute = 128 * 7.8e9 / (0.09 * 125e12)
        assert comm / compute < 0.15

    def test_crossover_message_size_between_resnet_and_10x_bert(self):
        """Find where comm equals compute for a 'generic' model and check it
        falls between ResNet-50 and a transformer 10x BERT-large."""

        def comm_over_compute(params, flops_per_sample, batch, fraction):
            comm = paper_allreduce_estimate(params * 4, LINK)
            compute = batch * flops_per_sample / (fraction * 125e12)
            return comm / comm if compute == 0 else comm / compute

        small = comm_over_compute(25.6e6, 7.8e9, 128, 0.09)
        huge = comm_over_compute(3.5e9, 6 * 3.5e9 * 128, 1, 0.30)
        assert small < 1.0 < huge
