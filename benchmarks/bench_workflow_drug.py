"""Section V-C — the drug-discovery surrogate loop (IMPECCABLE-style).

Benchmarks the screening campaign and checks the headline: the surrogate-
in-the-loop pipeline enriches true binders better than random and at least
as well as docking-rank selection at equal MD budget.
"""

from conftest import report

from repro.science.docking import CompoundLibrary, DockingOracle
from repro.workflows.case_drug import DrugDiscoveryWorkflow


def test_workflow_drug_discovery(benchmark):
    def run():
        library = CompoundLibrary.random(1500, seed=4)
        oracle = DockingOracle(seed=4)
        workflow = DrugDiscoveryWorkflow(library, oracle, seed=4)
        return workflow.run(initial=48, per_iteration=24, n_iterations=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.enrichment > result.enrichment_random
    assert result.enrichment >= result.enrichment_docking

    report(
        "Section V-C — lead-discovery enrichment at equal MD budget",
        [
            ("surrogate loop", "highest", f"{result.enrichment:.0%}"),
            ("docking-rank baseline", "lower", f"{result.enrichment_docking:.0%}"),
            ("random baseline", "lowest", f"{result.enrichment_random:.0%}"),
            ("MD evaluations", "budgeted", result.md_calls),
            ("best true affinity", "-", f"{result.best_true_affinity:.2f}"),
        ],
        header=("selection", "expected", "measured"),
    )
