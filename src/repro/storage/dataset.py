"""Training-dataset descriptors and sharding plans.

A :class:`Dataset` is characterised by sample count and bytes/sample; a
:class:`ShardingPlan` describes how it is partitioned across node-local
burst buffers, including replication for shuffle quality and whether the
dataset fits at all (the paper notes large scientific datasets "can easily
outsize [a] single NVMe volume").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.errors import CapacityError, ConfigurationError


@dataclass(frozen=True)
class Dataset:
    """A training dataset.

    ``bytes_per_sample`` is the stored (on-disk) size of one training sample;
    for the ResNet-50/ImageNet calibration of Section VI-B we use 500 kB per
    sample, which together with per-GPU throughput reproduces the paper's
    ~20 TB/s aggregate read estimate.
    """

    name: str
    n_samples: int
    bytes_per_sample: float

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ConfigurationError(f"{self.name}: need at least one sample")
        if self.bytes_per_sample <= 0:
            raise ConfigurationError(f"{self.name}: bytes_per_sample must be positive")

    @property
    def total_bytes(self) -> float:
        return self.n_samples * self.bytes_per_sample


@dataclass(frozen=True)
class ShardingPlan:
    """Partitioning of a dataset over ``n_nodes`` node-local volumes.

    Parameters
    ----------
    replication:
        Number of distinct nodes holding each shard. Replication > 1 widens
        the shuffle window without cross-node reads.
    """

    dataset: Dataset
    n_nodes: int
    nvme_bytes_per_node: float
    replication: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if self.replication > self.n_nodes:
            raise ConfigurationError("replication cannot exceed node count")
        if self.nvme_bytes_per_node <= 0:
            raise ConfigurationError("nvme_bytes_per_node must be positive")

    @property
    def bytes_per_node(self) -> float:
        """NVMe bytes each node must hold under this plan."""
        return self.dataset.total_bytes * self.replication / self.n_nodes

    @property
    def fits(self) -> bool:
        return self.bytes_per_node <= self.nvme_bytes_per_node

    @property
    def samples_per_node(self) -> int:
        return math.ceil(self.dataset.n_samples * self.replication / self.n_nodes)

    def require_fits(self) -> None:
        if not self.fits:
            raise CapacityError(
                f"{self.dataset.name}: shard of "
                f"{units.format_bytes(self.bytes_per_node)} exceeds node NVMe "
                f"capacity {units.format_bytes(self.nvme_bytes_per_node)}"
            )

    def shuffle_fraction(self) -> float:
        """Fraction of the global dataset visible to one node's local
        shuffle window. 1.0 means every node can draw any sample locally
        (perfect shuffle without network traffic)."""
        return min(1.0, self.samples_per_node / self.dataset.n_samples)


#: ImageNet-1k as stored for the ResNet-50 benchmark calibration.
IMAGENET = Dataset(name="ImageNet-1k", n_samples=1_281_167, bytes_per_sample=500 * units.KB)
