"""LARS — Layer-wise Adaptive Rate Scaling (You, Gitman & Ginsburg).

Used by Laanait et al. (Section IV-B.3, combined LARS/Adam) and the enabling
ingredient of every large-batch CNN result the paper surveys: each layer's
step is rescaled by the trust ratio ||w|| / ||g + wd w||, decoupling the
layer's effective step size from the global learning rate so a single large
LR does not blow up shallow layers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.optim.base import Optimizer, trust_ratio


class LARS(Optimizer):
    """LARS with momentum.

    ``eta`` is the trust coefficient from the paper (0.001 in the original
    publication; larger values are common for shorter schedules).
    """

    def __init__(
        self,
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        eta: float = 0.001,
    ):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        if eta <= 0:
            raise ConfigurationError("trust coefficient eta must be positive")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.eta = eta
        self._velocity: list[np.ndarray] | None = None

    def _update(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            step = g + self.weight_decay * p if self.weight_decay else g
            local_lr = self.eta * trust_ratio(p, step)
            v *= self.momentum
            v += local_lr * step
            p -= self.lr * v
