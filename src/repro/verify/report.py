"""The conformance report: one deterministic artifact gating the whole repo.

:func:`run_conformance` runs the expectation registry, the differential
battery and the invariant audits, and folds the results into a
:class:`ConformanceReport`. The JSON serialization is deliberately free of
wall-clock timestamps, host names and git state: identical seeds produce
byte-identical reports, so CI can both *gate* on the pass flag and *diff*
the artifact across commits to see exactly which paper number moved.

>>> empty = ConformanceReport(seed=0, sections=())
>>> empty.passed
True
>>> empty.counts()["expectations"]
{'total': 0, 'passed': 0, 'failed': 0}
>>> empty.to_json() == ConformanceReport(seed=0, sections=()).to_json()
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.verify.differential import DifferentialResult, run_differentials
from repro.verify.expectations import (
    CheckResult,
    VerifyContext,
    build_registry,
)
from repro.verify.invariants import InvariantResult, run_invariants

__all__ = ["ConformanceReport", "run_conformance"]

#: Bumped whenever the report layout changes, so CI consumers can detect it.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class ConformanceReport:
    """All conformance results for one seed, serializable and diffable."""

    seed: int
    sections: tuple[str, ...]
    expectations: list[CheckResult] = field(default_factory=list)
    differentials: list[DifferentialResult] = field(default_factory=list)
    invariants: list[InvariantResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            all(r.passed for r in self.expectations)
            and all(r.passed for r in self.differentials)
            and all(r.passed for r in self.invariants)
        )

    def counts(self) -> dict[str, dict[str, int]]:
        out = {}
        for layer, results in (
            ("expectations", self.expectations),
            ("differentials", self.differentials),
            ("invariants", self.invariants),
        ):
            n_pass = sum(1 for r in results if r.passed)
            out[layer] = {"total": len(results), "passed": n_pass,
                          "failed": len(results) - n_pass}
        return out

    def failures(self) -> list[str]:
        return [
            r.message()
            for results in (self.expectations, self.differentials, self.invariants)
            for r in results
            if not r.passed
        ]

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "sections": list(self.sections),
            "passed": self.passed,
            "counts": self.counts(),
            "expectations": [r.as_dict() for r in self.expectations],
            "differentials": [r.as_dict() for r in self.differentials],
            "invariants": [r.as_dict() for r in self.invariants],
        }

    def to_json(self) -> str:
        """Deterministic serialization: same seed -> byte-identical output."""
        return json.dumps(
            self.to_dict(), sort_keys=True, indent=2, default=_jsonify
        ) + "\n"

    def format(self) -> str:
        """Human-readable summary, failures expanded."""
        lines = [f"conformance report (seed {self.seed})", ""]
        for layer, c in self.counts().items():
            lines.append(
                f"  {layer:<14} {c['passed']:>3}/{c['total']} passed"
                + (f"  ({c['failed']} FAILED)" if c["failed"] else "")
            )
        by_section: dict[str, list[CheckResult]] = {}
        for r in self.expectations:
            by_section.setdefault(r.section, []).append(r)
        if by_section:
            lines.append("")
            for section in self.sections:
                results = by_section.get(section, [])
                if not results:
                    continue
                n_pass = sum(1 for r in results if r.passed)
                lines.append(f"  {section:<12} {n_pass:>3}/{len(results)}")
        failures = self.failures()
        if failures:
            lines.append("")
            lines.append("failures:")
            lines.extend(f"  {m}" for m in failures)
        lines.append("")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _jsonify(value):
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    raise TypeError(f"not JSON-serializable: {value!r}")


def _check_section(seed: int, section: str) -> list[CheckResult]:
    """Worker: measure one paper section's expectations with its own context.

    Each shard builds a private :class:`VerifyContext`, so the expensive
    cached artifacts (portfolio, app simulations, workflow campaigns) are
    computed at most once per section per worker — and because every
    measurement is deterministic in ``seed``, the sharded results are
    byte-identical to the single-context serial pass.
    """
    ctx = VerifyContext(seed=seed)
    return [
        e.check(ctx) for e in build_registry() if e.section == section
    ]


def _verify_task(seed: int, task: tuple[str, str | None]):
    kind, section = task
    if kind == "expect":
        assert section is not None
        return _check_section(seed, section)
    if kind == "differentials":
        return run_differentials(seed=seed)
    return run_invariants(seed=seed)


def run_conformance(
    seed: int = 0,
    sections: tuple[str, ...] | list[str] | None = None,
    n_jobs: int = 1,
    machine=None,
) -> ConformanceReport:
    """Run the full conformance battery and return the report.

    ``sections`` restricts the expectation registry to the named paper
    sections (e.g. ``("fig1", "section4b")``); the differential and
    invariant batteries always run in full — they are cheap and global.

    ``n_jobs > 1`` fans the work out over a process pool — one task per
    paper section plus one each for the differential and invariant
    batteries — and reassembles results in registry order, so the report
    (and its JSON bytes) is identical at every worker count.

    ``machine`` selects a registry machine. Summit (the default, also
    reachable as ``machine="summit"``) runs the full 80-entry paper-pinned
    battery through the unchanged code path — byte-identical to every
    earlier release. Any other machine has no paper numbers to pin, so it
    runs the small structural battery of
    :func:`repro.verify.machines.run_machine_conformance` instead
    (``sections`` / ``n_jobs`` do not apply there).
    """
    if machine is not None:
        from repro.machine.spec import resolve_machine

        spec = resolve_machine(machine)
        if spec.key != "summit":
            from repro.verify.machines import run_machine_conformance

            return run_machine_conformance(spec, seed=seed)
    registry = build_registry()
    if sections is not None:
        wanted = set(sections)
        unknown = wanted - {e.section for e in registry}
        if unknown:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown registry sections: {sorted(unknown)}"
            )
        registry = tuple(e for e in registry if e.section in wanted)
    ordered: dict[str, None] = {}
    for e in registry:
        ordered.setdefault(e.section, None)

    if n_jobs != 1:
        from functools import partial

        from repro.exec.parallel import ParallelMap

        tasks: list[tuple[str, str | None]] = [
            ("expect", section) for section in ordered
        ]
        tasks += [("differentials", None), ("invariants", None)]
        results = ParallelMap(n_jobs).map(partial(_verify_task, seed), tasks)
        expectations = [r for shard in results[: len(ordered)] for r in shard]
        differentials, invariants = results[len(ordered)], results[-1]
    else:
        ctx = VerifyContext(seed=seed)
        expectations = [e.check(ctx) for e in registry]
        differentials = run_differentials(seed=seed)
        invariants = run_invariants(seed=seed)
    return ConformanceReport(
        seed=seed,
        sections=tuple(ordered),
        expectations=expectations,
        differentials=differentials,
        invariants=invariants,
    )
