"""``ParallelMap``: the shard->merge primitive of the execution fabric.

One abstraction, two backends:

- ``n_jobs=1`` — a plain in-process loop, byte-for-byte the seed code path;
- ``n_jobs>1`` — a ``concurrent.futures`` process pool; tasks are
  distributed to workers but results always come back **in submission
  order**, so a caller that shards deterministically and merges in order
  is bit-identical to the serial path regardless of worker count.

The helpers encode the two sharding disciplines the repo uses:

- :func:`shard_ranges` — contiguous, balanced index ranges for axis-chunked
  work (a cost-sweep grid axis split into ``n_shards`` slices);
- :func:`spawn_seeds` — per-item child seeds via ``np.random.SeedSequence``
  spawning, keyed by *item index* rather than shard layout, so a
  Monte-Carlo ensemble draws the same streams at every ``n_jobs``.

>>> pm = ParallelMap(n_jobs=1)
>>> pm.map(abs, [-3, -1, 2])
[3, 1, 2]
>>> shard_ranges(10, 4)
[(0, 3), (3, 6), (6, 8), (8, 10)]
>>> len(spawn_seeds(0, 3)) == 3 and spawn_seeds(0, 3) == spawn_seeds(0, 3)
True
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ParallelMap", "resolve_jobs", "shard_ranges", "spawn_seeds"]


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0``/negative -> all cores."""
    if n_jobs is None or n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(n_jobs)


def shard_ranges(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` index ranges covering ``range(n_items)``.

    Shards are balanced to within one item, larger shards first, and the
    layout depends only on ``(n_items, n_shards)`` — the deterministic
    decomposition both the sweep sharder and the tests rely on.
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_items) or 1
    base, extra = divmod(n_items, n_shards)
    ranges = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def spawn_seeds(seed: int, n: int) -> list[int]:
    """``n`` independent child seeds from ``SeedSequence(seed).spawn(n)``.

    Child ``i`` depends only on ``(seed, i)`` — never on how items are later
    grouped into shards — which is what makes replica ensembles agree
    exactly between ``n_jobs=1`` and ``n_jobs=8``.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return [
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in np.random.SeedSequence(seed).spawn(n)
    ]


class ParallelMap:
    """Ordered fan-out of one picklable callable over a list of items.

    ``map(fn, items)`` returns ``[fn(x) for x in items]`` — same values,
    same order — with the work spread over ``n_jobs`` processes when
    ``n_jobs > 1``. ``fn`` and the items must be picklable for the pool
    backend (module-level functions and ``functools.partial`` of them are;
    lambdas are not).
    """

    def __init__(self, n_jobs: int = 1):
        self.n_jobs = resolve_jobs(n_jobs)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        work = list(items)
        if self.n_jobs == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        workers = min(self.n_jobs, len(work))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves submission order in its results.
            return list(pool.map(fn, work))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelMap(n_jobs={self.n_jobs})"
