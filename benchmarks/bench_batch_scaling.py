"""Empirical critical-batch benchmark on the real ML stack.

Closes the loop on the convergence model behind the Section IV-B optimizer
choices: trains the real numpy MLP at increasing batch sizes, measures
steps-to-target, and verifies the two-regime (perfect-then-diminishing)
law that makes LARS/LAMB necessary at Summit scale.
"""

from conftest import report

from repro.analysis.batch_scaling import run_batch_scaling_experiment
from repro.optim import SGD


def test_empirical_critical_batch(benchmark):
    def run():
        return run_batch_scaling_experiment(
            lambda: SGD(lr=0.02, momentum=0.9),
            batch_sizes=[16, 64, 256, 1024],
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    steps = result.steps_to_target
    assert all(a >= b for a, b in zip(steps, steps[1:]))
    # 64x batch increase buys far less than 64x step reduction
    assert steps[0] / steps[-1] < 16
    assert 8 < result.fitted_critical_batch < 2048

    rows = [
        (f"B={b}", s, f"{steps[0] / s:.1f}x", f"{steps[0] / steps[0] * b / 16:.0f}x")
        for b, s in zip(result.batch_sizes, steps)
    ]
    report(
        "Empirical batch scaling (real MLP + SGD, sqrt LR rule)",
        rows,
        header=("batch", "steps", "speedup", "perfect"),
    )
    print(f"  fitted: S_min ~ {result.fitted_min_samples:.0f} samples, "
          f"B_crit ~ {result.fitted_critical_batch:.0f}")
