"""The DeepDriveMD steering pattern (steering motif, Table I).

Casalino, Amaro and the Section V-C pipeline all share this loop:

1. run an ensemble of simulation segments;
2. train an autoencoder on every conformation descriptor seen so far;
3. score recent frames by latent-space novelty (reconstruction error);
4. restart the ensemble from the most novel states.

The loop is generic over a :class:`SteerableSimulator` — anything that can
run a segment, expose descriptors, and be snapshotted/restored. Adapters
exist for the MD engine and the mass-spring model (see the case studies).

The figure of merit is *exploration*: the volume of descriptor space covered
per unit of simulation work, compared against the same budget of unsteered
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.autoencoder import Autoencoder


class SteerableSimulator(Protocol):
    """What the steering loop needs from a simulation."""

    def run_segment(self, n_frames: int) -> np.ndarray:
        """Advance and return (n_frames, n_features) descriptors."""
        ...

    def snapshot(self) -> Any:
        """Opaque restorable state of the current configuration."""
        ...

    def restore(self, state: Any) -> None: ...


@dataclass
class SteeringResult:
    """Outcome of a steering campaign."""

    frames: np.ndarray  # all descriptors seen, (n, d)
    rounds: int
    restarts: int
    coverage: float  # mean pairwise spread of visited descriptors
    novelty_history: list[float]  # mean outlier score per round

    @staticmethod
    def measure_coverage(frames: np.ndarray) -> float:
        """Total per-feature standard deviation — a cheap, monotone proxy
        for explored volume that is comparable across equal-budget runs."""
        if frames.ndim != 2 or frames.shape[0] < 2:
            raise ConfigurationError("need at least two frames")
        return float(frames.std(axis=0).sum())


class SteeringLoop:
    """AE-guided adaptive sampling over an ensemble of simulators."""

    def __init__(
        self,
        simulators: list[SteerableSimulator],
        latent_dim: int = 2,
        frames_per_segment: int = 20,
        ae_epochs: int = 40,
        restart_fraction: float = 0.5,
        seed: int | None = None,
    ):
        if not simulators:
            raise ConfigurationError("need at least one simulator")
        if frames_per_segment < 2:
            raise ConfigurationError("frames_per_segment must be >= 2")
        if not 0 < restart_fraction <= 1:
            raise ConfigurationError("restart_fraction must be in (0, 1]")
        self.simulators = simulators
        self.latent_dim = latent_dim
        self.frames_per_segment = frames_per_segment
        self.ae_epochs = ae_epochs
        self.restart_fraction = restart_fraction
        self.seed = seed

    def run(self, n_rounds: int) -> SteeringResult:
        if n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        rng = np.random.default_rng(self.seed)
        all_frames: list[np.ndarray] = []
        # snapshots aligned with each stored frame, for restarts
        frame_states: list[Any] = []
        restarts = 0
        novelty_history: list[float] = []
        autoencoder: Autoencoder | None = None

        for round_idx in range(n_rounds):
            round_frames = []
            for sim in self.simulators:
                segment = sim.run_segment(self.frames_per_segment)
                round_frames.append(segment)
                all_frames.append(segment)
                frame_states.extend([sim.snapshot()] * len(segment))

            stacked = np.vstack(all_frames)
            n_features = stacked.shape[1]
            if autoencoder is None:
                autoencoder = Autoencoder(
                    n_features,
                    min(self.latent_dim, n_features - 1),
                    hidden=[max(8, n_features // 2)],
                    seed=self.seed,
                )
            autoencoder.fit(
                stacked, epochs=self.ae_epochs,
                seed=None if self.seed is None else self.seed + round_idx,
            )
            scores = autoencoder.reconstruction_error(stacked)
            novelty_history.append(float(scores.mean()))

            if round_idx == n_rounds - 1:
                break

            # restart the chosen fraction of simulators from the most novel
            # stored states
            n_restart = max(1, int(len(self.simulators) * self.restart_fraction))
            novel_order = np.argsort(scores)[::-1]
            chosen = rng.choice(
                len(self.simulators), size=n_restart, replace=False
            )
            for rank, sim_idx in enumerate(chosen):
                state = frame_states[int(novel_order[rank % len(novel_order)])]
                self.simulators[sim_idx].restore(state)
                restarts += 1

        frames = np.vstack(all_frames)
        return SteeringResult(
            frames=frames,
            rounds=n_rounds,
            restarts=restarts,
            coverage=SteeringResult.measure_coverage(frames),
            novelty_history=novelty_history,
        )

    def run_unsteered(self, n_rounds: int) -> SteeringResult:
        """Equal-budget baseline: same segments, no AE, no restarts."""
        if n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        all_frames = [
            sim.run_segment(self.frames_per_segment)
            for _ in range(n_rounds)
            for sim in self.simulators
        ]
        frames = np.vstack(all_frames)
        return SteeringResult(
            frames=frames,
            rounds=n_rounds,
            restarts=0,
            coverage=SteeringResult.measure_coverage(frames),
            novelty_history=[],
        )
