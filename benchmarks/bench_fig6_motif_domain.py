"""Figure 6 — AI motif vs science domain matrix.

Stated shape constraints, all asserted: Engineering x Submodel is the most
prominent cell; Earth Science also uses Submodels; Biology has NO Submodels
but does use MD Potentials and Steering; Materials dominates MD Potentials
(Fusion/Plasma a lighter user); Computer Science is Classification-heavy
with no Math/CS-Algorithm entries.
"""

from conftest import report

from repro.portfolio import Domain, Motif, PortfolioAnalytics, generate_portfolio
from repro.portfolio import reference as ref


def test_fig6_motif_by_domain(benchmark):
    projects = generate_portfolio()

    def compute():
        return PortfolioAnalytics(projects).motif_by_domain()

    matrix = benchmark(compute)

    cells = [
        (count, motif, domain)
        for motif, row in matrix.items()
        for domain, count in row.items()
    ]
    top = max(cells, key=lambda cell: cell[0])
    assert (top[1], top[2]) == (Motif.SUBMODEL, Domain.ENGINEERING)
    assert matrix[Motif.SUBMODEL][Domain.EARTH_SCIENCE] > 0
    assert matrix[Motif.SUBMODEL][Domain.BIOLOGY] == 0
    assert matrix[Motif.MD_POTENTIAL][Domain.BIOLOGY] > 0
    assert matrix[Motif.STEERING][Domain.BIOLOGY] > 0
    md_row = matrix[Motif.MD_POTENTIAL]
    assert md_row[Domain.MATERIALS] == max(md_row.values())
    assert md_row[Domain.FUSION_PLASMA] > 0
    assert matrix[Motif.CLASSIFICATION][Domain.COMPUTER_SCIENCE] == max(
        matrix[Motif.CLASSIFICATION].values()
    )
    assert matrix[Motif.MATH_CS_ALGORITHM][Domain.COMPUTER_SCIENCE] == 0
    # exact reproduction of the calibrated matrix
    for motif, row in ref.MOTIF_DOMAIN_MATRIX.items():
        for domain, expected in row.items():
            assert matrix[motif][domain] == expected

    abbrev = ["BIO", "CHE", "CS", "EAR", "ENG", "FUS", "MAT", "NUC", "PHY"]
    rows = [
        (motif.value, *[matrix[motif][d] for d in Domain]) for motif in Motif
    ]
    report(
        "Fig. 6 — motif x domain counts",
        rows,
        header=("motif", *abbrev),
    )
