"""A small deterministic discrete-event simulation engine.

Used by the workflow executor (:mod:`repro.workflows`) to model task timing
across facilities, and by the scheduler studies. The engine is deliberately
minimal: an event queue (calendar-queue scheduler by default, with the
legacy heap kept as the differential-testing reference), generator-based
processes plus a generator-free :class:`Timer` fast path, and capacity
resources — enough to express job queues, staged pipelines and coupled
simulation loops without pulling in an external simulation framework.
"""

from repro.sim.calqueue import (
    ENGINE_IMPLS,
    CalendarQueue,
    HeapQueue,
    make_event_queue,
    resolve_engine_impl,
)
from repro.sim.engine import Engine, Interrupt, Process, Timeout, Timer
from repro.sim.resources import Resource
from repro.sim.timerbank import (
    TIMER_BANK_ENV,
    ArrivalBank,
    DeadlineBank,
    ExponentialRearm,
    TimerBank,
    resolve_timer_bank,
)
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "ENGINE_IMPLS",
    "TIMER_BANK_ENV",
    "ArrivalBank",
    "CalendarQueue",
    "DeadlineBank",
    "Engine",
    "ExponentialRearm",
    "HeapQueue",
    "Interrupt",
    "Process",
    "Resource",
    "TimerBank",
    "Timeout",
    "Timer",
    "Trace",
    "TraceEvent",
    "make_event_queue",
    "resolve_engine_impl",
    "resolve_timer_bank",
]
