"""The survey taxonomies: Tables I and II plus supporting enumerations."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TaxonomyError


class Motif(enum.Enum):
    """Science-application AI motifs (Table I).

    ``MD_POTENTIAL`` is called out in Table I as a special case of
    ``SUBMODEL`` but is tracked separately, as Figures 5-6 do.
    """

    FAULT_DETECTION = "fault detection"
    MATH_CS_ALGORITHM = "math/cs algorithm"
    SUBMODEL = "submodel"
    MD_POTENTIAL = "md potential"
    STEERING = "steering"
    SURROGATE_MODEL = "surrogate model"
    ANALYSIS = "analysis"
    ML_MODSIM_LOOP = "ml + modsim loop"
    CLASSIFICATION = "classification"
    VARIOUS = "various"
    UNDETERMINED = "undetermined"


@dataclass(frozen=True)
class MotifDefinition:
    """One row of Table I."""

    motif: Motif
    definition: str
    example: str


#: Table I, verbatim condensations of the paper's definitions and examples.
MOTIF_DEFINITIONS: dict[Motif, MotifDefinition] = {
    d.motif: d
    for d in (
        MotifDefinition(
            Motif.FAULT_DETECTION,
            "detect algorithmic or other failure in execution, send signal "
            "for automatic or manual remediation",
            "detect simulation defect caused by execution error",
        ),
        MotifDefinition(
            Motif.MATH_CS_ALGORITHM,
            "ML is used to enhance some mathematical (non-science-proper) "
            "computation",
            "solver's linear system dimension is reduced based on "
            "machine-learned parameter",
        ),
        MotifDefinition(
            Motif.SUBMODEL,
            "a (proper) subset of a science computation is replaced by an "
            "ML model",
            "physics-based radiation model in a climate code replaced by "
            "ML model",
        ),
        MotifDefinition(
            Motif.MD_POTENTIAL,
            "molecular dynamics potentials trained by ML (special case of "
            "submodel)",
            "machine-learned SNAP/DeePMD interatomic potentials",
        ),
        MotifDefinition(
            Motif.STEERING,
            "automatic steering of the direction of a computation for some "
            "internal process",
            "ML method to guide Monte Carlo sampling to include "
            "undersampled regions",
        ),
        MotifDefinition(
            Motif.SURROGATE_MODEL,
            "full science model replaced by ML approximation that captures "
            "important aspects, used for speed or science understanding",
            "data from tokamak simulation runs used to train surrogate model",
        ),
        MotifDefinition(
            Motif.ANALYSIS,
            "results from modeling and simulation runs are analyzed by a "
            "human using ML methods",
            "use graph neural networks to analyze results of MD simulation",
        ),
        MotifDefinition(
            Motif.ML_MODSIM_LOOP,
            "both ML and traditional modsim, coupled",
            "MD in loop used to refine deep learning model via active "
            "learning",
        ),
        MotifDefinition(
            Motif.CLASSIFICATION,
            "pure ML with little or no modsim used to classify some "
            "phenomenon; includes some other methods like reinforcement "
            "learning",
            "deep neural network inference to detect rare astrophysical "
            "event",
        ),
        MotifDefinition(
            Motif.VARIOUS,
            "umbrella project with multiple unrelated subprojects using "
            "possibly different kinds of AI/ML",
            "CAAR/ESP/NESAP application readiness",
        ),
        MotifDefinition(
            Motif.UNDETERMINED,
            "manner of AI/ML use is undetermined",
            "project is exploring AI/ML use but gives no details",
        ),
    )
}


class Domain(enum.Enum):
    """Science domains (Table II)."""

    BIOLOGY = "Biology"
    CHEMISTRY = "Chemistry"
    COMPUTER_SCIENCE = "Computer Science"
    EARTH_SCIENCE = "Earth Science"
    ENGINEERING = "Engineering"
    FUSION_PLASMA = "Fusion and Plasma"
    MATERIALS = "Materials"
    NUCLEAR_ENERGY = "Nuclear Energy"
    PHYSICS = "Physics"


#: Table II: the 48 science subdomains grouped into nine domains.
DOMAIN_SUBDOMAINS: dict[Domain, tuple[str, ...]] = {
    Domain.BIOLOGY: (
        "Bioinformatics", "Biophysics", "Life Sciences", "Medical Science",
        "Neuroscience", "Proteomics", "Systems Biology",
    ),
    Domain.CHEMISTRY: ("Chemistry", "Physical Chemistry"),
    Domain.COMPUTER_SCIENCE: ("Computer Science", "Machine Learning"),
    Domain.EARTH_SCIENCE: (
        "Atmospheric Science", "Climate", "Geosciences",
        "Geographic Information Systems",
    ),
    Domain.ENGINEERING: (
        "Aerodynamics", "Bioenergy", "Combustion", "Engineering",
        "Fluid Dynamics", "Turbulence",
    ),
    Domain.FUSION_PLASMA: ("Fusion Energy", "Plasma Physics"),
    Domain.MATERIALS: (
        "Materials Science", "Nanoelectronics", "Nanomechanics",
        "Nanophotonics", "Nanoscience",
    ),
    Domain.NUCLEAR_ENERGY: ("Nuclear Fission", "Nuclear Fuel Cycle"),
    Domain.PHYSICS: (
        "Accelerator Physics", "Astrophysics", "Cosmology",
        "Atomic/Molecular Physics", "Condensed Matter Physics",
        "High Energy Physics", "Lattice Gauge Theory", "Nuclear Physics",
        "Physics", "Solar/Space Physics",
    ),
}


class Program(enum.Enum):
    """Allocation programs and cohorts studied (Sections II-B, II-C)."""

    INCITE = "INCITE"
    ALCC = "ALCC"
    DD = "DD"
    COVID = "COVID"  # COVID-19 HPC Consortium projects not overlapping DD
    ECP = "ECP"
    GORDON_BELL = "Gordon Bell"


class AdoptionStatus(enum.Enum):
    """AI/ML usage status (Section II-C)."""

    ACTIVE = "active"
    INACTIVE = "inactive"  # past / planned / exploratory / companion use
    NONE = "none"


class MLMethod(enum.Enum):
    """ML method classes of Figure 3."""

    DEEP_LEARNING = "DL/NN"
    OTHER = "other"  # SVM, forests, PCA, regressions, boosted trees, ...
    UNDETERMINED = "undetermined"


def subdomain_domain(subdomain: str) -> Domain:
    """Map a 3-letter-code-style subdomain name back to its domain.

    >>> subdomain_domain("Climate").value
    'Earth Science'
    """
    for domain, subs in DOMAIN_SUBDOMAINS.items():
        if subdomain in subs:
            return domain
    raise TaxonomyError(f"unknown subdomain {subdomain!r}")
