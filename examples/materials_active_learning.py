#!/usr/bin/env python
"""Materials workflow (Liu et al., Section V-A): ML-accelerated statistical
mechanics of a binary alloy.

The expensive "first-principles" energy (our exact lattice Hamiltonian,
every call metered) labels a handful of configurations; a BIC-selected
cluster expansion learns the energetics; Monte Carlo with the surrogate in
the loop then sweeps temperature and locates the order-disorder transition,
which for this model is known exactly (Onsager: T_c ~ 2.269 J/k_B).

Run:  python examples/materials_active_learning.py
"""

from repro.workflows.case_materials import MaterialsWorkflow


def main() -> None:
    print("ML-accelerated alloy statistical mechanics")
    print("=" * 60)

    workflow = MaterialsWorkflow(lattice_size=16, seed=7)
    result = workflow.run(n_training=48, n_sweeps=120, n_warmup=120)

    print(f"Cluster expansion: selected correlation terms {result.ce_terms} "
          f"(0=point, 1=nn pair, 2=2nn, 3=3nn), training RMSE "
          f"{result.ce_rmse:.2e} per site")
    print(f"Expensive (first-principles) evaluations: {result.expensive_calls}")
    print(f"Surrogate evaluations during MC:          {result.mc_energy_evaluations}")
    print(f"Expensive-call reduction factor:          {result.call_reduction:.0f}x")
    print()

    print(f"{'T':>6} {'energy/site':>12} {'order param':>12} {'C_v':>8}")
    for row in result.sweep:
        print(
            f"{row.temperature:>6.2f} {row.energy_per_site:>12.4f} "
            f"{row.order_parameter:>12.3f} {row.specific_heat:>8.2f}"
        )
    print()
    print(f"Estimated T_c (specific-heat peak): {result.tc_estimate:.3f}")
    print(f"Exact T_c (Onsager):                {result.tc_exact:.3f}")
    print(f"Relative error:                     {result.tc_relative_error:.1%}")


if __name__ == "__main__":
    main()
