"""Tests for repro.network.link, .topology and .routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.link import EDR_RAIL, NVLINK2, SUMMIT_INJECTION, LinkSpec
from repro.network.routing import Router, RoutingPolicy
from repro.network.topology import FatTree, FatTreeSpec


class TestLinkSpec:
    def test_summit_injection_is_25_gbs(self):
        assert SUMMIT_INJECTION.total_bandwidth == 25e9

    def test_dual_rail_doubles_bandwidth_not_latency(self):
        assert SUMMIT_INJECTION.total_bandwidth == 2 * EDR_RAIL.total_bandwidth
        assert SUMMIT_INJECTION.latency == EDR_RAIL.latency

    def test_transfer_time_alpha_beta(self):
        link = LinkSpec(latency=1e-6, bandwidth=10e9)
        assert link.transfer_time(10e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_size_costs_latency(self):
        assert EDR_RAIL.transfer_time(0) == EDR_RAIL.latency

    def test_effective_bandwidth_below_peak(self):
        assert EDR_RAIL.effective_bandwidth(1e3) < EDR_RAIL.total_bandwidth

    def test_effective_bandwidth_approaches_peak(self):
        assert EDR_RAIL.effective_bandwidth(1e12) == pytest.approx(
            EDR_RAIL.total_bandwidth, rel=1e-3
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            EDR_RAIL.transfer_time(-1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(latency=-1, bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            LinkSpec(latency=1e-6, bandwidth=0)
        with pytest.raises(ConfigurationError):
            LinkSpec(latency=1e-6, bandwidth=1e9, rails=0)

    @given(st.floats(min_value=1, max_value=1e12))
    def test_transfer_time_monotone_in_size(self, size):
        assert NVLINK2.transfer_time(size) <= NVLINK2.transfer_time(size * 2)


class TestFatTreeSpec:
    def test_nonblocking_split(self):
        spec = FatTreeSpec(hosts=100, radix=36)
        assert spec.hosts_per_leaf == 18
        assert spec.uplinks_per_leaf == 18

    def test_tapered_tree_has_more_host_ports(self):
        spec = FatTreeSpec(hosts=100, radix=36, taper=2.0)
        assert spec.hosts_per_leaf == 27
        assert spec.uplinks_per_leaf == 9

    def test_three_level_radix36_covers_summit(self):
        # Summit's ~4608 nodes fit in a 3-level radix-36 non-blocking tree
        spec = FatTreeSpec(hosts=4608, radix=36, levels=3)
        assert spec.max_hosts >= 4608

    def test_rejects_odd_radix(self):
        with pytest.raises(ConfigurationError):
            FatTreeSpec(hosts=10, radix=7)

    def test_rejects_bad_levels(self):
        with pytest.raises(ConfigurationError):
            FatTreeSpec(hosts=10, radix=8, levels=4)

    def test_rejects_taper_below_one(self):
        with pytest.raises(ConfigurationError):
            FatTreeSpec(hosts=10, radix=8, taper=0.5)


class TestFatTree:
    def test_overflow_rejected(self):
        spec = FatTreeSpec(hosts=10_000, radix=8, levels=2)
        with pytest.raises(ConfigurationError):
            FatTree(spec)

    def test_all_hosts_present(self):
        tree = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))
        hosts = [n for n, d in tree.graph.nodes(data=True) if d["kind"] == "host"]
        assert len(hosts) == 32

    def test_connected(self):
        import networkx as nx

        tree = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))
        assert nx.is_connected(tree.graph)

    def test_three_level_connected(self):
        import networkx as nx

        tree = FatTree(FatTreeSpec(hosts=48, radix=8, levels=3))
        assert nx.is_connected(tree.graph)

    def test_same_leaf_hop_count(self):
        tree = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))
        # hosts 0 and 1 share a leaf: host-leaf-host = 2 hops
        assert tree.hop_count(0, 1) == 2

    def test_cross_tree_hop_count_bounded_by_diameter(self):
        tree = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))
        assert tree.hop_count(0, 31) <= tree.diameter_hops()

    def test_self_hop_zero(self):
        tree = FatTree(FatTreeSpec(hosts=8, radix=8, levels=2))
        assert tree.hop_count(3, 3) == 0

    def test_bisection_scales_with_hosts(self):
        small = FatTree(FatTreeSpec(hosts=16, radix=8, levels=2))
        large = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))
        assert large.bisection_links() > small.bisection_links()

    def test_host_index_out_of_range(self):
        tree = FatTree(FatTreeSpec(hosts=8, radix=8, levels=2))
        with pytest.raises(ConfigurationError):
            tree.host(8)


class TestRouter:
    @pytest.fixture
    def tree(self):
        return FatTree(FatTreeSpec(hosts=16, radix=8, levels=2))

    def test_adaptive_spreads_load(self, tree):
        # all-to-one (incast) flows from distinct leaves
        flows = [(i, 0) for i in range(8, 16)]
        static = Router(tree, RoutingPolicy.STATIC).route(flows)
        adaptive = Router(tree, RoutingPolicy.ADAPTIVE).route(flows)
        assert adaptive.max_load <= static.max_load

    def test_no_flows_rejected(self, tree):
        with pytest.raises(ConfigurationError):
            Router(tree).route([])

    def test_self_flow_is_free(self, tree):
        result = Router(tree).route([(1, 1)])
        assert result.max_load == 0.0
        assert result.slowdown == 1.0

    def test_single_flow_unit_load(self, tree):
        result = Router(tree, RoutingPolicy.STATIC).route([(0, 15)])
        assert result.max_load == pytest.approx(1.0)

    def test_slowdown_at_least_one(self, tree):
        result = Router(tree).route([(0, 15), (1, 14), (2, 13)])
        assert result.slowdown >= 1.0
