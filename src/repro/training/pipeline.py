"""Pipeline-parallel training analysis.

Section VI-B closes: "models larger than BERT-large become communication-
bound for the widely used data-parallel training on Summit. High-performance
interconnect and/or generic model parallelization is essential for good
scaling efficiency on future platforms." This module quantifies the
"generic model parallelization" branch with the standard GPipe-style
pipeline model:

- the model is split into ``stages`` sequential stages across GPUs;
- each optimizer step streams ``micro_batches`` micro-batches through the
  pipeline; the *bubble* (idle) fraction is (s - 1) / (m + s - 1);
- inter-stage traffic per micro-batch is one activation tensor each way, a
  point-to-point transfer instead of a global allreduce;
- data parallelism across pipeline replicas then needs an allreduce of only
  1/s of the parameters per member.

``compare_strategies`` answers the paper's question directly: for a model
past the data-parallel crossover, which layout sustains higher throughput
on Summit-like hardware?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.gpu import Precision
from repro.machine.system import System
from repro.models.base import ModelSpec
from repro.network.collectives import allreduce_time
from repro.network.link import LinkSpec
from repro.training.step_time import resolve_intra_node_link


@dataclass(frozen=True)
class PipelinePlan:
    """A pipeline-parallel layout for one model replica."""

    stages: int
    micro_batches: int
    micro_batch_size: int = 1

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ConfigurationError("stages must be >= 1")
        if self.micro_batches < 1:
            raise ConfigurationError("micro_batches must be >= 1")
        if self.micro_batch_size < 1:
            raise ConfigurationError("micro_batch_size must be >= 1")

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction of the pipeline: (s - 1) / (m + s - 1)."""
        s, m = self.stages, self.micro_batches
        return (s - 1) / (m + s - 1)

    @property
    def batch_per_replica(self) -> int:
        return self.micro_batches * self.micro_batch_size


@dataclass(frozen=True)
class PipelineBreakdown:
    """Per-optimizer-step timing of a pipelined replica group."""

    compute: float  # ideal (bubble-free) compute time
    bubble: float  # pipeline fill/drain idle time
    stage_comm: float  # exposed inter-stage activation traffic
    dp_allreduce: float  # data-parallel gradient reduction (per step)
    samples: int

    @property
    def total(self) -> float:
        return self.compute + self.bubble + self.stage_comm + self.dp_allreduce

    @property
    def throughput(self) -> float:
        return self.samples / self.total


def pipeline_step(
    model: ModelSpec,
    system: System,
    n_nodes: int,
    plan: PipelinePlan,
    dp_replicas: int | None = None,
    stage_link: LinkSpec | None = None,
    precision: Precision = Precision.MIXED,
) -> PipelineBreakdown:
    """Time one optimizer step of pipeline (+ data) parallel training.

    Stages live on consecutive GPUs; with ``stages <= 6`` the stage link is
    NVLink, beyond that the fabric. ``dp_replicas`` defaults to all GPUs
    divided by the stage count.
    """
    system.require_nodes(n_nodes)
    node = system.node
    if node.gpus is None:
        raise ConfigurationError(f"{system.name} has no GPUs")
    n_gpus = n_nodes * node.gpu_count
    if plan.stages > n_gpus:
        raise ConfigurationError("more stages than GPUs")
    replicas = dp_replicas if dp_replicas is not None else n_gpus // plan.stages
    if replicas < 1 or replicas * plan.stages > n_gpus:
        raise ConfigurationError("replica/stage layout exceeds GPU count")

    link = (
        resolve_intra_node_link(system, stage_link)
        if plan.stages <= node.gpu_count
        else system.interconnect
    )

    # per-micro-batch compute of one stage (the pipeline's clock period)
    micro_flops = plan.micro_batch_size * model.effective_flops_per_sample
    stage_time = micro_flops / plan.stages / model.sustained_flops(node.gpus, precision)
    ideal_compute = plan.micro_batches * plan.stages * stage_time / plan.stages
    # total = m * stage_time per stage pipeline; fill/drain adds (s-1) periods
    bubble = (plan.stages - 1) * stage_time

    # inter-stage activations: forward + backward per micro-batch per boundary;
    # transfers overlap with compute of other micro-batches except at the
    # boundaries of the schedule — model the exposed part as one transfer per
    # stage boundary (fill) each way.
    act_bytes = (
        model.activation_bytes_per_sample or model.bytes_per_sample
    ) * plan.micro_batch_size / plan.stages
    stage_comm = 2 * (plan.stages - 1) * link.transfer_time(act_bytes)

    # data-parallel allreduce over replicas, message = params/stages
    if replicas > 1:
        message = model.gradient_bytes / plan.stages
        dp_allreduce = allreduce_time(replicas, message, system.interconnect, None)
    else:
        dp_allreduce = 0.0

    samples = replicas * plan.batch_per_replica
    return PipelineBreakdown(
        compute=ideal_compute,
        bubble=bubble,
        stage_comm=stage_comm,
        dp_allreduce=dp_allreduce,
        samples=samples,
    )


def compare_strategies(
    model: ModelSpec,
    system: System,
    n_nodes: int,
    local_batch: int,
    stages: int = 6,
) -> dict[str, float]:
    """Throughput of pure data parallelism vs pipeline+data hybrid for the
    same global batch on the same nodes. Returns samples/s per strategy."""
    from repro.training.parallelism import DataSource, ParallelismPlan
    from repro.training.step_time import step_breakdown

    dp = step_breakdown(
        model, system, n_nodes,
        ParallelismPlan(local_batch=local_batch, overlap_fraction=0.0),
        DataSource.MEMORY,
    )
    pipeline = pipeline_step(
        model, system, n_nodes,
        PipelinePlan(stages=stages, micro_batches=local_batch,
                     micro_batch_size=1),
    )
    return {
        "data_parallel": dp.samples / dp.total,
        "pipeline_hybrid": pipeline.throughput,
    }
