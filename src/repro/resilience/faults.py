"""Failure models and the engine-level failure injector.

Section VI of the paper argues that at full-Summit scale the job-wide mean
time between failures shrinks linearly with node count: a 4 608-node job on
hardware with a 5-year per-node MTBF sees a failure roughly every 9.5 hours.
:class:`NodeFailureModel` captures that composition law;
:class:`FailureInjector` turns it into concrete, seeded, exponential
failure events on the discrete-event engine, interrupting whatever process
represents the work running on the failed node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Engine, Process, Timer

#: Default per-node MTBF (5 years), the figure used throughout the examples.
DEFAULT_NODE_MTBF_SECONDS = 5 * 365 * 24 * 3600.0


@dataclass(frozen=True)
class NodeFailureModel:
    """Exponential per-node failures composing across a job's nodes."""

    node_mtbf_seconds: float = DEFAULT_NODE_MTBF_SECONDS

    def __post_init__(self) -> None:
        if self.node_mtbf_seconds <= 0:
            raise ConfigurationError("node MTBF must be positive")

    def system_mtbf(self, n_nodes: int) -> float:
        """Job-wide MTBF: failure rates add across ``n_nodes`` nodes."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        return self.node_mtbf_seconds / n_nodes

    def expected_failures(self, n_nodes: int, wall_seconds: float) -> float:
        """Expected failure count over ``wall_seconds`` of a job's wall-clock."""
        if wall_seconds < 0:
            raise ConfigurationError("negative wall-clock span")
        return wall_seconds / self.system_mtbf(n_nodes)

    def draw_failure_times(
        self, n_nodes: int, horizon: float, rng: np.random.Generator
    ) -> list[float]:
        """Poisson-process failure times in ``[0, horizon)`` for a job."""
        mtbf = self.system_mtbf(n_nodes)
        times: list[float] = []
        t = float(rng.exponential(mtbf))
        while t < horizon:
            times.append(t)
            t += float(rng.exponential(mtbf))
        return times


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure: when it struck and which node index died."""

    time: float
    node: int


@dataclass
class FailureInjector:
    """Draws node failures on an :class:`Engine` and interrupts the victim.

    Spawn one injector per job-like process via :meth:`attach`; it waits
    exponential inter-failure times at the job's system MTBF and throws an
    :class:`~repro.sim.engine.Interrupt` (whose ``cause`` is a
    :class:`FailureEvent`) into the target. The injector stops when the
    target finishes or when it is itself interrupted.

    The injector never blocks on anything but its own clock, so it rides
    the engine's generator-free :class:`~repro.sim.engine.Timer` fast path:
    each expiry is one plain callback, with no generator frame on the
    engine's hot loop. The failure times, the rng draw order (exponential
    wait, then victim node index, alternating) and the interrupt timeline
    are identical to the historical generator implementation.

    Deterministic: the same seed yields the same failure times.

    When the engine carries a :class:`~repro.telemetry.Telemetry` handle
    (or one is passed explicitly), every injection lands as a fault instant
    event plus a ``faults.injected`` counter increment.
    """

    engine: Engine
    model: NodeFailureModel = field(default_factory=NodeFailureModel)
    seed: int = 0
    events: list[FailureEvent] = field(default_factory=list)
    telemetry: Any = None  # Telemetry | None; falls back to engine.telemetry

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        if self.telemetry is None:
            self.telemetry = self.engine.telemetry

    def attach(self, target: Process, n_nodes: int) -> Process:
        """Spawn the injector timer stalking ``target``; returns it."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        mtbf = self.model.system_mtbf(n_nodes)

        def fire() -> float | None:
            if target.finished:
                return None
            event = FailureEvent(
                time=self.engine.now,
                node=int(self._rng.integers(0, n_nodes)),
            )
            self.events.append(event)
            if self.telemetry is not None:
                self.telemetry.instant(
                    f"failure:node{event.node}", "fault",
                    facility="faults", track=target.name,
                    time=event.time, node=event.node,
                    target=target.name,
                )
                self.telemetry.metrics.counter("faults.injected").inc()
            target.interrupt(event)
            return float(self._rng.exponential(mtbf))

        proc = self.engine.spawn(
            Timer(float(self._rng.exponential(mtbf)), fire),
            name=f"injector:{target.name}",
        )
        # stop the injector the moment the target completes, so the engine
        # clock is not dragged past the interesting part of the simulation
        self.engine.spawn(
            self._sentinel(target, proc), name=f"sentinel:{target.name}"
        )
        return proc

    def _sentinel(self, target: Process, injector: Process):
        yield target
        injector.interrupt("target-finished")
