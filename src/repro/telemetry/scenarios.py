"""Canned instrumented scenarios for the ``telemetry`` CLI subcommand.

Each scenario builds a small, deterministic simulation with a fresh
:class:`~repro.telemetry.Telemetry` handle attached, runs it, and returns
the handle plus human-readable report lines. The scenarios are sized so
that per-node tracks are on (every facility fits under
``max_node_tracks``) and so that the seeded failure draws actually produce
fault instant events — a trace with no faults would not exercise the
instrumentation the paper's resilience strand is about.

Determinism contract: running the same scenario twice with the same seed
produces byte-identical Chrome-trace exports (asserted in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.context import Telemetry

__all__ = ["Scenario", "SCENARIOS", "run_scenario", "run_scenario_replicas"]


@dataclass
class Scenario:
    """Outcome of one instrumented scenario run."""

    name: str
    telemetry: Telemetry
    report_lines: list[str] = field(default_factory=list)
    #: scenario-specific scalar results, for machine consumption (--json)
    results: dict = field(default_factory=dict)


def _hub_facility(machine) -> tuple[str, float]:
    """The leadership hub of a scenario: (display name, relative speed).

    ``machine=None`` is the historical Summit hub at speed 1.0 (the
    byte-identity baseline); a registry machine renames the hub and scales
    its speed by per-node mixed-precision peak relative to Summit's node.
    """
    if machine is None:
        return "Summit", 1.0
    from repro.machine.gpu import Precision
    from repro.machine.spec import SUMMIT, resolve_machine

    spec = resolve_machine(machine)
    speed = (
        spec.node().peak_flops(Precision.MIXED)
        / SUMMIT.node().peak_flops(Precision.MIXED)
    )
    return spec.name, speed


def _dag(seed: int, machine=None, sink=None, engine_impl=None) -> Scenario:
    """Multi-facility campaign DAG with failures and checkpoint-restart.

    A Trifan-style loop: simulation ensembles feed surrogate training,
    whose output steers the next ensemble round. The wide simulation tasks
    carry a failure rate high enough that the seeded draws produce real
    failures, retries and checkpoint restores. ``machine`` swaps the
    leadership hub for a registry machine (name + per-node speed).
    """
    from repro.resilience.retry import RetryPolicy
    from repro.workflows.dag import TaskGraph
    from repro.workflows.facility import Facility

    tel = Telemetry(sink=sink)
    hub_name, hub_speed = _hub_facility(machine)
    facilities = {
        "summit": Facility(name=hub_name, nodes=8, speed=hub_speed),
        "thetagpu": Facility(name="ThetaGPU", nodes=4, speed=1.6),
        "cs2": Facility(name="Cerebras CS-2", nodes=1, speed=10.0),
    }
    graph = TaskGraph(facilities)
    for i in range(4):
        graph.add_task(
            f"sim{i}", duration=600.0, facility="summit", nodes=2,
            failure_rate=1 / 400.0, checkpoint_interval=120.0,
            checkpoint_write_time=5.0,
        )
    graph.add_task(
        "train", duration=900.0, facility="cs2", nodes=1,
        deps=[f"sim{i}" for i in range(4)],
        failure_rate=1 / 2000.0, checkpoint_interval=300.0,
        checkpoint_write_time=10.0,
    )
    graph.add_task("analyze", duration=300.0, facility="thetagpu", nodes=4,
                   deps=["train"])
    for i in range(2):
        graph.add_task(
            f"refine{i}", duration=450.0, facility="summit", nodes=4,
            deps=["analyze"],
            failure_rate=1 / 500.0, checkpoint_interval=90.0,
            checkpoint_write_time=5.0,
        )
    run = graph.execute(
        retry=RetryPolicy(max_attempts=12), seed=seed, telemetry=tel,
        engine_impl=engine_impl,
    )
    report = run.resilience_report("dag-campaign")
    lines = [
        f"makespan            {run.makespan:.1f} s",
        f"failures / retries  {run.n_failures} / {run.n_retries}",
        f"checkpoints         {run.n_checkpoints}",
        f"goodput fraction    {run.goodput_fraction:.4f}",
        f"lost node-hours     {run.lost_node_hours:.4f}",
        "",
        "cross-check against the ResilienceReport built from the run:",
        f"  report goodput    {report.goodput_fraction:.4f} "
        f"({'match' if report.goodput_fraction == run.goodput_fraction else 'MISMATCH'})",
        f"  report lost n-h   {report.lost_node_hours:.4f} "
        f"({'match' if report.lost_node_hours == run.lost_node_hours else 'MISMATCH'})",
    ]
    return Scenario(
        name="dag", telemetry=tel, report_lines=lines,
        results={
            "makespan_seconds": run.makespan,
            "n_failures": run.n_failures,
            "n_retries": run.n_retries,
            "n_checkpoints": run.n_checkpoints,
            "goodput_fraction": run.goodput_fraction,
            "lost_node_hours": run.lost_node_hours,
            "report_goodput_fraction": report.goodput_fraction,
            "report_lost_node_hours": report.lost_node_hours,
        },
    )


def _scheduler(
    seed: int, machine=None, sink=None, engine_impl=None
) -> Scenario:
    """Batch scheduler under failures: a loaded queue on a small machine.

    The scheduled machine is 32 nodes for the historical default; with a
    registry ``machine`` it scales as the same fraction of that machine's
    node count (Summit's 4 608 nodes -> 32), clamped to [8, 128] so the
    scenario stays small enough to trace (and the widest job still fits).
    """
    import numpy as np

    from repro.scheduler import Job, Policy, Scheduler
    from repro.scheduler.faults import FaultModel

    machine_size = 32
    if machine is not None:
        from repro.machine.spec import resolve_machine

        # floor of 16: the widest synthetic job must still fit the machine
        machine_size = max(16, min(128, resolve_machine(machine).node_count // 144))

    tel = Telemetry(sink=sink)
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(24):
        nodes = int(rng.choice([1, 2, 4, 8, 16], p=[.3, .25, .2, .15, .1]))
        jobs.append(Job(
            f"j{i:02d}", nodes,
            float(rng.uniform(600.0, 7200.0)),
            float(rng.uniform(0.0, 3600.0)),
            uses_ai=bool(i % 3 == 0),
        ))
    faults = FaultModel(
        node_mtbf_seconds=6e5, checkpoint_interval=1800.0, seed=seed
    )
    result = Scheduler(machine_size, Policy.CAPABILITY).run(
        jobs, faults=faults, telemetry=tel, engine_impl=engine_impl
    )
    lines = [
        f"makespan            {result.makespan:.1f} s",
        f"utilization         {result.utilization:.4f}",
        f"failures / requeues {result.n_failures} / {result.n_requeues}",
        f"goodput fraction    {result.goodput_fraction:.4f}",
        f"lost node-hours     {result.lost_node_hours:.4f}",
    ]
    return Scenario(
        name="scheduler", telemetry=tel, report_lines=lines,
        results={
            "makespan_seconds": result.makespan,
            "utilization": result.utilization,
            "n_failures": result.n_failures,
            "n_requeues": result.n_requeues,
            "goodput_fraction": result.goodput_fraction,
            "lost_node_hours": result.lost_node_hours,
        },
    )


def _restart(
    seed: int, machine=None, sink=None, engine_impl=None
) -> Scenario:
    """One checkpointed job under Young/Daly-interval checkpoint-restart.

    The historical 90 s checkpoint is the Summit-NVMe write time for a
    fixed per-node payload; with a registry ``machine`` the same payload is
    written to that machine's fastest tier (node-local NVMe, or the shared
    filesystem when the machine has none).
    """
    from repro.resilience.restart import simulate_checkpoint_restart

    write_time = 90.0
    if machine is not None:
        from repro.machine.spec import SUMMIT, resolve_machine

        spec = resolve_machine(machine)
        payload = 90.0 * SUMMIT.nvme_write_bandwidth  # Summit-equivalent bytes
        if spec.has_nvme:
            rate = spec.nvme_write_bandwidth
        else:
            # 1024 clients share the aggregate, each capped per-client
            rate = min(
                spec.fs_per_client_bandwidth,
                spec.fs_aggregate_write_bandwidth / 1024,
            )
        write_time = payload / rate

    tel = Telemetry(sink=sink)
    stats = simulate_checkpoint_restart(
        work_seconds=40 * 3600.0,
        interval=1800.0,
        write_time=write_time,
        n_nodes=1024,
        node_mtbf_seconds=5 * 365 * 24 * 3600.0,
        seed=seed,
        restart_delay=300.0,
        telemetry=tel,
        engine_impl=engine_impl,
    )
    lines = [
        f"wall / work         {stats.wall_seconds:.0f} / "
        f"{stats.work_seconds:.0f} s",
        f"failures            {stats.n_failures}",
        f"checkpoints         {stats.n_checkpoints}",
        f"overhead fraction   {stats.overhead_fraction:.4f}",
        f"goodput fraction    {stats.goodput_fraction:.4f}",
    ]
    return Scenario(
        name="restart", telemetry=tel, report_lines=lines,
        results={
            "wall_seconds": stats.wall_seconds,
            "work_seconds": stats.work_seconds,
            "n_failures": stats.n_failures,
            "n_checkpoints": stats.n_checkpoints,
            "overhead_fraction": stats.overhead_fraction,
            "goodput_fraction": stats.goodput_fraction,
        },
    )


SCENARIOS = {
    "dag": _dag,
    "scheduler": _scheduler,
    "restart": _restart,
}


def run_scenario(
    name: str, seed: int = 0, machine=None, sink=None, engine_impl=None
) -> Scenario:
    """Run one named scenario; raises on unknown names.

    ``machine`` (registry name or spec) re-parameterizes the scenario's
    machine-dependent knobs; ``None`` keeps the historical Summit-calibrated
    values and byte-identical traces. ``sink`` spills the scenario's
    telemetry out-of-core instead of materializing it (the caller closes
    the returned handle when the records should be sealed).
    ``engine_impl`` selects the event scheduler under the scenario
    (``heap`` | ``calendar``; unknown names raise
    :class:`~repro.errors.ConfigurationError`); traces are byte-identical
    across implementations.
    """
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown telemetry scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](
        seed, machine=machine, sink=sink, engine_impl=engine_impl
    )


def _scenario_replica(
    name: str, machine, engine_impl, child_seed: int
) -> Scenario:
    return run_scenario(
        name, seed=child_seed, machine=machine, engine_impl=engine_impl
    )


def run_scenario_replicas(
    name: str,
    n_replicas: int,
    seed: int = 0,
    n_jobs: int = 1,
    machine=None,
    sink=None,
    engine_impl=None,
) -> tuple[Telemetry, list[Scenario]]:
    """Run ``n_replicas`` seeded replicas of one scenario and merge traces.

    Replica ``i`` runs with the ``i``-th ``SeedSequence`` child of ``seed``
    (the assignment never depends on ``n_jobs``), and every replica's
    telemetry is absorbed — span ids re-issued, parent links preserved,
    facility and resource names suffixed with ``" [rI]"`` so replica
    timelines stay distinct — into one merged handle whose trace passes
    the span-tree invariant audit. Both the merged handle and the
    per-replica :class:`Scenario` list are identical whether the replicas
    ran serially or in a pool.

    ``sink`` makes the *merged* handle sink-backed: each replica still runs
    in-memory (its shard has to cross the pool boundary), but the merge
    streams every absorbed record straight to the sink, so the combined
    trace never materializes — the out-of-core path for wide ensembles.
    """
    from functools import partial

    from repro.exec.replicas import monte_carlo

    if n_replicas < 1:
        raise ConfigurationError("need at least one replica")
    replicas = monte_carlo(
        partial(_scenario_replica, name, machine, engine_impl),
        n_replicas, seed=seed, n_jobs=n_jobs,
    )
    merged = Telemetry(sink=sink)
    for i, replica in enumerate(replicas):
        merged.absorb(replica.telemetry, suffix=f" [r{i}]")
    return merged, replicas
