"""Concrete cost models: the Section IV-B step-time composition and the
standalone Section VI-B analyses, built from :mod:`repro.cost.kernels`.

The centrepiece is :func:`step_cost_model`, which assembles the per-step
critical path as a dataflow composite::

    layout | compute | mp_exchange | allreduce | input_pipeline | straggler

Each stage emits named terms that later stages read (``compute_micro`` feeds
the overlap model, ``n_gpus`` feeds the straggler penalty), so the whole of
``training.step_time`` reduces to evaluating this composite — scalar for one
configuration, vectorized over a node-count axis for sweeps — with results
bit-identical to the original handwritten decomposition.

This module deliberately imports nothing from ``repro.machine`` /
``repro.network`` / ``repro.training`` (it receives specs duck-typed via the
factory arguments), keeping ``repro.cost`` a leaf layer those packages can
depend on.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.cost import kernels
from repro.cost.breakdown import CostBreakdown
from repro.cost.model import AnalyticCostModel, CompositeCostModel, compose
from repro.errors import CapacityError, ConfigurationError

__all__ = [
    "LayoutModel",
    "ComputeCostModel",
    "MpExchangeCostModel",
    "AllreduceCostModel",
    "GradientAllreduceModel",
    "InputPipelineCostModel",
    "StragglerCostModel",
    "IoRequirementModel",
    "CheckpointCostModel",
    "RooflineCostModel",
    "ConvergenceCostModel",
    "step_cost_model",
]


def _imax(x: Any) -> int:
    return int(np.max(x)) if isinstance(x, np.ndarray) else int(x)


def _imin(x: Any) -> int:
    return int(np.min(x)) if isinstance(x, np.ndarray) else int(x)


# -- step-time stages -----------------------------------------------------------


class LayoutModel(AnalyticCostModel):
    """Derived job-layout quantities: GPU count, replicas, ring width, and
    samples consumed per optimizer step."""

    name = "layout"
    requires = (
        "n_nodes",
        "gpu_count",
        "model_shards",
        "local_batch",
        "accumulation_steps",
        "replica_node_span",
        "max_nodes",
        "system_name",
    )
    provenance = {
        "n_gpus": "n_nodes * gpus/node",
        "replicas": "n_gpus / model_shards (data-parallel width)",
        "nodes_in_ring": "nodes per inter-node allreduce ring",
        "samples": "replicas * local_batch * accumulation_steps",
    }
    critical = ("samples",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        n_nodes = c["n_nodes"]
        if _imin(n_nodes) < 1:
            raise ConfigurationError("job size must be at least one node")
        if _imax(n_nodes) > c["max_nodes"]:
            raise CapacityError(
                f"{c['system_name']}: requested {_imax(n_nodes)} nodes, main "
                f"partition has {c['max_nodes']}"
            )
        n_gpus = n_nodes * c["gpu_count"]
        shards = c["model_shards"]
        if _imin(n_gpus) < shards:
            raise ConfigurationError(
                f"{_imin(n_gpus)} GPUs cannot hold a {shards}-shard replica"
            )
        remainder = n_gpus % shards
        if (isinstance(remainder, np.ndarray) and np.any(remainder)) or (
            not isinstance(remainder, np.ndarray) and remainder
        ):
            raise ConfigurationError(
                f"model_shards={shards} must divide the GPU count ({n_gpus})"
            )
        replicas = n_gpus // shards
        return {
            "n_gpus": n_gpus,
            "replicas": replicas,
            "nodes_in_ring": n_nodes // c["replica_node_span"],
            "samples": replicas * c["local_batch"] * c["accumulation_steps"],
        }


class ComputeCostModel(AnalyticCostModel):
    """Forward+backward compute per micro-step and per optimizer step."""

    name = "compute"
    requires = (
        "local_batch",
        "flops_per_sample",
        "sustained_flops",
        "model_shards",
        "accumulation_steps",
    )
    provenance = {
        "compute_micro": "batch * FLOPs/sample / sustained FLOP/s / shards",
        "compute": "accumulation_steps * compute_micro",
    }
    critical = ("compute",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        compute_micro = (
            kernels.step_compute_time(
                c["local_batch"], c["flops_per_sample"], c["sustained_flops"]
            )
            / c["model_shards"]
        )
        return {
            "compute_micro": compute_micro,
            "compute": c["accumulation_steps"] * compute_micro,
        }


class MpExchangeCostModel(AnalyticCostModel):
    """Model-parallel activation exchange per step (zero when unsharded)."""

    name = "mp_exchange"
    requires = ("mp_active", "accumulation_steps")
    defaults = {"mp_boundary_bytes": 0.0, "mp_latency": 0.0, "mp_bandwidth": 1.0}
    provenance = {
        "mp_exchange": "k * (alpha + boundary_bytes / B) across shard boundary",
    }
    critical = ("mp_exchange",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        if not c["mp_active"]:
            return {"mp_exchange": 0.0}
        return {
            "mp_exchange": c["accumulation_steps"]
            * kernels.transfer_time(
                c["mp_boundary_bytes"], c["mp_latency"], c["mp_bandwidth"]
            )
        }


class GradientAllreduceModel(AnalyticCostModel):
    """Hierarchical gradient allreduce: NVLink ring inside the node, fabric
    ring across ``nodes_in_ring`` nodes, then backward-pass overlap."""

    name = "gradient_allreduce"
    requires = (
        "message_bytes",
        "replicas_per_node",
        "intra_latency",
        "intra_bandwidth",
        "inter_latency",
        "inter_bandwidth",
        "overlap_fraction",
        "nodes_in_ring",
        "compute_micro",
    )
    defaults = {"allreduce_algorithm": None}
    provenance = {
        "comm": "intra-node + inter-node allreduce (alpha-beta, Sec. VI-B)",
        "comm_exposed": "max(0, comm - overlap_fraction * compute_micro)",
    }
    critical = ("comm_exposed",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        algorithm = c["allreduce_algorithm"]
        message = c["message_bytes"]
        comm = 0.0
        if c["replicas_per_node"] > 1:
            comm = comm + kernels.allreduce_time(
                c["replicas_per_node"],
                message,
                c["intra_latency"],
                c["intra_bandwidth"],
                algorithm,
            )
        comm = comm + kernels.allreduce_time(
            c["nodes_in_ring"],
            message,
            c["inter_latency"],
            c["inter_bandwidth"],
            algorithm,
        )
        return {
            "comm": comm,
            "comm_exposed": kernels.exposed_time(
                comm, c["overlap_fraction"], c["compute_micro"]
            ),
        }


class InputPipelineCostModel(AnalyticCostModel):
    """Per-step input-read cost for the configured data source, with
    prefetch overlap against the whole step's compute."""

    name = "input_pipeline"
    requires = ("io_mode", "samples_per_node_step", "bytes_per_sample",
                "io_overlap_fraction", "compute")
    defaults = {
        "io_rate": float("inf"),
        "fs_effective_aggregate": 0.0,
        "fs_per_client_cap": 0.0,
    }
    provenance = {
        "io": "samples/node/step * bytes/sample / achievable read rate",
        "io_exposed": "max(0, io - io_overlap_fraction * compute)",
    }
    critical = ("io_exposed",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        mode = c["io_mode"]
        if mode == "none":
            io = 0.0
        elif mode == "rate":
            io = kernels.input_read_time(
                c["samples_per_node_step"], c["bytes_per_sample"], c["io_rate"]
            )
        elif mode == "shared_fs":
            rate = kernels.shared_pool_bandwidth(
                c["fs_effective_aggregate"], c["fs_per_client_cap"], c["n_nodes"]
            )
            io = kernels.input_read_time(
                c["samples_per_node_step"], c["bytes_per_sample"], rate
            )
        else:
            raise ConfigurationError(f"unknown io_mode {mode!r}")
        return {
            "io": io,
            "io_exposed": kernels.exposed_time(
                io, c["io_overlap_fraction"], c["compute"]
            ),
        }


class StragglerCostModel(AnalyticCostModel):
    """Synchronous-SGD straggler penalty at the job's width."""

    name = "straggler"
    requires = ("compute", "compute_jitter_cv", "n_gpus")
    provenance = {
        "straggler": "compute * cv * sqrt(2 ln n_gpus) (expected max of n)",
    }
    critical = ("straggler",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "straggler": kernels.straggler_penalty(
                c["compute"], c["compute_jitter_cv"], c["n_gpus"]
            )
        }


#: Term order of the step composite's critical path — matches the seed
#: ``StepBreakdown.total`` addition order exactly.
STEP_CRITICAL = ("compute", "straggler", "mp_exchange", "comm_exposed", "io_exposed")


def step_cost_model(
    model: Any,
    system: Any,
    plan: Any,
    data_source: Any = "nvme",
    precision: Any = None,
    intra_node_link: Any = None,
) -> CompositeCostModel:
    """Bind a (model, system, plan) configuration into the step composite.

    Arguments mirror :func:`repro.training.step_time.step_breakdown`;
    ``data_source`` may be the :class:`~repro.training.parallelism.DataSource`
    enum or its string value. The returned composite requires only
    ``n_nodes`` — a scalar for ``evaluate`` or an integer array for
    ``evaluate_batch`` / :func:`repro.cost.sweep.sweep`.
    """
    node = system.node
    if not node.has_gpus:
        raise ConfigurationError(f"{system.name} main partition has no GPUs")
    if plan.model_shards > node.gpu_count and plan.model_shards % node.gpu_count:
        raise ConfigurationError(
            "multi-node model parallelism must use whole nodes per replica"
        )
    if intra_node_link is None:
        raise ConfigurationError("step_cost_model needs an intra_node_link spec")

    source = getattr(data_source, "value", data_source)
    shards = plan.model_shards
    gpu_count = node.gpu_count
    sustained = (
        model.sustained_flops(node.gpus)
        if precision is None
        else model.sustained_flops(node.gpus, precision)
    )

    # -- model-parallel boundary (static per configuration) ----------------------
    mp_active = shards > 1
    if mp_active:
        act_bytes = model.activation_bytes_per_sample or model.bytes_per_sample
        boundary_bytes = (
            2.0 * act_bytes * plan.local_batch * (shards - 1) / shards
        )
        mp_link = intra_node_link if shards <= gpu_count else system.interconnect
        mp_latency, mp_bandwidth = mp_link.latency, mp_link.total_bandwidth
    else:
        boundary_bytes, mp_latency, mp_bandwidth = 0.0, 0.0, 1.0

    # -- data-source binding ------------------------------------------------------
    if source == "memory":
        io_mode, io_params = "none", {}
    elif source == "nvme":
        if system.nvme is None:
            raise ConfigurationError(
                f"{system.name} nodes have no NVMe burst buffer"
            )
        io_mode = "rate"
        io_params = {"io_rate": system.nvme.read_bandwidth}
    elif source == "shared_fs":
        if system.shared_fs is None:
            raise ConfigurationError(f"{system.name} has no shared filesystem")
        fs = system.shared_fs
        io_mode = "shared_fs"
        io_params = {
            # Order matters for bit parity: derate the aggregate first, as
            # SharedFileSystem.read_bandwidth(random_access=True) does.
            "fs_effective_aggregate": fs.aggregate_read_bandwidth
            * fs.random_read_derate,
            "fs_per_client_cap": fs.per_client_read_bandwidth,
        }
    else:
        raise ConfigurationError(f"unknown data source {source!r}")

    replicas_per_node = max(1, gpu_count // shards)
    replica_node_span = max(1, shards // gpu_count)
    samples_per_node_step = (
        plan.local_batch * plan.accumulation_steps * replicas_per_node
        if shards <= gpu_count
        else plan.local_batch * plan.accumulation_steps / replica_node_span
    )
    algorithm = plan.allreduce_algorithm
    defaults: dict[str, Any] = {
        "system_name": system.name,
        "max_nodes": system.node_count,
        "gpu_count": gpu_count,
        "model_shards": shards,
        "local_batch": plan.local_batch,
        "accumulation_steps": plan.accumulation_steps,
        "replica_node_span": replica_node_span,
        "flops_per_sample": model.effective_flops_per_sample,
        "sustained_flops": sustained,
        "mp_active": mp_active,
        "mp_boundary_bytes": boundary_bytes,
        "mp_latency": mp_latency,
        "mp_bandwidth": mp_bandwidth,
        "message_bytes": model.gradient_bytes / shards,
        "replicas_per_node": replicas_per_node,
        "intra_latency": intra_node_link.latency,
        "intra_bandwidth": intra_node_link.total_bandwidth,
        "inter_latency": system.interconnect.latency,
        "inter_bandwidth": system.interconnect.total_bandwidth,
        "overlap_fraction": plan.overlap_fraction,
        "allreduce_algorithm": getattr(algorithm, "value", algorithm),
        "io_mode": io_mode,
        "samples_per_node_step": samples_per_node_step,
        "bytes_per_sample": model.bytes_per_sample,
        "io_overlap_fraction": plan.io_overlap_fraction,
        "compute_jitter_cv": plan.compute_jitter_cv,
        **io_params,
    }
    return compose(
        LayoutModel(),
        ComputeCostModel(),
        MpExchangeCostModel(),
        GradientAllreduceModel(),
        InputPipelineCostModel(),
        StragglerCostModel(),
        name=f"step[{model.name} @ {system.name}]",
        critical=STEP_CRITICAL,
        defaults=defaults,
    )


# -- standalone Section VI-B models ----------------------------------------------


class AllreduceCostModel(AnalyticCostModel):
    """Bare collective cost over (p, message, link) axes."""

    name = "allreduce"
    requires = ("p", "message_bytes", "latency", "bandwidth")
    defaults = {"allreduce_algorithm": "ring"}
    provenance = {
        "comm": "allreduce alpha-beta cost (Thakur/Rabenseifner, Sec. VI-B)",
    }
    critical = ("comm",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        kernels.check_participants(c["p"], c["message_bytes"])
        return {
            "comm": kernels.allreduce_time(
                c["p"], c["message_bytes"], c["latency"], c["bandwidth"],
                c["allreduce_algorithm"],
            )
        }


class IoRequirementModel(AnalyticCostModel):
    """Aggregate read bandwidth for ideal data-parallel scaling (~20 TB/s
    for full-Summit ResNet-50)."""

    name = "io_requirement"
    requires = ("samples_per_second_per_device", "bytes_per_sample", "n_devices")
    provenance = {
        "per_device_bandwidth": "samples/s/device * bytes/sample",
        "required_bandwidth": "per-device bandwidth * n_devices (Sec. VI-B)",
    }
    critical = ("required_bandwidth",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        per_device = kernels.per_device_read_bandwidth(
            c["samples_per_second_per_device"], c["bytes_per_sample"]
        )
        return {
            "per_device_bandwidth": per_device,
            "required_bandwidth": per_device * c["n_devices"],
        }


class CheckpointCostModel(AnalyticCostModel):
    """Young/Daly checkpoint economics at a given write rate."""

    name = "checkpoint"
    requires = ("state_bytes_per_node", "write_rate", "n_nodes",
                "node_mtbf_seconds")
    provenance = {
        "write_time": "state_bytes_per_node / write rate",
        "system_mtbf": "node MTBF / n_nodes",
        "optimal_interval": "Young: sqrt(2 * write_time * system MTBF)",
        "overhead_fraction": "delta/tau + (tau/2 + delta)/MTBF",
        "goodput_fraction": "1 - overhead_fraction",
    }
    critical = ("overhead_fraction",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        write_time = c["state_bytes_per_node"] / c["write_rate"]
        mtbf = kernels.system_mtbf(c["node_mtbf_seconds"], c["n_nodes"])
        interval = kernels.young_interval(write_time, mtbf)
        overhead = kernels.young_overhead(write_time, interval, mtbf)
        return {
            "write_time": write_time,
            "system_mtbf": mtbf,
            "optimal_interval": interval,
            "overhead_fraction": overhead,
            "goodput_fraction": 1.0 - overhead,
        }


class RooflineCostModel(AnalyticCostModel):
    """Device roofline placement over (flops, bytes_moved) axes."""

    name = "roofline"
    requires = ("flops", "bytes_moved", "peak_flops", "memory_bandwidth")
    provenance = {
        "arithmetic_intensity": "FLOPs / bytes of device-memory traffic",
        "ridge_intensity": "peak FLOP/s / memory bandwidth",
        "attainable_flops": "min(peak, intensity * memory bandwidth)",
    }
    critical = ("attainable_flops",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        intensity = c["flops"] / c["bytes_moved"]
        return {
            "arithmetic_intensity": intensity,
            "ridge_intensity": c["peak_flops"] / c["memory_bandwidth"],
            "attainable_flops": kernels.roofline_attainable(
                c["peak_flops"], c["memory_bandwidth"], intensity
            ),
        }


class ConvergenceCostModel(AnalyticCostModel):
    """Two-regime large-batch convergence law over a batch-size axis."""

    name = "convergence"
    requires = ("batch", "min_samples", "critical_batch")
    provenance = {
        "samples_to_target": "S_min * (1 + B / B_crit)",
        "steps_to_target": "samples_to_target / B",
    }
    critical = ("steps_to_target",)

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        samples = kernels.two_regime_samples(
            c["batch"], c["min_samples"], c["critical_batch"]
        )
        return {
            "samples_to_target": samples,
            "steps_to_target": samples / c["batch"],
        }


def breakdown_to_step_terms(bd: CostBreakdown) -> dict[str, Any]:
    """Project a step-composite breakdown onto the StepBreakdown field set."""
    return {
        "compute": bd["compute"],
        "comm": bd["comm"],
        "comm_exposed": bd["comm_exposed"],
        "io": bd["io"],
        "io_exposed": bd["io_exposed"],
        "mp_exchange": bd["mp_exchange"],
        "straggler": bd["straggler"],
        "samples": bd["samples"],
    }
