"""Figure 5 — AI/ML usage by AI motif (INCITE + ALCC + ECP cohort).

Stated shape: Submodels is the top motif; Submodels + Classification +
Analysis + Surrogate Models + MD Potentials account for over 3/4 of usage.
"""

from conftest import report

from repro.portfolio import Motif, PortfolioAnalytics, generate_portfolio
from repro.portfolio import reference as ref


def test_fig5_usage_by_motif(benchmark):
    projects = generate_portfolio()

    def compute():
        return PortfolioAnalytics(projects).usage_by_motif()

    counts = benchmark(compute)

    analytics = PortfolioAnalytics(projects)
    assert analytics.top_motifs(1) == [Motif.SUBMODEL]
    assert analytics.motif_concentration(5) > 0.75
    for motif, expected in ref.MOTIF_COUNTS.items():
        assert counts[motif] == expected

    total = sum(counts.values())
    report(
        "Fig. 5 — usage by motif (INCITE+ALCC+ECP AI projects)",
        [
            (m.value, ref.MOTIF_COUNTS.get(m, 0),
             counts[m], f"{counts[m] / total:.1%}")
            for m in sorted(Motif, key=lambda m: counts[m], reverse=True)
        ],
        header=("motif", "paper", "measured", "share"),
    )
