"""Retry policy: bounded attempts with exponential backoff and jitter.

The policy the workflow executor and the batch scheduler share when a task
or job dies under it. Backoff delays model the requeue-and-relaunch latency
of a real facility (scheduler cycle, node drain, prolog); jitter decorrelates
the retries of tasks killed by the same event so they do not stampede the
queue in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How a failed task is retried.

    ``max_attempts`` counts total executions (first try included); delays
    grow as ``backoff_base * backoff_factor**(attempt-1)`` capped at
    ``backoff_max``, then scaled by a uniform ``1 ± jitter_fraction`` draw
    when an RNG is supplied. ``deadline_s`` optionally bounds the *total*
    wall-clock budget across all retries — a policy can give up because too
    much time has passed even when attempts remain (and vice versa).
    """

    max_attempts: int = 4
    backoff_base: float = 30.0
    backoff_factor: float = 2.0
    backoff_max: float = 3600.0
    jitter_fraction: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")

    def delay(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ConfigurationError("attempt must be >= 1")
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if rng is not None and self.jitter_fraction > 0:
            base *= 1.0 + self.jitter_fraction * float(rng.uniform(-1.0, 1.0))
        return base

    def delays(
        self, rng: np.random.Generator | None = None
    ) -> Iterator[float]:
        """Yield the backoff before each retry, in order (at most
        ``max_attempts - 1`` values).

        With a ``deadline_s``, the iterator additionally stops before the
        delay that would push the *cumulative* sleep past the budget — the
        caller sleeping through every yielded value never exceeds the
        wall-clock bound.

        >>> list(RetryPolicy(max_attempts=3, backoff_base=1.0,
        ...                  jitter_fraction=0.0).delays())
        [1.0, 2.0]
        """
        slept = 0.0
        for attempt in range(1, self.max_attempts):
            delay = self.delay(attempt, rng)
            if self.deadline_s is not None and slept + delay > self.deadline_s:
                return
            slept += delay
            yield delay

    def exhausted(self, attempts_made: int, elapsed_s: float = 0.0) -> bool:
        """True once ``attempts_made`` executions have all failed, or the
        total wall-clock budget (``deadline_s``) has been spent."""
        if self.deadline_s is not None and elapsed_s >= self.deadline_s:
            return True
        return attempts_made >= self.max_attempts
