#!/usr/bin/env python
"""Operating Summit: scheduling, checkpointing, and an ML-enhanced solver.

Three shorter studies rounding out the reproduction:

1. A day of Summit operations — a 1 000-job campaign generated from the
   calibrated project portfolio, scheduled under three queue policies,
   reporting utilisation, waits, and the AI/ML share of *delivered*
   node-hours (the alternative usage metric of Section II-C).
2. Checkpointing a 4 096-node job — Young-optimal intervals on node-local
   NVMe vs the shared filesystem (another face of the Section VI-B storage
   argument).
3. The math/cs-algorithm motif — a learned deflation space cutting
   conjugate-gradient iterations 2-3x with accuracy untouched
   (Ichimura et al., Gordon Bell 2018).
4. A failure-injected 4 600-node campaign — node failures drawn from
   per-node MTBF, checkpoint-restart recovery, and the resulting goodput,
   with the empirical overhead validated against the Young/Daly optimum.

Run:  python examples/summit_operations.py
"""

import numpy as np

from repro.apps.extreme_scale import get_app
from repro.portfolio import generate_portfolio
from repro.scheduler import FaultModel, Policy, Scheduler, campaign_from_portfolio
from repro.science.solver import solver_study
from repro.storage.burst_buffer import SUMMIT_NVME
from repro.storage.checkpoint import CheckpointPlan
from repro.storage.filesystem import SUMMIT_GPFS


def main() -> None:
    # -- 1. a day of Summit operations -----------------------------------------
    print("1. Scheduling a 1000-job day on Summit")
    print("=" * 64)
    projects = generate_portfolio()
    rng = np.random.default_rng(1)
    sample = [projects[i] for i in rng.choice(len(projects), 250, replace=False)]
    jobs = campaign_from_portfolio(sample, jobs_per_project=4,
                                   horizon=24 * 3600.0, seed=0)
    print(f"{'policy':<16}{'util':>6}{'mean wait':>11}{'wide wait':>11}"
          f"{'AI share':>10}")
    for policy in (Policy.FIFO, Policy.CAPABILITY, Policy.SMALLEST_FIRST):
        r = Scheduler(4608, policy).run(jobs)
        print(f"{policy.value:<16}{r.utilization:>5.0%}"
              f"{r.mean_wait / 3600:>10.1f}h{r.mean_wait_wide / 3600:>10.1f}h"
              f"{r.ai_share:>10.0%}")
    print("(capability priority trades mean wait for wide-job wait —\n"
          " the leadership-computing policy of Section II-B)\n")

    # -- 2. checkpointing -----------------------------------------------------------
    print("2. Checkpointing a 4096-node job (100 GB/node of state)")
    print("=" * 64)
    plan = CheckpointPlan(
        state_bytes_per_node=100e9, n_nodes=4096,
        node_mtbf_seconds=5 * 365 * 24 * 3600.0,
    )
    for name, tier in plan.compare_tiers(SUMMIT_NVME, SUMMIT_GPFS).items():
        print(f"  {name:<10} write {tier['write_time']:>7.0f} s   "
              f"optimal interval {tier['optimal_interval'] / 3600:>5.2f} h   "
              f"overhead {tier['overhead']:>5.1%}")
    print()

    # -- 3. ML-enhanced solver ---------------------------------------------------------
    print("3. ML-enhanced CG solver (math/cs algorithm motif)")
    print("=" * 64)
    results = solver_study(n=20, n_snapshots=100, n_solves=8, seed=0)
    print(f"  plain CG            {results['plain']:>5.0f} iterations")
    print(f"  Jacobi CG           {results['jacobi']:>5.0f} iterations")
    print(f"  learned deflation   {results['deflated']:>5.0f} iterations "
          f"(basis k={results['basis_dimension']:.0f}, "
          f"{results['plain'] / results['deflated']:.1f}x)")
    print("  (the solver still iterates the true residual to tolerance —\n"
          "   the ML component cannot compromise the answer)\n")

    # -- 4. failure injection and checkpoint-restart ----------------------------
    print("4. Failure-injected 4600-node campaign (Laanait et al.)")
    print("=" * 64)
    report = get_app("laanait").resilience_report(seed=0)
    print(report.format())
    agreement = report.agreement()
    assert agreement is not None
    print(f"  -> empirical overhead within {agreement:.1%} of the Young/Daly"
          f" optimum ({'OK' if report.matches_analytical() else 'MISMATCH'},"
          " tol 20%)\n")

    print("   ... and the same failures at the batch-scheduler level:")
    wide_jobs = [j for j in jobs if j.nodes >= 1024][:40] or jobs[:40]
    base = Scheduler(4608).run(wide_jobs)
    faults = FaultModel(node_mtbf_seconds=0.5 * 365 * 24 * 3600.0,
                        checkpoint_interval=3600.0, seed=0)
    faulty = Scheduler(4608).run(wide_jobs, faults=faults)
    print(f"   fault-free makespan {base.makespan / 3600:>7.1f} h,"
          f" goodput {base.goodput_fraction:.1%}")
    print(f"   with failures       {faulty.makespan / 3600:>7.1f} h,"
          f" goodput {faulty.goodput_fraction:.1%}"
          f"  ({faulty.n_failures} failures, {faulty.n_requeues} requeues,"
          f" {faulty.lost_node_hours:,.0f} node-hours lost)")


if __name__ == "__main__":
    main()
