"""Counters, gauges, and fixed-bucket histograms.

The registry is deliberately tiny and dependency-free: instruments are
created on first use (`registry.counter("dag.failures")`), hold plain Python
numbers, and export deterministically (instruments sorted by name, bucket
edges fixed at creation). Histogram semantics follow the Prometheus
convention: ``edges`` are inclusive upper bounds, bucket ``i`` counts values
``v`` with ``edges[i-1] < v <= edges[i]``, and one overflow bucket counts
everything above the last edge.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default histogram edges for second-valued durations: 1 ms .. ~28 h in
#: roughly 4x steps — wide enough for step times and makespans alike.
DEFAULT_SECONDS_EDGES: tuple[float, ...] = (
    1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)


def _prometheus_name(name: str) -> str:
    """Map an instrument name onto the Prometheus charset."""
    cleaned = "".join(
        c if c.isalnum() or c in "_:" else "_" for c in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _prometheus_value(value: float) -> str:
    """Exact, deterministic float rendering for exposition lines."""
    return repr(float(value))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"{self.name}: counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that can move both ways."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """Fixed-bucket histogram with an exact running sum and count."""

    name: str
    edges: tuple[float, ...] = DEFAULT_SECONDS_EDGES
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0
    min_value: float | None = None
    max_value: float | None = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise ConfigurationError(f"{self.name}: need at least one edge")
        if list(self.edges) != sorted(set(self.edges)):
            raise ConfigurationError(
                f"{self.name}: edges must be strictly increasing"
            )
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def record(self, value: float) -> None:
        """Count ``value`` into its bucket: ``edges[i-1] < v <= edges[i]``."""
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += value
        self.n += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """``(lower, upper]`` bounds of bucket ``index`` (inf for overflow)."""
        lo = float("-inf") if index == 0 else self.edges[index - 1]
        hi = float("inf") if index == len(self.edges) else self.edges[index]
        return lo, hi


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_SECONDS_EDGES
    ) -> Histogram:
        hist = self._get(name, Histogram, lambda: Histogram(name, edges))
        if hist.edges != tuple(edges):
            raise ConfigurationError(
                f"metric {name!r} already registered with different edges"
            )
        return hist

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._instruments[name]

    def __iter__(self):
        return iter(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (shard aggregation).

        Counters add, histograms combine bucket-wise (edges must match),
        and gauges take the other registry's value — last writer wins, the
        same semantics as two sequential ``set`` calls.
        """
        for name in other:
            theirs = other[name]
            if isinstance(theirs, Counter):
                self.counter(name).inc(theirs.value)
            elif isinstance(theirs, Gauge):
                self.gauge(name).set(theirs.value)
            else:
                mine = self.histogram(name, theirs.edges)
                for i, count in enumerate(theirs.counts):
                    mine.counts[i] += count
                mine.total += theirs.total
                mine.n += theirs.n
                for bound in (theirs.min_value, theirs.max_value):
                    if bound is None:
                        continue
                    if mine.min_value is None or bound < mine.min_value:
                        mine.min_value = bound
                    if mine.max_value is None or bound > mine.max_value:
                        mine.max_value = bound

    def as_dict(self) -> dict:
        """Deterministic plain-data view (for JSON export and summaries)."""
        out: dict[str, dict] = {}
        for name in self:
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": instrument.n,
                    "sum": instrument.total,
                    "min": instrument.min_value,
                    "max": instrument.max_value,
                    "edges": list(instrument.edges),
                    "counts": list(instrument.counts),
                }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument.

        Conventions: counters are exposed as ``<name>_total``, gauges under
        their own name, histograms as cumulative ``_bucket{le="..."}``
        series (the overflow bucket becomes ``le="+Inf"``) plus ``_sum``
        and ``_count``. Instrument names are sanitized to the Prometheus
        charset (dots and dashes become underscores). Deterministic:
        instruments render sorted by name, floats via ``repr``.

        >>> registry = MetricsRegistry()
        >>> registry.counter("service.leases").inc(3)
        >>> print(registry.render_prometheus(), end="")
        # TYPE service_leases_total counter
        service_leases_total 3.0
        """
        lines: list[str] = []
        for name in self:
            instrument = self._instruments[name]
            pname = _prometheus_name(name)
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {pname}_total counter")
                lines.append(f"{pname}_total {_prometheus_value(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_prometheus_value(instrument.value)}")
            else:
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                for i, edge in enumerate(instrument.edges):
                    cumulative += instrument.counts[i]
                    lines.append(
                        f'{pname}_bucket{{le="{_prometheus_value(edge)}"}} '
                        f"{cumulative}"
                    )
                cumulative += instrument.counts[-1]
                lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(
                    f"{pname}_sum {_prometheus_value(instrument.total)}"
                )
                lines.append(f"{pname}_count {instrument.n}")
        return "\n".join(lines) + "\n" if lines else ""

    def summary_lines(self) -> list[str]:
        """One aligned line per instrument, sorted by name."""
        lines = []
        for name in self:
            instrument = self._instruments[name]
            if isinstance(instrument, (Counter, Gauge)):
                kind = "counter" if isinstance(instrument, Counter) else "gauge"
                lines.append(f"  {name:<36} {kind:<9} {instrument.value:g}")
            else:
                lines.append(
                    f"  {name:<36} histogram n={instrument.n} "
                    f"sum={instrument.total:g} mean={instrument.mean:g}"
                )
        return lines
