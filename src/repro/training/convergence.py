"""Large-batch convergence model.

Why Section IV-B's applications all reach for LARS/LAMB/LARC: synchronous
data parallelism multiplies the global batch with the machine, and beyond an
optimizer-dependent *critical batch size* extra samples per step stop
reducing the number of steps needed. We use the standard two-regime model
(Shallue et al., McCandlish et al.)::

    samples_to_target(B) = S_min * (1 + B / B_crit)
    steps_to_target(B)   = samples_to_target(B) / B

Small ``B``: steps fall as 1/B (perfect scaling). Large ``B``: steps plateau
at ``S_min / B_crit`` and additional hardware is wasted. Layer-wise adaptive
optimizers (LARS for CNNs, LAMB for transformers) raise ``B_crit`` by an
empirically calibrated factor — that is precisely what lets Blanchard et al.
hold convergence to a 5.8 M global batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost import kernels
from repro.errors import ConfigurationError
from repro.training.job import TrainingJob

#: Multiplier each optimizer applies to a model's base (SGD) critical batch,
#: calibrated against the published large-batch training results the paper
#: cites (LARS: ResNet-50 to 32k; LAMB: BERT to 64k+; gradient-accumulated
#: LAMB: SMILES-BERT to 5.8M).
OPTIMIZER_CRITICAL_BATCH_FACTOR = {
    "sgd": 1.0,
    "momentum": 2.0,
    "adam": 4.0,
    "larc": 8.0,
    "lars": 16.0,
    "lamb": 64.0,
}


@dataclass(frozen=True)
class ConvergenceModel:
    """Per-model convergence constants.

    ``min_samples`` is the infinite-patience sample requirement ``S_min``;
    ``base_critical_batch`` is ``B_crit`` under plain SGD.
    """

    min_samples: float
    base_critical_batch: float

    def __post_init__(self) -> None:
        if self.min_samples <= 0 or self.base_critical_batch <= 0:
            raise ConfigurationError("convergence constants must be positive")

    def critical_batch(self, optimizer: str) -> float:
        try:
            factor = OPTIMIZER_CRITICAL_BATCH_FACTOR[optimizer.lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown optimizer {optimizer!r}; known: "
                f"{sorted(OPTIMIZER_CRITICAL_BATCH_FACTOR)}"
            ) from None
        return self.base_critical_batch * factor

    def samples_to_target(self, batch: int, optimizer: str = "sgd") -> float:
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        return kernels.two_regime_samples(
            batch, self.min_samples, self.critical_batch(optimizer)
        )

    def steps(self, batch: int, optimizer: str = "sgd") -> float:
        return self.samples_to_target(batch, optimizer) / batch


#: Representative constants: ResNet-50/ImageNet trains in ~90 epochs
#: (~115 M samples) and SGD+momentum holds to ~8k batch, i.e. base ~4k.
RESNET50_CONVERGENCE = ConvergenceModel(min_samples=1.15e8, base_critical_batch=4096)

#: BERT-style pretraining: ~40 epochs of a ~40 M-sequence corpus; LAMB's
#: published 64k batches imply a base around 1k.
BERT_CONVERGENCE = ConvergenceModel(min_samples=1.6e9, base_critical_batch=1024)


def steps_to_target(
    model: ConvergenceModel, batch: int, optimizer: str = "sgd"
) -> float:
    """Optimizer steps needed to reach the target metric at ``batch``."""
    return model.steps(batch, optimizer)


def time_to_solution(
    job: TrainingJob, convergence: ConvergenceModel, optimizer: str = "sgd"
) -> float:
    """Wall-clock seconds to the target metric for a job configuration.

    Combines the hardware step time with the statistical step count — the
    quantity that actually decides whether scaling out helped.
    """
    steps = convergence.steps(job.global_batch(), optimizer)
    return steps * job.step_time()
