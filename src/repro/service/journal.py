"""Write-ahead journal: fsync'd JSONL segments with crash-tolerant replay.

Every campaign state transition (ingest, lease, heartbeat, complete,
requeue, fail) is appended here and flushed to stable storage *before* the
server acknowledges the request. The durability contract is therefore
one-directional: an acked transition is always replayable; an unacked one
may be torn or missing — and the state machine never told anyone it
happened, so discarding it on replay is correct.

Layout: ``<dir>/wal-00000001.jsonl``, ``wal-00000002.jsonl``, ... Each line
is one JSON record carrying a monotonically increasing ``seq`` and a
``crc`` (CRC-32 of the canonical encoding of the rest). Segments rotate at
a size threshold; a new segment is created empty and the directory entry
fsync'd, so rotation can never lose or tear the old segment. A process
reopening an existing journal always starts a *fresh* segment — it never
appends to a possibly-torn tail.

Replay tolerance, precisely: the **final line of a segment** may be torn
(truncated mid-write, bad JSON, CRC mismatch) — that is exactly the record
a crash can damage, and it is discarded with a counter bump. Damage
anywhere else, or a gap in ``seq``, means the journal was edited or the
disk lied, and raises :class:`~repro.errors.JournalCorrupt` rather than
silently resuming from fiction.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.atomicio import fsync_dir
from repro.errors import ConfigurationError, JournalCorrupt

__all__ = ["Journal", "JournalReplay", "read_journal", "segment_paths"]

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024


def _canonical(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _crc(record: dict[str, Any]) -> int:
    return zlib.crc32(_canonical(record).encode("utf-8"))


def segment_paths(directory: str | Path) -> list[Path]:
    """Journal segments under ``directory``, in write order."""
    directory = Path(directory)
    if not directory.exists():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
        and p.name.endswith(SEGMENT_SUFFIX)
    )


def _parse_segment_index(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise JournalCorrupt(
            f"journal segment {path.name!r} has a non-numeric index"
        ) from None


@dataclass
class JournalReplay:
    """Everything replay recovered, plus what it had to throw away."""

    records: list[dict[str, Any]] = field(default_factory=list)
    segments: list[Path] = field(default_factory=list)
    discarded_tails: int = 0

    @property
    def last_seq(self) -> int:
        return self.records[-1]["seq"] if self.records else 0


def _iter_segment(path: Path) -> Iterator[tuple[bool, dict[str, Any] | None]]:
    """Yield ``(is_final_line, record_or_None)`` per line of one segment."""
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline, so the final split element is
    # empty; anything else is a torn tail candidate.
    for i, line in enumerate(lines):
        final = i >= len(lines) - 2
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("journal line is not an object")
        except (ValueError, UnicodeDecodeError):
            yield final, None
            continue
        crc = record.pop("crc", None)
        if crc != _crc(record):
            yield final, None
            continue
        yield final, record


def read_journal(directory: str | Path) -> JournalReplay:
    """Replay every acked record from ``directory``.

    >>> import tempfile
    >>> d = tempfile.mkdtemp()
    >>> j = Journal(d)
    >>> _ = j.append_commit("ingest", job_id="a")
    >>> j.close()
    >>> [r["type"] for r in read_journal(d).records]
    ['ingest']
    """
    replay = JournalReplay(segments=segment_paths(directory))
    prev_index = 0
    for path in replay.segments:
        index = _parse_segment_index(path)
        if index <= prev_index:
            raise JournalCorrupt(
                f"journal segments out of order at {path.name!r}"
            )
        prev_index = index
        for final, record in _iter_segment(path):
            if record is None:
                if final:
                    replay.discarded_tails += 1
                    continue
                raise JournalCorrupt(
                    f"damaged record mid-segment in {path.name!r} — "
                    "not a torn tail; refusing to replay"
                )
            seq = record.get("seq")
            if not isinstance(seq, int) or seq != replay.last_seq + 1:
                raise JournalCorrupt(
                    f"journal seq discontinuity in {path.name!r}: "
                    f"expected {replay.last_seq + 1}, found {seq!r}"
                )
            replay.records.append(record)
    return replay


class Journal:
    """Append-only writer half of the WAL (see the module docstring).

    ``metrics`` is an optional
    :class:`~repro.telemetry.metrics.MetricsRegistry`; fsyncs, appended
    records and rotations are counted under ``journal.*``.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        fsync: bool = True,
        metrics: Any = None,
        start_seq: int | None = None,
    ):
        if segment_max_bytes < 1:
            raise ConfigurationError("segment_max_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self.metrics = metrics
        existing = segment_paths(self.directory)
        self._segment_index = (
            _parse_segment_index(existing[-1]) if existing else 0
        )
        if start_seq is None:
            start_seq = read_journal(self.directory).last_seq
        self._seq = start_seq
        self._fh = None
        self._open_next_segment()

    # -- segment management --------------------------------------------------------

    @property
    def current_segment(self) -> Path:
        return self.directory / (
            f"{SEGMENT_PREFIX}{self._segment_index:08d}{SEGMENT_SUFFIX}"
        )

    def _open_next_segment(self) -> None:
        if self._fh is not None:
            self.commit()
            self._fh.close()
        self._segment_index += 1
        # "xb": creating the segment is the atomic, crash-evident step —
        # either the directory entry exists (and is fsync'd) or it does not.
        self._fh = open(self.current_segment, "xb")
        if self.fsync:
            fsync_dir(self.directory)
        self._count("journal.rotations")

    # -- appending -----------------------------------------------------------------

    def append(self, type: str, **payload: Any) -> dict[str, Any]:
        """Buffer one record; call :meth:`commit` before acking it."""
        if self._fh is None:
            raise ConfigurationError("journal is closed")
        if "seq" in payload or "type" in payload or "crc" in payload:
            raise ConfigurationError(
                "seq/type/crc are reserved journal fields"
            )
        self._seq += 1
        record = {"seq": self._seq, "type": type, **payload}
        line = dict(record)
        line["crc"] = _crc(record)
        self._fh.write(_canonical(line).encode("utf-8") + b"\n")
        self._count("journal.records")
        if self._fh.tell() >= self.segment_max_bytes:
            self._open_next_segment()
        return record

    def commit(self) -> None:
        """Flush buffered appends to stable storage (fsync) — *then* ack."""
        if self._fh is None:
            raise ConfigurationError("journal is closed")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
            self._count("journal.fsyncs")

    def append_commit(self, type: str, **payload: Any) -> dict[str, Any]:
        """``append`` + ``commit`` in one call, for single-record transitions.

        >>> import tempfile
        >>> j = Journal(tempfile.mkdtemp())
        >>> j.append_commit("lease", job_id="a")["seq"]
        1
        """
        record = self.append(type, **payload)
        self.commit()
        return record

    @property
    def last_seq(self) -> int:
        return self._seq

    def close(self) -> None:
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
