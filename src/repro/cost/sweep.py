"""Vectorized parameter sweeps over cost-model configuration grids.

:func:`sweep` builds a sparse ``np.meshgrid`` over the named axes and pushes
the whole grid through ``evaluate_batch`` in one pass — every term comes back
as an array over the grid shape. :func:`sweep_scalar` is the reference
implementation (a Python loop over ``evaluate``); the property suite asserts
the two are element-wise **bit-identical**, which is what licenses the fast
path for paper-figure reproduction.

``sweep`` also rides the execution fabric (:mod:`repro.exec`):

- ``n_jobs > 1`` chunks the longest grid axis into contiguous shards,
  evaluates each shard's sub-grid in a worker process and reassembles the
  term arrays with ``np.concatenate`` along that axis. The formulas are
  elementwise over the grid, so the merged arrays are **bit-identical** to
  the serial pass at any worker count;
- ``cache=`` consults a :class:`~repro.exec.cache.ResultCache` keyed by a
  content digest of (model, axes, fixed config, package source) before
  evaluating anything, and stores the :class:`SweepResult` on a miss.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from repro.cost.breakdown import CostBreakdown
from repro.errors import ConfigurationError

__all__ = ["SweepResult", "sweep", "sweep_scalar"]


@contextmanager
def _sweep_span(telemetry: Any, name: str, model: Any, size: int):
    """Wall-clock span around one sweep, timed with ``perf_counter``.

    Sweeps run outside any simulation, so span times are real seconds from
    the start of the sweep rather than simulated time; the sweep also lands
    in a ``cost.sweep_seconds`` histogram and a ``cost.points`` counter.
    """
    t0 = time.perf_counter()
    span = telemetry.begin(
        name, "sweep", facility="cost", track=model.name,
        time=0.0, model=model.name, points=size,
    )
    try:
        yield span
    finally:
        telemetry.end(span, time=time.perf_counter() - t0)
        telemetry.metrics.histogram("cost.sweep_seconds").record(
            span.duration
        )
        telemetry.metrics.counter("cost.points").inc(size)


@dataclass(frozen=True)
class SweepResult:
    """A breakdown evaluated over a labelled N-dimensional grid.

    ``axes`` maps axis name -> 1-D coordinate array, in grid order;
    ``breakdown`` holds the vectorized terms broadcastable to ``shape``.
    """

    model: str
    axes: dict[str, np.ndarray]
    breakdown: CostBreakdown

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(v) for v in self.axes.values())

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.axes else 1

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(self.axes)

    def term(self, name: str) -> np.ndarray:
        """A term broadcast to the full grid shape."""
        return np.broadcast_to(np.asarray(self.breakdown[name]), self.shape)

    def total(self) -> np.ndarray:
        """Critical-path total over the full grid."""
        return np.broadcast_to(np.asarray(self.breakdown.total), self.shape)

    def point(self, *index: int) -> dict[str, float]:
        """Axis coordinates at one grid index."""
        if len(index) != len(self.axes):
            raise ConfigurationError(
                f"{self.model}: index {index} does not match axes "
                f"{self.axis_names}"
            )
        return {
            name: values[i].item()
            for (name, values), i in zip(self.axes.items(), index)
        }

    def at(self, *index: int) -> CostBreakdown:
        """Scalar breakdown at one grid index."""
        return self.breakdown.at(*index)

    def argmin(self, term: str | None = None) -> tuple[int, ...]:
        """Grid index minimising ``term`` (default: the critical-path total)."""
        values = self.total() if term is None else self.term(term)
        return tuple(int(i) for i in
                     np.unravel_index(int(np.argmin(values)), self.shape))

    def best(self, term: str | None = None) -> dict[str, float]:
        """Axis coordinates of the minimising grid point."""
        return self.point(*self.argmin(term))

    def crossover_along(
        self, axis: str, term_a: str, term_b: str
    ) -> np.ndarray:
        """First coordinate along ``axis`` where ``term_b`` >= ``term_a``.

        Returns an array over the remaining axes (NaN where ``term_b`` never
        catches up) — e.g. the node count at which allreduce overtakes
        compute, as a function of model size and link bandwidth.
        """
        names = self.axis_names
        if axis not in names:
            raise ConfigurationError(
                f"{self.model}: no axis {axis!r} among {names}"
            )
        dim = names.index(axis)
        a = np.moveaxis(self.term(term_a), dim, -1)
        b = np.moveaxis(self.term(term_b), dim, -1)
        mask = b >= a
        idx = np.argmax(mask, axis=-1)
        coords = self.axes[axis][idx].astype(float)
        return np.where(np.any(mask, axis=-1), coords, np.nan)

    def table(self, terms: tuple[str, ...] | None = None,
              limit: int = 20) -> str:
        """Flat text table of the first ``limit`` grid points."""
        names = terms or tuple(self.breakdown)
        header = [*self.axis_names, *names, "total"]
        cols = [self.term(n).reshape(-1) for n in names]
        axes_grid = np.meshgrid(*self.axes.values(), indexing="ij")
        axis_cols = [g.reshape(-1) for g in axes_grid]
        tot = self.total().reshape(-1)
        lines = ["  ".join(f"{h:>12}" for h in header)]
        for i in range(min(limit, tot.size)):
            row = [*(c[i] for c in axis_cols), *(c[i] for c in cols), tot[i]]
            lines.append("  ".join(f"{v:>12.6g}" for v in row))
        if tot.size > limit:
            lines.append(f"... ({tot.size - limit} more rows)")
        return "\n".join(lines)


def _shard_config(
    axes: dict[str, np.ndarray],
    fixed: dict[str, Any],
    shard_axis: str,
    bounds: tuple[int, int],
) -> tuple[dict[str, np.ndarray], dict[str, Any], tuple[int, ...]]:
    """The sub-grid covering ``bounds`` of ``shard_axis``: axes, config, shape."""
    lo, hi = bounds
    sub_axes = dict(axes)
    sub_axes[shard_axis] = axes[shard_axis][lo:hi]
    meshes = np.meshgrid(*sub_axes.values(), indexing="ij", sparse=True)
    config = dict(fixed)
    config.update(zip(sub_axes, meshes))
    shape = tuple(len(v) for v in sub_axes.values())
    return sub_axes, config, shape


def _eval_shard(
    model: Any,
    axes: dict[str, np.ndarray],
    fixed: dict[str, Any],
    shard_axis: str,
    instrument: bool,
    bounds: tuple[int, int],
) -> tuple[CostBreakdown, Any]:
    """Worker: evaluate one contiguous slice of the shard axis.

    Terms are densified to the full sub-grid shape so the parent can merge
    with one ``np.concatenate`` per term. When ``instrument`` is set the
    shard carries its own wall-clock :class:`~repro.telemetry.Telemetry`
    (one ``sweep_shard`` span), which the parent absorbs into the caller's
    handle — per-shard spans merged into one well-formed trace.
    """
    _, config, shape = _shard_config(axes, fixed, shard_axis, bounds)
    tel = None
    if instrument:
        from repro.telemetry import Telemetry

        tel = Telemetry()
        t0 = time.perf_counter()
        span = tel.begin(
            "sweep_shard", "sweep", facility="cost", track=model.name,
            time=0.0, axis=shard_axis, lo=bounds[0], hi=bounds[1],
        )
        breakdown = model.evaluate_batch(**config)
        tel.end(span, time=time.perf_counter() - t0)
    else:
        breakdown = model.evaluate_batch(**config)
    dense = {
        term: np.ascontiguousarray(np.broadcast_to(np.asarray(value), shape))
        for term, value in breakdown.items()
    }
    merged = CostBreakdown(
        model=breakdown.model,
        terms=dense,
        provenance=breakdown.provenance,
        critical=breakdown.critical,
    )
    return merged, tel


def _parallel_breakdown(
    model: Any,
    axes: dict[str, np.ndarray],
    fixed: dict[str, Any],
    n_jobs: int,
    telemetry: Any,
    parent_span: Any = None,
) -> CostBreakdown:
    """Axis-chunked parallel evaluation, merged in shard order."""
    from repro.exec.parallel import ParallelMap, resolve_jobs, shard_ranges

    # Longest axis hosts the shards (first wins ties — deterministic).
    shard_axis = max(axes, key=lambda name: len(axes[name]))
    dim = tuple(axes).index(shard_axis)
    ranges = shard_ranges(len(axes[shard_axis]), resolve_jobs(n_jobs))
    worker = partial(
        _eval_shard, model, axes, fixed, shard_axis, telemetry is not None
    )
    shards = ParallelMap(n_jobs).map(worker, ranges)
    first = shards[0][0]
    terms = {
        term: np.concatenate([bd[term] for bd, _ in shards], axis=dim)
        for term in first
    }
    if telemetry is not None:
        for _, shard_tel in shards:
            telemetry.absorb(shard_tel, parent=parent_span)
    return CostBreakdown(
        model=first.model,
        terms=terms,
        provenance=first.provenance,
        critical=first.critical,
    )


def sweep(
    model: Any,
    grid: dict[str, Any],
    telemetry: Any = None,
    n_jobs: int = 1,
    cache: Any = None,
    **fixed: Any,
) -> SweepResult:
    """Evaluate ``model`` over the outer product of the ``grid`` axes.

    ``grid`` maps config keys to 1-D sequences; axes are combined with a
    *sparse* ``meshgrid`` (``indexing='ij'``) so an N-axis sweep broadcasts
    instead of materialising N full-rank copies of every input. ``fixed``
    entries are passed through as scalars.

    ``n_jobs > 1`` shards the longest axis across a process pool and
    reassembles term arrays in shard order — bit-identical to ``n_jobs=1``
    (the formulas are elementwise over the grid). ``cache`` is an optional
    :class:`~repro.exec.cache.ResultCache`; the key covers the model, the
    axes, the fixed config and the package source fingerprint, never
    ``n_jobs``, so serial and parallel runs share entries.

    A :class:`~repro.telemetry.Telemetry` handle wraps the whole sweep in a
    wall-clock span on the ``cost`` facility; composite models additionally
    get one span per stage (via ``evaluate_batch_staged``), so a slow sweep
    shows which stage's formulas the time went into. Parallel sweeps record
    one ``sweep_shard`` span per shard, absorbed into the same handle.

    A ``"machine"`` axis is special: its values are machine registry names
    (or :class:`~repro.machine.spec.MachineSpec` objects), each resolved to
    the model's ``machine_config`` overrides, with the remaining axes swept
    per machine and the results stacked along a leading machine axis.

    >>> from repro.cost.models import ConvergenceCostModel
    >>> r = sweep(ConvergenceCostModel(), {"batch": [1024, 4096]},
    ...           min_samples=1.15e8, critical_batch=4096)
    >>> r.shape
    (2,)
    >>> [round(float(s)) for s in r.term("steps_to_target")]
    [140381, 56152]
    """
    if not grid:
        raise ConfigurationError("sweep() needs at least one grid axis")
    if "machine" in grid:
        return _machine_sweep(model, grid, telemetry, n_jobs, cache, fixed)
    axes = {name: np.asarray(values) for name, values in grid.items()}
    for name, values in axes.items():
        if values.ndim != 1 or values.size == 0:
            raise ConfigurationError(
                f"sweep axis {name!r} must be a non-empty 1-D sequence"
            )
    if cache is not None:
        payload = {"model": model, "axes": axes, "fixed": fixed}
        return cache.get_or_compute(
            "cost.sweep",
            payload,
            lambda: _sweep_impl(model, axes, fixed, telemetry, n_jobs),
        )
    return _sweep_impl(model, axes, fixed, telemetry, n_jobs)


def _machine_sweep(
    model: Any,
    grid: dict[str, Any],
    telemetry: Any,
    n_jobs: int,
    cache: Any,
    fixed: dict[str, Any],
) -> SweepResult:
    """One sweep per machine over the remaining axes, stacked along a
    leading ``machine`` axis whose coordinates are the registry keys.

    Each machine contributes its ``model.machine_config`` overrides (which
    shadow any same-named ``fixed`` entries — the axis exists to vary
    them). The cache, when given, is consulted by the per-machine
    sub-sweeps, so single-machine and multi-machine runs share entries.
    """
    from repro.machine.spec import resolve_machine

    specs = [resolve_machine(m) for m in grid["machine"]]
    if not specs:
        raise ConfigurationError(
            "sweep axis 'machine' must be a non-empty sequence"
        )
    keys = np.asarray([spec.key for spec in specs])
    rest = {name: values for name, values in grid.items() if name != "machine"}
    if rest:
        subs = [
            sweep(
                model, rest, telemetry=telemetry, n_jobs=n_jobs, cache=cache,
                **{**fixed, **model.machine_config(spec)},
            )
            for spec in specs
        ]
        first = subs[0]
        terms = {
            term: np.stack([s.term(term) for s in subs], axis=0)
            for term in first.breakdown
        }
        axes = {"machine": keys, **first.axes}
        inner = first.breakdown
    else:
        points = [
            model.evaluate(**{**fixed, **model.machine_config(spec)})
            for spec in specs
        ]
        inner = points[0]
        terms = {
            term: np.asarray([float(bd[term]) for bd in points])
            for term in inner
        }
        axes = {"machine": keys}
    breakdown = CostBreakdown(
        model=inner.model,
        terms=terms,
        provenance=inner.provenance,
        critical=inner.critical,
    )
    return SweepResult(model=model.name, axes=axes, breakdown=breakdown)


def _sweep_impl(
    model: Any,
    axes: dict[str, np.ndarray],
    fixed: dict[str, Any],
    telemetry: Any,
    n_jobs: int,
) -> SweepResult:
    parallel = n_jobs != 1 and max(len(v) for v in axes.values()) > 1
    if parallel:
        if telemetry is None:
            breakdown = _parallel_breakdown(model, axes, fixed, n_jobs, None)
        else:
            size = int(np.prod([len(v) for v in axes.values()]))
            with _sweep_span(telemetry, "sweep", model, size) as span:
                breakdown = _parallel_breakdown(
                    model, axes, fixed, n_jobs, telemetry, span
                )
        return SweepResult(model=model.name, axes=axes, breakdown=breakdown)
    meshes = np.meshgrid(*axes.values(), indexing="ij", sparse=True)
    config = dict(fixed)
    config.update(zip(axes, meshes))
    if telemetry is None:
        breakdown = model.evaluate_batch(**config)
    else:
        size = int(np.prod([len(v) for v in axes.values()]))
        with _sweep_span(telemetry, "sweep", model, size):
            if hasattr(model, "evaluate_batch_staged"):
                breakdown = model.evaluate_batch_staged(telemetry, **config)
            else:
                breakdown = model.evaluate_batch(**config)
    return SweepResult(model=model.name, axes=axes, breakdown=breakdown)


def sweep_scalar(
    model: Any, grid: dict[str, Any], telemetry: Any = None, **fixed: Any
) -> SweepResult:
    """Reference implementation: a Python loop of scalar ``evaluate`` calls.

    Produces the same ``SweepResult`` as :func:`sweep`, element-wise
    bit-identical; exists to validate (and benchmark against) the
    vectorized path. ``telemetry`` wraps the loop in one wall-clock span
    (no per-stage spans — the scalar path exists to be the plain
    reference).
    """
    if not grid:
        raise ConfigurationError("sweep_scalar() needs at least one grid axis")
    axes = {name: np.asarray(values) for name, values in grid.items()}
    shape = tuple(len(v) for v in axes.values())
    names = tuple(axes)
    term_grids: dict[str, np.ndarray] = {}
    first: CostBreakdown | None = None
    size = int(np.prod(shape))
    ctx = (
        nullcontext()
        if telemetry is None
        else _sweep_span(telemetry, "sweep_scalar", model, size)
    )
    with ctx:
        for flat_index in range(size):
            index = np.unravel_index(flat_index, shape)
            config = dict(fixed)
            for name, i in zip(names, index):
                config[name] = axes[name][i].item()
            bd = model.evaluate(**config)
            if first is None:
                first = bd
                for term in bd:
                    term_grids[term] = np.empty(shape, dtype=float)
            for term, value in bd.items():
                term_grids[term][index] = value
    assert first is not None
    breakdown = CostBreakdown(
        model=first.model,
        terms=dict(term_grids),
        provenance=first.provenance,
        critical=first.critical,
    )
    return SweepResult(model=model.name, axes=axes, breakdown=breakdown)
