"""Whole-system model: nodes + interconnect + storage hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import CapacityError, ConfigurationError
from repro.machine.gpu import Precision
from repro.machine.node import NodeSpec
from repro.network.link import LinkSpec
from repro.network.topology import FatTree, FatTreeSpec
from repro.storage.burst_buffer import BurstBuffer
from repro.storage.filesystem import SharedFileSystem


@dataclass(frozen=True)
class System:
    """A complete machine: homogeneous node partitions plus fabric and storage.

    Parameters
    ----------
    name:
        Machine name ("Summit", "Andes", ...).
    node / node_count:
        The main partition's node spec and size.
    extra_partitions:
        Additional (spec, count) partitions — e.g. Summit's 54 high-memory
        nodes or Andes' nine inherited GPU nodes.
    interconnect:
        Per-node injection link spec.
    fabric_levels / fabric_radix:
        Fat-tree shape parameters for on-demand topology instantiation.
    shared_fs:
        Center-wide filesystem; ``None`` for a cluster sharing another
        system's filesystem (Rhea/Andes mount Summit's).
    intra_node_link:
        NVLink-class link between accelerators inside a node; ``None`` for
        systems where it is unknown (callers fall back to Summit's NVLink2).
    """

    name: str
    node: NodeSpec
    node_count: int
    interconnect: LinkSpec
    shared_fs: SharedFileSystem | None = None
    extra_partitions: tuple[tuple[NodeSpec, int], ...] = field(default_factory=tuple)
    fabric_levels: int = 3
    fabric_radix: int = 36
    intra_node_link: LinkSpec | None = None

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")
        for spec, count in self.extra_partitions:
            if count < 1:
                raise ConfigurationError(
                    f"{self.name}: empty extra partition {spec.name}"
                )

    # -- aggregates -------------------------------------------------------------

    @property
    def total_nodes(self) -> int:
        return self.node_count + sum(c for _, c in self.extra_partitions)

    @property
    def total_gpus(self) -> int:
        total = self.node_count * self.node.gpu_count
        total += sum(spec.gpu_count * c for spec, c in self.extra_partitions)
        return total

    def peak_flops(self, precision: Precision = Precision.MIXED) -> float:
        """System peak at ``precision`` across all partitions."""
        total = self.node_count * self.node.peak_flops(precision)
        for spec, count in self.extra_partitions:
            total += count * spec.peak_flops(precision)
        return total

    @property
    def nvme(self) -> BurstBuffer | None:
        """Main-partition burst buffer, if the nodes have one."""
        if not self.node.has_nvme:
            return None
        return BurstBuffer(
            capacity_bytes=self.node.nvme_bytes,
            read_bandwidth=self.node.nvme_read_bandwidth,
            write_bandwidth=self.node.nvme_write_bandwidth,
        )

    def aggregate_nvme_read_bandwidth(self, n_nodes: int | None = None) -> float:
        nvme = self.nvme
        if nvme is None:
            return 0.0
        return nvme.aggregate_read_bandwidth(n_nodes or self.node_count)

    # -- allocation ---------------------------------------------------------------

    def require_nodes(self, n: int) -> None:
        """Raise :class:`CapacityError` if an ``n``-node job cannot be placed
        on the main partition."""
        if n < 1:
            raise ConfigurationError("job size must be at least one node")
        if n > self.node_count:
            raise CapacityError(
                f"{self.name}: requested {n} nodes, main partition has "
                f"{self.node_count}"
            )

    def build_fabric(self, hosts: int | None = None) -> FatTree:
        """Instantiate the fat-tree graph for ``hosts`` nodes (default: all).

        Building the full 4 608-host graph is feasible but slow; topology
        studies typically instantiate a sub-tree.
        """
        n = hosts if hosts is not None else self.total_nodes
        self.require_nodes(min(n, self.node_count))
        return FatTree(
            FatTreeSpec(
                hosts=n,
                radix=self.fabric_radix,
                levels=self.fabric_levels,
                link=LinkSpec(
                    latency=self.interconnect.latency,
                    bandwidth=self.interconnect.bandwidth,
                    rails=self.interconnect.rails,
                ),
            )
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        parts = [
            f"{self.name}: {self.node_count} x {self.node.name}",
            f"{self.total_gpus} GPUs" if self.total_gpus else "CPU-only",
            f"peak {units.format_flops(self.peak_flops(Precision.MIXED))} (mixed)"
            if self.total_gpus
            else "",
            f"injection {units.format_rate(self.interconnect.total_bandwidth)}",
        ]
        if self.shared_fs is not None:
            parts.append(
                f"{self.shared_fs.name} read "
                f"{units.format_rate(self.shared_fs.aggregate_read_bandwidth)}"
            )
        return ", ".join(p for p in parts if p)
