"""Hardware models for Summit and its companion OLCF systems.

This package provides the static hardware catalog the rest of the library
builds on: GPU and CPU specifications (:mod:`repro.machine.gpu`,
:mod:`repro.machine.cpu`), node compositions (:mod:`repro.machine.node`),
whole systems (:mod:`repro.machine.system`) and the concrete OLCF machines
described in Section II-A of the paper (:mod:`repro.machine.summit`).
"""

from repro.machine.cpu import AMD_EPYC_7302, IBM_POWER9, INTEL_XEON_E5_2650V2, CpuSpec
from repro.machine.gpu import NVIDIA_K80, NVIDIA_V100, GpuSpec, Precision
from repro.machine.node import NodeSpec
from repro.machine.summit import (
    GPFS_AGGREGATE_READ_BANDWIDTH,
    NVME_AGGREGATE_READ_BANDWIDTH,
    SUMMIT_ALGORITHMIC_BANDWIDTH,
    SUMMIT_INJECTION_BANDWIDTH,
    andes,
    rhea,
    summit,
    summit_high_mem_node,
    summit_node,
)
from repro.machine.system import System

__all__ = [
    "AMD_EPYC_7302",
    "CpuSpec",
    "GPFS_AGGREGATE_READ_BANDWIDTH",
    "GpuSpec",
    "IBM_POWER9",
    "INTEL_XEON_E5_2650V2",
    "NVIDIA_K80",
    "NVIDIA_V100",
    "NVME_AGGREGATE_READ_BANDWIDTH",
    "NodeSpec",
    "Precision",
    "SUMMIT_ALGORITHMIC_BANDWIDTH",
    "SUMMIT_INJECTION_BANDWIDTH",
    "System",
    "andes",
    "rhea",
    "summit",
    "summit_high_mem_node",
    "summit_node",
]
