"""The CostModel protocol, analytic base class, and composition operator.

A cost model maps a named numeric configuration to a
:class:`~repro.cost.breakdown.CostBreakdown`. Every model offers two entry
points sharing **one** implementation of the formulas (``_terms``):

- ``evaluate(**config)`` — the scalar path: plain Python numbers in, Python
  floats out, bit-identical to the handwritten expressions it replaced;
- ``evaluate_batch(**config)`` — the vectorized path: NumPy arrays (or
  mixes of arrays and scalars) broadcast through the same formulas.

Models compose with ``|`` into a :class:`CompositeCostModel` that evaluates
stages left to right in a shared namespace: each stage's output terms become
config for the stages after it, which is how ``step time = compute ∘
allreduce ∘ io ∘ straggler`` is wired without duplicating any expression.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.cost.breakdown import CostBreakdown
from repro.errors import ConfigurationError


@runtime_checkable
class CostModel(Protocol):
    """Structural interface: anything with a name and the two entry points."""

    name: str

    def evaluate(self, **config: Any) -> CostBreakdown: ...

    def evaluate_batch(self, **config: Any) -> CostBreakdown: ...


class AnalyticCostModel(abc.ABC):
    """Base class implementing both entry points over a single ``_terms``.

    Subclasses declare:

    - ``name`` — identifier used in breakdowns and sweeps;
    - ``requires`` — config keys the model reads (validated up front);
    - ``defaults`` — optional config fallbacks;
    - ``critical`` — term names summing to the critical-path total;
    - ``provenance`` — term name -> formula/paper-section note.
    """

    name: str = "cost"
    requires: tuple[str, ...] = ()
    defaults: dict[str, Any] = {}
    critical: tuple[str, ...] = ()
    provenance: dict[str, str] = {}

    @abc.abstractmethod
    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        """Compute the named terms from a validated configuration."""

    # -- entry points -------------------------------------------------------------

    def _config(self, config: Mapping[str, Any]) -> dict[str, Any]:
        merged = dict(self.defaults)
        merged.update(config)
        missing = [k for k in self.requires if k not in merged]
        if missing:
            raise ConfigurationError(
                f"{self.name}: missing config keys {missing}; requires "
                f"{list(self.requires)}"
            )
        return merged

    def evaluate(self, **config: Any) -> CostBreakdown:
        """Scalar path. Rejects array inputs so the bit-exact contract of
        the Python-arithmetic path is never silently mixed with NumPy."""
        c = self._config(config)
        arrays = [k for k, v in c.items() if isinstance(v, np.ndarray)]
        if arrays:
            raise ConfigurationError(
                f"{self.name}.evaluate() is the scalar path; got arrays for "
                f"{arrays} — use evaluate_batch()"
            )
        return self._wrap(self._terms(c))

    def evaluate_batch(self, **config: Any) -> CostBreakdown:
        """Vectorized path: list/tuple values are promoted to arrays and all
        array-valued keys broadcast together through the same formulas."""
        c = self._config(config)
        for key, value in c.items():
            if isinstance(value, (list, tuple)):
                c[key] = np.asarray(value)
        return self._wrap(self._terms(c))

    def _wrap(self, terms: dict[str, Any]) -> CostBreakdown:
        return CostBreakdown(
            model=self.name,
            terms=terms,
            provenance=dict(self.provenance),
            critical=self.critical or tuple(terms),
        )

    # -- machine binding ----------------------------------------------------------

    def machine_config(self, machine: Any) -> dict[str, Any]:
        """Config overrides this model derives from a machine.

        The base mapping covers the interconnect keys shared by the network
        cost models — ``latency`` (injection latency) and ``bandwidth``
        (aggregate injection bytes/s) — restricted to the keys this model
        actually ``requires``. Subclasses bind more (FLOPs, storage rates)
        by overriding. Raises if the model has no machine-derived keys, so
        a ``machine`` sweep axis on an incompatible model fails loudly.
        """
        from repro.machine.spec import resolve_machine

        spec = resolve_machine(machine)
        mapping: dict[str, Any] = {
            "latency": spec.injection_latency,
            "bandwidth": spec.injection_bandwidth,
        }
        overrides = {k: v for k, v in mapping.items() if k in self.requires}
        if not overrides:
            raise ConfigurationError(
                f"{self.name}: no machine-derived config keys among requires "
                f"{list(self.requires)}; override machine_config() to bind "
                "this model to a machine"
            )
        return overrides

    # -- composition --------------------------------------------------------------

    def __or__(self, other: "AnalyticCostModel") -> "CompositeCostModel":
        if not isinstance(other, AnalyticCostModel):
            return NotImplemented
        return CompositeCostModel([self, other])


class CompositeCostModel(AnalyticCostModel):
    """Stages evaluated left to right in a shared config namespace.

    A stage may read any config key *or any term emitted by an earlier
    stage* (dataflow composition). Term names must be globally unique.
    """

    def __init__(
        self,
        stages: list[AnalyticCostModel],
        name: str = "composite",
        critical: tuple[str, ...] = (),
        defaults: dict[str, Any] | None = None,
    ):
        flat: list[AnalyticCostModel] = []
        for stage in stages:
            if isinstance(stage, CompositeCostModel):
                flat.extend(stage.stages)
            else:
                flat.append(stage)
        if not flat:
            raise ConfigurationError("composite cost model needs >= 1 stage")
        self.stages = flat
        self.name = name
        self.critical = critical
        self.defaults = dict(defaults or {})
        prov: dict[str, str] = {}
        for stage in flat:
            prov.update(stage.provenance)
        self.provenance = prov

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        env = dict(c)
        out: dict[str, Any] = {}
        for stage in self.stages:
            produced = stage._terms(stage._config(env))
            clash = set(produced) & set(out)
            if clash:
                raise ConfigurationError(
                    f"{self.name}: stages {sorted(clash)} produced twice"
                )
            env.update(produced)
            out.update(produced)
        return out

    def machine_config(self, machine: Any) -> dict[str, Any]:
        """Union of the stages' machine-derived overrides; raises only if
        *no* stage binds to a machine."""
        overrides: dict[str, Any] = {}
        bound = False
        for stage in self.stages:
            try:
                overrides.update(stage.machine_config(machine))
                bound = True
            except ConfigurationError:
                continue
        if not bound:
            raise ConfigurationError(
                f"{self.name}: no stage derives config from a machine"
            )
        return overrides

    def evaluate_batch_staged(
        self, telemetry: Any, **config: Any
    ) -> CostBreakdown:
        """``evaluate_batch`` with one wall-clock telemetry span per stage.

        Identical result to :meth:`evaluate_batch` (same ``_terms`` per
        stage, same dataflow); the only addition is observability: each
        stage lands as a span on the ``cost`` facility (track = stage name,
        measured with :func:`time.perf_counter` relative to the start of
        this call) plus a ``cost.stage_seconds`` histogram sample. Use it
        to see where a big sweep's evaluation time actually goes.
        """
        import time

        c = self._config(config)
        for key, value in c.items():
            if isinstance(value, (list, tuple)):
                c[key] = np.asarray(value)
        t0 = time.perf_counter()
        env = dict(c)
        out: dict[str, Any] = {}
        for stage in self.stages:
            span = telemetry.begin(
                stage.name, "cost-stage", facility="cost",
                track=stage.name, time=time.perf_counter() - t0,
            )
            produced = stage._terms(stage._config(env))
            telemetry.end(span, time=time.perf_counter() - t0,
                          terms=len(produced))
            telemetry.metrics.histogram("cost.stage_seconds").record(
                span.duration
            )
            clash = set(produced) & set(out)
            if clash:
                raise ConfigurationError(
                    f"{self.name}: stages {sorted(clash)} produced twice"
                )
            env.update(produced)
            out.update(produced)
        return self._wrap(out)

    def __or__(self, other: AnalyticCostModel) -> "CompositeCostModel":
        if not isinstance(other, AnalyticCostModel):
            return NotImplemented
        return CompositeCostModel(
            [*self.stages, other],
            name=self.name,
            critical=self.critical,
            defaults=self.defaults,
        )


def compose(
    *stages: AnalyticCostModel,
    name: str = "composite",
    critical: tuple[str, ...] = (),
    defaults: dict[str, Any] | None = None,
) -> CompositeCostModel:
    """Build a named dataflow composite: ``compose(a, b, c)`` == ``a | b | c``
    plus a name, critical-path selection, and bound default config."""
    return CompositeCostModel(list(stages), name=name, critical=critical,
                              defaults=defaults)
