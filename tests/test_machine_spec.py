"""Tests for the machine registry: no-drift vs repro.constants, Summit
byte-identity goldens, property tests over random valid MachineSpecs, the
``machine`` sweep axis, and the ``--machine`` CLI surface."""

import dataclasses
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.cli import main
from repro.cost import sweep
from repro.cost.crossover import (
    DataParallelCrossoverModel,
    crossover_nodes,
    machine_crossover_sweep,
)
from repro.errors import ConfigurationError
from repro.machine.gpu import GpuSpec, Precision
from repro.machine.spec import (
    FRONTIER_LIKE,
    MACHINES,
    PERLMUTTER_LIKE,
    SUMMIT,
    TPU_POD_LIKE,
    MachineSpec,
    get_machine,
    machine_names,
    resolve_machine,
)
from repro.models.catalog import get_model
from repro.scheduler.jobs import SUMMIT_QUEUE_BINS, queue_bins_for
from repro.training.parallelism import DataSource, ParallelismPlan
from repro.training.step_time import step_cost

from .hypothesis_settings import QUICK_SETTINGS, STANDARD_SETTINGS

GOLDEN = pathlib.Path(__file__).parent / "goldens" / "conformance_summit_seed0.json"


class TestRegistry:
    def test_names_sorted_and_complete(self):
        assert machine_names() == tuple(sorted(MACHINES))
        assert set(machine_names()) == {
            "summit", "frontier-like", "perlmutter-like", "tpu-pod-like"
        }

    def test_provenance_classes(self):
        assert SUMMIT.provenance == "paper"
        for spec in (FRONTIER_LIKE, PERLMUTTER_LIKE, TPU_POD_LIKE):
            assert spec.provenance == "estimated"

    def test_unknown_machine_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="frontier-like"):
            get_machine("el-capitan")

    def test_resolve_none_is_summit(self):
        assert resolve_machine(None) is SUMMIT

    def test_resolve_spec_passthrough(self):
        assert resolve_machine(FRONTIER_LIKE) is FRONTIER_LIKE

    def test_resolve_name(self):
        assert resolve_machine("perlmutter-like") is PERLMUTTER_LIKE

    def test_factories_return_module_instances(self):
        for name in machine_names():
            assert get_machine(name) is get_machine(name)

    def test_describe_tags_provenance(self):
        assert "provenance: paper" in SUMMIT.describe()
        assert "provenance: estimated" in FRONTIER_LIKE.describe()

    def test_perlmutter_has_no_nvme(self):
        assert not PERLMUTTER_LIKE.has_nvme
        assert PERLMUTTER_LIKE.nvme is None
        assert PERLMUTTER_LIKE.system().nvme is None

    def test_as_dict_is_json_serializable(self):
        for name in machine_names():
            json.dumps(get_machine(name).as_dict(), sort_keys=True)


class TestNoDrift:
    """repro.constants, the Summit builders and the spec share one source."""

    def test_constants_shim_matches_spec(self):
        from repro import constants
        from repro.constants import _SPEC_FIELDS

        assert sorted(constants.__all__) == sorted(_SPEC_FIELDS)
        for name, field in _SPEC_FIELDS.items():
            assert getattr(constants, name) == getattr(SUMMIT, field), name

    def test_summit_node_built_from_spec(self):
        from repro.machine.summit import summit_node

        node = summit_node()
        assert node == SUMMIT.node()
        assert node.gpu_count == SUMMIT.gpus_per_node
        assert node.injection_bandwidth == SUMMIT.injection_bandwidth

    def test_summit_system_built_from_spec(self):
        from repro.machine.summit import summit

        system = summit(include_high_mem=False)
        assert system.node_count == SUMMIT.node_count
        assert system.interconnect == SUMMIT.interconnect
        assert system.shared_fs == SUMMIT.shared_fs
        assert system.intra_node_link == SUMMIT.intra_node_link

    def test_link_singletons_match_spec(self):
        from repro.network.link import EDR_RAIL, NVLINK2, SUMMIT_INJECTION

        assert EDR_RAIL.bandwidth == SUMMIT.injection_rail_bandwidth
        assert EDR_RAIL.latency == SUMMIT.injection_latency
        assert SUMMIT_INJECTION == SUMMIT.interconnect
        assert SUMMIT_INJECTION.total_bandwidth == SUMMIT.injection_bandwidth
        assert NVLINK2 == SUMMIT.intra_node_link

    def test_storage_singletons_match_spec(self):
        from repro.storage.burst_buffer import SUMMIT_NVME
        from repro.storage.filesystem import SUMMIT_GPFS

        assert SUMMIT_GPFS == SUMMIT.shared_fs
        assert SUMMIT_NVME == SUMMIT.nvme

    def test_queue_bins_reproduce_summit_thresholds(self):
        assert queue_bins_for(None) == SUMMIT_QUEUE_BINS
        assert queue_bins_for("summit") == SUMMIT_QUEUE_BINS

    def test_queue_bins_scale_to_other_machines(self):
        bins = queue_bins_for("frontier-like")
        assert bins[0][0] == round(0.6 * FRONTIER_LIKE.node_count)
        assert bins[-1][0] == 1


class TestSummitGolden:
    """The Summit conformance artifact is byte-identical to the seed."""

    def test_verify_json_byte_identical(self, capsys):
        golden = GOLDEN.read_text()
        assert main(["verify", "--json"]) == 0
        assert capsys.readouterr().out == golden

    def test_run_conformance_machine_summit_identical(self):
        from repro.verify import run_conformance

        golden = GOLDEN.read_text()
        assert run_conformance(seed=0, machine="summit").to_json() == golden


def _gpu_scaled(gpu: GpuSpec, factor: float) -> GpuSpec:
    return GpuSpec(
        name=f"{gpu.name} x{factor:g}",
        peak_flops={p: v * factor for p, v in gpu.peak_flops.items()},
        memory_bytes=gpu.memory_bytes,
        memory_bandwidth=gpu.memory_bandwidth,
        nvlink_bandwidth=gpu.nvlink_bandwidth,
    )


@st.composite
def machine_specs(draw) -> MachineSpec:
    """Random valid MachineSpecs as Summit variations."""
    has_nvme = draw(st.booleans())
    return dataclasses.replace(
        SUMMIT,
        key="hypo",
        name="Hypothetical",
        provenance="estimated",
        node_count=draw(st.integers(min_value=64, max_value=8192)),
        injection_rails=draw(st.integers(min_value=1, max_value=4)),
        injection_rail_bandwidth=(
            draw(st.floats(min_value=1.0, max_value=50.0)) * units.GB
        ),
        injection_latency=(
            draw(st.floats(min_value=0.2, max_value=5.0)) * units.US
        ),
        nvme_capacity_bytes=1.6 * units.TB if has_nvme else 0.0,
        nvme_read_bandwidth=6.0 * units.GB if has_nvme else 0.0,
        nvme_write_bandwidth=2.1 * units.GB if has_nvme else 0.0,
        node_tags=(
            frozenset({"gpu", "nvme"}) if has_nvme else frozenset({"gpu"})
        ),
    )


class TestMachineSpecProperties:
    @QUICK_SETTINGS
    @given(spec=machine_specs(), factor=st.floats(min_value=1.1, max_value=8.0))
    def test_crossover_monotone_in_bandwidth(self, spec, factor):
        """More injection bandwidth never crosses over at fewer nodes."""
        faster = dataclasses.replace(
            spec,
            injection_rail_bandwidth=spec.injection_rail_bandwidth * factor,
        )
        ranks = np.arange(2, min(spec.node_count, 512) + 1)
        sizes = np.array([1e8, 1e9])
        lo = crossover_nodes(
            machine_crossover_sweep(sizes, ranks, machine=spec,
                                    compute_time=0.05)
        )
        hi = crossover_nodes(
            machine_crossover_sweep(sizes, ranks, machine=faster,
                                    compute_time=0.05)
        )
        lo = np.where(np.isnan(lo), np.inf, lo)
        hi = np.where(np.isnan(hi), np.inf, hi)
        assert np.all(hi >= lo)

    @QUICK_SETTINGS
    @given(spec=machine_specs(), factor=st.floats(min_value=1.1, max_value=8.0))
    def test_step_time_monotone_in_flops(self, spec, factor):
        """Faster accelerators never lengthen the compute term."""
        faster = dataclasses.replace(
            spec, gpus=_gpu_scaled(spec.gpus, factor)
        )
        plan = ParallelismPlan(local_batch=32)
        model = get_model("resnet50")
        # data from memory: the random spec may have no NVMe tier
        slow_bd = step_cost(
            model, spec.system(), plan, data_source=DataSource.MEMORY
        ).evaluate(n_nodes=16)
        fast_bd = step_cost(
            model, faster.system(), plan, data_source=DataSource.MEMORY
        ).evaluate(n_nodes=16)
        assert fast_bd["compute"] <= slow_bd["compute"]
        assert fast_bd["compute"] > 0

    @QUICK_SETTINGS
    @given(spec=machine_specs())
    def test_sweep_scalar_bit_parity_per_machine(self, spec):
        """The machine sweep axis is bitwise the scalar evaluate path."""
        model = DataParallelCrossoverModel()
        ranks = [2, 16, 64]
        result = sweep(
            model, {"machine": [spec], "n_ranks": np.array(ranks)},
            message_bytes=1e9, compute_time=0.05,
        )
        overrides = model.machine_config(spec)
        for j, p in enumerate(ranks):
            scalar = model.evaluate(
                message_bytes=1e9, compute_time=0.05, n_ranks=p, **overrides
            )
            for term, value in scalar.terms.items():
                assert result.term(term)[0, j] == value

    @QUICK_SETTINGS
    @given(spec=machine_specs())
    def test_structural_battery_passes(self, spec):
        """Any valid spec passes its own structural conformance battery."""
        from repro.verify.machines import run_machine_conformance

        assert run_machine_conformance(spec, seed=0).passed


class TestMachineSweepAxis:
    def test_machine_axis_stacks_registry_entries(self):
        model = DataParallelCrossoverModel()
        ranks = np.arange(2, 10)
        result = sweep(
            model, {"machine": ["summit", "frontier-like"], "n_ranks": ranks},
            message_bytes=1e9, compute_time=0.05,
        )
        assert list(result.axes) == ["machine", "n_ranks"]
        assert result.term("comm").shape == (2, len(ranks))
        solo = sweep(
            model, {"n_ranks": ranks}, message_bytes=1e9, compute_time=0.05,
            **model.machine_config(SUMMIT),
        )
        np.testing.assert_array_equal(
            result.term("comm")[0], solo.term("comm")
        )

    def test_machine_only_axis(self):
        model = DataParallelCrossoverModel()
        result = sweep(
            model, {"machine": ["summit", "tpu-pod-like"]},
            message_bytes=1e9, compute_time=0.05, n_ranks=64,
        )
        comm = result.term("comm")
        assert comm.shape == (2,)
        # the pod's 100 GB/s injection beats Summit's 2 x 12.5 GB/s
        assert comm[1] < comm[0]

    def test_unknown_machine_in_axis_raises(self):
        model = DataParallelCrossoverModel()
        with pytest.raises(ConfigurationError):
            sweep(model, {"machine": ["aurora"]},
                  message_bytes=1e9, compute_time=0.05, n_ranks=64)


class TestMachineCli:
    def test_machine_lists_registry(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        for name in machine_names():
            assert name in out

    def test_machine_describes_entry(self, capsys):
        assert main(["machine", "frontier-like"]) == 0
        out = capsys.readouterr().out
        assert "Frontier-like" in out and "estimated" in out

    def test_machine_unknown_exits_config_error(self, capsys):
        assert main(["machine", "el-capitan"]) == 3

    def test_verify_machine_frontier(self, capsys):
        assert main(["verify", "--machine", "frontier-like"]) == 0
        out = capsys.readouterr().out
        assert "machine.frontier-like" in out and "PASS" in out

    def test_verify_machine_json_deterministic(self, capsys):
        assert main(["verify", "--machine", "tpu-pod-like", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["verify", "--machine", "tpu-pod-like", "--json"]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["sections"] == ["machine.tpu-pod-like"]
        assert payload["passed"] is True

    def test_sweep_crossover_machine_json(self, capsys):
        assert main([
            "sweep", "--crossover", "--machine", "frontier-like",
            "--nodes", "2,64,256", "--no-cache", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "frontier-like"
        assert len(payload["rows"]) == 2

    def test_sweep_machine_summit_json_omits_key(self, capsys):
        assert main([
            "sweep", "--crossover", "--machine", "summit",
            "--nodes", "2,64", "--no-cache", "--json",
        ]) == 0
        assert "machine" not in json.loads(capsys.readouterr().out)

    def test_telemetry_machine_restart(self, capsys):
        assert main([
            "telemetry", "--scenario", "restart",
            "--machine", "perlmutter-like", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "perlmutter-like"
        assert payload["results"]["n_checkpoints"] > 0

    def test_resilience_machine_without_nvme_rejects_nvme_tier(self, capsys):
        assert main([
            "resilience", "--app", "blanchard", "--nodes", "64",
            "--machine", "perlmutter-like", "--tier", "nvme",
            "--analytic-only",
        ]) == 3
