"""The declarative campaign spec — one schema shared by CLI, service, tests.

A :class:`CampaignSpec` is the entire contract between a submitter and the
campaign server: which jobs to run (each a deterministic ``handler`` +
``params`` + ``seed`` triple), how long a session may hold a lease before
the job is requeued, how often it must heartbeat, how many jobs the server
will buffer before shedding load, and the :class:`RetryPolicy` governing
both server-side requeue accounting and client-side backoff.

Everything is plain JSON — ``to_json``/``from_json`` round-trip exactly —
so the same file drives ``repro submit``, the asyncio server, the chaos
harness, and the test suite. Job identity is the ``job_id`` string;
job *content* (what gets memoized in the shared
:class:`~repro.exec.cache.ResultCache`) is the (handler, params, seed)
triple, via :meth:`JobSpec.content_payload`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.resilience.retry import RetryPolicy

__all__ = ["CampaignSpec", "JobSpec", "drug_campaign"]


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: a named deterministic handler plus its inputs."""

    job_id: str
    handler: str
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be non-empty")
        if not self.handler:
            raise ConfigurationError("handler must be non-empty")
        try:
            json.dumps(self.params)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"job {self.job_id!r} params must be JSON-serialisable"
            ) from exc

    def content_payload(self) -> dict[str, Any]:
        """What the job *is*, for result-cache keying (identity excluded)."""
        return {"handler": self.handler, "params": self.params,
                "seed": self.seed}

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        return cls(
            job_id=str(data["job_id"]),
            handler=str(data["handler"]),
            params=dict(data.get("params", {})),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A whole campaign: jobs plus the service's robustness envelope."""

    name: str
    jobs: tuple[JobSpec, ...] = ()
    lease_timeout_s: float = 60.0
    heartbeat_interval_s: float = 15.0
    max_pending: int = 10_000
    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_max_s: float = 5.0
    deadline_s: float | None = None
    #: Ring-buffer depth per live event topic (journal backlog is disk-backed
    #: and unaffected; this bounds spans/events/counters catch-up only).
    event_history: int = 4096

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name must be non-empty")
        if self.lease_timeout_s <= 0:
            raise ConfigurationError("lease_timeout_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be positive")
        if self.heartbeat_interval_s >= self.lease_timeout_s:
            raise ConfigurationError(
                "heartbeat_interval_s must be shorter than lease_timeout_s "
                "or a healthy session cannot keep its lease alive"
            )
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        if self.event_history < 1:
            raise ConfigurationError("event_history must be >= 1")
        seen: set[str] = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise ConfigurationError(
                    f"duplicate job_id {job.job_id!r} in campaign"
                )
            seen.add(job.job_id)
        self.retry_policy()  # validates the backoff parameters

    def retry_policy(self) -> RetryPolicy:
        """The one policy both server requeue and client backoff share."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base_s,
            backoff_max=self.backoff_max_s,
            jitter_fraction=0.0,
            deadline_s=self.deadline_s,
        )

    # -- JSON round-trip -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["jobs"] = [job.to_dict() for job in self.jobs]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        known = {
            "lease_timeout_s", "heartbeat_interval_s", "max_pending",
            "max_attempts", "backoff_base_s", "backoff_max_s", "deadline_s",
            "event_history",
        }
        kwargs = {k: data[k] for k in known if k in data and data[k] is not None}
        return cls(
            name=str(data["name"]),
            jobs=tuple(JobSpec.from_dict(j) for j in data.get("jobs", ())),
            **kwargs,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())


def drug_campaign(
    n_jobs: int = 32,
    seed: int = 2022,
    name: str = "section5-drug-discovery",
    **overrides: Any,
) -> CampaignSpec:
    """A Section V-shaped docking campaign: one ``docking`` job per batch.

    Deterministic: the same ``(n_jobs, seed)`` always yields the same spec,
    so an interrupted and an uninterrupted run of the same campaign can be
    compared byte for byte.

    >>> spec = drug_campaign(4)
    >>> [j.job_id for j in spec.jobs]
    ['dock-0000', 'dock-0001', 'dock-0002', 'dock-0003']
    >>> spec == CampaignSpec.from_json(spec.to_json())
    True
    """
    jobs = tuple(
        JobSpec(
            job_id=f"dock-{i:04d}",
            handler="docking",
            params={"n_compounds": 64, "batch": i},
            seed=seed + i,
        )
        for i in range(n_jobs)
    )
    return CampaignSpec(name=name, jobs=jobs, **overrides)
