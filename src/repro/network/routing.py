"""Routing and congestion on a fat tree.

Summit's fabric uses *adaptive* routing: each packet may take any of the
equal-cost shortest paths, spreading load across uplinks. Static routing
pins each (src, dst) pair to one deterministic path, which under adversarial
traffic concentrates flows onto a few links. This module lets us measure the
difference: the maximum link load under a traffic pattern determines the
slowdown relative to an uncongested fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError
from repro.network.topology import FatTree


class RoutingPolicy(enum.Enum):
    STATIC = "static"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing a traffic pattern.

    ``max_load`` is the largest per-cable flow count; ``slowdown`` is the
    resulting throughput degradation factor relative to a congestion-free
    fabric (1.0 = no congestion).
    """

    max_load: float
    mean_load: float
    slowdown: float


class Router:
    """Routes host-to-host flows over a :class:`FatTree` and accounts load."""

    def __init__(self, tree: FatTree, policy: RoutingPolicy = RoutingPolicy.ADAPTIVE):
        self.tree = tree
        self.policy = policy

    def route(
        self, flows: list[tuple[int, int]], switch_links_only: bool = False
    ) -> RouteResult:
        """Route ``flows`` (list of (src_host, dst_host)) and return load stats.

        Static routing sends each flow down a single deterministic shortest
        path (hash of the pair). Adaptive routing splits each flow evenly
        across all equal-cost shortest paths, which is the steady-state
        behaviour of per-packet adaptivity.

        ``switch_links_only`` restricts the statistics to switch-to-switch
        cables — host NICs trivially carry every flow of their own host, so
        fabric-contention studies exclude them.
        """
        if not flows:
            raise ConfigurationError("no flows to route")
        g = self.tree.graph
        loads: dict[frozenset, float] = {}

        for src, dst in flows:
            if src == dst:
                continue
            a, b = self.tree.host(src), self.tree.host(dst)
            paths = list(nx.all_shortest_paths(g, a, b))
            if self.policy is RoutingPolicy.STATIC:
                chosen = [paths[hash((src, dst)) % len(paths)]]
                weight = 1.0
            else:
                chosen = paths
                weight = 1.0 / len(paths)
            for path in chosen:
                for u, v in zip(path, path[1:]):
                    if switch_links_only and (u[0] == "host" or v[0] == "host"):
                        continue
                    key = frozenset((u, v))
                    mult = g[u][v]["multiplicity"]
                    loads[key] = loads.get(key, 0.0) + weight / mult

        if not loads:
            return RouteResult(max_load=0.0, mean_load=0.0, slowdown=1.0)
        max_load = max(loads.values())
        mean_load = sum(loads.values()) / len(loads)
        return RouteResult(
            max_load=max_load,
            mean_load=mean_load,
            slowdown=max(1.0, max_load),
        )
