"""Storage hierarchy models: shared parallel filesystem, node-local burst
buffers, dataset sharding/staging, and the Section VI-B aggregate-read-
bandwidth requirement model.
"""

from repro.storage.burst_buffer import BurstBuffer, StagingPlan
from repro.storage.dataset import Dataset, ShardingPlan
from repro.storage.filesystem import SharedFileSystem
from repro.storage.io_model import IoRequirement, read_requirement, io_feasibility

__all__ = [
    "BurstBuffer",
    "Dataset",
    "IoRequirement",
    "SharedFileSystem",
    "ShardingPlan",
    "StagingPlan",
    "io_feasibility",
    "read_requirement",
]
