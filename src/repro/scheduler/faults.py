"""Node-failure semantics for the batch-scheduler simulation.

A running job dies when one of its nodes dies; the facility requeues it.
If the job checkpoints every ``checkpoint_interval`` seconds, the requeued
execution resumes from the last committed checkpoint; otherwise it restarts
cold. Work between the last checkpoint and the failure is charged to
``lost_node_hours`` — the accounting Section VI motivates when it argues
that burst-buffer-cheap checkpoints, not peak throughput, set
time-to-solution at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.resilience.faults import DEFAULT_NODE_MTBF_SECONDS, NodeFailureModel


@dataclass(frozen=True)
class FaultModel:
    """Failure/requeue configuration for a :class:`Scheduler` run."""

    node_mtbf_seconds: float = DEFAULT_NODE_MTBF_SECONDS
    checkpoint_interval: float | None = None  # None = jobs restart cold
    max_requeues: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_mtbf_seconds <= 0:
            raise ConfigurationError("node MTBF must be positive")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint interval must be positive")
        if self.max_requeues < 0:
            raise ConfigurationError("max_requeues must be >= 0")

    @property
    def failure_model(self) -> NodeFailureModel:
        return NodeFailureModel(self.node_mtbf_seconds)

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def committed_before(self, run_seconds: float) -> float:
        """Useful seconds safely checkpointed when a failure strikes
        ``run_seconds`` into an execution."""
        if self.checkpoint_interval is None:
            return 0.0
        return (run_seconds // self.checkpoint_interval) * self.checkpoint_interval
