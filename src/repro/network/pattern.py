"""Traffic patterns for routing/congestion studies.

The routing study's question — why Summit's fabric uses *adaptive* routing —
is answered by comparing maximum link load across the communication patterns
distributed training actually generates: nearest-neighbour rings
(allreduce), permutations (alltoall/shuffle phases) and incast (parameter
servers / IO aggregation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def ring_pattern(n_hosts: int) -> list[tuple[int, int]]:
    """Each host sends to its successor — the ring-allreduce step pattern."""
    if n_hosts < 2:
        raise ConfigurationError("need at least two hosts")
    return [(i, (i + 1) % n_hosts) for i in range(n_hosts)]


def permutation_pattern(n_hosts: int, seed: int = 0) -> list[tuple[int, int]]:
    """A random derangement-ish permutation (no self-flows)."""
    if n_hosts < 2:
        raise ConfigurationError("need at least two hosts")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_hosts)
    # rotate fixed points away
    for i in range(n_hosts):
        if perm[i] == i:
            j = (i + 1) % n_hosts
            perm[i], perm[j] = perm[j], perm[i]
    return [(i, int(perm[i])) for i in range(n_hosts)]


def incast_pattern(n_hosts: int, target: int = 0) -> list[tuple[int, int]]:
    """All hosts send to one target — IO aggregation / parameter server."""
    if n_hosts < 2:
        raise ConfigurationError("need at least two hosts")
    if not 0 <= target < n_hosts:
        raise ConfigurationError("target out of range")
    return [(i, target) for i in range(n_hosts) if i != target]


def bisection_pattern(n_hosts: int) -> list[tuple[int, int]]:
    """Host i in the lower half pairs with i + n/2 — the bisection stressor."""
    if n_hosts < 2 or n_hosts % 2:
        raise ConfigurationError("need an even host count >= 2")
    half = n_hosts // 2
    return [(i, i + half) for i in range(half)]


PATTERNS = {
    "ring": ring_pattern,
    "permutation": permutation_pattern,
    "incast": incast_pattern,
    "bisection": bisection_pattern,
}
