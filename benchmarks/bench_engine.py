"""Event-engine throughput: calendar-queue fast path vs the heap baseline.

Times the same pure-timer workload two ways at each size and delay
distribution:

- **heap baseline** — the seed idiom: one generator per timer yielding a
  single ``Timeout``, on the legacy ``impl="heap"`` scheduler;
- **calendar fast path** — ``spawn_timers`` bulk spawn (generator-free
  :class:`~repro.sim.engine.Timer` plans) on the calendar-queue scheduler
  with batched same-timestamp dispatch.

The *drain* phase (``Engine.run`` — the pure event loop) and the *spawn*
phase are timed separately: the drain is where the calendar queue's
batched dispatch pays off, and it is the number the ratchet floor pins.
Both variants must agree on every per-timer completion time and the final
clock — determinism is the contract; speed is the payoff.

The homogeneous distribution (every timer expires at the same instant —
the failure-injector / Monte-Carlo ensemble shape) is the headline: the
heap pays an O(log n) sift per event with full tie-break comparisons,
while the calendar drains the whole instant as one bucket sort plus one
slice. The mixed distribution (hash-scattered delays) is the stress case
for bucket placement and is recorded, not just eyeballed.

GC is disabled inside the timed regions (both variants equally): with a
million live ``Process`` objects, collector pauses otherwise dominate the
signal. Set ``REPRO_SMOKE=1`` for a small-size CI run that records
timings and checks parity without enforcing the full-size speedup floor.
All scalars land in ``BENCH_engine.json``; ``check_engine_floor.py``
ratchets them in CI.
"""

from __future__ import annotations

import gc
import os
import time

from _record import record
from conftest import report

from repro.sim.engine import Engine, Timeout, Timer

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

#: Timer counts per measurement. The full ladder ends at one million —
#: the scale where the heap's O(log n) per-event sift hurts most.
SIZES = (2_000,) if SMOKE else (10_000, 100_000, 1_000_000)

#: Required drain-phase speedup, homogeneous distribution, largest size.
MIN_HOMO_SPEEDUP = 5.0

#: Every homogeneous timer expires at this delay (one giant batch).
HOMOGENEOUS_DELAY = 3600.0


def _mixed_delays(n: int) -> list[float]:
    """Deterministic hash-scattered delays in [0, ~3690s) — no RNG state."""
    return [(i * 2654435761 % 1000003) / 271.0 for i in range(n)]


def _gen_timer(delay: float):
    """The seed-era timer idiom: a generator that sleeps once."""
    yield Timeout(delay)


def _measure(delays: list[float], variant: str):
    """Spawn + drain one workload; return (engine, procs, spawn_s, drain_s)."""
    gc.collect()
    gc.disable()
    try:
        if variant == "heap":
            eng = Engine(impl="heap")
            t0 = time.perf_counter()
            procs = [eng.spawn(_gen_timer(d)) for d in delays]
            t1 = time.perf_counter()
            eng.run()
            t2 = time.perf_counter()
        else:
            eng = Engine(impl="calendar")
            t0 = time.perf_counter()
            procs = eng.spawn_timers(delays)
            t1 = time.perf_counter()
            eng.run()
            t2 = time.perf_counter()
    finally:
        gc.enable()
    return eng, procs, t1 - t0, t2 - t1


def test_engine_event_throughput():
    grid: dict[str, dict] = {}
    rows = []
    for n in SIZES:
        for dist in ("homogeneous", "mixed"):
            delays = (
                [HOMOGENEOUS_DELAY] * n if dist == "homogeneous"
                else _mixed_delays(n)
            )
            heap_eng, heap_procs, heap_spawn, heap_drain = _measure(
                delays, "heap"
            )
            cal_eng, cal_procs, cal_spawn, cal_drain = _measure(
                delays, "calendar"
            )

            # determinism parity: same final clock, every timer finished
            # at its exact delay on both schedulers
            assert heap_eng.now == cal_eng.now
            assert all(p.finished for p in cal_procs)
            assert all(
                h.finished_at == c.finished_at
                for h, c in zip(heap_procs, cal_procs)
            ), f"completion times diverged ({dist}, n={n})"

            combo = {
                "n_timers": n,
                "heap_spawn_seconds": heap_spawn,
                "heap_drain_seconds": heap_drain,
                "heap_events_per_sec": n / heap_drain,
                "calendar_spawn_seconds": cal_spawn,
                "calendar_drain_seconds": cal_drain,
                "calendar_events_per_sec": n / cal_drain,
                "drain_speedup": heap_drain / cal_drain,
                "total_speedup": (
                    (heap_spawn + heap_drain) / (cal_spawn + cal_drain)
                ),
            }
            grid[f"{dist}_{n}"] = combo
            rows.append((
                f"{dist} n={n:,}",
                f"{combo['heap_events_per_sec']:,.0f}/s",
                f"{combo['calendar_events_per_sec']:,.0f}/s",
                f"{combo['drain_speedup']:.2f}x",
                f"{combo['total_speedup']:.2f}x",
            ))

    largest = SIZES[-1]
    homo = grid[f"homogeneous_{largest}"]
    mixed = grid[f"mixed_{largest}"]
    if not SMOKE:
        assert homo["drain_speedup"] >= MIN_HOMO_SPEEDUP, (
            f"calendar drain only {homo['drain_speedup']:.2f}x over the "
            f"heap baseline on {largest:,} homogeneous timers "
            f"(need >= {MIN_HOMO_SPEEDUP}x)"
        )

    report(
        f"Engine event throughput ({'smoke' if SMOKE else 'full'}, "
        f"drain phase, gc off)",
        rows,
        header=("workload", "heap", "calendar", "drain", "total"),
    )
    record(
        "engine",
        {
            "sizes": list(SIZES),
            "grid": grid,
            "homogeneous_drain_speedup": homo["drain_speedup"],
            "homogeneous_total_speedup": homo["total_speedup"],
            "homogeneous_events_per_sec": homo["calendar_events_per_sec"],
            "mixed_drain_speedup": mixed["drain_speedup"],
            "mixed_events_per_sec": mixed["calendar_events_per_sec"],
            "min_homo_speedup": None if SMOKE else MIN_HOMO_SPEEDUP,
        },
        wall_seconds=sum(
            c["heap_spawn_seconds"] + c["heap_drain_seconds"]
            + c["calendar_spawn_seconds"] + c["calendar_drain_seconds"]
            for c in grid.values()
        ),
    )


def test_rearming_timer_parity():
    """A re-arming Timer matches a looping generator, event for event.

    Not a timed section — a cheap structural check that the fast path's
    re-arm scheduling (``fire`` returning a float) lands on the same
    simulated instants as the equivalent generator loop.
    """
    n_ticks = 5
    period = 7.0

    def looping(eng, log):
        for _ in range(n_ticks):
            yield Timeout(period)
            log.append(eng.now)

    gen_log: list[float] = []
    eng_gen = Engine(impl="heap")
    eng_gen.spawn(looping(eng_gen, gen_log))
    eng_gen.run()

    timer_log: list[float] = []
    eng_t = Engine(impl="calendar")
    remaining = [n_ticks]

    def fire():
        timer_log.append(eng_t.now)
        remaining[0] -= 1
        return period if remaining[0] else None

    eng_t.spawn(Timer(period, fire))
    eng_t.run()

    assert timer_log == gen_log
    assert eng_t.now == eng_gen.now == n_ticks * period
