"""Tests for the numpy optimizers (SGD, Adam, LARS, LAMB, LARC, schedules)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.optim import LAMB, LARC, LARS, SGD, Adam, LinearScalingRule, WarmupSchedule
from repro.optim.base import trust_ratio


def quadratic_descent(optimizer, steps=200, dim=8, seed=0):
    """Minimise ||w - target||^2; return (initial, final) loss."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=dim)
    w = [rng.normal(size=dim) + 3.0]

    def loss():
        return float(((w[0] - target) ** 2).sum())

    initial = loss()
    for _ in range(steps):
        grad = [2.0 * (w[0] - target)]
        optimizer.step(w, grad)
    return initial, loss()


ALL_OPTIMIZERS = [
    lambda: SGD(lr=0.05),
    lambda: SGD(lr=0.02, momentum=0.9),
    lambda: Adam(lr=0.1),
    lambda: LARS(lr=1.0, eta=0.05),
    lambda: LAMB(lr=0.05),
    lambda: LARC(lr=0.05, eta=0.1),
]


@pytest.mark.parametrize("factory", ALL_OPTIMIZERS)
def test_optimizer_minimises_quadratic(factory):
    initial, final = quadratic_descent(factory())
    assert final < initial * 0.01


@pytest.mark.parametrize("factory", ALL_OPTIMIZERS)
def test_optimizer_rejects_shape_mismatch(factory):
    opt = factory()
    with pytest.raises(ConfigurationError):
        opt.step([np.zeros(3)], [np.zeros(4)])


@pytest.mark.parametrize("factory", ALL_OPTIMIZERS)
def test_optimizer_rejects_count_mismatch(factory):
    opt = factory()
    with pytest.raises(ConfigurationError):
        opt.step([np.zeros(3)], [np.zeros(3), np.zeros(3)])


class TestSGD:
    def test_plain_update(self):
        w = [np.array([1.0, 2.0])]
        SGD(lr=0.5).step(w, [np.array([1.0, 1.0])])
        assert w[0].tolist() == [0.5, 1.5]

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        w = [np.zeros(1)]
        g = [np.ones(1)]
        opt.step(w, g)  # v=1, w=-1
        opt.step(w, g)  # v=1.5, w=-2.5
        assert w[0][0] == pytest.approx(-2.5)

    def test_weight_decay_shrinks_weights(self):
        opt = SGD(lr=0.1, weight_decay=0.1)
        w = [np.ones(4)]
        opt.step(w, [np.zeros(4)])
        assert (w[0] < 1.0).all()

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, momentum=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.0)


class TestAdam:
    def test_first_step_size_about_lr(self):
        # Bias correction makes the first Adam step ~lr regardless of scale
        for scale in (1e-3, 1.0, 1e3):
            opt = Adam(lr=0.1)
            w = [np.zeros(1)]
            opt.step(w, [np.full(1, scale)])
            assert abs(w[0][0]) == pytest.approx(0.1, rel=1e-3)

    def test_state_matches_params(self):
        opt = Adam(lr=0.1)
        w = [np.zeros(3), np.zeros((2, 2))]
        opt.step(w, [np.ones(3), np.ones((2, 2))])
        assert opt._m[1].shape == (2, 2)


class TestTrustRatio:
    def test_unit_ratio_for_zero_weight(self):
        assert trust_ratio(np.zeros(3), np.ones(3)) == 1.0

    def test_unit_ratio_for_zero_update(self):
        assert trust_ratio(np.ones(3), np.zeros(3)) == 1.0

    def test_ratio_value(self):
        assert trust_ratio(np.array([3.0, 4.0]), np.array([0.0, 1.0])) == 5.0

    @given(st.floats(min_value=0.01, max_value=100))
    def test_scale_invariance_of_direction(self, scale):
        w = np.array([1.0, 2.0])
        g = np.array([0.5, -0.5])
        assert trust_ratio(w, g * scale) == pytest.approx(
            trust_ratio(w, g) / scale
        )


class TestLARS:
    def test_layerwise_normalisation(self):
        """Layers with wildly different gradient scales move proportionally
        to their own weight norms — the property that makes large-batch
        training stable."""
        opt = LARS(lr=1.0, momentum=0.0, eta=0.01)
        w = [np.full(4, 1.0), np.full(4, 1.0)]
        grads = [np.full(4, 1e-6), np.full(4, 1e3)]
        before = [x.copy() for x in w]
        opt.step(w, grads)
        steps = [np.abs(a - b).max() for a, b in zip(w, before)]
        assert steps[0] == pytest.approx(steps[1], rel=1e-6)


class TestLAMB:
    def test_trust_ratio_clipped(self):
        opt = LAMB(lr=0.1, clip=1.0, weight_decay=0.0)
        w = [np.full(4, 1e6)]  # enormous weight norm -> unclipped ratio huge
        opt.step(w, [np.full(4, 1.0)])
        # step magnitude is bounded by lr * clip * |adam direction| ~ 0.1
        assert np.abs(w[0] - 1e6).max() <= 0.1 + 1e-9


class TestLARC:
    def test_effective_lr_never_exceeds_global(self):
        """LARC clips the local rate at the global lr (Kurth et al.'s
        'LARC learning rate control')."""
        opt = LARC(lr=0.01, momentum=0.0, eta=10.0)
        w = [np.full(4, 100.0)]  # trust ratio would be huge
        g = [np.full(4, 1.0)]
        opt.step(w, g)
        assert np.abs(w[0] - 100.0).max() <= 0.01 + 1e-12


class TestSchedules:
    def test_linear_scaling_rule(self):
        rule = LinearScalingRule(base_lr=0.1, base_batch=256)
        assert rule.lr_for_batch(8192) == pytest.approx(3.2)

    def test_linear_scaling_cap(self):
        rule = LinearScalingRule(base_lr=0.1, base_batch=256, max_lr=1.0)
        assert rule.lr_for_batch(2**20) == 1.0

    def test_warmup_ramps_linearly(self):
        sched = WarmupSchedule(peak_lr=1.0, warmup_steps=10, total_steps=100)
        assert sched.lr(0) == pytest.approx(0.1)
        assert sched.lr(9) == pytest.approx(1.0)

    def test_cosine_decays_to_final(self):
        sched = WarmupSchedule(
            peak_lr=1.0, warmup_steps=0, total_steps=100, decay="cosine",
            final_lr=0.1,
        )
        assert sched.lr(100) == pytest.approx(0.1)

    def test_constant_after_warmup(self):
        sched = WarmupSchedule(
            peak_lr=0.5, warmup_steps=5, total_steps=50, decay="constant"
        )
        assert sched.lr(30) == 0.5

    def test_linear_decay_midpoint(self):
        sched = WarmupSchedule(
            peak_lr=1.0, warmup_steps=0, total_steps=100, decay="linear"
        )
        assert sched.lr(50) == pytest.approx(0.5)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            WarmupSchedule(peak_lr=1.0, warmup_steps=100, total_steps=100)
        with pytest.raises(ConfigurationError):
            WarmupSchedule(peak_lr=1.0, warmup_steps=0, total_steps=10,
                           decay="step")
        with pytest.raises(ConfigurationError):
            LinearScalingRule(base_lr=0.1, base_batch=0)

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=200))
    def test_warmup_schedule_bounded(self, step):
        sched = WarmupSchedule(peak_lr=1.0, warmup_steps=20, total_steps=200,
                               final_lr=0.0)
        assert 0.0 <= sched.lr(step) <= 1.0
