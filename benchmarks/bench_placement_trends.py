"""Placement, adoption-trend and coverage benchmarks.

- topology-aware placement: what leaf-packing buys a ring-allreduce job,
  and what adaptive routing (Summit's fabric feature) does for the rest;
- the paper's adoption trajectory, fitted and projected;
- the Gordon Bell reproduction map, verified complete.
"""

from conftest import report

from repro.apps.reproductions import GB_REPRODUCTIONS, verify_coverage
from repro.network.placement import placement_study
from repro.network.topology import FatTree, FatTreeSpec
from repro.portfolio import PortfolioAnalytics, Program, generate_portfolio
from repro.portfolio.trends import fit_adoption_trend


def test_placement_study(benchmark):
    tree = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))

    def run():
        return placement_study(tree, 12, seed=0)

    study = benchmark.pedantic(run, rounds=1, iterations=1)

    assert (
        study["contiguous"]["cross_leaf_fraction"]
        < study["random"]["cross_leaf_fraction"]
    )
    for row in study.values():
        assert row["adaptive_max_load"] <= row["static_max_load"] + 1e-9

    report(
        "Ring-allreduce placement on a 32-host fat tree (12-rank job)",
        [
            (name,
             f"{row['cross_leaf_fraction']:.0%}",
             f"{row['static_max_load']:.2f}",
             f"{row['adaptive_max_load']:.2f}")
            for name, row in study.items()
        ],
        header=("placement", "fabric hops", "static load", "adaptive load"),
    )


def test_adoption_trend_projection(benchmark):
    analytics = PortfolioAnalytics(generate_portfolio())

    def run():
        return fit_adoption_trend(analytics, Program.INCITE)

    trend = benchmark(run)

    assert trend.slope_per_year > 0

    rows = [
        (str(year), f"{fraction:.0%}")
        for year, fraction in zip(trend.years, trend.fractions)
    ]
    rows.append(("slope", f"{trend.slope_per_year * 100:.1f} pts/year"))
    rows.append(("linear proj. 2025", f"{trend.linear_projection(2025):.0%}"))
    rows.append(("reaches 50 % (linear)", f"{trend.year_reaching(0.5):.0f}"))
    report(
        "INCITE active-AI adoption trend ('grown steadily from 20% in 2019')",
        rows,
        header=("year / metric", "active fraction"),
    )


def test_gordon_bell_reproduction_coverage(benchmark):
    coverage = benchmark(verify_coverage)

    assert all(coverage.values())

    report(
        "Gordon Bell AI finalists -> reproduction modules",
        [
            (r.finalist, ", ".join(m.split(".")[-1] for m in r.modules))
            for r in GB_REPRODUCTIONS
        ],
        header=("finalist", "reproduced by"),
    )
