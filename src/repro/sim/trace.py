"""Event tracing for simulations — a compatibility shim over telemetry.

Historically this module *was* the observability layer: a flat list of
``(time, category, label, payload)`` tuples. It is now a thin facade over
:mod:`repro.telemetry` — every ``record()`` lands as an instant event in a
:class:`~repro.telemetry.Telemetry` handle (the trace's own by default, or
a shared one so legacy trace events ride along in Chrome-trace exports),
and the query helpers read back out of it.

Durations are explicit now. ``busy_time`` used to sum *any* numeric
payload, silently adding counters (node counts, attempt numbers) into what
callers read as seconds. It now only sums events recorded with an explicit
``duration=`` keyword, a ``{"duration": ...}`` payload key, or — for
backward compatibility — a bare numeric payload, which is *interpreted as*
a duration and therefore must not be used for counts (record those under a
named payload key instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.telemetry import Telemetry


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    label: str
    payload: Any = None
    duration: float | None = None


class Trace:
    """An append-only event log with query helpers.

    ``telemetry`` may be a shared handle; the trace only reads back events
    it recorded itself (marked internally), so instrumentation spans and
    instants living in the same handle never leak into trace queries.
    """

    def __init__(self, telemetry: Telemetry | None = None):
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    def record(
        self,
        time: float,
        category: str,
        label: str,
        payload: Any = None,
        duration: float | None = None,
    ) -> None:
        """Append an event. Pass ``duration=`` (or a ``{"duration": ...}``
        payload) for events that represent elapsed time; bare numeric
        payloads are treated as durations for backward compatibility."""
        self.telemetry.instant(
            label, category, facility="trace", track=category, time=time,
            payload=payload, duration=duration, trace_event=True,
        )

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events, in record order."""
        return [
            TraceEvent(
                time=e.time,
                category=e.category,
                label=e.name,
                payload=e.attrs.get("payload"),
                duration=e.attrs.get("duration"),
            )
            for e in self.telemetry.instants
            if e.attrs.get("trace_event")
        ]

    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def span(self) -> float:
        """Time between the first and last recorded event."""
        events = self.events
        if not events:
            return 0.0
        times = [e.time for e in events]
        return max(times) - min(times)

    def busy_time(self, category: str) -> float:
        """Sum of event durations for a category.

        Counts, in order of preference: the explicit ``duration=`` passed to
        :meth:`record`, a ``payload["duration"]`` key, or (legacy) a bare
        ``int``/``float`` payload. Structured payloads without a
        ``duration`` key — node counts, attempt numbers — contribute
        nothing, which is the fix for the old behaviour of summing every
        numeric payload as if it were seconds.
        """
        total = 0.0
        for e in self.by_category(category):
            if e.duration is not None:
                total += e.duration
            elif isinstance(e.payload, dict) and "duration" in e.payload:
                total += e.payload["duration"]
            elif isinstance(e.payload, (int, float)) and not isinstance(
                e.payload, bool
            ):
                total += e.payload
        return total
