"""The ``Telemetry`` handle: the one object instrumented code touches.

Design rules, in order:

1. **Opt-in.** Every instrumented call site takes ``telemetry=None`` and
   does nothing when it stays ``None`` — the uninstrumented hot path is the
   seed code path, byte for byte.
2. **No globals.** Parent spans are passed explicitly; the handle owns all
   state. Two runs never share anything unless handed the same object.
3. **Deterministic.** Span ids are a simple counter, records append in call
   order, and times come from the simulation clock (or explicit ``time=``
   arguments), so identical seeds produce identical traces — the exporters
   then serialize them byte-identically.

The clock is a zero-argument callable; the discrete-event engine binds
``lambda: engine.now`` when it is constructed with a telemetry handle.
Wall-clock instrumentation (cost-sweep stage timing) passes explicit
``perf_counter`` offsets instead — keep simulated and wall traces in
separate handles.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable

from repro.errors import ConfigurationError

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import CounterSample, InstantEvent, Span
from repro.telemetry.timeline import UtilizationTimeline

#: Above this many nodes a facility gets per-task tracks instead of
#: per-node tracks — a 4 608-node machine as 4 608 Perfetto rows is noise.
DEFAULT_MAX_NODE_TRACKS = 256


class Telemetry:
    """Collects spans, instant events, counter samples, and metrics."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_node_tracks: int = DEFAULT_MAX_NODE_TRACKS,
    ):
        self.clock = clock
        self.max_node_tracks = max_node_tracks
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.samples: list[CounterSample] = []
        self.metrics = MetricsRegistry()
        self._ids = itertools.count(1)

    # -- pickling (handles cross process boundaries in the exec fabric) -----------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["clock"] = None  # clocks are process-local callables
        state["_ids"] = max((s.span_id for s in self.spans), default=0) + 1
        return state

    def __setstate__(self, state: dict) -> None:
        next_id = state.pop("_ids")
        self.__dict__.update(state)
        self._ids = itertools.count(next_id)

    # -- clock -------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source (the engine does this on construction)."""
        self.clock = clock

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    # -- spans -------------------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        *,
        facility: str = "sim",
        track: str = "main",
        parent: Span | None = None,
        time: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; pass the returned handle to :meth:`end`."""
        span = Span(
            span_id=next(self._ids),
            name=name,
            category=category,
            start=self.now() if time is None else time,
            facility=facility,
            track=track,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, time: float | None = None, **attrs: Any) -> Span:
        """Close a span (idempotence is an error — a span ends once)."""
        if span.end is not None:
            raise ConfigurationError(f"span {span.name!r} already ended")
        span.end = self.now() if time is None else time
        if span.end < span.start:
            raise ConfigurationError(
                f"span {span.name!r} ends before it starts"
            )
        span.attrs.update(attrs)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str,
        *,
        facility: str = "sim",
        track: str = "main",
        parent: Span | None = None,
        **attrs: Any,
    ):
        """Context-manager convenience for non-generator code paths."""
        span = self.begin(
            name, category, facility=facility, track=track, parent=parent,
            **attrs,
        )
        try:
            yield span
        finally:
            self.end(span)

    def finished_spans(self, category: str | None = None) -> list[Span]:
        return [
            s for s in self.spans
            if s.finished and (category is None or s.category == category)
        ]

    # -- instants and samples ----------------------------------------------------

    def instant(
        self,
        name: str,
        category: str,
        *,
        facility: str = "sim",
        track: str = "main",
        time: float | None = None,
        **attrs: Any,
    ) -> InstantEvent:
        event = InstantEvent(
            time=self.now() if time is None else time,
            name=name,
            category=category,
            facility=facility,
            track=track,
            attrs=dict(attrs),
        )
        self.instants.append(event)
        return event

    def sample(
        self,
        resource: str,
        value: float,
        capacity: float | None = None,
        *,
        facility: str = "sim",
        time: float | None = None,
    ) -> None:
        """Record one occupancy/queue-depth sample for a counter track."""
        self.samples.append(
            CounterSample(
                time=self.now() if time is None else time,
                resource=resource,
                value=value,
                capacity=capacity,
                facility=facility,
            )
        )

    # -- shard merging -----------------------------------------------------------

    def absorb(
        self,
        other: "Telemetry",
        parent: Span | None = None,
        suffix: str | None = None,
    ) -> None:
        """Fold a shard's telemetry into this handle, keeping the tree valid.

        Span ids are re-issued from this handle's counter with parent links
        remapped (a parent is always begun before its children, so the
        mapping is complete by the time a child arrives); ``parent``
        optionally re-roots the shard's top-level spans under a span of this
        handle. Instants and counter samples append; metrics merge via
        :meth:`MetricsRegistry.merge`. The absorbed handle must be
        discarded afterwards — its records now belong to this one.

        ``suffix`` namespaces the absorbed records — appended to every
        facility and counter-resource name. Replica merges need it: each
        replica re-runs the same simulated timeline, so without distinct
        resource names their occupancy samples would interleave
        non-monotonically (and their Perfetto tracks would overlap).
        """
        import dataclasses

        mapping: dict[int, int] = {}
        for span in other.spans:
            new_id = next(self._ids)
            mapping[span.span_id] = new_id
            span.span_id = new_id
            if span.parent_id is not None:
                if span.parent_id not in mapping:
                    raise ConfigurationError(
                        f"span {span.name!r} references parent "
                        f"#{span.parent_id} outside the absorbed handle"
                    )
                span.parent_id = mapping[span.parent_id]
            elif parent is not None:
                span.parent_id = parent.span_id
            if suffix:
                span.facility = f"{span.facility}{suffix}"
            self.spans.append(span)
        if suffix:
            self.instants.extend(
                dataclasses.replace(e, facility=f"{e.facility}{suffix}")
                for e in other.instants
            )
            self.samples.extend(
                dataclasses.replace(
                    s,
                    facility=f"{s.facility}{suffix}",
                    resource=f"{s.resource}{suffix}",
                )
                for s in other.samples
            )
        else:
            self.instants.extend(other.instants)
            self.samples.extend(other.samples)
        self.metrics.merge(other.metrics)

    # -- derived views -----------------------------------------------------------

    def sampled_resources(self) -> list[str]:
        """Resource names with samples, in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.resource, None)
        return list(seen)

    def utilization(self, resource: str) -> UtilizationTimeline:
        """The occupancy step function recorded for ``resource``."""
        return UtilizationTimeline.from_samples(resource, self.samples)
