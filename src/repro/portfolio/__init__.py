"""The Summit AI/ML usage-survey substrate.

Implements the paper's study methodology (Section II-C): the AI-motif
taxonomy of Table I, the science domains of Table II, project records with
adoption status and ML method, a portfolio generator calibrated to every
statistic the paper states, and the analytics that regenerate Figures 1-6
and Table III from records.
"""

from repro.portfolio.analytics import PortfolioAnalytics
from repro.portfolio.generate import generate_portfolio, ipf_fit
from repro.portfolio.project import Project
from repro.portfolio.taxonomy import (
    DOMAIN_SUBDOMAINS,
    MOTIF_DEFINITIONS,
    AdoptionStatus,
    Domain,
    MLMethod,
    Motif,
    Program,
)

__all__ = [
    "AdoptionStatus",
    "DOMAIN_SUBDOMAINS",
    "Domain",
    "MLMethod",
    "MOTIF_DEFINITIONS",
    "Motif",
    "PortfolioAnalytics",
    "Program",
    "Project",
    "generate_portfolio",
    "ipf_fit",
]
