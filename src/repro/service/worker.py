"""The worker: acquire leases, heartbeat, compute, complete, repeat.

A worker is deliberately stateless — all truth lives with the server and
its journal. It acquires up to ``max_jobs`` leases, runs each job's
deterministic handler while a daemon thread heartbeats the lease alive,
and reports ``complete`` (or ``report-failure``). If the worker is
SIGKILL'd at *any* point, the lease simply expires and the server requeues
the job; if the *server* is down, every call backs off through the shared
:class:`~repro.resilience.retry.RetryPolicy` until it returns.

The ``chaos`` hook (:class:`repro.service.chaos.WorkerChaos`) is how the
fault harness reaches in: deterministic die-before-complete exits and
dropped heartbeats, derived from a seed, so the same chaos plan always
kills the same worker at the same job.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from typing import Any, Protocol

from repro.errors import LeaseExpired, ReproError, ServiceError

from repro.service.client import ServiceClient
from repro.service.handlers import run_job

__all__ = ["run_worker", "main"]


class WorkerChaosHook(Protocol):  # pragma: no cover - typing only
    def kill_before_complete(self, n_completed: int) -> bool: ...
    def drop_heartbeats(self, n_completed: int) -> bool: ...


class _Heartbeat:
    """Daemon thread keeping one lease alive until stopped."""

    def __init__(self, client: ServiceClient, job_id: str, interval_s: float):
        self.client = client
        self.job_id = job_id
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.client.heartbeat([self.job_id])
            except ReproError:
                return  # lease lost or server gone — the job outcome decides
            except OSError:
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()


def _execute(lease: dict[str, Any]) -> Any:
    job = lease["job"]
    params = dict(job["params"])
    if job["handler"].startswith("chaos:"):
        # Chaos handlers may key behaviour off the retry history.
        params.setdefault("attempt", lease["attempt"])
    return run_job(job["handler"], params, job["seed"])


def run_worker(
    socket_path: str,
    session: str | None = None,
    max_jobs: int = 1,
    poll_s: float = 0.05,
    idle_exit_s: float | None = None,
    chaos: WorkerChaosHook | None = None,
    max_completions: int | None = None,
) -> int:
    """Work the campaign until it finishes (or drains); returns completions."""
    client = ServiceClient(socket_path, session=session)
    n_completed = 0
    idle_since: float | None = None
    while True:
        try:
            response = client.request(
                "acquire", session=client.session, max_jobs=max_jobs
            )
        except (ServiceError, OSError):
            # Server gone for longer than the policy's patience — if it
            # never comes back the harness reaps us; keep trying meanwhile.
            time.sleep(poll_s)
            continue
        leases = response["leases"]
        if not leases:
            if response.get("finished") or response.get("draining"):
                return n_completed
            if idle_exit_s is not None:
                idle_since = idle_since if idle_since is not None else (
                    time.time()
                )
                if time.time() - idle_since > idle_exit_s:
                    return n_completed
            time.sleep(poll_s)
            continue
        idle_since = None
        interval = response.get("heartbeat_interval_s", 5.0)
        for lease in leases:
            job_id = lease["job"]["job_id"]
            drop = chaos is not None and chaos.drop_heartbeats(n_completed)
            try:
                try:
                    if drop:
                        # Chaos: compute without heartbeating — the lease
                        # expires under us; the completion must be rejected.
                        result = _execute(lease)
                    else:
                        with _Heartbeat(client, job_id, interval):
                            result = _execute(lease)
                except ReproError as exc:
                    client.report_failure(
                        job_id, f"{type(exc).__name__}: {exc}"
                    )
                    continue
                if chaos is not None and chaos.kill_before_complete(
                    n_completed
                ):
                    # Chaos: die holding the lease, result unsent — SIGKILL
                    # semantics, no cleanup, no flush.
                    os._exit(137)
                if client.complete(job_id, result):
                    n_completed += 1
            except LeaseExpired:
                # Too slow: the job was requeued and may be running
                # elsewhere. Our (deterministic) result is discarded.
                continue
            except (ServiceError, OSError):
                # Server unreachable past the policy's patience — the lease
                # will expire and requeue; drop it and try to reconnect.
                continue
            if max_completions is not None and n_completed >= max_completions:
                return n_completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Campaign-service worker loop (leases + heartbeats)",
    )
    parser.add_argument("socket", help="unix socket path of the server")
    parser.add_argument("--session", default=None)
    parser.add_argument("--max-jobs", type=int, default=1)
    parser.add_argument("--idle-exit-s", type=float, default=None)
    parser.add_argument("--chaos-plan", default=None,
                        help="path to a chaos plan JSON (harness use)")
    parser.add_argument("--chaos-worker", type=int, default=0,
                        help="this worker's index in the chaos plan")
    args = parser.parse_args(argv)
    chaos = None
    if args.chaos_plan:
        from repro.service.chaos import ChaosPlan

        chaos = ChaosPlan.from_file(args.chaos_plan).worker(args.chaos_worker)
    completed = run_worker(
        args.socket, session=args.session, max_jobs=args.max_jobs,
        idle_exit_s=args.idle_exit_s, chaos=chaos,
    )
    print(f"worker {args.session or '?'}: {completed} jobs completed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
