"""Tests for the empirical batch-scaling experiment and the fault-detection
workflow."""

import numpy as np
import pytest

from repro.analysis.batch_scaling import (
    BatchScalingResult,
    fit_two_regime_law,
    run_batch_scaling_experiment,
    steps_to_loss,
)
from repro.errors import ConfigurationError, ConvergenceError
from repro.optim import LAMB, SGD
from repro.workflows.case_fault import FaultDetectionWorkflow


class TestTwoRegimeFit:
    def test_recovers_synthetic_law(self):
        s_min, b_crit = 5000.0, 128.0
        batches = [8, 32, 128, 512, 2048]
        steps = [s_min / b + s_min / b_crit for b in batches]
        a, bc = fit_two_regime_law(batches, steps)
        assert a == pytest.approx(s_min, rel=1e-6)
        assert bc == pytest.approx(b_crit, rel=1e-6)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            fit_two_regime_law([8], [100])


class TestStepsToLoss:
    def test_larger_batch_fewer_steps(self):
        small = steps_to_loss(lambda: SGD(lr=0.02, momentum=0.9), 16, seed=0)
        large = steps_to_loss(lambda: SGD(lr=0.02, momentum=0.9), 256, seed=0)
        assert large < small

    def test_unreachable_target_raises(self):
        with pytest.raises(ConvergenceError):
            steps_to_loss(
                lambda: SGD(lr=1e-6), 16, target_loss=1e-6, max_steps=50, seed=0
            )

    def test_unknown_lr_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            steps_to_loss(lambda: SGD(lr=0.01), 16, lr_rule="cubic")


class TestBatchScalingExperiment:
    @pytest.fixture(scope="class")
    def sgd_result(self) -> BatchScalingResult:
        return run_batch_scaling_experiment(
            lambda: SGD(lr=0.02, momentum=0.9),
            batch_sizes=[16, 64, 256, 1024],
            seed=0,
        )

    def test_steps_monotone_decreasing(self, sgd_result):
        steps = sgd_result.steps_to_target
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_diminishing_returns(self, sgd_result):
        """The defining critical-batch signature: the 16->64 batch increase
        buys more step reduction than 256->1024 does."""
        s = sgd_result.steps_to_target
        early_gain = s[0] / s[1]
        late_gain = s[2] / s[3]
        assert early_gain > late_gain

    def test_speedup_far_below_perfect_at_large_batch(self, sgd_result):
        # 64x more samples per step should NOT give 64x fewer steps
        assert sgd_result.speedup()[-1] < 16

    def test_fitted_critical_batch_in_measured_range(self, sgd_result):
        assert 8 < sgd_result.fitted_critical_batch < 2048

    def test_lamb_trains_at_all_batch_sizes(self):
        result = run_batch_scaling_experiment(
            lambda: LAMB(lr=0.005), batch_sizes=[16, 256], seed=0
        )
        assert all(s > 0 for s in result.steps_to_target)


class TestFaultDetectionWorkflow:
    @pytest.fixture(scope="class")
    def trained(self):
        workflow = FaultDetectionWorkflow(seed=0)
        threshold = workflow.train_detector()
        return workflow, threshold

    def test_threshold_positive(self, trained):
        _, threshold = trained
        assert threshold > 0

    def test_detects_and_remediates_faults(self, trained):
        workflow, _ = trained
        result = workflow.run(n_frames=100, fault_probability=0.05)
        assert result.faults_injected > 0
        assert result.recall >= 0.75
        assert result.rollbacks >= result.faults_detected
        assert result.final_energy_finite

    def test_clean_run_has_few_false_alarms(self):
        workflow = FaultDetectionWorkflow(seed=1)
        workflow.train_detector()
        result = workflow.run(n_frames=80, fault_probability=0.0)
        assert result.faults_injected == 0
        assert result.false_alarms <= 4  # <5 % of frames

    def test_run_before_training_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultDetectionWorkflow(seed=2).run()

    def test_invalid_probability_rejected(self, trained):
        workflow, _ = trained
        with pytest.raises(ConfigurationError):
            workflow.run(fault_probability=1.5)
