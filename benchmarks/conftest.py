"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
a paper-vs-measured comparison (visible with ``pytest benchmarks/
--benchmark-only -s``). Assertions pin the reproduced *shape* so the bench
suite doubles as a regression gate for the calibrations in EXPERIMENTS.md.
"""

from __future__ import annotations


def report(title: str, rows: list[tuple], header: tuple = ()) -> None:
    """Print an aligned paper-vs-measured table."""
    print()
    print(f"== {title} ==")
    if header:
        print("  " + " | ".join(f"{h:>18}" for h in header))
    for row in rows:
        print("  " + " | ".join(f"{_fmt(cell):>18}" for cell in row))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
