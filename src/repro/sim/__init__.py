"""A small deterministic discrete-event simulation engine.

Used by the workflow executor (:mod:`repro.workflows`) to model task timing
across facilities, and by the scheduler studies. The engine is deliberately
minimal: an event heap, generator-based processes, and capacity resources —
enough to express job queues, staged pipelines and coupled simulation loops
without pulling in an external simulation framework.
"""

from repro.sim.engine import Engine, Interrupt, Process, Timeout
from repro.sim.resources import Resource
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Engine",
    "Interrupt",
    "Process",
    "Resource",
    "Timeout",
    "Trace",
    "TraceEvent",
]
