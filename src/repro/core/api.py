"""Facade API tying the substrates together.

Three entry points mirror the paper's three quantitative strands:

- :class:`SummitSimulator` — the machine + Section VI-B analytic models;
- :class:`ScalingStudyRunner` — Section IV-B style scaling studies;
- :class:`UsageSurvey` — the Section III survey pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import units
from repro.cost import crossover_sweep, sweep
from repro.cost.sweep import SweepResult
from repro.errors import ConfigurationError
from repro.machine.summit import summit
from repro.machine.system import System
from repro.models.catalog import get_model
from repro.network.collectives import paper_allreduce_estimate, ring_allreduce_time
from repro.portfolio.analytics import PortfolioAnalytics
from repro.portfolio.generate import generate_portfolio
from repro.storage.io_model import io_feasibility, read_requirement
from repro.training.job import TrainingJob
from repro.training.parallelism import DataSource, ParallelismPlan
from repro.training.scaling import ScalingPoint, ScalingStudy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


@dataclass
class SummitSimulator:
    """The Summit machine model plus the Section VI-B analytics.

    Despite the name (kept for API stability), the simulator runs against
    any machine: build one with :meth:`for_machine` and every analytic —
    allreduce estimates, step sweeps, crossover surfaces, I/O feasibility —
    uses that machine's links and storage tiers.

    >>> sim = SummitSimulator()
    >>> round(sim.system.peak_flops() / 1e18, 1)   # "over 3 AI-ExaOps"
    3.5
    >>> t = sim.allreduce_estimate("bert_large")
    >>> 0.10 < t < 0.12   # "roughly ... 110 ms"
    True
    """

    system: System = field(default_factory=lambda: summit())

    @classmethod
    def for_machine(
        cls, machine: "MachineSpec | str | None" = None
    ) -> "SummitSimulator":
        """A simulator over a registry machine (name or spec; default
        Summit — bit-identical to ``SummitSimulator()`` for the analytics,
        which only read the main partition)."""
        if machine is None:
            return cls()
        from repro.machine.spec import resolve_machine

        return cls(system=resolve_machine(machine).system())

    def allreduce_estimate(self, model_key: str) -> float:
        """The paper's bandwidth-only allreduce estimate for a model's
        gradient (Section VI-B)."""
        model = get_model(model_key)
        return paper_allreduce_estimate(model.gradient_bytes, self.system.interconnect)

    def allreduce_detailed(self, model_key: str, n_nodes: int) -> float:
        """Full ring-allreduce cost, latency terms included."""
        model = get_model(model_key)
        self.system.require_nodes(n_nodes)
        return ring_allreduce_time(n_nodes, model.gradient_bytes, self.system.interconnect)

    def step_sweep(
        self,
        model_key: str,
        node_counts,
        plan: ParallelismPlan | None = None,
        data_source: DataSource = DataSource.NVME,
    ) -> SweepResult:
        """Vectorized step-time sweep for a catalog model over node counts.

        One ``evaluate_batch`` pass through the :mod:`repro.cost` composite;
        scalar points are bit-identical to :meth:`TrainingJob.breakdown`.
        """
        from repro.training.step_time import step_cost

        cost = step_cost(
            get_model(model_key),
            self.system,
            plan or ParallelismPlan(local_batch=32),
            data_source=data_source,
        )
        return sweep(cost, {"n_nodes": node_counts})

    def crossover_surface(
        self,
        message_bytes,
        node_counts,
        compute_time: float,
        bandwidth=None,
        n_jobs: int = 1,
        cache=None,
    ) -> SweepResult:
        """Section VI-B comm-vs-compute crossover surface on this machine.

        Any of ``message_bytes`` / ``node_counts`` / ``bandwidth`` may be a
        sequence (a grid axis); ``bandwidth`` defaults to the system
        interconnect's aggregate injection bandwidth. ``n_jobs`` / ``cache``
        are forwarded to the underlying :func:`repro.cost.sweep`.
        """
        link = self.system.interconnect
        return crossover_sweep(
            message_bytes,
            node_counts,
            link.total_bandwidth if bandwidth is None else bandwidth,
            latency=link.latency,
            compute_time=compute_time,
            n_jobs=n_jobs,
            cache=cache,
        )

    def io_report(self, model_key: str, n_nodes: int | None = None) -> dict:
        """The Section VI-B read-bandwidth feasibility analysis."""
        model = get_model(model_key)
        n = n_nodes or self.system.node_count
        gpus = n * self.system.node.gpu_count
        samples_per_s = model.samples_per_second(self.system.node.gpus)
        req = read_requirement(samples_per_s, model.bytes_per_sample, gpus)
        nvme = self.system.nvme
        if nvme is None or self.system.shared_fs is None:
            raise ConfigurationError("system lacks an NVMe tier or shared FS")
        feas = io_feasibility(
            req, self.system.shared_fs, nvme, n, random_access=False
        )
        return {
            "required": req.required_bandwidth,
            "shared_fs": self.system.shared_fs.aggregate_read_bandwidth,
            "nvme": nvme.aggregate_read_bandwidth(n),
            "shared_fs_feasible": feas.shared_fs_feasible,
            "nvme_feasible": feas.nvme_feasible,
            "summary": (
                f"{model.name}: needs {units.format_rate(req.required_bandwidth)}; "
                f"shared FS {units.format_rate(self.system.shared_fs.aggregate_read_bandwidth)} "
                f"({'ok' if feas.shared_fs_feasible else 'insufficient'}), "
                f"NVMe {units.format_rate(nvme.aggregate_read_bandwidth(n))} "
                f"({'ok' if feas.nvme_feasible else 'insufficient'})"
            ),
        }


@dataclass
class ScalingStudyRunner:
    """Convenience wrapper: model key + plan -> scaling table."""

    model_key: str
    plan: ParallelismPlan
    data_source: DataSource = DataSource.NVME
    system: System = field(default_factory=lambda: summit(include_high_mem=False))

    @classmethod
    def for_machine(
        cls,
        model_key: str,
        plan: ParallelismPlan,
        machine: "MachineSpec | str | None" = None,
        data_source: DataSource = DataSource.NVME,
    ) -> "ScalingStudyRunner":
        """A runner whose system comes from the machine registry."""
        if machine is None:
            return cls(model_key=model_key, plan=plan, data_source=data_source)
        from repro.machine.spec import resolve_machine

        return cls(
            model_key=model_key,
            plan=plan,
            data_source=data_source,
            system=resolve_machine(machine).system(),
        )

    def run(self, node_counts: list[int], strong: bool = False) -> list[ScalingPoint]:
        base = TrainingJob(
            model=get_model(self.model_key),
            system=self.system,
            n_nodes=min(node_counts),
            plan=self.plan,
            data_source=self.data_source,
        )
        study = ScalingStudy(base)
        if strong:
            return study.strong_scaling(node_counts)
        return study.weak_scaling(node_counts)

    def table(self, node_counts: list[int], strong: bool = False) -> str:
        points = self.run(node_counts, strong=strong)
        mode = "strong" if strong else "weak"
        return ScalingStudy.table(
            points, title=f"{self.model_key} {mode} scaling on {self.system.name}"
        )


class UsageSurvey:
    """The Section III survey, end to end.

    >>> survey = UsageSurvey.calibrated()
    >>> active = survey.analytics.overall_usage()
    >>> 0.30 < list(active.values())[0] < 0.35   # "1/3 ... actively used"
    True
    """

    def __init__(self, analytics: PortfolioAnalytics):
        self.analytics = analytics

    @classmethod
    def calibrated(cls, seed: int = 2022) -> "UsageSurvey":
        """Survey over the paper-calibrated synthetic portfolio."""
        return cls(PortfolioAnalytics(generate_portfolio(seed=seed)))

    def report(self) -> str:
        from repro.portfolio.report import render_all

        return render_all(self.analytics)
