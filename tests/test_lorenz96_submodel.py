"""Tests for the two-scale Lorenz-96 and the ML-subgrid-closure workflow."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.science.lorenz96 import L96Params, ReducedLorenz96, TwoScaleLorenz96
from repro.workflows.case_submodel import SubmodelWorkflow


class TestL96Params:
    def test_defaults_standard(self):
        p = L96Params()
        assert p.n_slow == 8
        assert p.fast_per_slow == 8
        assert p.forcing == 10.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            L96Params(n_slow=2)
        with pytest.raises(ConfigurationError):
            L96Params(time_scale=0)


class TestTwoScaleLorenz96:
    def test_state_shapes(self):
        model = TwoScaleLorenz96(seed=0)
        assert model.x.shape == (8,)
        assert model.y.shape == (64,)

    def test_trajectory_stays_bounded(self):
        model = TwoScaleLorenz96(seed=0)
        model.run(3000)
        assert np.isfinite(model.x).all()
        assert np.abs(model.x).max() < 50

    def test_chaotic_divergence(self):
        """Nearby initial conditions separate — the defining L96 property."""
        a = TwoScaleLorenz96(seed=0)
        b = TwoScaleLorenz96(seed=0)
        a.run(2000)
        b.x = a.x.copy() + 1e-6
        b.y = a.y.copy()
        a_start = a.x.copy()
        initial_gap = 1e-6
        a.run(3000)
        b.run(3000)
        final_gap = np.abs(a.x - b.x).max()
        assert final_gap > 100 * initial_gap
        assert not np.allclose(a.x, a_start)

    def test_coupling_term_shape_and_sign_structure(self):
        model = TwoScaleLorenz96(seed=1)
        model.run(2000)
        coupling = model.coupling_term()
        assert coupling.shape == (8,)
        assert np.isfinite(coupling).all()

    def test_training_data_consistency(self):
        model = TwoScaleLorenz96(seed=2)
        x, y = model.generate_training_data(200, warmup_steps=500)
        assert x.shape == (200, 5)
        assert y.shape == (200, 1)
        # stencil centre column equals the site value: column index 2
        assert np.isfinite(x).all() and np.isfinite(y).all()

    def test_bad_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoScaleLorenz96(seed=0).step(dt=0)


class TestReducedLorenz96:
    def test_unclosed_model_runs(self):
        model = ReducedLorenz96()
        traj = model.run(500)
        assert traj.shape == (500, 8)
        assert np.isfinite(traj).all()

    def test_single_scale_l96_climatology(self):
        """The truncated model is the classic single-scale L96 with F=10:
        chaotic, mean X ~ 2-3, variance O(10). (dt=0.005 covers ~50 model
        time units, enough to settle on the attractor.)"""
        model = ReducedLorenz96()
        model.run(4000, dt=0.005)
        traj = model.run(8000, dt=0.005)
        assert 1.0 < traj.mean() < 4.0
        assert traj.var() > 5.0

    def test_closure_receives_stencils(self):
        seen = {}

        def closure(stencil):
            seen["shape"] = stencil.shape
            return np.zeros(stencil.shape[0])

        model = ReducedLorenz96(closure=closure)
        model.step()
        assert seen["shape"] == (8, 5)

    def test_zero_closure_equals_no_closure(self):
        a = ReducedLorenz96(closure=lambda s: np.zeros(s.shape[0]))
        b = ReducedLorenz96()
        a.run(200)
        b.run(200)
        assert np.allclose(a.x, b.x)

    def test_conservation_correction_fixes_mean(self):
        def biased_closure(stencil):
            return np.full(stencil.shape[0], 5.0)  # wildly biased

        model = ReducedLorenz96(closure=biased_closure, conserve_mean=True)
        model.calibrate_conservation(-1.0)
        term = model._closure_term(model.x)
        assert term.mean() == pytest.approx(-1.0)

    def test_wrong_closure_shape_rejected(self):
        model = ReducedLorenz96(closure=lambda s: np.zeros(3))
        with pytest.raises(ConfigurationError):
            model.step()

    def test_bad_x0_rejected(self):
        with pytest.raises(ConfigurationError):
            ReducedLorenz96(x0=np.zeros(5))


class TestSubmodelWorkflow:
    @pytest.fixture(scope="class")
    def outcome(self):
        workflow = SubmodelWorkflow(seed=0)
        rmse = workflow.train_closure(n_samples=3000, epochs=100)
        result = workflow.run(forecast_steps=1500, climate_steps=5000)
        return workflow, rmse, result

    def test_offline_closure_learns_signal(self, outcome):
        workflow, rmse, _ = outcome
        # the coupling term has O(1) spread; the closure must beat the
        # climatological-mean predictor
        truth = TwoScaleLorenz96(workflow.params, seed=99)
        _, y = truth.generate_training_data(500, warmup_steps=1000)
        assert rmse < float(y.std())

    def test_ml_closure_extends_forecast_skill(self, outcome):
        _, _, result = outcome
        assert result.skill_horizon_ml >= result.skill_horizon_truncated

    def test_ml_closure_improves_climate(self, outcome):
        _, _, result = outcome
        assert result.climate_error_ml < result.climate_error_truncated

    def test_parameterised_model_is_stable(self, outcome):
        """The Section VI-A.3 requirement: 'If networks are applied
        iteratively, it will be important to ... stabilise simulations.'"""
        _, _, result = outcome
        assert result.stable

    def test_run_before_training_rejected(self):
        with pytest.raises(ConfigurationError):
            SubmodelWorkflow(seed=1).run()
