"""Project records — one per project-year, the survey's unit of analysis."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.portfolio.taxonomy import (
    DOMAIN_SUBDOMAINS,
    AdoptionStatus,
    Domain,
    MLMethod,
    Motif,
    Program,
)


@dataclass(frozen=True)
class Project:
    """One project-year.

    ``motif`` and ``method`` are ``None`` for projects with no AI/ML use
    (``status == NONE``); AI projects always carry a motif (possibly
    ``UNDETERMINED``). ``allocation_hours`` is the granted Summit node-hours
    (Section II-C's alternative weighting basis).
    """

    project_id: str
    program: Program
    year: int
    domain: Domain
    subdomain: str
    status: AdoptionStatus
    motif: Motif | None
    method: MLMethod | None
    allocation_hours: float

    def __post_init__(self) -> None:
        if not 2018 <= self.year <= 2022:
            raise ConfigurationError(f"{self.project_id}: year {self.year} out of study range")
        if self.subdomain not in DOMAIN_SUBDOMAINS[self.domain]:
            raise ConfigurationError(
                f"{self.project_id}: subdomain {self.subdomain!r} not in "
                f"{self.domain.value}"
            )
        if self.allocation_hours < 0:
            raise ConfigurationError(f"{self.project_id}: negative allocation")
        uses_ai = self.status is not AdoptionStatus.NONE
        if uses_ai and self.motif is None:
            raise ConfigurationError(
                f"{self.project_id}: AI project must have a motif"
            )
        if not uses_ai and (self.motif is not None or self.method is not None):
            raise ConfigurationError(
                f"{self.project_id}: non-AI project cannot carry motif/method"
            )

    @property
    def uses_ai(self) -> bool:
        """Active or inactive AI/ML involvement."""
        return self.status is not AdoptionStatus.NONE
