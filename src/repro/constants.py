"""Single source of truth for the paper's Summit calibration constants.

Every bandwidth the paper quotes (Section II-A hardware, Section VI-B
analysis) lives here exactly once; the machine, network, and storage layers
import these instead of repeating literals. The numbers are re-exported from
:mod:`repro.machine.summit` — the user-facing home of the machine catalog —
but are *defined* in this leaf module (importing only :mod:`repro.units`) so
that :mod:`repro.network.link` and :mod:`repro.storage.filesystem` can use
them without creating an import cycle through ``repro.machine``.

See DESIGN.md "Calibration constants" for the provenance of each value.
"""

from __future__ import annotations

from repro import units

# -- network (Section II-A / VI-B) --------------------------------------------

#: One EDR InfiniBand rail: 100 Gb/s signalling -> 12.5 GB/s payload.
SUMMIT_EDR_RAIL_BANDWIDTH = 12.5 * units.GB

#: Summit node injection: dual-rail EDR, 2 x 12.5 GB/s = 25 GB/s.
SUMMIT_INJECTION_RAILS = 2
SUMMIT_INJECTION_BANDWIDTH = SUMMIT_INJECTION_RAILS * SUMMIT_EDR_RAIL_BANDWIDTH

#: MPI-level one-way message latency on the fabric.
SUMMIT_INJECTION_LATENCY = 1.0 * units.US

#: Section VI-B: ring-allreduce algorithmic bandwidth is half the injection
#: bandwidth — the "12.5 GB/s" behind the 8 ms / 110 ms estimates.
SUMMIT_ALGORITHMIC_BANDWIDTH = SUMMIT_INJECTION_BANDWIDTH / 2.0

#: NVLink 2.0 brick pair between GPUs inside a node (per direction).
SUMMIT_NVLINK_BANDWIDTH = 50 * units.GB
SUMMIT_NVLINK_LATENCY = 0.7 * units.US

# -- machine shape -------------------------------------------------------------

SUMMIT_NODE_COUNT = 4608
SUMMIT_GPUS_PER_NODE = 6

# -- shared filesystem (Alpine / GPFS) ----------------------------------------

GPFS_AGGREGATE_READ_BANDWIDTH = 2.5 * units.TB
GPFS_AGGREGATE_WRITE_BANDWIDTH = 2.5 * units.TB
GPFS_PER_CLIENT_BANDWIDTH = 12.5 * units.GB
GPFS_CAPACITY_BYTES = 250 * units.PB

# -- node-local NVMe burst buffer ----------------------------------------------

NVME_CAPACITY_BYTES = 1.6 * units.TB
NVME_READ_BANDWIDTH = 6.0 * units.GB
NVME_WRITE_BANDWIDTH = 2.1 * units.GB

#: "over 27 TB/s" aggregate: 6 GB/s x 4 608 nodes = 27.6 TB/s.
NVME_AGGREGATE_READ_BANDWIDTH = NVME_READ_BANDWIDTH * SUMMIT_NODE_COUNT
