"""Science substrates: the driver simulations behind the Section V workflows.

Real, laptop-scale implementations standing in for the production codes the
paper's case studies run on Summit (see DESIGN.md substitution table):

- :mod:`repro.science.ising` — binary-alloy lattice model with Metropolis
  Monte Carlo (stands in for the LSMS-driven statistical mechanics of
  Liu et al.); its order-disorder transition is an exact, known target.
- :mod:`repro.science.cluster_expansion` — linear cluster-expansion energy
  model with Bayesian-information-criterion term selection (Zhang et al.).
- :mod:`repro.science.md` — Lennard-Jones molecular dynamics mini-engine
  (stands in for NAMD/OpenMM in the steering workflows).
- :mod:`repro.science.potentials` — pair potentials, including a
  machine-learned potential trained on reference data (the "MD potentials"
  motif of Jia / Nguyen-Cong et al.).
- :mod:`repro.science.ffea` — coarse mass-spring continuum model (stands in
  for fluctuating finite-element analysis in Trifan et al.).
- :mod:`repro.science.docking` — synthetic compound-binding landscape with
  cheap (docking) and expensive (MD-refined) scoring tiers (Glaser /
  Blanchard / IMPECCABLE-style drug pipelines);
- :mod:`repro.science.solver` — ML-enhanced conjugate-gradient solver with
  a snapshot-learned deflation space (the "math/cs algorithm" motif;
  Ichimura et al., Gordon Bell 2018).
"""

from repro.science.cluster_expansion import ClusterExpansion, bic_select
from repro.science.docking import CompoundLibrary, DockingOracle
from repro.science.ffea import MassSpringModel
from repro.science.ising import AlloyLattice, MonteCarlo, exact_critical_temperature
from repro.science.lorenz96 import L96Params, ReducedLorenz96, TwoScaleLorenz96
from repro.science.md import LennardJonesMD, MDState
from repro.science.potentials import (
    LennardJonesPotential,
    MLPairPotential,
    MorsePotential,
)
from repro.science.solver import (
    ConjugateGradient,
    LearnedDeflation,
    VariableCoefficientPoisson,
)

__all__ = [
    "AlloyLattice",
    "ClusterExpansion",
    "CompoundLibrary",
    "ConjugateGradient",
    "DockingOracle",
    "L96Params",
    "LearnedDeflation",
    "ReducedLorenz96",
    "TwoScaleLorenz96",
    "VariableCoefficientPoisson",
    "LennardJonesMD",
    "LennardJonesPotential",
    "MDState",
    "MLPairPotential",
    "MassSpringModel",
    "MonteCarlo",
    "MorsePotential",
    "bic_select",
    "exact_critical_temperature",
]
