"""Tests for the survey substrate: taxonomy, reference, generation, analytics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TaxonomyError
from repro.portfolio import (
    DOMAIN_SUBDOMAINS,
    MOTIF_DEFINITIONS,
    AdoptionStatus,
    Domain,
    MLMethod,
    Motif,
    PortfolioAnalytics,
    Program,
    Project,
    generate_portfolio,
    ipf_fit,
)
from repro.portfolio import reference as ref
from repro.portfolio.generate import capped_allocate, integerize
from repro.portfolio.report import render_all
from repro.portfolio.taxonomy import subdomain_domain


class TestTaxonomy:
    def test_table_i_has_definitions_for_every_motif(self):
        assert set(MOTIF_DEFINITIONS) == set(Motif)

    def test_definitions_nonempty(self):
        for d in MOTIF_DEFINITIONS.values():
            assert d.definition
            assert d.example

    def test_table_ii_has_nine_domains(self):
        assert len(Domain) == 9
        assert set(DOMAIN_SUBDOMAINS) == set(Domain)

    def test_table_ii_subdomain_count(self):
        # The paper says 48 subdomain *codes* exist at the OLCF; Table II
        # prints the consolidated list used for the study, which has 40
        # entries (some codes are merged/unused after the paper's
        # "adjusted ... in a few cases" cleanup).
        total = sum(len(subs) for subs in DOMAIN_SUBDOMAINS.values())
        assert total == 40

    def test_subdomain_lookup(self):
        assert subdomain_domain("Climate") is Domain.EARTH_SCIENCE
        assert subdomain_domain("Machine Learning") is Domain.COMPUTER_SCIENCE

    def test_unknown_subdomain_raises(self):
        with pytest.raises(TaxonomyError):
            subdomain_domain("Alchemy")

    def test_six_programs(self):
        assert len(Program) == 6


class TestProject:
    def _project(self, **overrides):
        fields = dict(
            project_id="p1", program=Program.INCITE, year=2020,
            domain=Domain.BIOLOGY, subdomain="Biophysics",
            status=AdoptionStatus.ACTIVE, motif=Motif.STEERING,
            method=MLMethod.DEEP_LEARNING, allocation_hours=1e5,
        )
        fields.update(overrides)
        return Project(**fields)

    def test_valid_project(self):
        assert self._project().uses_ai

    def test_ai_project_requires_motif(self):
        with pytest.raises(ConfigurationError):
            self._project(motif=None)

    def test_non_ai_project_rejects_motif(self):
        with pytest.raises(ConfigurationError):
            self._project(status=AdoptionStatus.NONE, method=None)

    def test_non_ai_project_valid_without_motif(self):
        p = self._project(status=AdoptionStatus.NONE, motif=None, method=None)
        assert not p.uses_ai

    def test_subdomain_must_match_domain(self):
        with pytest.raises(ConfigurationError):
            self._project(subdomain="Climate")

    def test_year_range_enforced(self):
        with pytest.raises(ConfigurationError):
            self._project(year=2017)


class TestReferenceConsistency:
    def test_all_cross_checks_pass(self):
        report = ref.consistency_report()
        assert all(report.values()), {k: v for k, v in report.items() if not v}

    def test_program_totals_as_stated(self):
        # "662 project-years (INCITE 147, ALCC 72, DD 352, COVID non-DD 12,
        # ECP 62, Gordon Bell finalist 17)" — GB handled in apps.registry.
        totals = {}
        for (program, _), (total, _, _) in ref.PROGRAM_YEAR_TABLE.items():
            totals[program] = totals.get(program, 0) + total
        assert totals[Program.INCITE] == 147
        assert totals[Program.ALCC] == 72
        assert totals[Program.DD] == 352
        assert totals[Program.COVID] == 12
        assert totals[Program.ECP] == 62

    def test_incite_2019_active_20_percent(self):
        total, active, _ = ref.PROGRAM_YEAR_TABLE[(Program.INCITE, 2019)]
        assert active / total == pytest.approx(0.20, abs=0.01)

    def test_incite_2022_near_stated_31_28(self):
        total, active, inactive = ref.PROGRAM_YEAR_TABLE[(Program.INCITE, 2022)]
        assert active / total == pytest.approx(0.31, abs=0.01)
        assert inactive / total == pytest.approx(0.28, abs=0.01)

    def test_overall_one_third_active_8_percent_inactive(self):
        active = sum(a for _, a, _ in ref.PROGRAM_YEAR_TABLE.values())
        inactive = sum(i for _, _, i in ref.PROGRAM_YEAR_TABLE.values())
        assert active / 645 == pytest.approx(1 / 3, abs=0.02)
        assert inactive / 645 == pytest.approx(0.08, abs=0.005)

    def test_top5_motifs_over_three_quarters(self):
        counts = sorted(ref.MOTIF_COUNTS.values(), reverse=True)
        assert sum(counts[:5]) / sum(counts) > 0.75

    def test_biology_uses_no_submodels(self):
        assert ref.MOTIF_DOMAIN_MATRIX[Motif.SUBMODEL][Domain.BIOLOGY] == 0

    def test_cs_has_no_math_algorithm(self):
        assert ref.MOTIF_DOMAIN_MATRIX[Motif.MATH_CS_ALGORITHM][
            Domain.COMPUTER_SCIENCE
        ] == 0

    def test_engineering_submodel_is_largest_cell(self):
        cells = [
            (count, motif, domain)
            for motif, row in ref.MOTIF_DOMAIN_MATRIX.items()
            for domain, count in row.items()
        ]
        top = max(cells, key=lambda cell: cell[0])
        assert (top[1], top[2]) == (Motif.SUBMODEL, Domain.ENGINEERING)

    def test_materials_dominates_md_potentials(self):
        row = ref.MOTIF_DOMAIN_MATRIX[Motif.MD_POTENTIAL]
        assert row[Domain.MATERIALS] == max(row.values())
        assert row[Domain.FUSION_PLASMA] > 0  # plasma/surface interactions

    def test_gordon_bell_totals_17(self):
        assert sum(t for t, _ in ref.GORDON_BELL_TABLE.values()) == 17


class TestIpf:
    def test_matches_both_margins(self):
        seed = np.ones((3, 4))
        rows = np.array([10.0, 20.0, 30.0])
        cols = np.array([15.0, 15.0, 15.0, 15.0])
        m = ipf_fit(seed, rows, cols)
        assert np.allclose(m.sum(axis=1), rows)
        assert np.allclose(m.sum(axis=0), cols)

    def test_structural_zeros_preserved(self):
        seed = np.array([[1.0, 0.0], [1.0, 1.0]])
        m = ipf_fit(seed, np.array([5.0, 5.0]), np.array([7.0, 3.0]))
        assert m[0, 1] == 0.0

    def test_inconsistent_margins_rejected(self):
        with pytest.raises(ConfigurationError):
            ipf_fit(np.ones((2, 2)), np.array([5.0, 5.0]), np.array([3.0, 3.0]))

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_integerize_preserves_margins(self, rows, seed):
        rng = np.random.default_rng(seed)
        total = sum(rows)
        # random column split of the same total
        n_cols = 3
        cols = rng.multinomial(total, np.ones(n_cols) / n_cols)
        if (cols == 0).any():
            cols = cols + 0  # zeros are fine for IPF with uniform seed? skip
            cols[cols == 0] = 1
            cols[np.argmax(cols)] -= (cols.sum() - total)
            if (cols <= 0).any() or cols.sum() != total:
                return
        fitted = ipf_fit(np.ones((len(rows), n_cols)), np.array(rows, float),
                         cols.astype(float))
        out = integerize(fitted)
        assert (out.sum(axis=1) == np.array(rows)).all()
        assert (out.sum(axis=0) == cols).all()
        assert (out >= 0).all()


class TestCappedAllocate:
    def test_respects_caps_and_margins(self):
        caps = np.array([[2, 2], [2, 2]])
        out = capped_allocate([3, 1], [2, 2], caps)
        assert (out <= caps).all()
        assert out.sum(axis=1).tolist() == [3, 1]
        assert out.sum(axis=0).tolist() == [2, 2]

    def test_infeasible_rejected(self):
        caps = np.array([[1, 0], [0, 1]])
        with pytest.raises(Exception):
            capped_allocate([2, 0], [1, 1], caps)

    def test_zero_demand_ok(self):
        out = capped_allocate([0, 0], [0, 0], np.ones((2, 2), dtype=int))
        assert out.sum() == 0


class TestGeneratedPortfolio:
    @pytest.fixture(scope="class")
    def analytics(self):
        return PortfolioAnalytics(generate_portfolio())

    def test_645_project_years(self, analytics):
        assert len(analytics.projects) == 645

    def test_fig1_overall_usage(self, analytics):
        usage = analytics.overall_usage()
        for status, expected in ref.FIG1_EXPECTED.items():
            assert usage[status] == pytest.approx(expected, abs=1e-9)

    def test_fig2_program_year_marginals_exact(self, analytics):
        table = analytics.usage_by_program_year()
        for (program, year), (total, active, inactive) in ref.PROGRAM_YEAR_TABLE.items():
            fractions = table[(program, year)]
            assert fractions[AdoptionStatus.ACTIVE] == pytest.approx(active / total)
            assert fractions[AdoptionStatus.INACTIVE] == pytest.approx(
                inactive / total
            )

    def test_fig3_method_shares(self, analytics):
        usage = analytics.usage_by_method()
        for method, share in ref.METHOD_SHARES.items():
            assert usage[method] == pytest.approx(share, abs=0.01)

    def test_fig4_domain_totals_exact(self, analytics):
        table = analytics.usage_by_domain()
        for domain, (total, active, inactive) in ref.DOMAIN_TABLE.items():
            row = table[domain]
            assert sum(row.values()) == total
            assert row[AdoptionStatus.ACTIVE] == active
            assert row[AdoptionStatus.INACTIVE] == inactive

    def test_fig4_top_domains(self, analytics):
        # "Biology, Computer Science and Materials being top categories"
        top = analytics.top_ai_domains(3)
        assert set(top) == {
            Domain.BIOLOGY, Domain.COMPUTER_SCIENCE, Domain.MATERIALS
        }

    def test_fig5_motif_counts_exact(self, analytics):
        counts = analytics.usage_by_motif()
        for motif, expected in ref.MOTIF_COUNTS.items():
            assert counts[motif] == expected

    def test_fig5_submodel_top_motif(self, analytics):
        assert analytics.top_motifs(1) == [Motif.SUBMODEL]

    def test_fig5_concentration_over_three_quarters(self, analytics):
        assert analytics.motif_concentration(5) > 0.75

    def test_fig6_matrix_exact(self, analytics):
        matrix = analytics.motif_by_domain()
        for motif, row in ref.MOTIF_DOMAIN_MATRIX.items():
            for domain, expected in row.items():
                assert matrix[motif][domain] == expected, (motif, domain)

    def test_subdomains_valid(self, analytics):
        for p in analytics.projects:
            assert p.subdomain in DOMAIN_SUBDOMAINS[p.domain]

    def test_allocation_hours_positive(self, analytics):
        assert all(p.allocation_hours > 0 for p in analytics.projects)

    def test_hours_weighted_usage_computes(self, analytics):
        weighted = analytics.overall_usage(by_hours=True)
        assert sum(weighted.values()) == pytest.approx(1.0)

    def test_report_renders_all_figures(self, analytics):
        text = render_all(analytics)
        for fig in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6"):
            assert fig in text

    def test_generation_deterministic(self):
        a = generate_portfolio(seed=7)
        b = generate_portfolio(seed=7)
        assert [p.project_id for p in a] == [p.project_id for p in b]
        assert [p.motif for p in a] == [p.motif for p in b]

    def test_empty_analytics_rejected(self):
        with pytest.raises(ConfigurationError):
            PortfolioAnalytics([])
