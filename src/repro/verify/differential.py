"""Differential runners: one computation, every equivalent code path.

The cost layer, the telemetry threading and the resilient DAG executor all
promise that their alternative code paths compute *the same numbers* — the
vectorized :func:`repro.cost.sweep` is bit-identical to the scalar
``evaluate`` loop, a ``telemetry=`` handle never perturbs results, and the
fault-capable executor with no faults drawn reproduces the fault-free
timestamps exactly. Those promises are what make the ROADMAP's "refactor
freely" mandate safe, so this module checks each of them by actually
running both paths and diffing the outputs.

Each runner returns a :class:`DifferentialResult`; :func:`run_differentials`
runs the default battery used by ``repro verify`` and the conformance tests.

>>> r = sweep_bit_parity()
>>> r.passed
True
>>> r.key
'differential.sweep_bit_parity.convergence'
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "DifferentialResult",
    "app_sweep_parity",
    "checkpoint_replay_parity",
    "run_differentials",
    "sweep_bit_parity",
    "telemetry_sweep_parity",
    "workflow_telemetry_parity",
]


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one cross-path comparison."""

    key: str
    description: str
    paths: tuple[str, ...]  # the code paths that were diffed
    passed: bool
    detail: str = ""  # first mismatch, or a short summary of what agreed

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def message(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"{self.key} [{' vs '.join(self.paths)}]: {verdict} — {self.detail}"


def _terms_equal(a, b, label: str) -> str | None:
    """First mismatching term between two SweepResult breakdowns, if any."""
    if set(a.breakdown.terms) != set(b.breakdown.terms):
        return f"{label}: term sets differ"
    for term in a.breakdown.terms:
        lhs, rhs = a.term(term), b.term(term)
        if not np.array_equal(np.broadcast_to(lhs, rhs.shape), rhs):
            return f"{label}: term {term!r} differs"
    return None


def _convergence_grid() -> tuple[Any, dict, dict]:
    from repro.cost.models import ConvergenceCostModel

    model = ConvergenceCostModel()
    grid = {"batch": [256, 1024, 4096, 16384]}
    fixed = {"min_samples": 1.15e8, "critical_batch": 4096}
    return model, grid, fixed


def sweep_bit_parity(
    model: Any = None,
    grid: dict[str, Any] | None = None,
    **fixed: Any,
) -> DifferentialResult:
    """Vectorized ``sweep`` vs scalar-loop ``sweep_scalar`` vs pointwise
    ``evaluate``: all three must agree bit-for-bit on every term.

    With no arguments, diffs the convergence cost model over a batch grid;
    pass any ``CostModel`` + grid to diff an arbitrary configuration (the
    Hypothesis suite drives this with random grids).
    """
    from repro.cost import sweep, sweep_scalar

    label = "custom"
    if model is None:
        model, grid, fixed = _convergence_grid()
        label = "convergence"
    assert grid is not None
    key = f"differential.sweep_bit_parity.{label}"
    paths = ("sweep", "sweep_scalar", "evaluate")

    vec = sweep(model, grid, **fixed)
    ref = sweep_scalar(model, grid, **fixed)
    mismatch = _terms_equal(vec, ref, "sweep vs sweep_scalar")
    if mismatch is None:
        # pointwise spot checks against plain evaluate at the grid corners
        names = tuple(grid)
        shape = tuple(len(np.asarray(v)) for v in grid.values())
        corners = {tuple(0 for _ in shape), tuple(n - 1 for n in shape)}
        for index in sorted(corners):
            config = dict(fixed)
            for name, i in zip(names, index):
                config[name] = np.asarray(grid[name])[i].item()
            point = model.evaluate(**config)
            grid_point = vec.at(*index)
            for term, value in point.items():
                if grid_point[term] != value:
                    mismatch = (
                        f"sweep vs evaluate at {index}: term {term!r} differs"
                    )
                    break
            if mismatch:
                break
    size = int(np.prod([len(np.asarray(v)) for v in grid.values()]))
    return DifferentialResult(
        key=key,
        description="vectorized sweep == scalar loop == pointwise evaluate",
        paths=paths,
        passed=mismatch is None,
        detail=mismatch or f"{size} grid points x {len(vec.breakdown.terms)} "
        "terms bit-identical across all three paths",
    )


def telemetry_sweep_parity(
    model: Any = None, grid: dict[str, Any] | None = None, **fixed: Any
) -> DifferentialResult:
    """Telemetry-on vs telemetry-off sweeps must be bit-identical.

    The telemetry-on path goes through ``evaluate_batch_staged`` on
    composite models (a genuinely different code path with per-stage
    spans), so this guards the "observability never perturbs results"
    contract from PR 3.
    """
    from repro.cost import sweep
    from repro.telemetry import Telemetry

    label = "custom"
    if model is None:
        from repro.apps.extreme_scale import get_app

        model = get_app("kurth").cost_model()
        grid = {"n_nodes": [16, 64, 256, 1024, 4560]}
        fixed = {}
        label = "kurth_step_cost"
    assert grid is not None

    plain = sweep(model, grid, **fixed)
    telemetry = Telemetry()
    observed = sweep(model, grid, telemetry=telemetry, **fixed)
    mismatch = _terms_equal(plain, observed, "telemetry-off vs telemetry-on")
    n_spans = len(telemetry.finished_spans())
    if mismatch is None and n_spans == 0:
        mismatch = "telemetry-on path recorded no spans (wrong path taken?)"
    return DifferentialResult(
        key=f"differential.telemetry_sweep_parity.{label}",
        description="telemetry handle does not perturb sweep results",
        paths=("sweep(telemetry=None)", "sweep(telemetry=Telemetry())"),
        passed=mismatch is None,
        detail=mismatch
        or f"all terms bit-identical; telemetry recorded {n_spans} spans",
    )


def _faulty_graph():
    """A small cross-facility DAG with failure-capable tasks."""
    from repro.workflows.dag import TaskGraph
    from repro.workflows.facility import Facility

    graph = TaskGraph({
        "summit": Facility(name="Summit", nodes=8, speed=1.0),
        "edge": Facility(name="Edge", nodes=2, speed=0.5),
    })
    graph.add_task("stage", 120.0, "summit", nodes=2)
    graph.add_task(
        "train", 3600.0, "summit", nodes=4, deps=("stage",),
        failure_rate=1 / 1800.0, checkpoint_interval=300.0,
        checkpoint_write_time=15.0,
    )
    graph.add_task(
        "simulate", 1800.0, "edge", nodes=2, deps=("stage",),
        failure_rate=1 / 3600.0,
    )
    graph.add_task("analyze", 300.0, "summit", deps=("train", "simulate"))
    return graph


def _run_fingerprint(run) -> dict:
    """Every externally observable number of a WorkflowRun."""
    return {
        "makespan": run.makespan,
        "start_times": dict(run.start_times),
        "end_times": dict(run.end_times),
        "busy": run.busy_node_seconds,
        "useful": run.useful_node_seconds,
        "lost": run.lost_node_seconds,
        "checkpoint": run.checkpoint_node_seconds,
    }


def _execute_fingerprint(graph, **kwargs) -> dict:
    """Fingerprint an execution; a retry-budget abort is itself an outcome
    that both paths must reproduce identically."""
    from repro.errors import SimulationError

    try:
        return _run_fingerprint(graph.execute(**kwargs))
    except SimulationError as exc:
        return {"aborted": str(exc)}


def workflow_telemetry_parity(seed: int = 0) -> DifferentialResult:
    """Fault-injected DAG execution with vs without telemetry.

    The telemetry-on executor opens attempt/node spans and counter tracks —
    a materially different code path — yet every timestamp, retry draw and
    node-second total must match the bare run exactly.
    """
    from repro.telemetry import Telemetry

    a = _execute_fingerprint(_faulty_graph(), seed=seed)
    telemetry = Telemetry()
    b = _execute_fingerprint(_faulty_graph(), seed=seed, telemetry=telemetry)
    mismatch = next(
        (k for k in a if k not in b or a[k] != b[k]),
        None if set(a) == set(b) else "outcome kind",
    )
    if mismatch is None and "aborted" in a:
        outcome = f"both runs aborted identically ({a['aborted']})"
    elif mismatch is None:
        outcome = (
            f"identical run (makespan {a['makespan']:.1f}s, "
            f"{len(telemetry.finished_spans())} spans recorded)"
        )
    else:
        outcome = f"field {mismatch!r} differs between paths"
    return DifferentialResult(
        key="differential.workflow_telemetry_parity",
        description="telemetry handle does not perturb DAG execution",
        paths=("execute()", "execute(telemetry=Telemetry())"),
        passed=mismatch is None,
        detail=outcome,
    )


def checkpoint_replay_parity(seed: int = 0) -> DifferentialResult:
    """Fault-capable executor without faults vs the fault-free executor,
    plus same-seed replay identity of a genuinely fault-injected run.

    A task with an astronomically small ``failure_rate`` exercises the
    checkpoint/retry code path (failure times are drawn, attempt loops run)
    but never actually fails — its timestamps must equal the plain
    ``failure_rate=0`` execution. And re-running the *interrupted* graph
    with the same seed must reproduce every timestamp.
    """
    from repro.workflows.dag import TaskGraph
    from repro.workflows.facility import Facility

    def build(failure_rate: float) -> TaskGraph:
        graph = TaskGraph({"summit": Facility(name="Summit", nodes=8)})
        graph.add_task("stage", 100.0, "summit", nodes=2,
                       failure_rate=failure_rate)
        graph.add_task("train", 2000.0, "summit", nodes=4, deps=("stage",),
                       failure_rate=failure_rate)
        graph.add_task("analyze", 200.0, "summit", deps=("train",))
        return graph

    fault_free = build(0.0).execute(seed=seed)
    negligible = build(1e-12).execute(seed=seed)
    a, b = _run_fingerprint(fault_free), _run_fingerprint(negligible)
    mismatch = next(
        (f"fault path vs fault-free: field {k!r} differs" for k in a
         if a[k] != b[k]),
        None,
    )

    if mismatch is None:
        fa = _execute_fingerprint(_faulty_graph(), seed=seed)
        fb = _execute_fingerprint(_faulty_graph(), seed=seed)
        if set(fa) != set(fb):
            mismatch = "same-seed replay: outcome kind differs"
        else:
            mismatch = next(
                (f"same-seed replay: field {k!r} differs" for k in fa
                 if fa[k] != fb[k]),
                None,
            )
        # a lucky seed may draw no faults at all; only the curated default
        # is required to actually exercise the interruption path
        if mismatch is None and seed == 0 and fa.get("lost") == 0.0:
            mismatch = (
                "fault-injected graph lost no node-seconds "
                "(interruption path never exercised)"
            )

    return DifferentialResult(
        key="differential.checkpoint_replay_parity",
        description="no-fault fault path == fault-free path; "
        "same-seed replays are identical",
        paths=("failure_rate=0", "failure_rate=1e-12", "same-seed replay"),
        passed=mismatch is None,
        detail=mismatch
        or f"timestamps identical (makespan {a['makespan']:.1f}s); "
        "interrupted replay reproduced exactly",
    )


def app_sweep_parity(
    app_key: str = "blanchard", n_nodes: tuple[int, ...] = (96, 768, 4032)
) -> DifferentialResult:
    """App node sweep vs per-point ``job(n).breakdown()``: bit-identical.

    Guards the PR 2 contract that the vectorized cost layer reproduces the
    original training-job step formulas exactly — the foundation every
    Section IV-B registry number rests on.
    """
    from repro.apps.extreme_scale import get_app

    app = get_app(app_key)
    result = app.sweep_nodes(list(n_nodes))
    mismatch = None
    for i, n in enumerate(n_nodes):
        scalar = app.job(int(n)).breakdown()
        grid_total = float(result.total()[i])
        if grid_total != scalar.total:
            mismatch = (
                f"n_nodes={n}: sweep total {grid_total!r} != "
                f"job breakdown total {scalar.total!r}"
            )
            break
    return DifferentialResult(
        key=f"differential.app_sweep_parity.{app_key}",
        description="vectorized app node sweep == scalar job breakdowns",
        paths=("sweep_nodes", "job(n).breakdown()"),
        passed=mismatch is None,
        detail=mismatch
        or f"{len(n_nodes)} node counts bit-identical for {app_key!r}",
    )


def run_differentials(seed: int = 0) -> list[DifferentialResult]:
    """The default cross-path battery, in deterministic order."""
    return [
        sweep_bit_parity(),
        telemetry_sweep_parity(),
        workflow_telemetry_parity(seed=seed),
        checkpoint_replay_parity(seed=seed),
        app_sweep_parity("blanchard"),
        app_sweep_parity("khan", n_nodes=(8, 128, 1024)),
    ]
