"""Per-step time decomposition for synchronous distributed training.

One optimizer step consists of ``k`` (accumulation) micro-steps of
forward+backward compute, one hierarchical gradient allreduce, and the
input-pipeline reads feeding the micro-batches. The exposed (critical-path)
time is::

    step = k * compute_micro * (1 + jitter_cv * sqrt(2 ln n_ranks))
         + max(0, comm  - overlap_fraction    * compute_micro)
         + max(0, io    - io_overlap_fraction * k * compute_micro)

The jitter term is the synchronous-SGD straggler penalty: every step waits
for the slowest of ``n_ranks`` ranks, and the expected maximum of n i.i.d.
rank times exceeds the mean by ~``sigma * sqrt(2 ln n)``.

where the allreduce is modelled as an intra-node NVLink ring followed by an
inter-node InfiniBand ring over the node count (the NCCL hierarchical
scheme), and model-parallel activation exchange is added to each micro-step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.gpu import Precision
from repro.machine.node import NodeSpec
from repro.machine.system import System
from repro.models.base import ModelSpec
from repro.network.collectives import allreduce_time
from repro.network.link import NVLINK2, LinkSpec
from repro.training.parallelism import DataSource, ParallelismPlan


@dataclass(frozen=True)
class StepBreakdown:
    """Timing decomposition of one optimizer step (seconds).

    ``comm`` / ``io`` are the *total* costs; ``comm_exposed`` /
    ``io_exposed`` are what survives overlap and lands on the critical path.
    """

    compute: float
    comm: float
    comm_exposed: float
    io: float
    io_exposed: float
    mp_exchange: float
    straggler: float
    samples: int  # samples consumed per step by the whole job

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.straggler
            + self.mp_exchange
            + self.comm_exposed
            + self.io_exposed
        )

    @property
    def comm_fraction(self) -> float:
        """Share of the critical path spent in exposed gradient communication."""
        return self.comm_exposed / self.total if self.total else 0.0

    @property
    def io_fraction(self) -> float:
        return self.io_exposed / self.total if self.total else 0.0

    @property
    def compute_fraction(self) -> float:
        busy = self.compute + self.mp_exchange + self.straggler
        return busy / self.total if self.total else 0.0


def _data_rate_per_node(
    system: System, n_nodes: int, source: DataSource
) -> float:
    """Achievable input-read bytes/s per node for the chosen source."""
    if source is DataSource.MEMORY:
        return float("inf")
    if source is DataSource.NVME:
        nvme = system.nvme
        if nvme is None:
            raise ConfigurationError(
                f"{system.name} nodes have no NVMe burst buffer"
            )
        return nvme.read_bandwidth
    if system.shared_fs is None:
        raise ConfigurationError(f"{system.name} has no shared filesystem")
    return system.shared_fs.read_bandwidth(n_nodes, random_access=True)


def step_breakdown(
    model: ModelSpec,
    system: System,
    n_nodes: int,
    plan: ParallelismPlan,
    data_source: DataSource = DataSource.NVME,
    precision: Precision = Precision.MIXED,
    intra_node_link: LinkSpec = NVLINK2,
) -> StepBreakdown:
    """Compute the step-time decomposition for a job configuration."""
    system.require_nodes(n_nodes)
    node: NodeSpec = system.node
    if not node.has_gpus:
        raise ConfigurationError(f"{system.name} main partition has no GPUs")
    if plan.model_shards > node.gpu_count and plan.model_shards % node.gpu_count:
        raise ConfigurationError(
            "multi-node model parallelism must use whole nodes per replica"
        )

    n_gpus = n_nodes * node.gpu_count
    replicas = plan.replicas(n_gpus)
    k = plan.accumulation_steps

    # -- compute -----------------------------------------------------------------
    # Model-parallel shards split the per-sample FLOPs evenly.
    compute_micro = model.step_compute_time(
        node.gpus, plan.local_batch, precision
    ) / plan.model_shards
    compute = k * compute_micro

    # -- model-parallel activation exchange ---------------------------------------
    if plan.model_shards > 1:
        act_bytes = model.activation_bytes_per_sample or model.bytes_per_sample
        boundary_bytes = (
            2.0  # forward activations + backward activation gradients
            * act_bytes
            * plan.local_batch
            * (plan.model_shards - 1)
            / plan.model_shards
        )
        link = intra_node_link if plan.model_shards <= node.gpu_count else (
            system.interconnect
        )
        mp_exchange = k * link.transfer_time(boundary_bytes)
    else:
        mp_exchange = 0.0

    # -- gradient allreduce --------------------------------------------------------
    # Each shard owns 1/model_shards of the parameters.
    message = model.gradient_bytes / plan.model_shards
    replicas_per_node = max(1, node.gpu_count // plan.model_shards)
    comm = 0.0
    if replicas_per_node > 1:
        comm += allreduce_time(
            replicas_per_node, message, intra_node_link, plan.allreduce_algorithm
        )
    nodes_in_ring = n_nodes if plan.model_shards <= node.gpu_count else (
        n_nodes // (plan.model_shards // node.gpu_count)
    )
    if nodes_in_ring > 1:
        comm += allreduce_time(
            nodes_in_ring, message, system.interconnect, plan.allreduce_algorithm
        )
    comm_exposed = max(0.0, comm - plan.overlap_fraction * compute_micro)

    # -- input pipeline --------------------------------------------------------------
    samples_per_node_step = (
        plan.local_batch * k * replicas_per_node
        if plan.model_shards <= node.gpu_count
        else plan.local_batch * k / (plan.model_shards // node.gpu_count)
    )
    rate = _data_rate_per_node(system, n_nodes, data_source)
    io = (
        0.0
        if rate == float("inf")
        else samples_per_node_step * model.bytes_per_sample / rate
    )
    io_exposed = max(0.0, io - plan.io_overlap_fraction * compute)

    # -- synchronous-SGD straggler penalty ------------------------------------------
    if plan.compute_jitter_cv > 0.0 and n_gpus > 1:
        straggler = compute * plan.compute_jitter_cv * math.sqrt(2.0 * math.log(n_gpus))
    else:
        straggler = 0.0

    return StepBreakdown(
        compute=compute,
        comm=comm,
        comm_exposed=comm_exposed,
        io=io,
        io_exposed=io_exposed,
        mp_exchange=mp_exchange,
        straggler=straggler,
        samples=replicas * plan.local_batch * k,
    )
