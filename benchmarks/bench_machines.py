"""Machine-registry benchmark: the Section VI-B crossover per machine.

The paper's communication argument is Summit-specific: a 2 x 12.5 GB/s
injection makes BERT-large's 1.4 GB gradient communication-bound. The
registry generalizes the question — on a Frontier- or Perlmutter-class
fabric (100 GB/s injection), the same gradient crosses over at a larger
node count, or never within the machine. This benchmark maps the ResNet-50
and BERT-large crossover points for every registry machine and persists
them as ``BENCH_machines.json`` for the CI artifact set.
"""

import numpy as np
from _record import record
from conftest import report

from repro.cost.crossover import crossover_nodes, machine_crossover_sweep
from repro.machine.spec import SUMMIT, get_machine, machine_names
from repro.models import bert_large, resnet50

#: Per-step compute budget (s): the ~50 ms forward+backward the paper uses
#: to call BERT-large's 110 ms allreduce "hard to hide".
COMPUTE_TIME = 0.05


def _crossover_point(value) -> int | None:
    return None if np.isnan(value) else int(value)


def test_machine_crossover_points(benchmark):
    sizes = np.array([resnet50().gradient_bytes, bert_large().gradient_bytes])

    def compute():
        out = {}
        for name in machine_names():
            spec = get_machine(name)
            result = machine_crossover_sweep(
                sizes,
                np.arange(2, min(4096, spec.node_count) + 1),
                machine=spec,
                compute_time=COMPUTE_TIME,
            )
            cross = crossover_nodes(result)
            out[name] = {
                "provenance": spec.provenance,
                "injection_bandwidth": spec.injection_bandwidth,
                "resnet50_crossover_nodes": _crossover_point(cross[0]),
                "bert_large_crossover_nodes": _crossover_point(cross[1]),
            }
        return out

    points = benchmark(compute)

    # Summit is the paper baseline: BERT-large is communication-bound at
    # small scale (112 ms allreduce vs the 50 ms budget) while ResNet-50's
    # 8 ms estimate leaves plenty of room.
    summit = points["summit"]
    assert summit["provenance"] == "paper"
    assert summit["injection_bandwidth"] == SUMMIT.injection_bandwidth
    assert summit["bert_large_crossover_nodes"] is not None
    bert_summit = summit["bert_large_crossover_nodes"]

    # A faster fabric can only push the crossover out (or off the machine).
    for name in ("frontier-like", "perlmutter-like"):
        bert = points[name]["bert_large_crossover_nodes"]
        assert bert is None or bert >= bert_summit, name

    record(
        "machines",
        {"compute_time_seconds": COMPUTE_TIME, "machines": points},
    )

    report(
        "Machine registry — comm-vs-compute crossover points",
        [
            (
                name,
                p["provenance"],
                f"{p['injection_bandwidth'] / 1e9:.0f} GB/s",
                p["resnet50_crossover_nodes"] or "never",
                p["bert_large_crossover_nodes"] or "never",
            )
            for name, p in points.items()
        ],
        header=("machine", "provenance", "injection", "resnet50", "bert-large"),
    )
