"""Table I — the AI-motif taxonomy.

Verifies the taxonomy is complete (every motif has a definition and example,
as in the paper's table) and benchmarks classifying the full portfolio
through it.
"""

from conftest import report

from repro.portfolio import MOTIF_DEFINITIONS, Motif, generate_portfolio
from repro.portfolio.analytics import PortfolioAnalytics


def test_table1_motif_taxonomy(benchmark):
    projects = generate_portfolio()

    def classify():
        analytics = PortfolioAnalytics(projects)
        return analytics.usage_by_motif()

    counts = benchmark(classify)

    assert set(MOTIF_DEFINITIONS) == set(Motif)
    assert len(Motif) == 11  # 10 Table I rows + MD potential tracked separately

    report(
        "Table I — AI motifs (definition coverage + cohort counts)",
        [
            (m.value, MOTIF_DEFINITIONS[m].definition[:40] + "...", counts[m])
            for m in Motif
        ],
        header=("motif", "definition", "count"),
    )
