"""TrainingJob: a concrete (model, machine, layout) configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CapacityError, ConfigurationError
from repro.machine.gpu import Precision
from repro.machine.system import System
from repro.models.base import ModelSpec
from repro.training.parallelism import DataSource, ParallelismPlan
from repro.training.step_time import StepBreakdown, step_breakdown

#: Bytes of optimizer state per parameter: FP32 master weights + two moment
#: buffers (Adam/LAMB) on top of the FP16 weight/gradient copies.
_OPTIMIZER_STATE_BYTES_PER_PARAM = 16.0


@dataclass(frozen=True)
class TrainingJob:
    """A distributed training configuration ready to be timed.

    >>> from repro.machine import summit
    >>> from repro.models import resnet50
    >>> from repro.training import ParallelismPlan
    >>> job = TrainingJob(resnet50(), summit(), 16, ParallelismPlan(local_batch=128))
    >>> 0 < job.step_time() < 1
    True
    """

    model: ModelSpec
    system: System
    n_nodes: int
    plan: ParallelismPlan
    data_source: DataSource = DataSource.NVME
    precision: Precision = Precision.MIXED

    def __post_init__(self) -> None:
        self.system.require_nodes(self.n_nodes)
        self._check_memory()

    def _check_memory(self) -> None:
        node = self.system.node
        if node.gpus is None:
            raise ConfigurationError(f"{self.system.name} has no GPUs")
        weights = self.model.parameters * (
            2.0 + _OPTIMIZER_STATE_BYTES_PER_PARAM
        ) / self.plan.model_shards
        activations = (
            self.model.activation_bytes_per_sample * self.plan.local_batch
            / self.plan.model_shards
        )
        if weights + activations > node.gpus.memory_bytes:
            raise CapacityError(
                f"{self.model.name}: replica shard needs "
                f"{(weights + activations) / 1e9:.1f} GB, GPU has "
                f"{node.gpus.memory_bytes / 1e9:.1f} GB — increase model_shards "
                f"or reduce local_batch"
            )

    # -- timing -------------------------------------------------------------------

    def breakdown(self) -> StepBreakdown:
        return step_breakdown(
            self.model,
            self.system,
            self.n_nodes,
            self.plan,
            self.data_source,
            self.precision,
        )

    def step_time(self) -> float:
        """Wall-clock seconds per optimizer step."""
        return self.breakdown().total

    def throughput(self) -> float:
        """Global training throughput in samples/s."""
        b = self.breakdown()
        return b.samples / b.total

    def sustained_flops(self) -> float:
        """Job-wide sustained FLOP/s including all overheads."""
        return self.throughput() * self.model.effective_flops_per_sample

    @property
    def n_gpus(self) -> int:
        return self.n_nodes * self.system.node.gpu_count

    def global_batch(self) -> int:
        return self.plan.global_batch(self.n_gpus)

    # -- derived configurations ------------------------------------------------------

    def with_nodes(self, n_nodes: int) -> "TrainingJob":
        """The same configuration on a different node count (weak scaling)."""
        return replace(self, n_nodes=n_nodes)

    def with_plan(self, plan: ParallelismPlan) -> "TrainingJob":
        return replace(self, plan=plan)

    def with_data_source(self, source: DataSource) -> "TrainingJob":
        return replace(self, data_source=source)

    def efficiency_vs(self, baseline: "TrainingJob") -> float:
        """Weak-scaling parallel efficiency relative to ``baseline``:
        per-GPU throughput ratio."""
        mine = self.throughput() / self.n_gpus
        theirs = baseline.throughput() / baseline.n_gpus
        return mine / theirs
