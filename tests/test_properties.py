"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold over wide input ranges, not just the examples the
unit tests pick: cost-model monotonicity and scale-invariance, allocation
margins, optimizer step-size bounds, simulation conservation laws.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine.summit import summit
from repro.models.base import ModelSpec
from repro.network.collectives import (
    allgather_time,
    allreduce_time,
    reduce_scatter_time,
    ring_allreduce_time,
)
from repro.network.link import LinkSpec
from repro.optim import LAMB, LARC, LARS, SGD
from repro.portfolio.generate import integerize, ipf_fit
from repro.science.ising import AlloyLattice, MonteCarlo
from repro.training import DataSource, ParallelismPlan, TrainingJob

SYSTEM = summit(include_high_mem=False)

links = st.builds(
    LinkSpec,
    latency=st.floats(min_value=1e-8, max_value=1e-4),
    bandwidth=st.floats(min_value=1e8, max_value=1e12),
    rails=st.integers(min_value=1, max_value=4),
)


class TestCollectiveProperties:
    @settings(max_examples=50, deadline=None)
    @given(link=links, p=st.integers(min_value=2, max_value=8192),
           m=st.floats(min_value=1.0, max_value=1e10))
    def test_auto_allreduce_never_beats_physics(self, link, p, m):
        """No algorithm can move the data faster than one full message over
        the injection link (each rank must at least send its gradient once)."""
        t = allreduce_time(p, m, link, None)
        lower_bound = (p - 1) / p * m / link.total_bandwidth
        assert t >= lower_bound * 0.999

    @settings(max_examples=50, deadline=None)
    @given(link=links, p=st.integers(min_value=2, max_value=4096),
           m=st.floats(min_value=1.0, max_value=1e9))
    def test_allreduce_equals_reduce_scatter_plus_allgather(self, link, p, m):
        ring = ring_allreduce_time(p, m, link)
        two_phase = reduce_scatter_time(p, m, link) + allgather_time(p, m, link)
        assert ring == pytest.approx(two_phase, rel=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(link=links, p=st.integers(min_value=2, max_value=4096),
           m=st.floats(min_value=1.0, max_value=1e9),
           scale=st.floats(min_value=1.5, max_value=10.0))
    def test_bandwidth_term_scales_linearly(self, link, p, m, scale):
        base = ring_allreduce_time(p, m, link)
        scaled = ring_allreduce_time(p, m * scale, link)
        latency = 2 * (p - 1) * link.latency
        assert scaled - latency == pytest.approx((base - latency) * scale,
                                                 rel=1e-6)


class TestTrainingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        nodes=st.sampled_from([1, 2, 4, 16, 64, 256, 1024, 4096]),
        batch=st.sampled_from([1, 8, 64]),
        params=st.floats(min_value=1e5, max_value=5e8),
        flops=st.floats(min_value=1e8, max_value=1e12),
    )
    def test_per_gpu_throughput_never_improves_with_scale(
        self, nodes, batch, params, flops
    ):
        """Weak-scaling efficiency is at most 1: adding nodes can only hold
        or degrade per-GPU throughput (communication-dominated models can
        even lose *total* throughput, so only the per-GPU form is universal).
        """
        model = ModelSpec("m", params, flops, 1e3, 0.2,
                          activation_bytes_per_sample=1e4)
        plan = ParallelismPlan(local_batch=batch)
        small = TrainingJob(model, SYSTEM, max(1, nodes // 2), plan,
                            DataSource.MEMORY)
        large = TrainingJob(model, SYSTEM, nodes, plan, DataSource.MEMORY)
        per_gpu_small = small.throughput() / small.n_gpus
        per_gpu_large = large.throughput() / large.n_gpus
        assert per_gpu_large <= per_gpu_small * 1.001

    @settings(max_examples=30, deadline=None)
    @given(
        overlap=st.floats(min_value=0.0, max_value=1.0),
        nodes=st.sampled_from([4, 64, 512]),
    )
    def test_overlap_never_hurts(self, overlap, nodes):
        model = ModelSpec("m", 1e8, 1e10, 1e3, 0.2)
        base = TrainingJob(
            model, SYSTEM, nodes,
            ParallelismPlan(local_batch=32, overlap_fraction=0.0),
            DataSource.MEMORY,
        )
        better = TrainingJob(
            model, SYSTEM, nodes,
            ParallelismPlan(local_batch=32, overlap_fraction=overlap),
            DataSource.MEMORY,
        )
        assert better.step_time() <= base.step_time() + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(min_value=1, max_value=16))
    def test_accumulation_preserves_sample_accounting(self, k):
        model = ModelSpec("m", 1e7, 1e9, 1e3, 0.2)
        plan = ParallelismPlan(local_batch=8, accumulation_steps=k)
        job = TrainingJob(model, SYSTEM, 4, plan, DataSource.MEMORY)
        b = job.breakdown()
        assert b.samples == 4 * 6 * 8 * k


class TestAllocationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(st.integers(min_value=1, max_value=40), min_size=2,
                      max_size=6),
        n_cols=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_ipf_integerize_roundtrip(self, rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        total = sum(rows)
        cols = rng.multinomial(total, np.ones(n_cols) / n_cols)
        assume((cols > 0).all())
        fitted = ipf_fit(
            np.ones((len(rows), n_cols)),
            np.array(rows, dtype=float),
            cols.astype(float),
        )
        out = integerize(fitted)
        assert (out.sum(axis=1) == np.array(rows)).all()
        assert (out.sum(axis=0) == cols).all()
        assert (out >= 0).all()


class TestOptimizerProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        scale=st.floats(min_value=1e-3, max_value=1e3),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_lars_step_invariant_to_gradient_scale(self, scale, seed):
        """LARS's defining property: rescaling the gradient does not change
        the (first) update direction or magnitude."""
        rng = np.random.default_rng(seed)
        w0 = rng.normal(size=5) + 2.0
        g = rng.normal(size=5)
        assume(np.linalg.norm(g) > 1e-6)

        w_a = [w0.copy()]
        LARS(lr=0.5, momentum=0.0, eta=0.01).step(w_a, [g.copy()])
        w_b = [w0.copy()]
        LARS(lr=0.5, momentum=0.0, eta=0.01).step(w_b, [g * scale])
        assert np.allclose(w_a[0], w_b[0], rtol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(
        scale=st.floats(min_value=1.0, max_value=1e6),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_larc_update_bounded_by_global_lr(self, scale, seed):
        """LARC clips: no coordinate moves more than lr * ||step vector||
        regardless of weight scale."""
        rng = np.random.default_rng(seed)
        w0 = (rng.normal(size=5) + 1.0) * scale
        g = rng.normal(size=5)
        assume(np.linalg.norm(g) > 1e-6)
        w = [w0.copy()]
        lr = 0.01
        LARC(lr=lr, momentum=0.0, eta=10.0).step(w, [g.copy()])
        moved = np.linalg.norm(w[0] - w0)
        assert moved <= lr * np.linalg.norm(g) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_lamb_step_bounded_by_lr_times_clip(self, seed):
        rng = np.random.default_rng(seed)
        w0 = rng.normal(size=8) * 100
        g = rng.normal(size=8)
        assume(np.linalg.norm(g) > 1e-6)
        w = [w0.copy()]
        opt = LAMB(lr=0.1, clip=2.0, weight_decay=0.0)
        opt.step(w, [g.copy()])
        # |update| <= lr * clip * |direction|; direction elements are ~<= 1
        assert np.abs(w[0] - w0).max() <= 0.1 * 2.0 * np.sqrt(8) * 1.5

    @settings(max_examples=20, deadline=None)
    @given(lr=st.floats(min_value=1e-4, max_value=0.2),
           seed=st.integers(min_value=0, max_value=50))
    def test_sgd_reduces_convex_loss(self, lr, seed):
        rng = np.random.default_rng(seed)
        target = rng.normal(size=4)
        w = [target + rng.normal(size=4)]
        before = float(((w[0] - target) ** 2).sum())
        opt = SGD(lr=lr)
        for _ in range(5):
            opt.step(w, [2.0 * (w[0] - target)])
        after = float(((w[0] - target) ** 2).sum())
        assert after <= before


class TestMonteCarloProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_sweep_preserves_spin_domain(self, seed):
        lattice = AlloyLattice(8, seed=seed)
        mc = MonteCarlo(lattice, seed=seed)
        mc.sweep(2.0)
        assert set(np.unique(lattice.spins)) <= {-1, 1}

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_zero_temperature_limit_never_raises_energy(self, seed):
        lattice = AlloyLattice(8, seed=seed)
        mc = MonteCarlo(lattice, seed=seed)
        e_prev = lattice.energy()
        for _ in range(5):
            mc.sweep(1e-9)
            e_now = lattice.energy()
            assert e_now <= e_prev + 1e-9
            e_prev = e_now
