"""Tests for the data-parallel execution fabric and the result cache.

The fabric's whole contract is *determinism*: any work fanned out over a
process pool must come back bit-identical to the serial pass, and anything
replayed from the content-addressed cache must be exactly what was stored.
These tests pin that contract at every layer — the shard/merge helpers,
the sweep grid sharding, the conformance report, the Monte-Carlo replica
ensembles, and the telemetry trace merge.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from .hypothesis_settings import QUICK_SETTINGS, STANDARD_SETTINGS

from repro.constants import SUMMIT_INJECTION_LATENCY
from repro.cost import DataParallelCrossoverModel, sweep
from repro.errors import ConfigurationError
from repro.exec import (
    ParallelMap,
    ResultCache,
    code_fingerprint,
    content_key,
    monte_carlo,
    resolve_jobs,
    shard_ranges,
    spawn_seeds,
)

FIXED = {
    "latency": SUMMIT_INJECTION_LATENCY,
    "compute_time": 0.05,
    "allreduce_algorithm": "best",
}


def _square(x):
    return x * x


def _seeded_draw(child_seed):
    return float(np.random.default_rng(child_seed).random())


# -- shard/merge helpers ----------------------------------------------------------


class TestShardRanges:
    def test_example(self):
        assert shard_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_shards_than_items_collapses(self):
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert shard_ranges(0, 3) == [(0, 0)]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            shard_ranges(-1, 2)
        with pytest.raises(ConfigurationError):
            shard_ranges(4, 0)

    @given(n_items=st.integers(0, 500), n_shards=st.integers(1, 32))
    @STANDARD_SETTINGS
    def test_partition_properties(self, n_items, n_shards):
        ranges = shard_ranges(n_items, n_shards)
        # contiguous cover of range(n_items), in order
        assert ranges[0][0] == 0
        assert ranges[-1][1] == max(n_items, 0)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        # balanced to within one item, larger shards first
        sizes = [hi - lo for lo, hi in ranges]
        if n_items:
            assert max(sizes) - min(sizes) <= 1
            assert sizes == sorted(sizes, reverse=True)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_prefix_stable(self):
        # child i depends only on (seed, i), never on the ensemble size
        assert spawn_seeds(3, 8)[:3] == spawn_seeds(3, 3)

    def test_distinct_across_seeds_and_indices(self):
        seeds = spawn_seeds(0, 16)
        assert len(set(seeds)) == 16
        assert spawn_seeds(0, 4) != spawn_seeds(1, 4)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            spawn_seeds(0, -1)


class TestParallelMap:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-2) >= 1

    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert ParallelMap(1).map(_square, items) == [x * x for x in items]

    def test_pool_matches_serial_in_order(self):
        items = list(range(23))
        assert ParallelMap(4).map(_square, items) == ParallelMap(1).map(
            _square, items
        )

    def test_single_item_stays_in_process(self):
        # len(items) <= 1 short-circuits the pool even with n_jobs > 1
        assert ParallelMap(8).map(_square, [5]) == [25]


# -- sweep sharding ---------------------------------------------------------------


def _grid(n_sizes=20, n_nodes=5, n_bw=3):
    return {
        "message_bytes": np.linspace(1e6, 2e9, n_sizes),
        "n_ranks": np.unique(
            np.geomspace(2, 4608, n_nodes).round().astype(int)
        ),
        "bandwidth": np.linspace(5e9, 50e9, n_bw),
    }


def _assert_sweeps_identical(a, b):
    assert set(a.breakdown) == set(b.breakdown)
    for term in a.breakdown:
        ta, tb = np.asarray(a.term(term)), np.asarray(b.term(term))
        assert ta.dtype == tb.dtype
        assert ta.shape == tb.shape
        assert ta.tobytes() == tb.tobytes(), f"term {term!r} diverged"


class TestParallelSweep:
    def test_bit_identical_to_serial(self):
        model = DataParallelCrossoverModel()
        serial = sweep(model, _grid(), **FIXED)
        for n_jobs in (2, 4):
            _assert_sweeps_identical(
                serial, sweep(model, _grid(), n_jobs=n_jobs, **FIXED)
            )

    def test_all_cores_convention(self):
        model = DataParallelCrossoverModel()
        serial = sweep(model, _grid(6, 3, 2), **FIXED)
        _assert_sweeps_identical(
            serial, sweep(model, _grid(6, 3, 2), n_jobs=0, **FIXED)
        )

    def test_more_jobs_than_axis_points(self):
        model = DataParallelCrossoverModel()
        grid = _grid(3, 2, 2)
        _assert_sweeps_identical(
            sweep(model, grid, **FIXED),
            sweep(model, grid, n_jobs=16, **FIXED),
        )

    @given(
        n_sizes=st.integers(1, 9),
        n_nodes=st.integers(1, 4),
        n_jobs=st.sampled_from([2, 3]),
    )
    @QUICK_SETTINGS
    def test_random_grid_shapes(self, n_sizes, n_nodes, n_jobs):
        model = DataParallelCrossoverModel()
        grid = {
            "message_bytes": np.linspace(1e6, 1e9, n_sizes),
            "n_ranks": np.arange(2, 2 + n_nodes),
        }
        fixed = dict(FIXED, bandwidth=12.5e9)
        _assert_sweeps_identical(
            sweep(model, dict(grid), **fixed),
            sweep(model, dict(grid), n_jobs=n_jobs, **fixed),
        )

    def test_parallel_sweep_with_telemetry_spans(self):
        from repro.telemetry import Telemetry
        from repro.verify.invariants import audit_span_tree

        model = DataParallelCrossoverModel()
        tel = Telemetry()
        serial = sweep(model, _grid(), **FIXED)
        pooled = sweep(model, _grid(), telemetry=tel, n_jobs=2, **FIXED)
        _assert_sweeps_identical(serial, pooled)
        # one shard span per worker slice, parented under the sweep span
        spans = tel.finished_spans()
        shard_spans = [s for s in spans if s.name == "sweep_shard"]
        assert len(shard_spans) == 2
        (root,) = [s for s in spans if s.name == "sweep"]
        assert all(s.parent_id == root.span_id for s in shard_spans)
        assert audit_span_tree(tel).passed


# -- conformance report -----------------------------------------------------------


class TestParallelConformance:
    def test_report_json_byte_identical(self):
        from repro.verify import run_conformance

        sections = ("fig1", "table1")
        serial = run_conformance(seed=0, sections=sections)
        pooled = run_conformance(seed=0, sections=sections, n_jobs=4)
        assert serial.to_json() == pooled.to_json()
        assert serial.passed and pooled.passed


# -- Monte-Carlo replicas ---------------------------------------------------------


class TestReplicaEnsembles:
    def test_monte_carlo_jobs_invariant(self):
        serial = monte_carlo(_seeded_draw, 7, seed=11, n_jobs=1)
        pooled = monte_carlo(_seeded_draw, 7, seed=11, n_jobs=3)
        assert serial == pooled
        assert len(set(serial)) == 7

    def test_restart_ensemble_jobs_invariant(self):
        from repro.resilience.restart import restart_ensemble

        kwargs = dict(
            work_seconds=20_000.0,
            interval=1_000.0,
            write_time=30.0,
            n_nodes=256,
            node_mtbf_seconds=3e6,
            n_replicas=4,
            seed=5,
        )
        serial = restart_ensemble(n_jobs=1, **kwargs)
        pooled = restart_ensemble(n_jobs=2, **kwargs)
        assert serial == pooled
        # independent failure streams: not all replicas identical
        assert len({s.wall_seconds for s in serial}) > 1

    def test_goodput_simulate_ensemble(self):
        from repro.apps.extreme_scale import get_app

        stats = get_app("kurth").resilience_ensemble(
            n_nodes=512, n_replicas=3, seed=0, n_jobs=1
        )
        assert len(stats) == 3
        assert all(s.wall_seconds >= s.work_seconds for s in stats)


# -- telemetry merge --------------------------------------------------------------


class TestTelemetryMerge:
    def test_scenario_replicas_merge_well_formed(self):
        from repro.telemetry import chrome_trace_json
        from repro.telemetry.scenarios import run_scenario_replicas
        from repro.verify.invariants import audit_span_tree

        merged, replicas = run_scenario_replicas(
            "restart", 3, seed=0, n_jobs=1
        )
        assert len(replicas) == 3
        assert len(merged.finished_spans()) == sum(
            len(r.telemetry.finished_spans()) for r in replicas
        )
        assert audit_span_tree(merged).passed
        # the merge itself is deterministic, serial or pooled
        merged2, _ = run_scenario_replicas("restart", 3, seed=0, n_jobs=2)
        assert chrome_trace_json(merged) == chrome_trace_json(merged2)

    def test_replicas_reject_zero(self):
        from repro.telemetry.scenarios import run_scenario_replicas

        with pytest.raises(ConfigurationError):
            run_scenario_replicas("restart", 0)

    def test_telemetry_pickle_roundtrip_keeps_spans(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        span = tel.begin("outer", "test", facility="f", track="t")
        inner = tel.begin("inner", "test", facility="f", track="t")
        tel.end(inner)
        tel.end(span)
        clone = pickle.loads(pickle.dumps(tel))
        assert sorted(s.name for s in clone.finished_spans()) == [
            "inner", "outer",
        ]
        # id allocation continues past the restored spans
        new = clone.begin("later", "test", facility="f", track="t")
        assert new.span_id > max(s.span_id for s in clone.finished_spans())


# -- result cache -----------------------------------------------------------------


class TestContentKey:
    def test_stable_and_sensitive(self):
        base = content_key("k", {"a": 1, "b": [1.5, None]})
        assert base == content_key("k", {"b": [1.5, None], "a": 1})
        assert base != content_key("k2", {"a": 1, "b": [1.5, None]})
        assert base != content_key("k", {"a": 2, "b": [1.5, None]})

    def test_arrays_keyed_by_dtype_shape_bytes(self):
        a = np.arange(6, dtype=np.int64)
        assert content_key("k", a) == content_key("k", a.copy())
        assert content_key("k", a) != content_key("k", a.astype(np.int32))
        assert content_key("k", a) != content_key("k", a.reshape(2, 3))

    def test_type_distinctions(self):
        assert content_key("k", 1) != content_key("k", True)
        assert content_key("k", 1) != content_key("k", 1.0)
        assert content_key("k", "1") != content_key("k", 1)

    def test_unhashable_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            content_key("k", {"fn": lambda: None})


class TestResultCache:
    def test_round_trip_identical_bytes(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        value = {"arr": np.linspace(0, 1, 17), "meta": ("x", 3)}
        first = cache.get_or_compute("kind", {"p": 1}, lambda: value)
        second = cache.get_or_compute(
            "kind", {"p": 1},
            lambda: (_ for _ in ()).throw(AssertionError("recomputed"))
        )
        assert (cache.hits, cache.misses) == (1, 1)
        assert pickle.dumps(first) == pickle.dumps(second)
        assert second["arr"].tobytes() == value["arr"].tobytes()

    def test_fingerprint_bump_invalidates(self, tmp_path, monkeypatch):
        import repro.exec.cache as cache_mod

        cache = ResultCache(root=tmp_path)
        cache.get_or_compute("kind", {"p": 1}, lambda: 1)
        monkeypatch.setattr(
            cache_mod, "_FINGERPRINT", "f" * 64, raising=True
        )
        assert cache.get_or_compute("kind", {"p": 1}, lambda: 2) == 2
        assert (cache.hits, cache.misses) == (0, 2)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.get_or_compute("kind", {"p": 1}, lambda: [1, 2])
        key = content_key("kind", {"p": 1})
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get_or_compute("kind", {"p": 1}, lambda: [3]) == [3]
        assert cache.misses == 2

    def test_disabled_cache_always_recomputes(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        calls = []
        for _ in range(2):
            cache.get_or_compute("kind", {}, lambda: calls.append(1))
        assert len(calls) == 2
        assert (cache.hits, cache.misses) == (0, 0)
        assert not any(tmp_path.rglob("*.pkl"))

    def test_metrics_counters(self, tmp_path):
        from repro.telemetry.metrics import MetricsRegistry

        reg = MetricsRegistry()
        cache = ResultCache(root=tmp_path, metrics=reg)
        cache.get_or_compute("kind", {}, lambda: 0)
        cache.get_or_compute("kind", {}, lambda: 0)
        assert reg.counter("cache.hits").value == 1
        assert reg.counter("cache.misses").value == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.get_or_compute("a", {}, lambda: 1)
        cache.get_or_compute("b", {}, lambda: 2)
        assert cache.clear() == 2
        assert cache.get_or_compute("a", {}, lambda: 3) == 3

    def test_env_var_picks_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultCache().root == tmp_path / "envcache"

    def test_code_fingerprint_is_hex_and_stable(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestCachedSweep:
    def test_sweep_cache_round_trip(self, tmp_path):
        model = DataParallelCrossoverModel()
        cache = ResultCache(root=tmp_path)
        cold = sweep(model, _grid(8, 3, 2), cache=cache, **FIXED)
        warm = sweep(model, _grid(8, 3, 2), cache=cache, **FIXED)
        assert (cache.hits, cache.misses) == (1, 1)
        _assert_sweeps_identical(cold, warm)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        # n_jobs is an execution detail, so it must not enter the key:
        # a serial miss primes a parallel hit and vice versa.
        model = DataParallelCrossoverModel()
        cache = ResultCache(root=tmp_path)
        cold = sweep(model, _grid(8, 3, 2), cache=cache, **FIXED)
        warm = sweep(model, _grid(8, 3, 2), cache=cache, n_jobs=4, **FIXED)
        assert (cache.hits, cache.misses) == (1, 1)
        _assert_sweeps_identical(cold, warm)

    def test_different_grids_different_entries(self, tmp_path):
        model = DataParallelCrossoverModel()
        cache = ResultCache(root=tmp_path)
        sweep(model, _grid(8, 3, 2), cache=cache, **FIXED)
        sweep(model, _grid(9, 3, 2), cache=cache, **FIXED)
        assert (cache.hits, cache.misses) == (0, 2)
