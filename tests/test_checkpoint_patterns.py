"""Tests for the checkpoint model and the traffic-pattern generators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.pattern import (
    PATTERNS,
    bisection_pattern,
    incast_pattern,
    permutation_pattern,
    ring_pattern,
)
from repro.network.routing import Router, RoutingPolicy
from repro.network.topology import FatTree, FatTreeSpec
from repro.storage.burst_buffer import SUMMIT_NVME
from repro.storage.checkpoint import CheckpointPlan
from repro.storage.filesystem import SUMMIT_GPFS


class TestCheckpointPlan:
    @pytest.fixture
    def plan(self):
        # 100 GB of state per node, 2048 nodes, 5-year node MTBF. Above
        # ~1200 nodes the shared filesystem's 2.5 TB/s divided per node
        # drops below the 2.1 GB/s node-local NVMe write rate — the regime
        # where the burst buffer wins checkpointing too.
        return CheckpointPlan(
            state_bytes_per_node=100e9,
            n_nodes=2048,
            node_mtbf_seconds=5 * 365 * 24 * 3600.0,
        )

    def test_system_mtbf_composes(self, plan):
        assert plan.system_mtbf == pytest.approx(plan.node_mtbf_seconds / 2048)

    def test_nvme_writes_are_node_local(self, plan):
        t = plan.write_time_nvme(SUMMIT_NVME)
        assert t == pytest.approx(100e9 / 2.1e9)

    def test_shared_fs_writes_contend(self, plan):
        nvme_t = plan.write_time_nvme(SUMMIT_NVME)
        fs_t = plan.write_time_shared(SUMMIT_GPFS)
        assert fs_t > nvme_t  # 2.5 TB/s / 1024 nodes < 2.1 GB/s per node

    def test_young_interval_formula(self, plan):
        delta = 10.0
        assert plan.optimal_interval(delta) == pytest.approx(
            math.sqrt(2 * delta * plan.system_mtbf)
        )

    def test_optimal_interval_minimises_overhead(self, plan):
        delta = plan.write_time_nvme(SUMMIT_NVME)
        tau_star = plan.optimal_interval(delta)
        best = plan.overhead_fraction(delta, tau_star)
        for factor in (0.3, 0.5, 2.0, 3.0):
            assert plan.overhead_fraction(delta, tau_star * factor) >= best

    def test_cheaper_writes_mean_less_overhead(self, plan):
        tiers = plan.compare_tiers(SUMMIT_NVME, SUMMIT_GPFS)
        assert tiers["nvme"]["overhead"] < tiers["shared_fs"]["overhead"]
        assert tiers["nvme"]["optimal_interval"] < tiers["shared_fs"][
            "optimal_interval"
        ]

    def test_more_nodes_more_overhead(self):
        small = CheckpointPlan(100e9, 64, 5 * 365 * 24 * 3600.0)
        large = CheckpointPlan(100e9, 4096, 5 * 365 * 24 * 3600.0)
        delta = small.write_time_nvme(SUMMIT_NVME)
        assert large.overhead_fraction(delta) > small.overhead_fraction(delta)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            CheckpointPlan(0, 8, 1e6)
        with pytest.raises(ConfigurationError):
            CheckpointPlan(1e9, 8, 1e6).optimal_interval(0)

    @settings(max_examples=25)
    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_overhead_positive(self, delta):
        plan = CheckpointPlan(1e11, 256, 1e8)
        assert plan.overhead_fraction(delta) > 0


class TestTrafficPatterns:
    def test_ring_covers_all_hosts(self):
        flows = ring_pattern(8)
        assert len(flows) == 8
        assert {src for src, _ in flows} == set(range(8))

    def test_permutation_no_self_flows(self):
        for seed in range(5):
            flows = permutation_pattern(16, seed=seed)
            assert all(src != dst for src, dst in flows)
            assert sorted(dst for _, dst in flows) == list(range(16))

    def test_incast_targets_one_host(self):
        flows = incast_pattern(8, target=3)
        assert {dst for _, dst in flows} == {3}
        assert len(flows) == 7

    def test_bisection_crosses_halves(self):
        flows = bisection_pattern(8)
        assert all(src < 4 <= dst for src, dst in flows)

    def test_odd_bisection_rejected(self):
        with pytest.raises(ConfigurationError):
            bisection_pattern(7)

    def test_registry_complete(self):
        assert set(PATTERNS) == {"ring", "permutation", "incast", "bisection"}


class TestRoutingUnderPatterns:
    @pytest.fixture(scope="class")
    def tree(self):
        return FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))

    def test_adaptive_beats_static_on_permutation(self, tree):
        worst_static, worst_adaptive = 0.0, 0.0
        for seed in range(5):
            flows = permutation_pattern(32, seed=seed)
            worst_static = max(
                worst_static, Router(tree, RoutingPolicy.STATIC).route(flows).max_load
            )
            worst_adaptive = max(
                worst_adaptive,
                Router(tree, RoutingPolicy.ADAPTIVE).route(flows).max_load,
            )
        assert worst_adaptive <= worst_static

    def test_incast_bottleneck_is_the_target_link(self, tree):
        flows = incast_pattern(32, target=0)
        result = Router(tree, RoutingPolicy.ADAPTIVE).route(flows)
        # all 31 flows must traverse the target's host link
        assert result.max_load == pytest.approx(31.0)

    def test_ring_neighbours_are_cheap(self, tree):
        ring = Router(tree, RoutingPolicy.ADAPTIVE).route(ring_pattern(32))
        incast = Router(tree, RoutingPolicy.ADAPTIVE).route(incast_pattern(32))
        assert ring.max_load < incast.max_load

    def test_nonblocking_tree_handles_bisection(self, tree):
        result = Router(tree, RoutingPolicy.ADAPTIVE).route(bisection_pattern(32))
        # full bisection bandwidth: no link should carry much more than one flow
        assert result.max_load <= 2.0
