"""Tests for the GP surrogate, GB reproduction map, adoption trends and
topology-aware placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.reproductions import (
    GB_REPRODUCTIONS,
    reproduction_for,
    verify_coverage,
)
from repro.errors import ConfigurationError
from repro.ml.gp import GaussianProcess, rbf_kernel
from repro.network.placement import (
    PlacementStrategy,
    cross_leaf_fraction,
    place,
    placement_study,
    ring_link_load,
)
from repro.network.routing import RoutingPolicy
from repro.network.topology import FatTree, FatTreeSpec
from repro.portfolio import PortfolioAnalytics, Program, generate_portfolio
from repro.portfolio.taxonomy import AdoptionStatus
from repro.portfolio.trends import (
    fit_adoption_trend,
    usage_accounting_comparison,
)


class TestRbfKernel:
    def test_diagonal_is_signal_variance(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        k = rbf_kernel(x, x, length_scale=1.0, variance=2.5)
        assert np.allclose(np.diag(k), 2.5)

    def test_decays_with_distance(self):
        a = np.zeros((1, 2))
        near = np.full((1, 2), 0.1)
        far = np.full((1, 2), 3.0)
        k_near = rbf_kernel(a, near, 1.0, 1.0)[0, 0]
        k_far = rbf_kernel(a, far, 1.0, 1.0)[0, 0]
        assert k_near > k_far

    def test_symmetric_psd(self):
        x = np.random.default_rng(1).normal(size=(10, 2))
        k = rbf_kernel(x, x, 0.5, 1.0)
        assert np.allclose(k, k.T)
        assert np.linalg.eigvalsh(k).min() > -1e-9


class TestGaussianProcess:
    @pytest.fixture(scope="class")
    def fitted(self):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        y = np.sin(2 * np.pi * x).ravel()
        return GaussianProcess(length_scale=0.2).fit(x, y), x, y

    def test_interpolates_training_points(self, fitted):
        gp, x, y = fitted
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert (std < 0.05).all()

    def test_reverts_to_prior_far_away(self, fitted):
        gp, _, _ = fitted
        mean, std = gp.predict(np.array([[50.0]]))
        assert abs(mean[0] - np.mean(gp._alpha) * 0) < 0.5  # near prior mean
        assert std[0] == pytest.approx(1.0, abs=1e-6)

    def test_uncertainty_smaller_near_data(self, fitted):
        gp, _, _ = fitted
        _, std_near = gp.predict(np.array([[0.45]]))
        _, std_far = gp.predict(np.array([[2.0]]))
        assert std_near[0] < std_far[0]

    def test_interpolation_between_points_accurate(self, fitted):
        gp, _, _ = fitted
        query = np.array([[0.25]])
        mean, _ = gp.predict(query)
        assert mean[0] == pytest.approx(np.sin(2 * np.pi * 0.25), abs=0.05)

    def test_log_marginal_likelihood_prefers_right_lengthscale(self):
        x = np.linspace(0, 1, 20).reshape(-1, 1)
        y = np.sin(2 * np.pi * x).ravel()
        good = GaussianProcess(length_scale=0.2, noise=1e-4).fit(x, y)
        bad = GaussianProcess(length_scale=0.001, noise=1e-4).fit(x, y)
        assert good.log_marginal_likelihood(y) > bad.log_marginal_likelihood(y)

    def test_acquisition_is_posterior_std(self, fitted):
        gp, x, _ = fitted
        scores = gp.acquisition(np.vstack([x[:1], [[3.0]]]))
        assert scores[1] > scores[0]

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess(length_scale=0.0)

    @settings(max_examples=20, deadline=None)
    @given(noise=st.floats(min_value=1e-6, max_value=0.1))
    def test_noise_increases_training_uncertainty(self, noise):
        x = np.linspace(0, 1, 6).reshape(-1, 1)
        y = x.ravel() ** 2
        gp = GaussianProcess(length_scale=0.3, noise=noise).fit(x, y)
        _, std = gp.predict(x)
        assert (std >= 0).all()


class TestGbReproductions:
    def test_every_ai_finalist_mapped(self):
        coverage = verify_coverage()
        assert all(coverage.values()), {
            k: v for k, v in coverage.items() if not v
        }

    def test_ten_reproductions(self):
        assert len(GB_REPRODUCTIONS) == 10

    def test_lookup(self):
        repro = reproduction_for("Kurth et al.")
        assert "repro.apps.extreme_scale" in repro.modules

    def test_unknown_finalist_rejected(self):
        with pytest.raises(ConfigurationError):
            reproduction_for("Nobody et al.")

    def test_mechanisms_are_descriptive(self):
        for repro in GB_REPRODUCTIONS:
            assert len(repro.mechanism) > 20


class TestAdoptionTrends:
    @pytest.fixture(scope="class")
    def analytics(self):
        return PortfolioAnalytics(generate_portfolio())

    def test_incite_trend_positive(self, analytics):
        trend = fit_adoption_trend(analytics, Program.INCITE)
        assert trend.slope_per_year > 0
        # "grown steadily from 20% in 2019" -> roughly 3-4 points/year
        assert 0.02 < trend.slope_per_year < 0.06

    def test_linear_projection_matches_endpoints(self, analytics):
        trend = fit_adoption_trend(analytics, Program.INCITE)
        assert trend.linear_projection(2019) == pytest.approx(
            trend.fractions[0], abs=0.02
        )

    def test_projection_clipped_to_unit_interval(self, analytics):
        trend = fit_adoption_trend(analytics, Program.INCITE)
        assert trend.linear_projection(2100) == 1.0

    def test_year_reaching_majority(self, analytics):
        trend = fit_adoption_trend(analytics, Program.INCITE)
        year = trend.year_reaching(0.5)
        assert 2023 < year < 2040

    def test_single_year_program_rejected(self, analytics):
        with pytest.raises(ConfigurationError):
            fit_adoption_trend(analytics, Program.COVID)

    def test_hours_accounting_differs_from_counts(self, analytics):
        comparison = usage_accounting_comparison(analytics)
        by_projects = comparison["by_projects"][AdoptionStatus.ACTIVE]
        by_hours = comparison["by_hours"][AdoptionStatus.ACTIVE]
        assert by_projects != by_hours  # "could be misrepresentative"
        assert abs(by_projects - by_hours) < 0.25


class TestPlacement:
    @pytest.fixture(scope="class")
    def tree(self):
        return FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))

    def test_contiguous_hosts_are_prefix(self, tree):
        assert place(tree, 6, PlacementStrategy.CONTIGUOUS) == list(range(6))

    def test_random_placement_unique(self, tree):
        hosts = place(tree, 12, PlacementStrategy.RANDOM, seed=1)
        assert len(set(hosts)) == 12

    def test_oversized_job_rejected(self, tree):
        with pytest.raises(ConfigurationError):
            place(tree, 100, PlacementStrategy.CONTIGUOUS)

    def test_contiguous_minimises_cross_leaf_traffic(self, tree):
        study = placement_study(tree, 12, seed=0)
        assert (
            study["contiguous"]["cross_leaf_fraction"]
            < study["random"]["cross_leaf_fraction"]
        )
        assert (
            study["contiguous"]["cross_leaf_fraction"]
            <= study["strided"]["cross_leaf_fraction"]
        )

    def test_adaptive_flattens_static_hotspots(self, tree):
        study = placement_study(tree, 12, seed=0)
        for row in study.values():
            assert row["adaptive_max_load"] <= row["static_max_load"] + 1e-9

    def test_fragmentation_hurts_static_routing(self, tree):
        study = placement_study(tree, 12, seed=0)
        assert (
            study["contiguous"]["static_max_load"]
            <= study["random"]["static_max_load"]
        )

    def test_duplicate_hosts_rejected(self, tree):
        with pytest.raises(ConfigurationError):
            ring_link_load(tree, [0, 0, 1])

    def test_cross_leaf_fraction_bounds(self, tree):
        hosts = place(tree, 8, PlacementStrategy.RANDOM, seed=3)
        fraction = cross_leaf_fraction(tree, hosts)
        assert 0.0 <= fraction <= 1.0

    def test_single_leaf_job_has_zero_fabric_traffic(self, tree):
        hosts = list(range(tree.spec.hosts_per_leaf))[:3]
        assert cross_leaf_fraction(tree, hosts) == 0.0
        assert ring_link_load(tree, hosts) == 0.0
