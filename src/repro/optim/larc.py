"""LARC — Layer-wise Adaptive Rate Control.

The learning-rate *control* variant Kurth et al. use (Section IV-B.1): like
LARS, but the layer-wise trust ratio acts as a *clip* on the effective
learning rate rather than a rescaling — the local LR never exceeds the
global one. Implemented as a wrapper around SGD-with-momentum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.optim.base import Optimizer, trust_ratio


class LARC(Optimizer):
    """LARC (clipping mode) over SGD + momentum."""

    def __init__(
        self,
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        eta: float = 0.002,
    ):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        if eta <= 0:
            raise ConfigurationError("trust coefficient eta must be positive")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.eta = eta
        self._velocity: list[np.ndarray] | None = None

    def _update(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            step = g + self.weight_decay * p if self.weight_decay else g
            # Clipping mode: effective lr = min(lr, eta * ||w||/||step||)
            local = self.eta * trust_ratio(p, step)
            effective_lr = min(self.lr, local)
            v *= self.momentum
            v += effective_lr * step
            p -= v
