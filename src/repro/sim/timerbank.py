"""Vectorized timer banks: numpy-backed bulk timers behind one queue entry.

PR 9's calendar queue made the event *scheduler* cheap, but every timer
still paid for a Python :class:`~repro.sim.engine.Timer` object, one queue
entry per clock, and one dispatch per expiry. A :class:`TimerBank` removes
all three for homogeneous populations — per-node MTBF clocks, Monte-Carlo
expiry storms, walltime fences — by holding the whole population in numpy
arrays:

- ``deadlines: float64[n]`` — absolute expiry time per lane;
- ``seqs: int64[n]`` — the engine sequence number drawn (in one block)
  when the lane was armed;
- ``alive: bool[n]`` — lane liveness.

The engine sees a *single* queue entry per horizon window, keyed by the
next-due lane's ``(time, seq)``. When it pops, the bank sorts/slices the
due lanes, dispatches their fires in ``(deadline, seq)`` order, bulk
re-arms survivors with one vectorized rng draw, and re-registers itself at
the new minimum. Ordinary events interleave correctly through the engine's
documented ``(time, seq)`` total order because the entry always carries a
real lane key.

Byte-identity contract
----------------------
Bank-on and bank-off runs of the same seeded workload are observably
identical — same event order, same final state, byte-identical telemetry
traces. Three facts carry the contract:

1. **Block draws equal scalar draws.** For numpy's ``Generator``,
   ``rng.exponential(scale, k)`` consumes the bitstream exactly as ``k``
   successive scalar draws do, so bulk re-arming survivors in one call
   reproduces the per-clock draw order of the object-timer path (provided
   fire callbacks do not themselves consume the bank's rng — documented
   requirement).
2. **Only seq-contiguous runs dispatch together.** Lanes armed together
   hold consecutive sequence numbers, so no foreign event can own a seq
   inside one arm block — a whole block expiring at one instant (the
   common case) is a single vectorized dispatch. When separately-armed
   lanes *do* collide at one instant (exact float collisions happen under
   deterministic re-arm delays), the bank fires only the maximal
   seq-contiguous run and re-registers at the post-gap lane's
   ``(time, seq)``, letting the engine's total order interleave any
   foreign event that owns a seq in the gap.
3. **Telemetry mirrors the object path.** With telemetry attached the
   bank opens one span per lane at construction (same names, same order
   as an object spawn loop), ends dying lanes' spans per fire in dispatch
   order, and emits the same per-lane ``interrupt:`` instants on cancel.

Fallback
--------
``vectorized=None`` (the default) resolves to vectorized under
``impl="calendar"`` and falls back to plain per-lane
:class:`~repro.sim.engine.Timer` processes under ``impl="heap"`` — same
handle, same observables, so callers never branch on the engine
implementation. The ``REPRO_TIMER_BANK`` environment knob (consulted by
:func:`resolve_timer_bank`) forces vectorized banks and flips the
scheduler's bulk arrival/expiration path on; the CI matrix runs a bank-on
leg under it.

The module also carries the engine-free bulk structures the batch
scheduler's hot loop uses: :class:`ArrivalBank` (submit times bulk-sorted
once, arrivals consumed by ``searchsorted`` slices instead of a quadratic
``list.pop(0)`` scan) and :class:`DeadlineBank` (walltime expirations in a
sorted snapshot plus a small merge buffer, with *lazy* in-order iteration
for conservative backfill instead of a full sort per scheduling point).
"""

from __future__ import annotations

import heapq
import os
from itertools import islice
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import (
    _BANK_FIRE,
    Engine,
    Interrupt,
    Process,
    Timer,
    _Throw,
    validate_delays,
)

__all__ = [
    "TIMER_BANK_ENV",
    "ArrivalBank",
    "DeadlineBank",
    "ExponentialRearm",
    "TimerBank",
    "resolve_timer_bank",
]

#: Environment knob: a non-empty value other than ``"0"`` forces timer
#: banks vectorized (even under ``impl="heap"``) and turns the scheduler's
#: bulk arrival/expiration path on by default. Both paths are byte-identical
#: to their object counterparts, so the knob is safe to set globally — the
#: CI ``engine-impl-matrix`` job runs a leg with it.
TIMER_BANK_ENV = "REPRO_TIMER_BANK"

#: Re-armed lanes accumulate in an unsorted fresh list until a dispatch
#: finds more than this many, then one vectorized lexsort rebuilds the
#: sorted snapshot. Small enough that the per-dispatch fresh scan stays
#: O(few dozen), large enough to amortise rebuilds over many re-arms.
_RESORT_AT = 64


def resolve_timer_bank(flag: bool | None = None) -> bool:
    """Resolve a ``timer_bank=`` opt-in: explicit flag, else the env knob."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(TIMER_BANK_ENV, "") not in ("", "0")


class ExponentialRearm:
    """Vectorized re-arm rule: exponential inter-fire times from one rng.

    ``draw(k)`` consumes ``rng``'s bitstream exactly as ``k`` scalar
    ``draw_one()`` calls would — numpy ``Generator`` distributions fill
    arrays element-by-element from the same stream — which is the bridge
    that keeps bank-on and bank-off runs byte-identical.
    """

    __slots__ = ("scale", "rng")

    def __init__(self, scale: float, rng: np.random.Generator):
        if scale <= 0:
            raise ValueError(f"re-arm scale must be positive, got {scale}")
        self.scale = scale
        self.rng = rng

    def draw(self, k: int) -> np.ndarray:
        return self.rng.exponential(self.scale, k)

    def draw_one(self) -> float:
        return float(self.rng.exponential(self.scale))


class TimerBank:
    """A homogeneous timer population behind a single engine queue entry.

    ``on_fire(lane)`` (optional) runs once per expiring lane, in
    ``(deadline, seq)`` order. Survival semantics:

    - with a ``rearm`` rule: the lane re-arms (delay drawn from the rule,
      in one block per fire instant) unless ``on_fire`` returned exactly
      ``False`` — or unconditionally when there is no callback;
    - without a rule: ``on_fire``'s return is the next delay (a
      non-negative float) or ``None`` to let the lane die — the
      :class:`~repro.sim.engine.Timer` fire contract, per lane;
    - neither callback nor rule: a pure sleep, every lane dies at expiry.

    Fire callbacks may interrupt/spawn other processes freely but must not
    consume the bank's re-arm rng — that is the one draw-order requirement
    behind the byte-identity contract (module docstring).

    ``cancel()`` retires every live lane cleanly (the object path's timer
    interrupt semantics: finished, not killed). ``vectorized`` resolves per
    the module docstring; both modes expose the same observables
    (``n_fired``, ``live_count``, ``done``).
    """

    __slots__ = (
        "engine", "name", "on_fire", "rearm", "result", "vectorized",
        "n_lanes", "n_fired", "_live", "_deadlines", "_seqs", "_alive",
        "_s_times", "_s_seqs", "_s_lanes", "_cursor", "_fresh", "_in_fresh",
        "_proc", "_spans", "_procs", "_done",
    )

    def __init__(
        self,
        engine: Engine,
        delays: Any,
        on_fire: Callable[[int], Any] | None = None,
        rearm: ExponentialRearm | None = None,
        result: Any = None,
        name: str = "bank",
        vectorized: bool | None = None,
    ):
        arr = validate_delays(delays)
        self.engine = engine
        self.name = name
        self.on_fire = on_fire
        self.rearm = rearm
        self.result = result
        self.n_lanes = int(arr.size)
        self.n_fired = 0
        self._done = self.n_lanes == 0
        if vectorized is None:
            vectorized = engine.impl == "calendar" or resolve_timer_bank(None)
        self.vectorized = bool(vectorized)
        if self._done:
            self._procs = []
            self._proc = None
            self._spans = None
            self._live = 0
            return
        if not self.vectorized:
            self._init_object(arr)
        else:
            self._init_vectorized(arr)

    # -- object fallback ---------------------------------------------------

    def _init_object(self, arr: np.ndarray) -> None:
        """Per-lane :class:`Timer` processes behind the same handle."""
        self._proc = None
        self._spans = None
        self._live = self.n_lanes
        engine = self.engine
        self._procs = [
            engine.spawn(
                Timer(delay, self._object_fire(lane), self.result),
                name=f"{self.name}[{lane}]",
            )
            for lane, delay in enumerate(arr.tolist())
        ]

    def _object_fire(self, lane: int) -> Callable[[], float | None]:
        on_fire, rearm = self.on_fire, self.rearm
        if on_fire is None and rearm is None:
            # pure sleep: count the expiry so n_fired matches the
            # vectorized mode's mass-expiry bookkeeping
            def expire() -> None:
                self.n_fired += 1
                self._live -= 1
                return None

            return expire

        def fire() -> float | None:
            self.n_fired += 1
            if on_fire is None:
                return rearm.draw_one()
            r = on_fire(lane)
            if rearm is not None:
                if r is False:
                    self._live -= 1
                    return None
                return rearm.draw_one()
            if r is None:
                self._live -= 1
                return None
            return r  # engine validates non-negative, names the lane

        return fire

    # -- vectorized mode ---------------------------------------------------

    def _init_vectorized(self, arr: np.ndarray) -> None:
        engine = self.engine
        n = self.n_lanes
        self._procs = []
        self._live = n
        self._deadlines = engine.now + arr
        seq0 = engine._seq
        engine._seq = seq0 + n  # one block: contiguous seqs per arm block
        self._seqs = np.arange(seq0, seq0 + n, dtype=np.int64)
        self._alive = np.ones(n, dtype=bool)
        if n > 1 and arr[0] == arr.min() == arr.max():
            # homogeneous population: already (deadline, seq)-sorted, skip
            # the O(n log n) argsort — the million-timer drain fast path
            order = np.arange(n, dtype=np.int64)
        else:
            # initial seqs ascend with lane, so a stable time sort is a
            # (deadline, seq) sort
            order = np.argsort(self._deadlines, kind="stable").astype(
                np.int64, copy=False
            )
        self._s_lanes = order
        self._s_times = self._deadlines[order]
        self._s_seqs = self._seqs[order]
        self._cursor = 0
        self._fresh: list[int] = []
        self._in_fresh = np.zeros(n, dtype=bool)
        self._proc = Process(engine, self, name=self.name)
        engine._active += 1
        telemetry = engine.telemetry
        if telemetry is not None:
            # one span per lane, same names and order as the object spawn
            # loop — the carrier process itself stays invisible
            self._spans = [
                telemetry.begin(
                    f"{self.name}[{lane}]", "process",
                    facility="engine", track=f"{self.name}[{lane}]",
                )
                for lane in range(n)
            ]
        else:
            self._spans = None
        engine._push_entry((
            float(self._s_times[0]), int(self._s_seqs[0]),
            self._proc._epoch, self._proc, _BANK_FIRE,
        ))

    def _bank_fire(self, engine: Engine) -> None:
        """Dispatch the due lanes at ``engine.now``; re-register or finish.

        Only a maximal *seq-contiguous* run is fired per entry: a gap in
        the due lanes' sequence numbers means a foreign event may own a
        seq inside it and must interleave, so the bank re-registers at the
        same instant with the post-gap lane's ``(time, seq)`` and lets the
        engine's total order arbitrate. Arm blocks draw contiguous seqs,
        so the common case (one block expiring together — the million-
        timer drain) is still a single vectorized dispatch.
        """
        now = engine.now
        seqs, alive = self._seqs, self._alive
        # snapshot prefix due now: one searchsorted, stale entries (lane
        # re-armed since the snapshot was cut: seq mismatch) filtered out
        j = int(np.searchsorted(self._s_times, now, side="right"))
        c = self._cursor
        lanes = self._s_lanes[c:j]
        sseqs = self._s_seqs[c:j]
        vidx = np.flatnonzero((seqs[lanes] == sseqs) & alive[lanes])
        run_parts: list[np.ndarray] = []
        last_seq: int | None = None
        complete = True  # did the run cover every valid snapshot lane?
        if vidx.size:
            vseqs = sseqs[vidx]
            gaps = np.flatnonzero(np.diff(vseqs) != 1)
            n_run = int(gaps[0]) + 1 if gaps.size else int(vidx.size)
            self._cursor = c + int(vidx[n_run - 1]) + 1
            run_parts.append(lanes[vidx[:n_run]])
            last_seq = int(vseqs[n_run - 1])
            complete = n_run == int(vidx.size)
        else:
            self._cursor = j
        if self._fresh and complete:
            # re-armed lanes due now: always newer seqs than every
            # snapshot lane (a resort clears the fresh list), so they
            # extend the run — as long as contiguity holds
            fresh_due = sorted(
                (
                    lane for lane in self._fresh
                    if alive[lane] and self._deadlines[lane] == now
                ),
                key=lambda lane: seqs[lane],
            )
            take: list[int] = []
            for lane in fresh_due:
                seq = int(seqs[lane])
                if last_seq is not None and seq != last_seq + 1:
                    break
                take.append(lane)
                last_seq = seq
            if take:
                taken = set(take)
                self._fresh = [
                    lane for lane in self._fresh if lane not in taken
                ]
                for lane in take:
                    self._in_fresh[lane] = False
                run_parts.append(np.asarray(take, dtype=np.int64))
        if run_parts:
            due = (
                np.concatenate(run_parts) if len(run_parts) > 1
                else run_parts[0]
            )
            self._fire_lanes(engine, due, now)
        self._push_next(engine)

    def _fire_lanes(
        self, engine: Engine, due: np.ndarray, now: float
    ) -> None:
        k = int(due.size)
        self.n_fired += k
        on_fire, rearm = self.on_fire, self.rearm
        telemetry = engine.telemetry
        if on_fire is None and rearm is None and telemetry is None:
            # pure sleep, uninstrumented: one vectorized mass expiry — the
            # engine-side analogue of the calendar loop's inline finish
            self._alive[due] = False
            self._live -= k
            return
        survivors: list[int] = []
        legacy_delays: list[float] = []
        for lane in due.tolist():
            keep = True
            if on_fire is not None:
                r = on_fire(lane)
                if rearm is not None:
                    keep = r is not False
                else:
                    keep = r is not None
                    if keep:
                        if r < 0:
                            raise SimulationError(
                                f"timer {self.name}[{lane}] re-armed with "
                                f"negative delay {r}"
                            )
                        legacy_delays.append(r)
            else:
                keep = rearm is not None
            if keep:
                survivors.append(lane)
            else:
                self._alive[lane] = False
                self._live -= 1
                if self._spans is not None:
                    telemetry.end(self._spans[lane], killed=False)
                    self._spans[lane] = None
        if not survivors:
            return
        ns = len(survivors)
        idx = np.asarray(survivors, dtype=np.int64)
        if rearm is not None:
            # ONE block draw for every survivor of this instant — equal to
            # the object path's per-lane scalar draws (module docstring)
            self._deadlines[idx] = now + rearm.draw(ns)
        else:
            self._deadlines[idx] = now + np.asarray(legacy_delays)
        seq0 = engine._seq
        engine._seq = seq0 + ns
        self._seqs[idx] = np.arange(seq0, seq0 + ns, dtype=np.int64)
        in_fresh, fresh = self._in_fresh, self._fresh
        for lane in survivors:
            if not in_fresh[lane]:
                in_fresh[lane] = True
                fresh.append(lane)

    def _push_next(self, engine: Engine) -> None:
        """Re-register at the pending minimum ``(time, seq)``, or finish."""
        if len(self._fresh) > _RESORT_AT:
            self._resort()
        # first still-valid snapshot entry (stale ones skipped lazily)
        s_lanes, s_seqs, s_times = self._s_lanes, self._s_seqs, self._s_times
        seqs, alive = self._seqs, self._alive
        c, n = self._cursor, len(s_lanes)
        while c < n:
            lane = s_lanes[c]
            if alive[lane] and seqs[lane] == s_seqs[c]:
                break
            c += 1
        self._cursor = c
        best: tuple[float, int, int] | None = None
        if c < n:
            best = (float(s_times[c]), int(s_seqs[c]), int(s_lanes[c]))
        if self._fresh:
            live_fresh: list[int] = []
            for lane in self._fresh:
                if not alive[lane]:
                    self._in_fresh[lane] = False
                    continue
                live_fresh.append(lane)
                key = (float(self._deadlines[lane]), int(seqs[lane]), lane)
                if best is None or key[:2] < best[:2]:
                    best = key
            self._fresh = live_fresh
        if best is None:
            self._done = True
            engine._finish(self._proc, self.result)
            return
        engine._push_entry(
            (best[0], best[1], self._proc._epoch, self._proc, _BANK_FIRE)
        )

    def _resort(self) -> None:
        """Fold the fresh list back into one sorted snapshot (lexsort)."""
        lanes = np.flatnonzero(self._alive).astype(np.int64)
        times = self._deadlines[lanes]
        seqs = self._seqs[lanes]
        order = np.lexsort((seqs, times))
        self._s_lanes = lanes[order]
        self._s_times = times[order]
        self._s_seqs = seqs[order]
        self._cursor = 0
        self._fresh = []
        self._in_fresh[:] = False

    def throw(self, exc: BaseException):
        """Generator-protocol shim: an interrupt of the carrier cancels
        every live lane cleanly — no frame to throw into, exactly like an
        interrupted object :class:`Timer`."""
        telemetry = self.engine.telemetry
        if self._spans is not None:
            for lane in np.flatnonzero(self._alive).tolist():
                span = self._spans[lane]
                if span is not None:
                    telemetry.end(span, killed=False)
                    self._spans[lane] = None
        self._alive[:] = False
        self._live = 0
        self._done = True
        raise StopIteration

    # -- shared public surface ---------------------------------------------

    @property
    def live_count(self) -> int:
        """Lanes still armed."""
        if self.vectorized or self._done:
            return self._live
        return sum(not p.finished for p in self._procs)

    @property
    def done(self) -> bool:
        """Every lane fired its last or was cancelled."""
        if self.vectorized:
            return self._done
        return self._done or all(p.finished for p in self._procs)

    def cancel(self, cause: Any = None) -> int:
        """Retire every live lane cleanly; returns how many were live.

        Observably identical across modes: one ``interrupt:<lane>``
        telemetry instant per live lane (in lane order), every lane span
        ended un-killed at the current instant, waiters on the bank woken
        with ``result``.
        """
        if not self.vectorized:
            return sum(1 for p in self._procs if p.interrupt(cause))
        if self._done:
            return 0
        engine = self.engine
        proc = self._proc
        proc._epoch += 1  # invalidate the pending bank entry
        engine._schedule(engine.now, proc, _Throw(Interrupt(cause)))
        telemetry = engine.telemetry
        live = np.flatnonzero(self._alive).tolist()
        if telemetry is not None:
            for lane in live:
                lane_name = f"{self.name}[{lane}]"
                telemetry.instant(
                    f"interrupt:{lane_name}", "engine",
                    facility="engine", track=lane_name, cause=cause,
                )
        return len(live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "vectorized" if self.vectorized else "object"
        return (
            f"<TimerBank {self.name} {mode} lanes={self.n_lanes} "
            f"live={self.live_count} fired={self.n_fired}>"
        )


class ArrivalBank:
    """Bulk-sorted arrival cursor over a job-like population.

    Replaces the scheduler's ``pending.pop(0)`` scan — O(P) list shifts
    per arrival, quadratic over a year-long stream — with one stable
    argsort at construction and a ``searchsorted`` slice per scheduling
    point. The stable sort reproduces ``sorted(jobs, key=submit_time)``
    exactly, equal submit times included, so the consumption order is
    byte-identical to the list path.
    """

    __slots__ = ("_times", "_items", "_i")

    def __init__(self, items: Iterable[Any], times: Iterable[float]):
        items = list(items)
        arr = np.asarray(list(times), dtype=np.float64)
        order = np.argsort(arr, kind="stable")
        self._times = arr[order]
        self._items = [items[int(i)] for i in order]
        self._i = 0

    @classmethod
    def from_jobs(cls, jobs: Iterable[Any]) -> "ArrivalBank":
        jobs = list(jobs)
        return cls(jobs, (j.submit_time for j in jobs))

    def __len__(self) -> int:
        return len(self._items) - self._i

    def peek_time(self) -> float | None:
        """Next submit time, or ``None`` when the stream is drained."""
        if self._i >= len(self._items):
            return None
        return float(self._times[self._i])

    def pop_until(self, now: float) -> list[Any]:
        """All items with time ``<= now``, in submission order."""
        j = int(np.searchsorted(self._times, now, side="right"))
        if j <= self._i:
            return []
        out = self._items[self._i:j]
        self._i = j
        return out


class DeadlineBank:
    """Bulk ``(time, seq)``-ordered deadline store for walltime expirations.

    Interface-compatible with the engine event queues the scheduler uses
    (``push`` / ``pop`` / ``peek_time`` / ``sorted_entries`` / ``len``)
    over ``(end_time, seq, payload)`` tuples, but built for the batch
    scheduler's access pattern: a sorted snapshot consumed through a
    cursor plus a small heap buffer for recent launches, merged back with
    one run-merge sort whenever the buffer fills. ``sorted_entries`` is a
    *lazy* in-order iterator (conservative backfill reads only a prefix),
    replacing the full O(R log R) sort the event queues pay per
    scheduling point.
    """

    _MERGE_AT = 64

    __slots__ = ("_snap", "_cursor", "_buf")

    def __init__(self) -> None:
        self._snap: list[tuple] = []  # sorted; entries before _cursor consumed
        self._cursor = 0
        self._buf: list[tuple] = []  # heapq

    def __len__(self) -> int:
        return (len(self._snap) - self._cursor) + len(self._buf)

    def push(self, entry: tuple) -> None:
        buf = self._buf
        heapq.heappush(buf, entry)
        if len(buf) >= self._MERGE_AT:
            buf.sort()
            snap = self._snap[self._cursor:]
            snap.extend(buf)
            # two sorted runs: timsort merges them in near-linear time
            snap.sort()
            self._snap = snap
            self._cursor = 0
            self._buf = []

    def pop(self) -> tuple:
        snap, c, buf = self._snap, self._cursor, self._buf
        if c < len(snap):
            head = snap[c]
            if buf and buf[0] < head:
                return heapq.heappop(buf)
            self._cursor = c + 1
            if self._cursor >= len(snap):  # fully consumed: drop the run
                self._snap = []
                self._cursor = 0
            return head
        if buf:
            return heapq.heappop(buf)
        raise IndexError("pop from an empty DeadlineBank")

    def peek_time(self) -> float | None:
        """Earliest pending deadline, or ``None`` when empty."""
        snap, c, buf = self._snap, self._cursor, self._buf
        if c < len(snap):
            head = snap[c][0]
            if buf and buf[0][0] < head:
                return buf[0][0]
            return head
        if buf:
            return buf[0][0]
        return None

    def sorted_entries(self) -> Iterator[tuple]:
        """Pending entries in ``(time, seq)`` order — lazily.

        Callers (conservative backfill) typically consume a short prefix
        and break; only the small buffer is sorted per call.
        """
        snap_tail = islice(self._snap, self._cursor, None)
        if not self._buf:
            return iter(list(snap_tail))
        return heapq.merge(snap_tail, sorted(self._buf))
