"""Generator-based discrete-event engine.

A *process* is a Python generator that yields effects:

- ``Timeout(dt)`` — advance simulated time by ``dt`` seconds;
- ``Process`` — wait for a child process to finish (its return value is sent
  back into the parent);
- ``Resource.acquire()`` request objects — wait for capacity.

The engine is deterministic: simultaneous events fire in creation order.

Example
-------
>>> eng = Engine()
>>> def job(eng):
...     yield Timeout(2.0)
...     return "done"
>>> p = eng.spawn(job(eng))
>>> eng.run()
>>> p.result
'done'
>>> eng.now
2.0
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError


@dataclass(frozen=True)
class Timeout:
    """Effect: advance the yielding process by ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Process:
    """A running simulated process wrapping a generator."""

    def __init__(self, engine: Engine, gen: Generator, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self.started_at = engine.now
        self.finished_at: float | None = None
        self._waiters: list[Process] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Engine:
    """The event loop: a heap of (time, seq, process, value_to_send)."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Process, Any]] = []
        self._seq = itertools.count()
        self._active = 0

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a new process and schedule its first step at ``now``."""
        proc = Process(self, gen, name)
        self._active += 1
        self._schedule(self.now, proc, None)
        return proc

    def _schedule(self, when: float, proc: Process, send_value: Any) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), proc, send_value))

    def run(self, until: float | None = None) -> None:
        """Run until no events remain, or simulated time would pass ``until``."""
        while self._heap:
            when, _, proc, send_value = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if when < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = when
            self._step(proc, send_value)
        if until is not None:
            self.now = max(self.now, until)

    def _step(self, proc: Process, send_value: Any) -> None:
        if proc.finished:
            raise SimulationError(f"stepping finished process {proc.name}")
        try:
            effect = proc.gen.send(send_value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        self._dispatch(proc, effect)

    def _dispatch(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Timeout):
            self._schedule(self.now + effect.delay, proc, None)
        elif isinstance(effect, Process):
            if effect.finished:
                self._schedule(self.now, proc, effect.result)
            else:
                effect._waiters.append(proc)
        elif hasattr(effect, "_bind_waiter"):  # resource requests
            effect._bind_waiter(proc)
        else:
            raise SimulationError(f"process {proc.name} yielded {effect!r}")

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        proc.finished_at = self.now
        self._active -= 1
        for waiter in proc._waiters:
            self._schedule(self.now, waiter, result)
        proc._waiters.clear()

    # Resources use this to resume a blocked process.
    def _resume(self, proc: Process, value: Any) -> None:
        self._schedule(self.now, proc, value)
