"""Paper-parity conformance subsystem.

Three layers, each machine-checkable and deterministic:

- :mod:`repro.verify.expectations` — the **expectation registry**: every
  paper-stated quantity (Tables I-III, Figures 1-6, the five Section IV-B
  extreme-scale results, the Section VI-B bandwidth/allreduce numbers and
  the Section V workflow targets) encoded with value, tolerance, units and
  provenance, plus the measurement that reproduces it;
- :mod:`repro.verify.differential` — **differential runners** that push the
  same computation through every equivalent code path (scalar ``evaluate``
  vs vectorized ``sweep`` vs the loop reference, telemetry-on vs
  telemetry-off, fault-path-without-faults vs the fault-free executor,
  same-seed replays) and assert bit- or tolerance-parity between paths;
- :mod:`repro.verify.invariants` — **invariant auditors** for structural
  properties: node-second conservation in workflow runs, span-tree
  well-formedness and counter/span accounting parity in telemetry,
  monotonicity of scaling and crossover curves, byte-identical same-seed
  trace exports.

:func:`repro.verify.report.run_conformance` runs all three and returns a
:class:`~repro.verify.report.ConformanceReport` whose JSON serialization is
byte-identical for identical seeds — the artifact CI gates on. The
``repro verify`` CLI subcommand and ``tests/test_conformance.py`` are thin
drivers over this module.
"""

from repro.verify.differential import (
    DifferentialResult,
    app_sweep_parity,
    checkpoint_replay_parity,
    run_differentials,
    sweep_bit_parity,
    telemetry_sweep_parity,
    workflow_telemetry_parity,
)
from repro.verify.expectations import (
    BENCH_BINDINGS,
    CheckResult,
    Expectation,
    VerifyContext,
    build_registry,
    expectation_sections,
    get_expectation,
    verdicts_for,
)
from repro.verify.invariants import (
    InvariantResult,
    audit_crossover_shape,
    audit_scaling_shape,
    audit_span_tree,
    audit_trace_determinism,
    audit_workflow_conservation,
    run_invariants,
)
from repro.verify.machines import build_machine_registry, run_machine_conformance
from repro.verify.report import ConformanceReport, run_conformance

__all__ = [
    "BENCH_BINDINGS",
    "CheckResult",
    "ConformanceReport",
    "DifferentialResult",
    "Expectation",
    "InvariantResult",
    "VerifyContext",
    "app_sweep_parity",
    "audit_crossover_shape",
    "audit_scaling_shape",
    "audit_span_tree",
    "audit_trace_determinism",
    "audit_workflow_conservation",
    "build_machine_registry",
    "build_registry",
    "checkpoint_replay_parity",
    "expectation_sections",
    "get_expectation",
    "run_conformance",
    "run_differentials",
    "run_invariants",
    "run_machine_conformance",
    "sweep_bit_parity",
    "telemetry_sweep_parity",
    "verdicts_for",
    "workflow_telemetry_parity",
]
