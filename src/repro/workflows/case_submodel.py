"""The submodel motif end to end: an ML subgrid closure in a climate toy.

Pipeline (mirroring Rasp/Pritchard/Gentine and the Table I example):

1. run the coupled two-scale Lorenz-96 "truth" and harvest
   (resolved-state stencil -> true subgrid forcing) training pairs;
2. train an MLP closure;
3. run the reduced model with the learned closure and evaluate what the
   paper's Section VI-A says must be evaluated:
   - *forecast skill*: how long the parameterised model tracks the truth
     versus the uncorrected truncation;
   - *climate fidelity*: long-run mean/variance of the resolved state;
   - *stability under iteration* with and without the conservation
     correction (constraints "imposed by a final correction").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.mlp import MLP
from repro.optim.adam import Adam
from repro.science.lorenz96 import L96Params, ReducedLorenz96, TwoScaleLorenz96


@dataclass
class SubmodelResult:
    """Outcome of the ML-closure study.

    The climate metric is the *variance* of the resolved state: the subgrid
    coupling damps the slow variables, so the uncorrected truncation runs
    far too variable while barely shifting the mean — variance is where the
    missing physics shows.
    """

    offline_rmse: float  # closure error on held-out pairs
    skill_horizon_ml: float  # model time until error > threshold
    skill_horizon_truncated: float
    climate_mean_truth: float
    climate_mean_ml: float
    climate_mean_truncated: float
    climate_var_truth: float
    climate_var_ml: float
    climate_var_truncated: float
    stable: bool  # reduced-with-ML run stayed bounded

    @property
    def horizon_gain(self) -> float:
        if self.skill_horizon_truncated == 0:
            return float("inf")
        return self.skill_horizon_ml / self.skill_horizon_truncated

    @property
    def climate_error_ml(self) -> float:
        return abs(self.climate_var_ml - self.climate_var_truth)

    @property
    def climate_error_truncated(self) -> float:
        return abs(self.climate_var_truncated - self.climate_var_truth)


class SubmodelWorkflow:
    """Train and evaluate an ML subgrid closure for Lorenz-96."""

    def __init__(self, params: L96Params | None = None, seed: int = 0):
        self.params = params or L96Params()
        self.seed = seed
        self.closure: MLP | None = None
        self.offline_rmse = float("nan")
        self._coupling_mean = 0.0

    def train_closure(
        self, n_samples: int = 4000, epochs: int = 150, hidden: int = 32
    ) -> float:
        """Harvest coupled-run data, train the MLP, return held-out RMSE."""
        truth = TwoScaleLorenz96(self.params, seed=self.seed)
        x, y = truth.generate_training_data(n_samples + n_samples // 4)
        n_train = n_samples
        self.closure = MLP([5, hidden, hidden, 1], seed=self.seed)
        self.closure.fit(
            x[:n_train], y[:n_train], epochs=epochs,
            optimizer=Adam(lr=2e-3), batch_size=64, seed=self.seed,
        )
        self._coupling_mean = float(y[:n_train].mean())
        pred = self.closure.predict(x[n_train:])
        self.offline_rmse = float(np.sqrt(np.mean((pred - y[n_train:]) ** 2)))
        return self.offline_rmse

    def _reduced(self, x0: np.ndarray, use_ml: bool, conserve: bool) -> ReducedLorenz96:
        if use_ml and self.closure is None:
            raise ConfigurationError("train_closure() first")
        model = ReducedLorenz96(
            self.params,
            closure=self.closure.predict if use_ml else None,
            x0=x0,
            conserve_mean=conserve,
        )
        if conserve:
            model.calibrate_conservation(self._coupling_mean)
        return model

    def run(
        self,
        forecast_steps: int = 2000,
        climate_steps: int = 8000,
        dt: float = 0.001,
        skill_threshold: float = 3.0,
        conserve_mean: bool = True,
    ) -> SubmodelResult:
        """Evaluate forecast skill and climate fidelity."""
        if self.closure is None:
            raise ConfigurationError("train_closure() first")

        # -- forecast skill: truth vs reduced models from the same state ----
        truth = TwoScaleLorenz96(self.params, seed=self.seed + 1)
        truth.run(3000, dt)
        x0 = truth.x.copy()
        truth_traj = np.empty((forecast_steps, self.params.n_slow))
        for i in range(forecast_steps):
            truth.step(dt)
            truth_traj[i] = truth.x

        horizons = {}
        for label, use_ml in (("ml", True), ("truncated", False)):
            model = self._reduced(x0, use_ml, conserve_mean and use_ml)
            traj = model.run(forecast_steps, dt)
            err = np.sqrt(((traj - truth_traj) ** 2).mean(axis=1))
            beyond = np.nonzero(err > skill_threshold)[0]
            horizon = forecast_steps if beyond.size == 0 else int(beyond[0])
            horizons[label] = horizon * dt

        # -- climate fidelity: long free runs ------------------------------------
        # The coupled truth integrates at dt (fast scale); the reduced
        # models take 0.005 steps (slow scale only) over a longer window.
        climate_truth = TwoScaleLorenz96(self.params, seed=self.seed + 2)
        climate_truth.run(2000, 0.002)
        truth_traj = np.empty((climate_steps, self.params.n_slow))
        for i in range(climate_steps):
            climate_truth.step(0.002)
            truth_traj[i] = climate_truth.x
        means = {"truth": float(truth_traj.mean())}
        variances = {"truth": float(truth_traj.var())}

        stable = True
        reduced_dt = 0.005
        reduced_steps = max(climate_steps, int(climate_steps * 0.002 / reduced_dt) * 4)
        for label, use_ml in (("ml", True), ("truncated", False)):
            model = self._reduced(climate_truth.x.copy(), use_ml,
                                  conserve_mean and use_ml)
            traj = model.run(reduced_steps, reduced_dt)
            if not np.isfinite(traj).all() or np.abs(traj).max() > 1e3:
                if use_ml:
                    stable = False
                means[label] = float("nan")
                variances[label] = float("inf")
            else:
                means[label] = float(traj.mean())
                variances[label] = float(traj.var())

        return SubmodelResult(
            offline_rmse=self.offline_rmse,
            skill_horizon_ml=horizons["ml"],
            skill_horizon_truncated=horizons["truncated"],
            climate_mean_truth=means["truth"],
            climate_mean_ml=means["ml"],
            climate_mean_truncated=means["truncated"],
            climate_var_truth=variances["truth"],
            climate_var_ml=variances["ml"],
            climate_var_truncated=variances["truncated"],
            stable=stable,
        )
