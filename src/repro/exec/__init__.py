"""Data-parallel execution fabric with content-addressed result caching.

The paper's core quantitative story (Sections IV-B and VI-B) is
data-parallel scaling: identical work fanned out over many workers with
deterministic aggregation. This package gives the reproduction the same
discipline at the process level:

- :mod:`repro.exec.parallel` — :class:`ParallelMap`, the shard->merge
  abstraction (serial / process-pool backends) every hot path fans out
  through, plus the contiguous-sharding and ``SeedSequence``-spawning
  helpers that make ``n_jobs=1`` and ``n_jobs=8`` agree bit for bit;
- :mod:`repro.exec.cache` — :class:`ResultCache`, a content-addressed
  on-disk store under ``.repro-cache/`` keyed by a digest of
  (model/config, axes, seed, code fingerprint), with hit/miss counters and
  automatic invalidation when the package source changes;
- :mod:`repro.exec.replicas` — Monte-Carlo fan-out over per-replica child
  seeds for workflow runs, scheduler simulations and checkpoint-restart
  ensembles.

Determinism contract: parallelism only changes *which process* evaluates a
shard, never the values — every consumer (``cost.sweep``, ``repro verify``,
the replica ensembles) reassembles results in a stable order and the test
suite asserts byte-identity against the serial path.
"""

from repro.exec.cache import ResultCache, code_fingerprint, content_key
from repro.exec.parallel import (
    ParallelMap,
    resolve_jobs,
    shard_ranges,
    spawn_seeds,
)
from repro.exec.replicas import monte_carlo, workflow_replicas

__all__ = [
    "ParallelMap",
    "ResultCache",
    "code_fingerprint",
    "content_key",
    "monte_carlo",
    "resolve_jobs",
    "shard_ranges",
    "spawn_seeds",
    "workflow_replicas",
]
