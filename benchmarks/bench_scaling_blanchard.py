"""Section IV-B.5 — Blanchard et al., SMILES-BERT pretraining for drug
discovery.

Paper: "global batch size up to 5.8 million while maintaining convergence
rate. Parallel scaling from 1 to 4032 nodes is 68%; without I/O costs the
figure is 83.3%. Peak performance is 603 mixed precision PF at 4032 nodes."
"""

import dataclasses

import pytest
from _record import record
from conftest import report

from repro.apps.extreme_scale import get_app
from repro.training.parallelism import DataSource
from repro.training.scaling import ScalingStudy


def test_scaling_blanchard(benchmark):
    app = get_app("blanchard")

    def run():
        with_io = app.simulate()
        without_io = dataclasses.replace(
            app, data_source=DataSource.MEMORY
        ).simulate()
        return with_io, without_io

    with_io, without_io = benchmark(run)

    assert with_io["measured_flops"] == pytest.approx(603e15, rel=0.03)
    assert with_io["measured_efficiency"] == pytest.approx(0.68, abs=0.03)
    assert without_io["measured_efficiency"] == pytest.approx(0.833, abs=0.03)
    assert app.job(app.peak_nodes).global_batch() == pytest.approx(5.8e6, rel=0.01)

    record(
        "scaling_blanchard",
        {
            "peak_flops": with_io["measured_flops"],
            "efficiency_with_io": with_io["measured_efficiency"],
            "efficiency_without_io": without_io["measured_efficiency"],
            "max_global_batch": app.job(app.peak_nodes).global_batch(),
        },
    )

    points = ScalingStudy(app.job(1)).weak_scaling([1, 16, 256, 4032])
    print()
    print(ScalingStudy.table(points, "Blanchard et al. — SMILES-BERT weak scaling"))
    report(
        "Section IV-B.5 paper-vs-measured",
        [
            ("peak sustained", "603 PFLOP/s",
             f"{with_io['measured_flops'] / 1e15:.0f} PFLOP/s"),
            ("efficiency (with I/O)", "68%",
             f"{with_io['measured_efficiency']:.1%}"),
            ("efficiency (no I/O)", "83.3%",
             f"{without_io['measured_efficiency']:.1%}"),
            ("max global batch", "5.8M",
             f"{app.job(app.peak_nodes).global_batch() / 1e6:.1f}M"),
        ],
        header=("metric", "paper", "measured"),
    )
