#!/usr/bin/env python
"""A simulated year of whole-facility operation in seconds of wall-clock.

The vectorized timer banks (``repro.sim.timerbank``) hold homogeneous
timer populations — per-node failure clocks, job walltime expirations —
as numpy arrays and dispatch them through the engine as a single queue
entry per horizon window. That turns the two hot loops of a facility
simulation into bulk array operations and makes a year of Summit-scale
operation a coffee-sip-sized run:

1. **Per-node failure clocks** — a :class:`~repro.resilience.faults.
   FailureInjector` bank gives each of Summit's 4 608 nodes its own
   exponential MTBF clock (lane index = node index) and stalks one
   year-long facility process; every firing interrupts the target with
   the failing node's identity.
2. **A year of batch scheduling** — ~80 k jobs from the utilization-
   targeted synthetic stream, replayed through the scheduler's bank mode
   (``timer_bank=True``) with checkpoint/requeue fault churn, and the
   identical replay through the object path on a shorter window to show
   the two agree field for field.

Run:  python examples/facility_year.py
"""

import time

from repro.resilience.faults import FailureInjector
from repro.scheduler import FaultModel, Scheduler
from repro.scheduler.jobs import synthetic_facility_year
from repro.sim.engine import Engine, Interrupt, Timeout

YEAR = 365.0 * 86400.0
N_NODES = 4608


def facility(eng: Engine):
    """A year-long facility process that absorbs node-failure interrupts."""
    failures = 0
    remaining = YEAR
    while True:
        started = eng.now
        try:
            yield Timeout(remaining)
            return failures
        except Interrupt:
            failures += 1
            remaining -= eng.now - started


def main() -> None:
    # -- 1. per-node failure clocks as one vectorized bank ------------------
    print(f"1. A year of per-node failure clocks ({N_NODES:,} nodes)")
    print("=" * 64)
    eng = Engine(impl="calendar")
    target = eng.spawn(facility(eng), name="facility")
    injector = FailureInjector(eng, seed=0)
    injector.attach(target, N_NODES, timer_bank=True)
    t0 = time.perf_counter()
    eng.run()
    bank_wall = time.perf_counter() - t0
    nodes_hit = len({e.node for e in injector.events})
    print(f"  {len(injector.events)} node failures over "
          f"{eng.now / 86400:.0f} simulated days "
          f"({nodes_hit} distinct nodes) in {bank_wall:.3f} s wall-clock")
    print("  (one engine queue entry carries all "
          f"{N_NODES:,} exponential clocks)\n")

    # -- 2. a year of batch scheduling, bank mode ---------------------------
    print("2. A year of batch scheduling (bank mode)")
    print("=" * 64)
    t0 = time.perf_counter()
    jobs = synthetic_facility_year(seed=0, n_nodes=N_NODES, horizon=YEAR)
    gen_wall = time.perf_counter() - t0
    faults = FaultModel(checkpoint_interval=3600.0, seed=0)
    t0 = time.perf_counter()
    result = Scheduler(N_NODES).run(jobs, faults=faults, timer_bank=True)
    year_wall = time.perf_counter() - t0
    print(f"  {len(jobs):,} jobs generated in {gen_wall:.2f} s, "
          f"replayed in {year_wall:.2f} s "
          f"({result.makespan / year_wall:,.0f} simulated s per wall s)")
    print(f"  utilization {result.utilization:.1%}, "
          f"goodput {result.goodput_fraction:.2%}, "
          f"{result.n_failures} failures, "
          f"{result.lost_node_hours:,.0f} node-hours lost\n")

    # -- 3. the determinism contract ----------------------------------------
    print("3. Bank mode is byte-identical to the object path")
    print("=" * 64)
    month = synthetic_facility_year(
        seed=1, n_nodes=N_NODES, horizon=30.0 * 86400.0
    )
    r_obj = Scheduler(N_NODES).run(list(month), faults=faults,
                                   timer_bank=False)
    r_bank = Scheduler(N_NODES).run(list(month), faults=faults,
                                    timer_bank=True)
    assert r_obj == r_bank
    print(f"  30-day window, {len(month):,} jobs: object path and bank mode "
          "agree on every field\n  (same arrivals, same failure draws, same "
          "schedule — the bank only changes the data structure)")


if __name__ == "__main__":
    main()
