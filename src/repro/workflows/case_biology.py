"""Section V-B: the multiscale biology workflow (Trifan et al.).

The paper's description: a mesoscale FFEA simulation and an atomistic MD
simulation iteratively coupled; autoencoders (ANCA-AE on the mesoscale
side, CVAE on the atomistic side) capture conformational changes; a graph
neural operator imposes consistency between the two resolutions; the
campaign spans four facilities orchestrated by Balsam.

Our reproduction:

- mesoscale: :class:`~repro.science.ffea.MassSpringModel` trajectories,
  embedded by a plain autoencoder (the ANCA-AE role);
- atomistic: :class:`~repro.science.md.LennardJonesMD` trajectories,
  embedded by a :class:`~repro.ml.autoencoder.VariationalAutoencoder`
  (the CVAE role);
- consistency: an MLP trained to map coarse latents to fine latents (the
  GNO role); its residual is the cross-resolution consistency score;
- event detection: a deformation applied to the mesoscale model must be
  flagged as a latent-space outlier and trigger an atomistic refinement;
- orchestration: the whole campaign laid out as a
  :class:`~repro.workflows.dag.TaskGraph` across the paper's four
  facilities, giving makespan vs. serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.autoencoder import Autoencoder, VariationalAutoencoder
from repro.ml.mlp import MLP
from repro.science.ffea import MassSpringModel
from repro.science.md import LennardJonesMD, lattice_state
from repro.workflows.dag import TaskGraph, WorkflowRun
from repro.workflows.facility import FACILITIES


@dataclass
class MultiscaleResult:
    """Outcome of the coupled multiscale campaign."""

    coarse_frames: int
    fine_frames: int
    consistency_rmse: float  # GNO-residual on held-out paired windows
    event_score_ratio: float  # outlier score of the deformation event / baseline
    event_detected: bool
    refinements_triggered: int


class MultiscaleWorkflow:
    """FFEA <-> MD coupling with learned latent spaces."""

    def __init__(
        self,
        n_side_coarse: int = 5,
        n_side_fine: int = 5,
        latent_dim: int = 2,
        seed: int | None = 0,
    ):
        if latent_dim < 1:
            raise ConfigurationError("latent_dim must be >= 1")
        self.latent_dim = latent_dim
        self.seed = seed
        self.coarse = MassSpringModel(n_side=n_side_coarse, seed=seed)
        state = lattice_state(n_side_fine, density=0.5, temperature=0.5, seed=seed)
        self.fine = LennardJonesMD(state, dt=0.002)
        self.refinements_triggered = 0

    def run(
        self,
        n_windows: int = 8,
        frames_per_window: int = 12,
        ae_epochs: int = 200,
        event_threshold: float = 3.0,
    ) -> MultiscaleResult:
        """Run paired windows, train the embeddings and coupler, then inject
        and detect a rare mesoscale event."""
        if n_windows < 4 or frames_per_window < 2:
            raise ConfigurationError("need >= 4 windows of >= 2 frames")
        if event_threshold <= 1:
            raise ConfigurationError("event_threshold must exceed 1")

        # 1. paired trajectories: window i of each resolution
        coarse_frames = []
        fine_frames = []
        for _ in range(n_windows):
            coarse_frames.append(
                self.coarse.sample_trajectory(frames_per_window, steps_per_frame=10)
            )
            fine_frames.append(
                self.fine.sample_trajectory(
                    frames_per_window, steps_per_frame=5,
                    temperature=0.5, seed=self.seed,
                )
            )
        coarse_all = np.vstack(coarse_frames)
        fine_all = np.vstack(fine_frames)

        # 2. embeddings (ANCA-AE / CVAE roles)
        anca = Autoencoder(
            coarse_all.shape[1], self.latent_dim, hidden=[16], seed=self.seed
        )
        anca.fit(coarse_all, epochs=ae_epochs, seed=self.seed)
        cvae = VariationalAutoencoder(
            fine_all.shape[1], self.latent_dim, hidden=[32], seed=self.seed
        )
        cvae.fit(fine_all, epochs=ae_epochs, seed=self.seed)

        # 3. consistency coupler (GNO role): window-mean coarse latent ->
        #    window-mean fine latent, trained on all but the last 2 windows
        z_coarse = np.array([
            anca.encode(w).mean(axis=0) for w in coarse_frames
        ])
        z_fine = np.array([cvae.encode(w).mean(axis=0) for w in fine_frames])
        n_train = n_windows - 2
        coupler = MLP(
            [self.latent_dim, 16, self.latent_dim], seed=self.seed
        )
        coupler.fit(
            z_coarse[:n_train], z_fine[:n_train], epochs=300, lr=5e-3,
            seed=self.seed,
        )
        resid = coupler.predict(z_coarse[n_train:]) - z_fine[n_train:]
        consistency_rmse = float(np.sqrt(np.mean(resid**2)))

        # 4. event injection and detection: deform the mesoscale body and
        #    check its frames are latent-space outliers
        baseline_score = float(
            np.median(anca.reconstruction_error(coarse_all))
        )
        self.coarse.apply_deformation(magnitude=3.0)
        event_frames = self.coarse.sample_trajectory(
            frames_per_window, steps_per_frame=1
        )
        event_score = float(np.median(anca.reconstruction_error(event_frames)))
        ratio = event_score / max(baseline_score, 1e-12)
        detected = ratio > event_threshold
        if detected:
            # trigger an atomistic refinement segment (the coupling action)
            self.fine.sample_trajectory(
                frames_per_window, steps_per_frame=5, temperature=0.5,
                seed=self.seed,
            )
            self.refinements_triggered += 1

        return MultiscaleResult(
            coarse_frames=coarse_all.shape[0] + event_frames.shape[0],
            fine_frames=fine_all.shape[0]
            + (frames_per_window if detected else 0),
            consistency_rmse=consistency_rmse,
            event_score_ratio=ratio,
            event_detected=detected,
            refinements_triggered=self.refinements_triggered,
        )

    @staticmethod
    def campaign_graph(
        n_windows: int = 4,
        md_hours: float = 2.0,
        ffea_hours: float = 0.5,
        train_hours: float = 1.0,
        use_cs2: bool = False,
    ) -> TaskGraph:
        """The Trifan et al. cross-facility campaign as a task graph.

        Per window: FFEA + ANCA-AE on ThetaGPU, AAMD on Perlmutter, CVAE
        training on Summit (or a Cerebras CS-2), and a GNO consistency step
        on ThetaGPU gated on both embeddings.
        """
        if n_windows < 1:
            raise ConfigurationError("need at least one window")
        graph = TaskGraph(FACILITIES)
        hour = 3600.0
        trainer = "cs2" if use_cs2 else "summit"
        trainer_nodes = 1 if use_cs2 else 256
        for w in range(n_windows):
            prev = (f"gno-{w - 1}",) if w else ()
            graph.add_task(
                f"ffea-{w}", ffea_hours * hour, "thetagpu", nodes=4, deps=prev
            )
            graph.add_task(
                f"aamd-{w}", md_hours * hour, "perlmutter", nodes=1536, deps=prev
            )
            graph.add_task(
                f"anca-{w}", 0.3 * hour, "thetagpu", nodes=2, deps=(f"ffea-{w}",)
            )
            graph.add_task(
                f"cvae-{w}", train_hours * hour, trainer, nodes=trainer_nodes,
                deps=(f"aamd-{w}",),
            )
            graph.add_task(
                f"gno-{w}", 0.4 * hour, "thetagpu", nodes=8,
                deps=(f"anca-{w}", f"cvae-{w}"),
            )
        return graph

    @staticmethod
    def campaign_makespan(n_windows: int = 4, use_cs2: bool = False) -> WorkflowRun:
        graph = MultiscaleWorkflow.campaign_graph(n_windows=n_windows, use_cs2=use_cs2)
        return graph.execute()
