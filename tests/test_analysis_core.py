"""Tests for repro.analysis and the repro.core facade."""

import numpy as np
import pytest

from repro.analysis import (
    amdahl_speedup,
    fit_serial_fraction,
    gustafson_speedup,
    parallel_efficiency,
    roofline_point,
    scaled_speedup,
)
from repro.core import ScalingStudyRunner, SummitSimulator, UsageSurvey
from repro.errors import ConfigurationError
from repro.machine.gpu import NVIDIA_V100
from repro.training import ParallelismPlan


class TestScalingLaws:
    def test_amdahl_limits(self):
        assert amdahl_speedup(1, 0.1) == 1.0
        assert amdahl_speedup(10**6, 0.01) == pytest.approx(100, rel=0.01)

    def test_amdahl_no_serial_is_linear(self):
        assert amdahl_speedup(64, 0.0) == 64.0

    def test_gustafson_grows_linearly(self):
        assert gustafson_speedup(100, 0.1) == pytest.approx(0.1 + 0.9 * 100)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(80.0, 100) == 0.8

    def test_scaled_speedup_series(self):
        out = scaled_speedup([10.0, 20.0, 40.0], [1, 2, 4])
        assert out.tolist() == [1.0, 2.0, 4.0]

    def test_fit_serial_fraction_recovers_truth(self):
        s_true = 0.002
        workers = np.array([1, 8, 64, 512, 4096])
        effs = np.array([1.0 / (s_true * (p - 1) + 1) for p in workers])
        assert fit_serial_fraction(workers, effs) == pytest.approx(s_true, rel=0.01)

    def test_fit_clamps_to_unit_interval(self):
        workers = np.array([1, 2])
        effs = np.array([1.0, 1.5])  # superlinear -> negative raw fit
        assert fit_serial_fraction(workers, effs) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            amdahl_speedup(0, 0.1)
        with pytest.raises(ConfigurationError):
            amdahl_speedup(4, 1.5)
        with pytest.raises(ConfigurationError):
            fit_serial_fraction(np.array([2, 2]), np.array([1.0, 1.0]))


class TestRoofline:
    def test_matmul_is_compute_bound(self):
        # Large GEMM: intensity in the hundreds of FLOPs/byte
        point = roofline_point(NVIDIA_V100, flops=1e12, bytes_moved=2e9)
        assert point.compute_bound
        assert point.attainable_flops == NVIDIA_V100.peak()

    def test_elementwise_is_memory_bound(self):
        point = roofline_point(NVIDIA_V100, flops=1e9, bytes_moved=12e9)
        assert not point.compute_bound
        assert point.attainable_flops < NVIDIA_V100.peak()

    def test_ridge_point_value(self):
        point = roofline_point(NVIDIA_V100, 1e12, 1e9)
        assert point.ridge_intensity == pytest.approx(125e12 / 900e9)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            roofline_point(NVIDIA_V100, 0, 1)


class TestSummitSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return SummitSimulator()

    def test_allreduce_estimates_match_paper(self, sim):
        assert sim.allreduce_estimate("resnet50") == pytest.approx(8e-3, rel=0.05)
        assert sim.allreduce_estimate("bert_large") == pytest.approx(
            0.112, rel=0.05
        )

    def test_detailed_allreduce_larger_than_estimate(self, sim):
        est = sim.allreduce_estimate("bert_large")
        full = sim.allreduce_detailed("bert_large", 4096)
        assert full > est  # latency terms

    def test_io_report_reproduces_section_6b(self, sim):
        report = sim.io_report("resnet50")
        assert report["required"] == pytest.approx(20e12, rel=0.02)
        assert not report["shared_fs_feasible"]
        assert report["nvme_feasible"]
        assert "TB/s" in report["summary"]

    def test_io_report_small_scale_gpfs_ok(self, sim):
        report = sim.io_report("resnet50", n_nodes=128)
        assert report["shared_fs_feasible"]


class TestScalingStudyRunner:
    def test_weak_scaling_table(self):
        runner = ScalingStudyRunner("resnet50", ParallelismPlan(local_batch=64))
        table = runner.table([1, 8, 64])
        assert "resnet50 weak scaling" in table
        assert table.count("\n") == 4

    def test_strong_scaling_runs(self):
        runner = ScalingStudyRunner("resnet50", ParallelismPlan(local_batch=512))
        points = runner.run([1, 2, 4], strong=True)
        assert len({p.global_batch for p in points}) == 1


class TestUsageSurvey:
    def test_calibrated_survey_builds(self):
        survey = UsageSurvey.calibrated()
        assert len(survey.analytics.projects) == 645

    def test_report_contains_figures(self):
        text = UsageSurvey.calibrated().report()
        assert "Fig. 1" in text and "Fig. 6" in text
