"""Deprecated re-export of the Summit calibration constants.

The single source of truth for machine-level numbers moved to
:mod:`repro.machine.spec` — every name below now resolves lazily (PEP 562)
to a field or derived property of :data:`repro.machine.spec.SUMMIT`, so
the values are bit-identical to the historical literals while existing
``from repro.constants import ...`` call sites keep working.

New code should take a :class:`~repro.machine.spec.MachineSpec` parameter
(default ``summit()``) instead of importing these globals; see DESIGN.md
"Machine registry".
"""

from __future__ import annotations

#: name -> attribute of ``repro.machine.spec.SUMMIT`` it resolves to.
_SPEC_FIELDS = {
    "SUMMIT_EDR_RAIL_BANDWIDTH": "injection_rail_bandwidth",
    "SUMMIT_INJECTION_RAILS": "injection_rails",
    "SUMMIT_INJECTION_BANDWIDTH": "injection_bandwidth",
    "SUMMIT_INJECTION_LATENCY": "injection_latency",
    "SUMMIT_ALGORITHMIC_BANDWIDTH": "algorithmic_bandwidth",
    "SUMMIT_NVLINK_BANDWIDTH": "intra_node_bandwidth",
    "SUMMIT_NVLINK_LATENCY": "intra_node_latency",
    "SUMMIT_NODE_COUNT": "node_count",
    "SUMMIT_GPUS_PER_NODE": "gpus_per_node",
    "GPFS_AGGREGATE_READ_BANDWIDTH": "fs_aggregate_read_bandwidth",
    "GPFS_AGGREGATE_WRITE_BANDWIDTH": "fs_aggregate_write_bandwidth",
    "GPFS_PER_CLIENT_BANDWIDTH": "fs_per_client_bandwidth",
    "GPFS_CAPACITY_BYTES": "fs_capacity_bytes",
    "NVME_CAPACITY_BYTES": "nvme_capacity_bytes",
    "NVME_READ_BANDWIDTH": "nvme_read_bandwidth",
    "NVME_WRITE_BANDWIDTH": "nvme_write_bandwidth",
    "NVME_AGGREGATE_READ_BANDWIDTH": "aggregate_nvme_read_bandwidth",
}

__all__ = sorted(_SPEC_FIELDS)


def __getattr__(name: str):
    try:
        field = _SPEC_FIELDS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from repro.machine.spec import SUMMIT

    return getattr(SUMMIT, field)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
