"""Gordon Bell finalist registry (Section IV-A, Table III).

The ten AI/ML-powered Summit finalists are recorded individually with their
motif and scale; the non-AI finalists appear as anonymous entries so the
Table III counts are complete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.portfolio.taxonomy import Motif


@dataclass(frozen=True)
class GordonBellFinalist:
    """One Summit Gordon Bell finalist project."""

    name: str
    year: int
    category: str  # "std" | "covid"
    uses_ai: bool
    motif: Motif | None = None
    max_nodes: int | None = None
    peak_flops: float | None = None  # mixed precision, where reported
    description: str = ""
    machine: str = "summit"  # machine-registry key the run was reported on


GORDON_BELL_FINALISTS: tuple[GordonBellFinalist, ...] = (
    # -- 2018 standard (5 finalists, 3 AI/ML) -----------------------------------
    GordonBellFinalist(
        "Ichimura et al.", 2018, "std", True, Motif.MATH_CS_ALGORITHM, 4096,
        description="earthquake modeling; NN preconditioner for CG solver",
    ),
    GordonBellFinalist(
        "Patton et al.", 2018, "std", True, Motif.CLASSIFICATION, 4200, 152.5e15,
        description="DNN hyperparameter tuning for microscopy defect detection",
    ),
    GordonBellFinalist(
        "Kurth et al.", 2018, "std", True, Motif.CLASSIFICATION, 4560, 1.13e18,
        description="extreme weather detection; Tiramisu/DeepLabv3+ DNNs",
    ),
    GordonBellFinalist("Summit finalist (non-AI) 2018a", 2018, "std", False),
    GordonBellFinalist("Summit finalist (non-AI) 2018b", 2018, "std", False),
    # -- 2019 standard (2 finalists, 0 AI/ML) -------------------------------------
    GordonBellFinalist("Summit finalist (non-AI) 2019a", 2019, "std", False),
    GordonBellFinalist("Summit finalist (non-AI) 2019b", 2019, "std", False),
    # -- 2020 standard (4 finalists, 1 AI/ML) --------------------------------------
    GordonBellFinalist(
        "Jia et al.", 2020, "std", True, Motif.MD_POTENTIAL, 4560,
        description="DeePMD-kit machine-learned potentials for water and copper",
    ),
    GordonBellFinalist("Summit finalist (non-AI) 2020a", 2020, "std", False),
    GordonBellFinalist("Summit finalist (non-AI) 2020b", 2020, "std", False),
    GordonBellFinalist("Summit finalist (non-AI) 2020c", 2020, "std", False),
    # -- 2020 COVID-19 (2 finalists, 2 AI/ML) ----------------------------------------
    GordonBellFinalist(
        "Casalino et al.", 2020, "covid", True, Motif.STEERING, 4096,
        description="spike dynamics MD steered by PointNet adversarial AE",
    ),
    GordonBellFinalist(
        "Glaser et al.", 2020, "covid", True, Motif.SURROGATE_MODEL, 4602,
        description="chemical screening; random-forest affinity scoring",
    ),
    # -- 2021 standard (1 finalist, 1 AI/ML) -------------------------------------------
    GordonBellFinalist(
        "Nguyen-Cong et al.", 2021, "std", True, Motif.MD_POTENTIAL, 4650,
        description="billion-atom carbon MD with SNAP ML potentials",
    ),
    # -- 2021 COVID-19 (3 finalists, 3 AI/ML) --------------------------------------------
    GordonBellFinalist(
        "Blanchard et al.", 2021, "covid", True, Motif.CLASSIFICATION, 4032, 603e15,
        description="GA drug search over BERT/transformer embeddings",
    ),
    GordonBellFinalist(
        "Amaro et al.", 2021, "covid", True, Motif.STEERING, 4096,
        description="DeepDriveMD-guided aerosol simulation; OrbNet, ANCA-AE",
    ),
    GordonBellFinalist(
        "Trifan et al.", 2021, "covid", True, Motif.STEERING, 256,
        description="multiscale replication-transcription machinery; GNO+CVAE",
    ),
)


def finalists_for(machine: str = "summit") -> tuple[GordonBellFinalist, ...]:
    """Finalists reported on one machine (every Table III entry is Summit's;
    the filter exists so future machine registries stay queryable)."""
    return tuple(f for f in GORDON_BELL_FINALISTS if f.machine == machine)


def gordon_bell_table(
    machine: str = "summit",
) -> dict[tuple[int, str], tuple[int, int]]:
    """Recompute Table III from the registry:
    (year, category) -> (summit_finalists, summit_ai_ml_finalists)."""
    out: dict[tuple[int, str], tuple[int, int]] = {}
    for finalist in finalists_for(machine):
        key = (finalist.year, finalist.category)
        total, ai = out.get(key, (0, 0))
        out[key] = (total + 1, ai + (1 if finalist.uses_ai else 0))
    return out
