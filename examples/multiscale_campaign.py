#!/usr/bin/env python
"""Multiscale biology campaign (Trifan et al., Section V-B).

Couples a cheap mesoscale mass-spring model (the FFEA role) to an atomistic
Lennard-Jones MD engine (the NAMD role) through learned latent spaces: a
plain autoencoder embeds mesoscale conformations (ANCA-AE role), a VAE
embeds atomistic ones (CVAE role), and an MLP coupler imposes consistency
between the resolutions (GNO role). A rare mesoscale deformation event must
be detected as a latent-space outlier and trigger atomistic refinement.

Also lays the campaign out as a task graph across the paper's four
facilities (Summit, Perlmutter, ThetaGPU, Cerebras CS-2) and reports the
orchestrated makespan vs. serial execution — the quantity workflow
coordination buys.

Run:  python examples/multiscale_campaign.py
"""

from repro.workflows.case_biology import MultiscaleWorkflow


def main() -> None:
    print("AI-coupled multiscale simulation campaign")
    print("=" * 60)

    workflow = MultiscaleWorkflow(seed=3)
    result = workflow.run(n_windows=8, frames_per_window=10)

    print(f"Mesoscale frames simulated:  {result.coarse_frames}")
    print(f"Atomistic frames simulated:  {result.fine_frames}")
    print(f"Cross-resolution consistency RMSE (held-out): "
          f"{result.consistency_rmse:.3f}")
    print(f"Deformation-event outlier score ratio: "
          f"{result.event_score_ratio:.1f}x baseline")
    print(f"Event detected -> atomistic refinement triggered: "
          f"{result.event_detected} ({result.refinements_triggered} refinement)")
    print()

    # -- cross-facility orchestration ------------------------------------------
    for use_cs2, label in ((False, "CVAE on Summit (256 nodes)"),
                           (True, "CVAE on Cerebras CS-2")):
        graph = MultiscaleWorkflow.campaign_graph(n_windows=4, use_cs2=use_cs2)
        run = graph.execute()
        serial = graph.serial_time()
        print(f"Campaign ({label}):")
        print(f"  orchestrated makespan {run.makespan / 3600:6.2f} h "
              f"(serial {serial / 3600:6.2f} h, "
              f"{serial / run.makespan:.2f}x concurrency)")
        print(f"  critical path: {' -> '.join(run.critical_path(graph))}")
    print()
    busy = graph.execute().facility_busy_node_seconds(graph)
    print("Node-seconds by facility (CS-2 variant):")
    for facility, node_seconds in sorted(busy.items()):
        print(f"  {facility:<12} {node_seconds / 3600:10.1f} node-hours")


if __name__ == "__main__":
    main()
