"""Factories for the concrete OLCF machines of Section II-A.

All capacities and rates below are as stated in the paper (see DESIGN.md
"Calibration constants"); where the paper gives no number (e.g. Andes'
interconnect) we use the published system documentation values.

The Summit calibration numbers themselves live in the machine registry —
:data:`repro.machine.spec.SUMMIT` — and the node/system builders here
consume that spec, so there is exactly one copy of every value. The
historical constant names stay importable from this module (and from the
deprecated :mod:`repro.constants` shim) for compatibility.
"""

from __future__ import annotations

from repro import units
from repro.constants import (
    GPFS_AGGREGATE_READ_BANDWIDTH,
    GPFS_AGGREGATE_WRITE_BANDWIDTH,
    GPFS_CAPACITY_BYTES,
    GPFS_PER_CLIENT_BANDWIDTH,
    NVME_AGGREGATE_READ_BANDWIDTH,
    NVME_CAPACITY_BYTES,
    NVME_READ_BANDWIDTH,
    NVME_WRITE_BANDWIDTH,
    SUMMIT_ALGORITHMIC_BANDWIDTH,
    SUMMIT_EDR_RAIL_BANDWIDTH,
    SUMMIT_GPUS_PER_NODE,
    SUMMIT_INJECTION_BANDWIDTH,
    SUMMIT_INJECTION_LATENCY,
    SUMMIT_INJECTION_RAILS,
    SUMMIT_NODE_COUNT,
    SUMMIT_NVLINK_BANDWIDTH,
    SUMMIT_NVLINK_LATENCY,
)
from repro.machine.cpu import AMD_EPYC_7302, INTEL_XEON_E5_2650V2
from repro.machine.gpu import NVIDIA_K80, NVIDIA_V100, GpuSpec
from repro.machine.node import NodeSpec
from repro.machine.spec import SUMMIT
from repro.machine.system import System
from repro.network.link import LinkSpec

__all__ = [
    "summit_node",
    "summit_high_mem_node",
    "summit",
    "rhea",
    "andes",
    # re-exported calibration constants (defined on repro.machine.spec.SUMMIT)
    "SUMMIT_EDR_RAIL_BANDWIDTH",
    "SUMMIT_INJECTION_RAILS",
    "SUMMIT_INJECTION_BANDWIDTH",
    "SUMMIT_INJECTION_LATENCY",
    "SUMMIT_ALGORITHMIC_BANDWIDTH",
    "SUMMIT_NVLINK_BANDWIDTH",
    "SUMMIT_NVLINK_LATENCY",
    "SUMMIT_NODE_COUNT",
    "SUMMIT_GPUS_PER_NODE",
    "GPFS_AGGREGATE_READ_BANDWIDTH",
    "GPFS_AGGREGATE_WRITE_BANDWIDTH",
    "GPFS_PER_CLIENT_BANDWIDTH",
    "GPFS_CAPACITY_BYTES",
    "NVME_CAPACITY_BYTES",
    "NVME_READ_BANDWIDTH",
    "NVME_WRITE_BANDWIDTH",
    "NVME_AGGREGATE_READ_BANDWIDTH",
]


def summit_node() -> NodeSpec:
    """An original Summit AC922 node: 2 x POWER9 + 6 x V100, 512 GB DDR,
    96 GB HBM2 aggregate, 1.6 TB NVMe, dual-rail EDR — built straight from
    the registry spec."""
    return SUMMIT.node()


def summit_high_mem_node() -> NodeSpec:
    """A Summer-2020 "high memory" node: 192 GB HBM2, 2 TB DDR4, 6.4 TB NVMe.

    The doubled HBM is modelled by doubling the per-GPU memory (32 GB V100s).
    """
    big_v100 = GpuSpec(
        name="NVIDIA Tesla V100 (32 GB)",
        peak_flops=NVIDIA_V100.peak_flops,
        memory_bytes=32 * units.GIB,
        memory_bandwidth=NVIDIA_V100.memory_bandwidth,
        nvlink_bandwidth=NVIDIA_V100.nvlink_bandwidth,
    )
    return NodeSpec(
        name="IBM AC922 (Summit high-mem)",
        cpus=SUMMIT.cpus,
        cpu_count=SUMMIT.cpu_count,
        gpus=big_v100,
        gpu_count=SUMMIT.gpus_per_node,
        host_memory_bytes=2 * units.TB,
        nvme_bytes=4 * SUMMIT.nvme_capacity_bytes,
        nvme_read_bandwidth=4 * SUMMIT.nvme_read_bandwidth,
        nvme_write_bandwidth=4 * SUMMIT.nvme_write_bandwidth,
        injection_bandwidth=SUMMIT.injection_bandwidth,
        tags=frozenset({"gpu", "nvme", "high-mem"}),
    )


def summit(include_high_mem: bool = True) -> System:
    """The full Summit system: 4 608 original nodes (+54 high-memory nodes).

    >>> s = summit()
    >>> round(s.peak_flops() / 1e18, 2)   # "over 3 AI-ExaOps"
    3.5
    """
    extras = ((summit_high_mem_node(), 54),) if include_high_mem else ()
    return SUMMIT.system(extra_partitions=extras)


def rhea() -> System:
    """Rhea, the original companion analysis cluster (retired late 2020)."""
    cpu_node = NodeSpec(
        name="Rhea CPU node",
        cpus=INTEL_XEON_E5_2650V2,
        cpu_count=2,
        gpus=None,
        gpu_count=0,
        host_memory_bytes=128 * units.GIB,
        nvme_bytes=0.0,
        nvme_read_bandwidth=0.0,
        nvme_write_bandwidth=0.0,
        injection_bandwidth=7 * units.GB,
    )
    gpu_node = NodeSpec(
        name="Rhea GPU node",
        cpus=INTEL_XEON_E5_2650V2,
        cpu_count=2,
        gpus=NVIDIA_K80,
        gpu_count=2,
        host_memory_bytes=1 * units.TIB,
        nvme_bytes=0.0,
        nvme_read_bandwidth=0.0,
        nvme_write_bandwidth=0.0,
        injection_bandwidth=7 * units.GB,
    )
    return System(
        name="Rhea",
        node=cpu_node,
        node_count=512,
        interconnect=LinkSpec(latency=1.3 * units.US, bandwidth=7 * units.GB),
        shared_fs=SUMMIT.shared_fs,
        extra_partitions=((gpu_node, 9),),
        fabric_levels=2,
    )


def andes() -> System:
    """Andes, Rhea's late-2020 replacement (704 nodes, EPYC), keeping Rhea's
    nine K80 GPU nodes."""
    cpu_node = NodeSpec(
        name="Andes CPU node",
        cpus=AMD_EPYC_7302,
        cpu_count=2,
        gpus=None,
        gpu_count=0,
        host_memory_bytes=256 * units.GIB,
        nvme_bytes=0.0,
        nvme_read_bandwidth=0.0,
        nvme_write_bandwidth=0.0,
        injection_bandwidth=12.5 * units.GB,
    )
    gpu_node = NodeSpec(
        name="Andes GPU node (ex-Rhea)",
        cpus=INTEL_XEON_E5_2650V2,
        cpu_count=2,
        gpus=NVIDIA_K80,
        gpu_count=2,
        host_memory_bytes=1 * units.TIB,
        nvme_bytes=0.0,
        nvme_read_bandwidth=0.0,
        nvme_write_bandwidth=0.0,
        injection_bandwidth=7 * units.GB,
    )
    return System(
        name="Andes",
        node=cpu_node,
        node_count=695,
        interconnect=LinkSpec(latency=1.3 * units.US, bandwidth=12.5 * units.GB),
        shared_fs=SUMMIT.shared_fs,
        extra_partitions=((gpu_node, 9),),
        fabric_levels=2,
    )
