"""Tests for the NAS (hyperparameter evolution) and MSM analysis case studies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workflows.case_analysis import (
    MsmResult,
    TrajectoryAnalysis,
    two_state_toy_trajectory,
)
from repro.workflows.case_nas import (
    ACTIVATION_CHOICES,
    DEPTH_CHOICES,
    GENOME_LENGTH,
    HyperparameterSearch,
    LR_CHOICES,
    WIDTH_CHOICES,
    decode,
)


class TestDecode:
    def test_decodes_all_fields(self):
        params = decode(np.array([0, 1, 1, 2]))
        assert params["depth"] == DEPTH_CHOICES[0]
        assert params["width"] == WIDTH_CHOICES[1]
        assert params["activation"] == ACTIVATION_CHOICES[1]
        assert params["lr"] == LR_CHOICES[2]

    def test_indices_wrap(self):
        params = decode(np.array([7, 7, 7, 7]))
        assert params["depth"] in DEPTH_CHOICES
        assert params["activation"] in ACTIVATION_CHOICES

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            decode(np.array([0, 1]))


class TestHyperparameterSearch:
    @pytest.fixture(scope="class")
    def result(self):
        search = HyperparameterSearch(seed=0, train_epochs=25)
        return search.run(population=8, generations=3)

    def test_finds_accurate_configuration(self, result):
        assert result.best_accuracy > 0.9

    def test_at_least_matches_random_search(self, result):
        assert result.best_accuracy >= result.random_search_accuracy - 0.02

    def test_evaluation_budget_counted(self, result):
        # 8 x 3 GA evaluations plus the equal-budget random baseline
        assert result.evaluations == 2 * 8 * 3

    def test_history_monotone_best(self, result):
        best = np.maximum.accumulate(result.history)
        assert result.best_accuracy == pytest.approx(best[-1])

    def test_best_hyperparameters_valid(self, result):
        hp = result.best_hyperparameters
        assert hp["depth"] in DEPTH_CHOICES
        assert hp["width"] in WIDTH_CHOICES

    def test_evaluate_is_deterministic(self):
        search = HyperparameterSearch(seed=3, train_epochs=10)
        genome = np.array([1, 2, 0, 1])
        assert search.evaluate(genome) == search.evaluate(genome)

    def test_campaign_graph_parallelises_generations(self):
        graph = HyperparameterSearch.campaign_graph(population=8, generations=3)
        run = graph.execute()
        # within a generation all evaluations run concurrently
        assert run.makespan < 0.2 * graph.serial_time()
        assert run.critical_path(graph)[-1] == "select-2"

    def test_tiny_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperparameterSearch(n_train=5)


class TestTwoStateTrajectory:
    def test_shapes(self):
        frames, states = two_state_toy_trajectory(n_frames=500, seed=0)
        assert frames.shape == (500, 8)
        assert states.shape == (500,)

    def test_both_states_visited(self):
        _, states = two_state_toy_trajectory(n_frames=2000, seed=1)
        assert set(np.unique(states)) == {0, 1}

    def test_switch_rate_near_request(self):
        _, states = two_state_toy_trajectory(
            n_frames=5000, switch_probability=0.05, seed=2
        )
        switches = (states[1:] != states[:-1]).mean()
        assert switches == pytest.approx(0.05, abs=0.015)

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            two_state_toy_trajectory(switch_probability=0.0)


class TestTrajectoryAnalysis:
    @pytest.fixture(scope="class")
    def msm(self) -> tuple[MsmResult, np.ndarray]:
        frames, truth = two_state_toy_trajectory(n_frames=2000, seed=1)
        result = TrajectoryAnalysis(n_states=2, seed=1).run(frames, lag=2)
        return result, truth

    def test_transition_matrix_stochastic(self, msm):
        result, _ = msm
        assert np.allclose(result.transition_matrix.sum(axis=1), 1.0)
        assert (result.transition_matrix >= 0).all()

    def test_leading_eigenvalue_is_one(self, msm):
        result, _ = msm
        eigenvalues = np.linalg.eigvals(result.transition_matrix)
        assert np.max(np.abs(eigenvalues)) == pytest.approx(1.0, abs=1e-9)

    def test_stationary_matches_occupancy(self, msm):
        result, _ = msm
        assert np.allclose(result.stationary, result.occupancy, atol=0.05)

    def test_states_recover_ground_truth(self, msm):
        result, truth = msm
        # cluster labels match true states up to permutation
        agreement = max(
            (result.labels == truth).mean(),
            (result.labels == 1 - truth).mean(),
        )
        assert agreement > 0.95

    def test_metastability_gives_long_timescale(self, msm):
        result, _ = msm
        # switching every ~50 frames -> slowest implied timescale >> lag
        assert result.implied_timescales.max() > 5

    def test_diagonal_dominance_for_metastable_system(self, msm):
        result, _ = msm
        t = result.transition_matrix
        assert (np.diag(t) > 0.8).all()

    def test_validate_catches_bad_matrix(self, msm):
        result, _ = msm
        broken = MsmResult(
            n_states=2,
            transition_matrix=np.array([[0.5, 0.4], [0.5, 0.5]]),
            stationary=result.stationary,
            occupancy=result.occupancy,
            implied_timescales=result.implied_timescales,
            labels=result.labels,
        )
        with pytest.raises(ConfigurationError):
            broken.validate()

    def test_short_trajectory_rejected(self):
        with pytest.raises(ConfigurationError):
            TrajectoryAnalysis(n_states=4).run(np.zeros((8, 4)))

    def test_bad_lag_rejected(self):
        frames, _ = two_state_toy_trajectory(n_frames=100, seed=0)
        with pytest.raises(ConfigurationError):
            TrajectoryAnalysis(n_states=2).run(frames, lag=0)

    def test_md_trajectory_end_to_end(self):
        """The full pipeline on a real MD trajectory (frames from the
        Lennard-Jones engine), as the Biology projects run it."""
        from repro.science.md import LennardJonesMD, lattice_state

        md = LennardJonesMD(
            lattice_state(4, density=0.4, temperature=0.5, seed=7), dt=0.002
        )
        frames = md.sample_trajectory(
            60, steps_per_frame=5, temperature=0.6, seed=7
        )
        result = TrajectoryAnalysis(n_components=3, n_states=3, seed=7).run(
            frames, lag=1
        )
        result.validate()
        assert result.labels.shape == (60,)
