"""Tests for the resilience subsystem: engine interrupts, failure injection,
retry policies, checkpoint-restart simulation, Young/Daly validation, the
fault-aware DAG executor and batch scheduler, and the goodput wiring."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.resilience import (
    FailureInjector,
    NodeFailureModel,
    ResilienceReport,
    RetryPolicy,
    simulate_checkpoint_restart,
    validate_young_daly,
)
from repro.scheduler import FaultModel, Job, Scheduler
from repro.sim import Engine, Interrupt, Resource, Timeout
from repro.storage.checkpoint import CheckpointPlan
from repro.workflows.dag import TaskGraph, _attempt_timeline
from repro.workflows.facility import Facility

YEAR = 365 * 24 * 3600.0


# -- engine interrupts --------------------------------------------------------------


class TestInterrupt:
    def test_interrupt_during_timeout_is_catchable(self):
        eng = Engine()
        seen = []

        def victim():
            try:
                yield Timeout(10.0)
            except Interrupt as intr:
                seen.append((eng.now, intr.cause))
                yield Timeout(1.0)
            return "recovered"

        def killer(proc):
            yield Timeout(3.0)
            proc.interrupt("node died")

        proc = eng.spawn(victim())
        eng.spawn(killer(proc))
        eng.run()
        assert seen == [(3.0, "node died")]
        assert proc.result == "recovered"
        assert proc.finished_at == 4.0

    def test_uncaught_interrupt_kills_process_and_wakes_waiters(self):
        eng = Engine()

        def victim():
            yield Timeout(10.0)

        def parent(child):
            value = yield child
            return ("saw", value)

        def killer(proc):
            yield Timeout(2.0)
            proc.interrupt()

        child = eng.spawn(victim())
        par = eng.spawn(parent(child))
        eng.spawn(killer(child))
        eng.run()
        assert child.killed and child.finished
        assert par.result == ("saw", None)

    def test_interrupt_finished_process_is_noop(self):
        eng = Engine()

        def quick():
            yield Timeout(1.0)

        proc = eng.spawn(quick())
        eng.run()
        assert proc.interrupt() is False

    def test_interrupt_while_queued_on_resource_unblocks_others(self):
        eng = Engine()
        pool = Resource(eng, capacity=2)
        got = {}

        def holder():
            yield pool.acquire(2)
            yield Timeout(5.0)
            pool.release(2)

        def wide():
            try:
                yield pool.acquire(2)
                pool.release(2)
            except Interrupt:
                got["wide"] = eng.now

        def narrow():
            yield pool.acquire(1)
            got["narrow"] = eng.now
            pool.release(1)

        def killer(proc):
            yield Timeout(1.0)
            proc.interrupt()

        eng.spawn(holder())
        wide_proc = eng.spawn(wide())
        eng.spawn(narrow())
        eng.spawn(killer(wide_proc))
        eng.run()
        assert got["wide"] == 1.0
        assert got["narrow"] == 5.0  # wide's queue slot no longer gates it

    def test_stale_timeout_after_interrupt_never_fires(self):
        eng = Engine()
        fired = []

        def victim():
            try:
                yield Timeout(10.0)
                fired.append("timeout")
            except Interrupt:
                fired.append("interrupt")

        def killer(proc):
            yield Timeout(1.0)
            proc.interrupt()

        proc = eng.spawn(victim())
        eng.spawn(killer(proc))
        eng.run()
        assert fired == ["interrupt"]
        assert proc.finished_at == 1.0
        assert eng.now == 1.0  # the 10 s event was cancelled, not drained


# -- failure models and injection ---------------------------------------------------


class TestNodeFailureModel:
    def test_system_mtbf_shrinks_linearly(self):
        model = NodeFailureModel(node_mtbf_seconds=5 * YEAR)
        assert model.system_mtbf(1) == 5 * YEAR
        assert model.system_mtbf(4600) == pytest.approx(5 * YEAR / 4600)

    def test_expected_failures(self):
        model = NodeFailureModel(node_mtbf_seconds=100.0)
        assert model.expected_failures(10, 50.0) == pytest.approx(5.0)

    def test_draw_failure_times_deterministic(self):
        import numpy as np

        model = NodeFailureModel(node_mtbf_seconds=1000.0)
        a = model.draw_failure_times(10, 5000.0, np.random.default_rng(7))
        b = model.draw_failure_times(10, 5000.0, np.random.default_rng(7))
        assert a == b
        assert all(0 <= t < 5000.0 for t in a)
        assert a == sorted(a)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeFailureModel(node_mtbf_seconds=0.0)
        with pytest.raises(ConfigurationError):
            NodeFailureModel(1.0).system_mtbf(0)


class TestFailureInjector:
    def test_injects_and_interrupts_victim(self):
        eng = Engine()
        hits = []

        def victim():
            done = 0.0
            while done < 100.0:
                start = eng.now
                try:
                    yield Timeout(100.0 - done)
                    done = 100.0
                except Interrupt as intr:
                    hits.append(intr.cause.time)
                    done += eng.now - start  # keep partial progress
            return done

        proc = eng.spawn(victim())
        injector = FailureInjector(
            eng, NodeFailureModel(node_mtbf_seconds=20.0), seed=0
        )
        injector.attach(proc, n_nodes=1)
        eng.run()
        assert proc.result == 100.0
        assert hits == [e.time for e in injector.events]
        assert len(hits) >= 1

    def test_same_seed_same_failure_times(self):
        def run(seed):
            eng = Engine()

            def victim():
                yield Timeout(500.0)

            proc = eng.spawn(victim())
            injector = FailureInjector(
                eng, NodeFailureModel(node_mtbf_seconds=50.0), seed=seed
            )
            injector.attach(proc, n_nodes=1)
            eng.run()
            return [e.time for e in injector.events]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_injector_stops_when_target_finishes(self):
        eng = Engine()

        def victim():
            try:
                yield Timeout(1.0)
            except Interrupt:
                pass

        proc = eng.spawn(victim())
        FailureInjector(
            eng, NodeFailureModel(node_mtbf_seconds=1e12), seed=0
        ).attach(proc, n_nodes=1)
        eng.run()
        # the sentinel kills the injector at t=1; the clock never advances
        # to the injector's (astronomically far) next draw
        assert eng.now == 1.0


# -- retry policy ------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            backoff_base=10.0, backoff_factor=2.0, backoff_max=35.0,
            jitter_fraction=0.0,
        )
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 20.0
        assert policy.delay(3) == 35.0  # capped
        assert policy.delay(10) == 35.0

    def test_jitter_bounded_and_deterministic(self):
        import numpy as np

        policy = RetryPolicy(backoff_base=100.0, jitter_fraction=0.25)
        delays = [
            policy.delay(1, np.random.default_rng(s)) for s in range(50)
        ]
        assert all(75.0 <= d <= 125.0 for d in delays)
        assert policy.delay(1, np.random.default_rng(0)) == delays[0]

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)


# -- checkpoint-restart simulation -------------------------------------------------


class TestRestartSimulation:
    def test_failure_free_run_pays_only_checkpoint_writes(self):
        stats = simulate_checkpoint_restart(
            work_seconds=1000.0, interval=100.0, write_time=2.0,
            n_nodes=1, node_mtbf_seconds=1e15, seed=0,
        )
        # 9 interior checkpoints (none after the final segment)
        assert stats.n_checkpoints == 9
        assert stats.wall_seconds == 1000.0 + 9 * 2.0
        assert stats.n_failures == 0
        assert stats.lost_seconds == 0.0
        assert stats.goodput_fraction == pytest.approx(1000.0 / 1018.0)

    def test_failures_cost_wall_clock_but_work_completes(self):
        stats = simulate_checkpoint_restart(
            work_seconds=2000.0, interval=100.0, write_time=1.0,
            n_nodes=4, node_mtbf_seconds=2000.0, seed=1,
        )
        assert stats.n_failures > 0
        assert stats.lost_seconds > 0
        assert stats.wall_seconds > stats.work_seconds
        assert 0.0 < stats.overhead_fraction < 1.0

    def test_deterministic_in_seed(self):
        kwargs = dict(
            work_seconds=3000.0, interval=150.0, write_time=2.0,
            n_nodes=8, node_mtbf_seconds=4000.0,
        )
        a = simulate_checkpoint_restart(seed=11, **kwargs)
        b = simulate_checkpoint_restart(seed=11, **kwargs)
        c = simulate_checkpoint_restart(seed=12, **kwargs)
        assert a == b
        assert a != c

    def test_validation_of_arguments(self):
        with pytest.raises(ConfigurationError):
            simulate_checkpoint_restart(0.0, 1.0, 0.1, 1, 100.0)
        with pytest.raises(ConfigurationError):
            simulate_checkpoint_restart(10.0, 0.0, 0.1, 1, 100.0)
        with pytest.raises(ConfigurationError):
            simulate_checkpoint_restart(10.0, 1.0, -0.1, 1, 100.0)


class TestYoungDalyValidation:
    def test_summit_scale_point_within_tolerance(self):
        plan = CheckpointPlan(
            state_bytes_per_node=100e9, n_nodes=4600,
            node_mtbf_seconds=5 * YEAR,
        )
        result = validate_young_daly(plan, write_time=48.0, seed=0)
        assert result.within_tolerance, result.summary()

    def test_grid_of_mtbf_and_write_time_points(self):
        """Satellite: empirical simulation reproduces Young's optimum within
        20 % across a grid of (MTBF, write-time) points."""
        for node_mtbf_years in (2.0, 5.0):
            for write_time in (15.0, 60.0, 240.0):
                plan = CheckpointPlan(
                    state_bytes_per_node=1e9,  # unused by the validator path
                    n_nodes=4096,
                    node_mtbf_seconds=node_mtbf_years * YEAR,
                )
                result = validate_young_daly(plan, write_time=write_time, seed=0)
                assert result.within_tolerance, (
                    f"MTBF {node_mtbf_years} y, write {write_time} s: "
                    + result.summary()
                )

    def test_off_optimal_interval_also_validated(self):
        plan = CheckpointPlan(
            state_bytes_per_node=1e9, n_nodes=1024,
            node_mtbf_seconds=5 * YEAR,
        )
        tau = 2.0 * plan.optimal_interval(60.0)
        result = validate_young_daly(plan, write_time=60.0, interval=tau, seed=0)
        assert result.within_tolerance, result.summary()
        # and the off-optimal overhead exceeds the optimal one analytically
        assert plan.overhead_fraction(60.0, tau) > plan.overhead_fraction(60.0)

    def test_out_of_regime_rejected(self):
        plan = CheckpointPlan(
            state_bytes_per_node=1e9, n_nodes=4096,
            node_mtbf_seconds=30 * 24 * 3600.0,  # system MTBF ~= 10.5 min
        )
        with pytest.raises(ConfigurationError):
            validate_young_daly(plan, write_time=300.0)


# -- DAG executor under failures ---------------------------------------------------


def _facilities():
    return {"hpc": Facility(name="HPC", nodes=16, speed=1.0)}


def _graph(rate=0.0, ckpt=None, write=0.0):
    graph = TaskGraph(_facilities())
    graph.add_task("prep", 50.0, "hpc", nodes=2)
    graph.add_task(
        "train", 400.0, "hpc", nodes=8, deps=("prep",),
        failure_rate=rate, checkpoint_interval=ckpt,
        checkpoint_write_time=write,
    )
    graph.add_task("analyze", 30.0, "hpc", nodes=4, deps=("train",))
    return graph


class TestAttemptTimeline:
    def test_no_checkpoint_success(self):
        assert _attempt_timeline(100.0, None, 0.0, 1e30) == (100.0, 100.0, 0, True)

    def test_no_checkpoint_failure_loses_everything(self):
        wall, gained, writes, completed = _attempt_timeline(100.0, None, 0.0, 40.0)
        assert (wall, gained, writes, completed) == (40.0, 0.0, 0, False)

    def test_checkpointed_failure_keeps_committed_work(self):
        # two 30 s segments commit (with 2 s writes) before the failure at 70
        wall, gained, writes, completed = _attempt_timeline(100.0, 30.0, 2.0, 70.0)
        assert not completed
        assert gained == 60.0
        assert writes == 2
        assert wall == 70.0

    def test_failure_during_write_loses_segment(self):
        # first segment done at 30, write spans [30, 32): failure at 31
        wall, gained, writes, completed = _attempt_timeline(100.0, 30.0, 2.0, 31.0)
        assert not completed
        assert gained == 0.0
        assert writes == 0

    def test_success_pays_interior_writes_only(self):
        wall, gained, writes, completed = _attempt_timeline(90.0, 30.0, 2.0, 1e30)
        assert completed
        assert gained == 90.0
        assert writes == 2  # no write after the final segment
        assert wall == 90.0 + 4.0


class TestDagFailures:
    def test_fault_free_run_matches_seed_executor_exactly(self):
        run = _graph().execute()
        assert run.makespan == 480.0
        assert run.start_times == {"prep": 0.0, "train": 50.0, "analyze": 450.0}
        assert run.n_failures == 0
        assert run.lost_seconds == 0.0
        assert run.n_retries == 0
        assert run.attempts == {"prep": 1, "train": 1, "analyze": 1}

    def test_failures_retries_and_recovery(self):
        run = _graph(rate=1 / 200.0, ckpt=50.0, write=1.0).execute(
            retry=RetryPolicy(max_attempts=30), seed=5
        )
        assert set(run.end_times) == {"prep", "train", "analyze"}
        assert run.makespan > 480.0
        assert run.n_failures >= 1
        assert run.n_retries == run.n_failures
        assert run.attempts["train"] == run.n_failures + 1
        assert run.trace.count("failure") == run.n_failures
        assert run.trace.count("retry") == run.n_failures

    def test_checkpointing_beats_cold_restart(self):
        policy = RetryPolicy(max_attempts=100, jitter_fraction=0.0)
        cold = _graph(rate=1 / 150.0).execute(retry=policy, seed=2)
        warm = _graph(rate=1 / 150.0, ckpt=40.0).execute(retry=policy, seed=2)
        # identical failure draws; checkpointed task loses less work
        assert warm.makespan <= cold.makespan
        assert warm.lost_seconds <= cold.lost_seconds

    def test_retry_budget_exhaustion_raises(self):
        graph = _graph(rate=1.0)  # one failure per second: doomed
        with pytest.raises(SimulationError, match="retry budget"):
            graph.execute(retry=RetryPolicy(max_attempts=2), seed=0)

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            _graph(rate=-1.0)
        with pytest.raises(ConfigurationError):
            _graph(rate=0.1, ckpt=0.0)
        with pytest.raises(ConfigurationError):
            _graph(rate=0.1, ckpt=10.0, write=-1.0)


# -- scheduler under failures ------------------------------------------------------


def _jobs():
    return [
        Job("wide", nodes=3000, duration=30000.0, submit_time=0.0, uses_ai=True),
        Job("mid", nodes=1024, duration=20000.0, submit_time=50.0),
        Job("small", nodes=128, duration=4000.0, submit_time=100.0),
    ]


class TestSchedulerFaults:
    def test_fault_free_results_identical_with_and_without_module(self):
        base = Scheduler(4608).run(_jobs())
        assert base.n_failures == 0
        assert base.lost_node_hours == 0.0
        assert base.abandoned == ()
        assert base.goodput_fraction == 1.0

    def test_failures_requeue_and_account_lost_work(self):
        faults = FaultModel(
            node_mtbf_seconds=2 * YEAR, checkpoint_interval=3600.0, seed=0
        )
        base = Scheduler(4608).run(_jobs())
        result = Scheduler(4608).run(_jobs(), faults=faults)
        assert result.n_failures > 0
        assert result.n_requeues > 0
        assert result.lost_node_hours > 0.0
        assert result.makespan > base.makespan
        assert result.goodput_fraction < 1.0
        # all jobs still finish their full useful work
        assert result.delivered_node_hours == pytest.approx(
            base.delivered_node_hours
        )

    def test_deterministic_in_seed(self):
        faults = FaultModel(node_mtbf_seconds=1 * YEAR, seed=9)
        a = Scheduler(4608).run(_jobs(), faults=faults)
        b = Scheduler(4608).run(_jobs(), faults=faults)
        assert a.makespan == b.makespan
        assert a.n_failures == b.n_failures
        assert a.end_times == b.end_times

    def test_checkpointing_reduces_lost_work(self):
        cold = FaultModel(node_mtbf_seconds=0.5 * YEAR, seed=2)
        warm = FaultModel(
            node_mtbf_seconds=0.5 * YEAR, checkpoint_interval=1800.0, seed=2
        )
        lost_cold = Scheduler(4608).run(_jobs(), faults=cold).lost_node_hours
        lost_warm = Scheduler(4608).run(_jobs(), faults=warm).lost_node_hours
        assert lost_warm <= lost_cold

    def test_hopeless_mtbf_abandons_jobs(self):
        faults = FaultModel(
            node_mtbf_seconds=30 * 24 * 3600.0, max_requeues=2, seed=0
        )
        result = Scheduler(4608).run(_jobs(), faults=faults)
        assert result.abandoned  # the wide long job cannot survive
        assert result.goodput_fraction < 1.0

    def test_fault_model_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(node_mtbf_seconds=0.0)
        with pytest.raises(ConfigurationError):
            FaultModel(checkpoint_interval=-1.0)
        with pytest.raises(ConfigurationError):
            FaultModel(max_requeues=-1)


# -- report and goodput wiring ------------------------------------------------------


class TestResilienceReport:
    def test_metrics(self):
        report = ResilienceReport(
            name="job", n_nodes=100, node_mtbf_seconds=100 * 3600.0,
            wall_seconds=1100.0, useful_seconds=1000.0,
            n_failures=2, n_checkpoints=9, checkpoint_seconds=40.0,
            lost_seconds=60.0, analytical_overhead=0.1,
        )
        assert report.overhead_fraction == pytest.approx(100.0 / 1100.0)
        assert report.goodput_fraction == pytest.approx(1000.0 / 1100.0)
        assert report.lost_node_hours == pytest.approx(60.0 * 100 / 3600.0)
        assert report.system_mtbf == 3600.0
        assert report.matches_analytical(tolerance=0.2)

    def test_format_mentions_key_numbers(self):
        report = ResilienceReport(
            name="demo", n_nodes=4600, node_mtbf_seconds=5 * YEAR,
            wall_seconds=2000.0, useful_seconds=1900.0,
            analytical_overhead=0.05, raw_flops=1.5e18,
        )
        text = report.format()
        assert "demo" in text
        assert "goodput" in text
        assert "Young/Daly" in text
        assert "PFLOP/s" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceReport(
                name="bad", n_nodes=1, node_mtbf_seconds=1.0,
                wall_seconds=10.0, useful_seconds=20.0,
            )
        plain = ResilienceReport(
            name="no-analytic", n_nodes=1, node_mtbf_seconds=1.0,
            wall_seconds=10.0, useful_seconds=10.0,
        )
        with pytest.raises(ConfigurationError):
            plain.matches_analytical()


class TestGoodput:
    def test_goodput_below_raw_and_validated(self):
        from repro.apps.extreme_scale import get_app

        report = get_app("laanait").resilience_report(seed=0)
        assert report.n_nodes == 4600
        assert report.n_failures > 0
        raw = report.raw_flops
        goodput = report.goodput_flops
        assert raw is not None and goodput is not None
        assert 0.8 * raw < goodput < raw
        assert report.matches_analytical(tolerance=0.2)

    def test_shared_fs_overhead_exceeds_nvme(self):
        from repro.apps.extreme_scale import get_app

        app = get_app("kurth")
        nvme = app.resilience_report(tier="nvme", empirical=False)
        shared = app.resilience_report(tier="shared_fs", empirical=False)
        assert shared.analytical_overhead is not None
        assert nvme.analytical_overhead is not None
        assert shared.analytical_overhead > nvme.analytical_overhead

    def test_analytic_only_report_is_self_consistent(self):
        from repro.apps.extreme_scale import get_app

        report = get_app("khan").resilience_report(empirical=False)
        assert report.analytical_overhead == pytest.approx(
            report.overhead_fraction, rel=1e-6
        )


class TestCliResilience:
    def test_resilience_command(self, capsys):
        from repro.cli import main

        assert main(["resilience", "--app", "khan", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ResilienceReport" in out
        assert "Young/Daly" in out
        assert "matches" in out

    def test_resilience_analytic_only(self, capsys):
        from repro.cli import main

        assert main(["resilience", "--analytic-only"]) == 0
        out = capsys.readouterr().out
        assert "expected goodput" in out
        assert "matches" not in out

    def test_unknown_app_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["resilience", "--app", "alexnet"])
