"""GPU specifications.

The central figure for the paper is the NVIDIA Tesla V100's tensor-core
mixed-precision peak of 125 TFLOP/s: six V100s per node over 4 608 nodes is
what gives Summit its "over 3 AI-ExaOps" headline (Section I).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


class Precision(enum.Enum):
    """Arithmetic precision classes used in performance accounting."""

    FP64 = "fp64"
    FP32 = "fp32"
    MIXED = "mixed"  # FP16 tensor-core with FP32 accumulate


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU model.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"NVIDIA Tesla V100"``.
    peak_flops:
        Peak FLOP/s per precision class.
    memory_bytes:
        On-device (HBM) capacity in bytes.
    memory_bandwidth:
        Peak device-memory bandwidth in bytes/s.
    nvlink_bandwidth:
        Per-direction NVLink bandwidth available to the device in bytes/s
        (0 for PCIe-only parts).
    """

    name: str
    peak_flops: dict[Precision, float]
    memory_bytes: float
    memory_bandwidth: float
    nvlink_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if not self.peak_flops:
            raise ConfigurationError("peak_flops must list at least one precision")
        for precision, flops in self.peak_flops.items():
            if flops <= 0:
                raise ConfigurationError(
                    f"{self.name}: non-positive peak for {precision}: {flops}"
                )
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: memory spec must be positive")

    def peak(self, precision: Precision = Precision.MIXED) -> float:
        """Peak FLOP/s at ``precision``, falling back to FP32 if the class is
        not natively supported (a GPU without tensor cores runs mixed work at
        its FP32 rate)."""
        if precision in self.peak_flops:
            return self.peak_flops[precision]
        if precision is Precision.MIXED and Precision.FP32 in self.peak_flops:
            return self.peak_flops[Precision.FP32]
        raise ConfigurationError(f"{self.name}: no peak known for {precision}")


#: Summit's GPU: 16 GB HBM2 (the paper counts 6 x 16 GB = 96 GB per node).
NVIDIA_V100 = GpuSpec(
    name="NVIDIA Tesla V100",
    peak_flops={
        Precision.FP64: 7.8 * units.TFLOPS,
        Precision.FP32: 15.7 * units.TFLOPS,
        Precision.MIXED: 125.0 * units.TFLOPS,
    },
    memory_bytes=16 * units.GIB,
    memory_bandwidth=900 * units.GB,
    nvlink_bandwidth=50 * units.GB,
)

#: Rhea GPU-partition accelerator (pre-tensor-core; no MIXED entry on purpose).
NVIDIA_K80 = GpuSpec(
    name="NVIDIA Tesla K80",
    peak_flops={
        Precision.FP64: 2.91 * units.TFLOPS,
        Precision.FP32: 8.73 * units.TFLOPS,
    },
    memory_bytes=24 * units.GIB,
    memory_bandwidth=480 * units.GB,
)

# -- non-Summit accelerators for the MachineSpec registry ----------------------
# Values below are vendor datasheet numbers, not paper-stated calibrations;
# every MachineSpec built from them carries provenance class "estimated".

#: Frontier's accelerator, treated as one device (both GCDs): 383 TFLOP/s
#: matrix FP16, 128 GB HBM2e.
AMD_MI250X = GpuSpec(
    name="AMD Instinct MI250X",
    peak_flops={
        Precision.FP64: 47.9 * units.TFLOPS,
        Precision.FP32: 47.9 * units.TFLOPS,
        Precision.MIXED: 383.0 * units.TFLOPS,
    },
    memory_bytes=128 * units.GIB,
    memory_bandwidth=3.2 * units.TB,
    nvlink_bandwidth=100 * units.GB,  # Infinity Fabric between packages
)

#: Perlmutter's accelerator (40 GB SXM variant): 312 TFLOP/s dense tensor.
NVIDIA_A100 = GpuSpec(
    name="NVIDIA A100 (40 GB)",
    peak_flops={
        Precision.FP64: 9.7 * units.TFLOPS,
        Precision.FP32: 19.5 * units.TFLOPS,
        Precision.MIXED: 312.0 * units.TFLOPS,
    },
    memory_bytes=40 * units.GB,
    memory_bandwidth=1.555 * units.TB,
    nvlink_bandwidth=100 * units.GB,  # NVLink 3 per-direction link pair
)

#: Abstract TPU-class accelerator for the ``tpu-pod-like`` machine: bf16
#: systolic peak with a modest non-matrix vector rate.
TPU_V4_LIKE = GpuSpec(
    name="TPU-v4-like accelerator",
    peak_flops={
        Precision.FP32: 68.75 * units.TFLOPS,
        Precision.MIXED: 275.0 * units.TFLOPS,
    },
    memory_bytes=32 * units.GIB,
    memory_bandwidth=1.2 * units.TB,
)
