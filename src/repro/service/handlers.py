"""Deterministic job handlers the campaign service dispatches to.

A handler is a pure function ``(params, seed) -> JSON value``: same inputs,
same output, every time, on every worker. That purity is what makes the
service's crash-recovery guarantee checkable — a job requeued after a
worker SIGKILL recomputes to *exactly* the bytes the dead worker would have
produced, so an interrupted campaign's final result set is byte-identical
to an uninterrupted run. It is also what lets completed results live in the
shared :class:`~repro.exec.cache.ResultCache` as a memoization tier.

Handlers round float results through a fixed decimal precision so the JSON
wire encoding (the service's at-rest and on-the-wire format) is canonical.

The ``chaos:*`` handlers exist for the fault-injection harness: ``sleep``
holds a lease for a controlled time, ``flaky`` fails deterministically on
its first N attempts — exercising the requeue/attempt accounting paths.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError, SimulationError

__all__ = ["HANDLERS", "get_handler", "run_job"]


def _round(value: float, places: int = 9) -> float:
    return float(round(float(value), places))


def _h_docking(params: dict[str, Any], seed: int) -> Any:
    """Score one batch of a Section V virtual-screening campaign."""
    from repro.science.docking import CompoundLibrary, DockingOracle

    n_compounds = int(params.get("n_compounds", 64))
    library = CompoundLibrary.random(n_compounds, seed=seed)
    oracle = DockingOracle(seed=seed)
    scores = oracle.docking_score(library.genomes)
    best = int(np.argmax(scores))
    return {
        "n_compounds": n_compounds,
        "best_compound": best,
        "best_score": _round(scores[best]),
        "mean_score": _round(float(np.mean(scores))),
    }


def _h_cost_point(params: dict[str, Any], seed: int) -> Any:
    """Evaluate one Section IV-B app step-time point — the 'what does this
    model cost at N nodes' query the memoization tier exists for."""
    from repro.apps.extreme_scale import get_app

    app = get_app(str(params.get("app", "kurth")))
    nodes = int(params.get("nodes", app.peak_nodes))
    result = app.sweep_nodes([nodes])
    breakdown = {
        term: _round(result.at(0)[term]) for term in sorted(result.breakdown)
    }
    return {"app": app.key, "nodes": nodes,
            "total_seconds": _round(result.total()[0]), **breakdown}


def _h_quadrature(params: dict[str, Any], seed: int) -> Any:
    """Seeded Monte-Carlo integral — cheap, deterministic filler work."""
    n = int(params.get("n_samples", 1024))
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    return {"n_samples": n, "estimate": _round(float(np.mean(x * x)))}


def _h_sleep(params: dict[str, Any], seed: int) -> Any:
    """Hold the lease for ``seconds`` (chaos: slow-handler injection)."""
    seconds = float(params.get("seconds", 0.1))
    time.sleep(seconds)
    return {"slept_s": _round(seconds)}


def _h_flaky(params: dict[str, Any], seed: int) -> Any:
    """Fail deterministically until attempt ``fail_attempts + 1``.

    The service passes the current attempt number in ``params["attempt"]``
    when dispatching, so the failure schedule is a pure function of the
    job's retry history — the chaos harness uses it to drive requeues.
    """
    fail_attempts = int(params.get("fail_attempts", 1))
    attempt = int(params.get("attempt", 1))
    if attempt <= fail_attempts:
        raise SimulationError(
            f"flaky handler failing on attempt {attempt}/{fail_attempts}"
        )
    return {"succeeded_on_attempt": attempt}


HANDLERS: dict[str, Callable[[dict[str, Any], int], Any]] = {
    "docking": _h_docking,
    "cost_point": _h_cost_point,
    "quadrature": _h_quadrature,
    "chaos:sleep": _h_sleep,
    "chaos:flaky": _h_flaky,
}


def get_handler(name: str) -> Callable[[dict[str, Any], int], Any]:
    try:
        return HANDLERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown job handler {name!r}; "
            f"known: {', '.join(sorted(HANDLERS))}"
        ) from None


def run_job(handler: str, params: dict[str, Any], seed: int) -> Any:
    """Dispatch one job to its handler.

    >>> run_job("quadrature", {"n_samples": 256}, seed=1) == \\
    ...     run_job("quadrature", {"n_samples": 256}, seed=1)
    True
    """
    return get_handler(handler)(dict(params), seed)
