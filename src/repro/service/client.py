"""Synchronous client for the campaign service.

Thin by design: the CLI subcommands (``submit``, ``campaign-status``), the
worker loop, the chaos harness and the tests all speak through this one
class, so the wire protocol has exactly two implementations (server and
here) and one schema (:mod:`repro.service.spec`).

Robustness is the client's half of the service contract:

- **Per-request timeouts.** Every request runs under ``timeout_s``; a hung
  server surfaces as :class:`~repro.errors.ServiceError`, never a hang.
- **Typed errors.** Error envelopes re-raise as their original
  :mod:`repro.errors` class — a caller catches
  :class:`~repro.errors.Saturated` or :class:`~repro.errors.LeaseExpired`,
  not a stringly-typed dict.
- **Backoff through the shared RetryPolicy.** Transient failures —
  connection refused (server restarting), timeouts, shed load
  (``Saturated``) — are retried through ``policy.delays()``, the same
  policy the server uses for requeue accounting. When the delays iterator
  is exhausted the last error propagates; non-transient errors propagate
  immediately.
"""

from __future__ import annotations

import json
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Iterable

import repro.errors as _errors
from repro.errors import ProtocolError, ReproError, Saturated, ServiceError
from repro.resilience.retry import RetryPolicy

from repro.service.pubsub import Frame, read_frame
from repro.service.spec import CampaignSpec, JobSpec

__all__ = ["ServiceClient", "DEFAULT_CLIENT_POLICY"]

#: Client-side backoff for transient failures: quick, bounded, jitter-free
#: (determinism matters more than stampede protection on a unix socket).
DEFAULT_CLIENT_POLICY = RetryPolicy(
    max_attempts=8, backoff_base=0.05, backoff_factor=2.0,
    backoff_max=1.0, jitter_fraction=0.0, deadline_s=30.0,
)

#: Failures worth retrying: the server is restarting, slow, or shedding load.
_TRANSIENT = (
    ConnectionRefusedError, ConnectionResetError, BrokenPipeError,
    FileNotFoundError, socket.timeout, TimeoutError, Saturated,
)


def _raise_error(envelope: dict[str, Any]) -> None:
    name = envelope.get("error", "ServiceError")
    message = envelope.get("message", "service error")
    exc_type = getattr(_errors, name, None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, ReproError)):
        exc_type = ServiceError
    raise exc_type(message)


class ServiceClient:
    """One campaign server endpoint, as typed method calls."""

    def __init__(
        self,
        socket_path: str | Path,
        timeout_s: float = 10.0,
        policy: RetryPolicy = DEFAULT_CLIENT_POLICY,
        session: str | None = None,
    ):
        self.socket_path = str(socket_path)
        self.timeout_s = timeout_s
        self.policy = policy
        self.session = session or f"session-{uuid.uuid4().hex[:12]}"

    # -- wire ----------------------------------------------------------------------

    def _request_once(self, payload: dict[str, Any]) -> dict[str, Any]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout_s)
            sock.connect(self.socket_path)
            sock.sendall(
                json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8") + b"\n"
            )
            chunks: list[bytes] = []
            while True:
                chunk = sock.recv(1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        raw = b"".join(chunks)
        if not raw:
            raise ConnectionResetError("server closed the connection")
        try:
            response = json.loads(raw.decode("utf-8"))
            if not isinstance(response, dict):
                raise ValueError
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError("malformed response from server") from None
        if not response.get("ok", False):
            _raise_error(response)
        return response

    def request(
        self, op: str, retry_transient: bool = True, **payload: Any
    ) -> dict[str, Any]:
        """One round-trip; transient failures back off through the policy."""
        body = {"op": op, **payload}
        if not retry_transient:
            return self._request_once(body)
        delays = self.policy.delays()
        while True:
            try:
                return self._request_once(body)
            except _TRANSIENT as exc:
                delay = next(delays, None)
                if delay is None:
                    if isinstance(exc, ReproError):
                        raise
                    raise ServiceError(
                        f"cannot reach server at {self.socket_path}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                time.sleep(delay)

    # -- typed surface -------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def wait_ready(self, timeout_s: float = 30.0) -> dict[str, Any]:
        """Block until the server answers a ping (it may be restarting)."""
        deadline = time.time() + timeout_s
        while True:
            try:
                return self.request("ping", retry_transient=False)
            except _TRANSIENT as exc:
                if time.time() >= deadline:
                    raise ServiceError(
                        f"server at {self.socket_path} not ready "
                        f"after {timeout_s:.1f}s"
                    ) from exc
                time.sleep(0.05)

    def submit(self, jobs: Iterable[JobSpec]) -> dict[str, Any]:
        return self.request(
            "ingest", jobs=[j.to_dict() for j in jobs]
        )

    def submit_spec(self, spec: CampaignSpec) -> dict[str, Any]:
        return self.submit(spec.jobs)

    def acquire(self, max_jobs: int = 1) -> list[dict[str, Any]]:
        response = self.request(
            "acquire", session=self.session, max_jobs=max_jobs
        )
        return response["leases"]

    def heartbeat(self, job_ids: list[str]) -> float:
        response = self.request(
            "heartbeat", session=self.session, jobs=job_ids,
            retry_transient=False,
        )
        return response["deadline"]

    def complete(self, job_id: str, result: Any) -> bool:
        """Report a result; returns True when this ack won (not a duplicate)."""
        response = self.request(
            "complete", session=self.session, job_id=job_id, result=result
        )
        return not response.get("duplicate", False)

    def report_failure(self, job_id: str, error: str) -> dict[str, Any]:
        return self.request(
            "report-failure", session=self.session, job_id=job_id,
            error=error,
        )

    def status(self) -> dict[str, Any]:
        return self.request("status")

    def results(self) -> dict[str, Any]:
        return self.request("results")["results"]

    def drain(self) -> None:
        self.request("drain")

    # -- live event streaming ------------------------------------------------------

    def events(
        self, topic: str = "journal", since_seq: int = 0,
        max_frames: int = 1000,
    ) -> list[Frame]:
        """One-shot catch-up: backlog frames after ``since_seq``, no tail."""
        response = self.request(
            "events", topic=topic, since_seq=since_seq,
            max_frames=max_frames,
        )
        return [
            Frame(topic=w["topic"], seq=int(w["seq"]), payload=w["payload"])
            for w in response["frames"]
        ]

    def subscribe(
        self, topic: str = "journal", since_seq: int = 0,
        timeout_s: float | None = None,
    ):
        """Yield frames from one live subscription until the stream ends.

        One connection, one generator: the backlog (``seq > since_seq``)
        streams first, then live frames, ending when the server announces
        a clean end with its seq-0 eos control frame (campaign drained).
        A bare EOF without the eos means the connection was severed
        (server killed mid-stream) and raises ``ConnectionResetError`` —
        the caller decides whether to :meth:`follow` across that.
        ``timeout_s`` bounds the silence between frames, not the
        subscription lifetime.
        """
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(
                self.timeout_s if timeout_s is None else timeout_s
            )
            sock.connect(self.socket_path)
            sock.sendall(
                json.dumps(
                    {"op": "subscribe", "topic": topic,
                     "since_seq": since_seq},
                    sort_keys=True, separators=(",", ":"),
                ).encode("utf-8") + b"\n"
            )
            with sock.makefile("rb") as fh:
                ack_line = fh.readline()
                if not ack_line:
                    raise ConnectionResetError(
                        "server closed the connection"
                    )
                ack = json.loads(ack_line.decode("utf-8"))
                if not ack.get("ok", False):
                    _raise_error(ack)
                while True:
                    frame = read_frame(fh)
                    if frame is None:
                        raise ConnectionResetError(
                            "event stream severed before end-of-stream"
                        )
                    if frame.is_eos:
                        return
                    yield frame

    def follow(
        self, topic: str = "journal", since_seq: int = 0,
        timeout_s: float | None = None, give_up_s: float = 30.0,
    ):
        """Like :meth:`subscribe`, but survives server death and restart.

        Reconnects (with backoff, up to ``give_up_s`` of continuous
        unreachability) and resubscribes from the last frame seen, so the
        yielded stream is **exactly-once in seq order** for the durable
        ``journal`` topic — duplicates are dropped by seq, gaps are
        repaired by resubscribing from disk-backed backlog. For the
        ring-buffered telemetry topics a gap that has aged out of the ring
        is unrecoverable and is simply skipped (still in order, never
        duplicated). Ends when the server drains cleanly.
        """
        last = since_seq
        down_since: float | None = None
        while True:
            try:
                resubscribe = False
                for frame in self.subscribe(
                    topic, since_seq=last, timeout_s=timeout_s
                ):
                    down_since = None
                    if frame.seq <= last:
                        continue  # duplicate across a reconnect
                    if topic == "journal" and frame.seq != last + 1:
                        # A drop under backpressure: the WAL on disk has
                        # the gap — resubscribe and replay it.
                        resubscribe = True
                        break
                    last = frame.seq
                    yield frame
                if not resubscribe:
                    return  # in-band eos frame: the campaign drained
            except (socket.timeout, TimeoutError, Saturated):
                # Reachable but quiet (or shedding load): the server took
                # the subscription, there just were no frames. Not
                # downtime — resubscribe without touching the give-up
                # timer.
                down_since = None
                time.sleep(0.1)
            except _TRANSIENT:
                now = time.time()
                if down_since is None:
                    down_since = now
                elif now - down_since >= give_up_s:
                    raise ServiceError(
                        f"event stream from {self.socket_path} "
                        f"unreachable for {give_up_s:.1f}s"
                    )
                time.sleep(0.1)

    def wait_finished(
        self, timeout_s: float = 60.0, poll_s: float = 0.1
    ) -> dict[str, Any]:
        """Poll ``status`` until every job is DONE or FAILED."""
        deadline = time.time() + timeout_s
        while True:
            status = self.status()
            if status["finished"]:
                return status
            if time.time() >= deadline:
                raise ServiceError(
                    f"campaign {status['campaign']!r} not finished after "
                    f"{timeout_s:.1f}s: {status['counts']}"
                )
            time.sleep(poll_s)
