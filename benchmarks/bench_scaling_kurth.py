"""Section IV-B.1 — Kurth et al., exascale climate segmentation.

Paper: "Scaling to 4560 nodes results in peak 1.13 mixed precision Exaflops
and parallel efficiency of 90.7%."
"""

import pytest
from _record import record
from conftest import report

from repro.apps.extreme_scale import get_app
from repro.training.scaling import ScalingStudy


def test_scaling_kurth(benchmark):
    app = get_app("kurth")

    def run():
        study = ScalingStudy(app.job(1))
        return study.weak_scaling([1, 16, 128, 1024, 4560])

    points = benchmark(run)
    peak = points[-1]

    assert peak.sustained_flops == pytest.approx(1.13e18, rel=0.03)
    assert peak.efficiency == pytest.approx(0.907, abs=0.02)

    record(
        "scaling_kurth",
        {"peak_flops": peak.sustained_flops, "efficiency": peak.efficiency,
         "nodes": peak.n_nodes},
    )

    print()
    print(ScalingStudy.table(points, "Kurth et al. — DeepLabv3+ weak scaling"))
    report(
        "Section IV-B.1 paper-vs-measured",
        [
            ("peak sustained", "1.13 EFLOP/s", f"{peak.sustained_flops / 1e18:.3f} EFLOP/s"),
            ("parallel efficiency", "90.7%", f"{peak.efficiency:.1%}"),
            ("nodes", 4560, peak.n_nodes),
        ],
        header=("metric", "paper", "measured"),
    )
