"""Section IV-B.2 — Yang et al., physics-informed GANs for stochastic PDEs.

Paper: "The code achieved over 1.2 mixed precision Exaflops performance on
4584 Summit nodes at 93% efficiency" using model parallelism (GAN batch-size
limits) on top of data parallelism.
"""

import pytest
from _record import record
from conftest import report

from repro.apps.extreme_scale import get_app
from repro.training.scaling import ScalingStudy


def test_scaling_yang(benchmark):
    app = get_app("yang")

    def run():
        study = ScalingStudy(app.job(1))
        return study.weak_scaling([1, 16, 128, 1024, 4584])

    points = benchmark(run)
    peak = points[-1]

    assert peak.sustained_flops > 1.15e18  # "over 1.2" within 4 %
    assert peak.efficiency == pytest.approx(0.93, abs=0.02)
    assert app.plan.model_shards == 6  # intra-node model parallelism

    record(
        "scaling_yang",
        {"peak_flops": peak.sustained_flops, "efficiency": peak.efficiency,
         "nodes": peak.n_nodes, "model_shards": app.plan.model_shards},
    )

    print()
    print(ScalingStudy.table(points, "Yang et al. — PI-GAN hybrid-parallel scaling"))
    report(
        "Section IV-B.2 paper-vs-measured",
        [
            ("peak sustained", ">1.2 EFLOP/s", f"{peak.sustained_flops / 1e18:.3f} EFLOP/s"),
            ("parallel efficiency", "93%", f"{peak.efficiency:.1%}"),
            ("nodes", 4584, peak.n_nodes),
            ("model shards/replica", 6, app.plan.model_shards),
        ],
        header=("metric", "paper", "measured"),
    )
