"""Tests for the analytic model catalog."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.gpu import NVIDIA_V100
from repro.models import CATALOG, ModelSpec, bert_large, get_model, resnet50


class TestModelSpec:
    def test_gradient_bytes_fp32(self):
        spec = ModelSpec("x", 1e6, 1e9, 1e3, 0.1)
        assert spec.gradient_bytes == 4e6

    def test_gradient_bytes_fp16(self):
        spec = ModelSpec("x", 1e6, 1e9, 1e3, 0.1, gradient_bytes_per_param=2.0)
        assert spec.gradient_bytes == 2e6

    def test_sustained_flops(self):
        spec = ModelSpec("x", 1e6, 1e9, 1e3, 0.5)
        assert spec.sustained_flops(NVIDIA_V100) == pytest.approx(62.5e12)

    def test_samples_per_second(self):
        spec = ModelSpec("x", 1e6, 1e9, 1e3, 0.1)
        assert spec.samples_per_second(NVIDIA_V100) == pytest.approx(12.5e12 / 1e9)

    def test_step_compute_time_linear_in_batch(self):
        spec = ModelSpec("x", 1e6, 1e9, 1e3, 0.1)
        t1 = spec.step_compute_time(NVIDIA_V100, 1)
        t64 = spec.step_compute_time(NVIDIA_V100, 64)
        assert t64 == pytest.approx(64 * t1)

    def test_sparsity_reduces_flops(self):
        dense = ModelSpec("x", 1e6, 1e9, 1e3, 0.1)
        sparse = ModelSpec("x", 1e6, 1e9, 1e3, 0.1, sparsity=0.5)
        assert sparse.effective_flops_per_sample == dense.effective_flops_per_sample / 2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelSpec("x", 1e6, 1e9, 1e3, 1.5)

    def test_odd_gradient_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelSpec("x", 1e6, 1e9, 1e3, 0.1, gradient_bytes_per_param=3.0)

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_throughput_scales_with_fraction(self, fraction):
        spec = ModelSpec("x", 1e6, 1e9, 1e3, fraction)
        assert spec.samples_per_second(NVIDIA_V100) == pytest.approx(
            fraction * 125e12 / 1e9
        )


class TestCatalog:
    def test_all_entries_construct(self):
        for key in CATALOG:
            spec = get_model(key)
            assert spec.parameters > 0

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError):
            get_model("alexnet")

    def test_resnet50_gradient_about_100mb(self):
        # Section VI-B: "per device allreduce message size for the ResNet50
        # ... is about 100MB"
        assert resnet50().gradient_bytes == pytest.approx(100e6, rel=0.05)

    def test_bert_large_gradient_about_1_4gb(self):
        assert bert_large().gradient_bytes == pytest.approx(1.4e9, rel=0.01)

    def test_resnet50_v100_throughput_calibrated(self):
        # ~1445 samples/s so that 27648 GPUs need ~20 TB/s of input reads
        rate = resnet50().samples_per_second(NVIDIA_V100)
        assert rate == pytest.approx(1445, rel=0.02)

    def test_climate_models_use_fp16_gradients(self):
        for key in ("tiramisu", "deeplabv3plus", "fc_densenet"):
            assert get_model(key).gradient_bytes_per_param == 2.0

    def test_catalog_keys_are_snake_case(self):
        for key in CATALOG:
            assert key == key.lower()
            assert " " not in key

    def test_fresh_instance_per_lookup(self):
        assert get_model("resnet50") is not get_model("resnet50")
