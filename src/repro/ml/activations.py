"""Activation functions with derivatives, as (forward, backward) pairs.

The backward functions take the *forward output* where that is cheaper
(sigmoid/tanh) and the input where required (relu), which the Dense layer
accounts for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative w.r.t. the pre-activation input ``x``."""
    return (x > 0.0).astype(x.dtype)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    y = np.tanh(x)
    return 1.0 - y * y


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise form.
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x: np.ndarray) -> np.ndarray:
    y = sigmoid(x)
    return y * (1.0 - y)


def identity(x: np.ndarray) -> np.ndarray:
    return x


def identity_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "identity": (identity, identity_grad),
}


def get_activation(name: str):
    """Return the (forward, grad) pair for ``name``."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown activation {name!r}; available: {sorted(ACTIVATIONS)}"
        ) from None
