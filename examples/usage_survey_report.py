#!/usr/bin/env python
"""Regenerate the Section III usage survey: Figures 1-6 and Table III.

Builds the paper-calibrated synthetic portfolio (645 project-years across
INCITE / ALCC / DD / COVID / ECP), runs the real aggregation pipeline over
it, and prints every figure as a text table, plus the Gordon Bell finalist
counts from the project registry.

Run:  python examples/usage_survey_report.py
"""

from repro.apps.registry import GORDON_BELL_FINALISTS, gordon_bell_table
from repro.core import UsageSurvey


def main() -> None:
    survey = UsageSurvey.calibrated()
    print(survey.report())
    print()

    print("Table III — Gordon Bell finalist counts")
    print(f"  {'year':>6} {'category':<8} {'Summit':>7} {'Summit AI/ML':>13}")
    for (year, category), (total, ai) in sorted(gordon_bell_table().items()):
        print(f"  {year:>6} {category:<8} {total:>7} {ai:>13}")
    print()

    print("AI/ML-powered Gordon Bell finalists (Section IV-A):")
    for f in GORDON_BELL_FINALISTS:
        if f.uses_ai:
            scale = f" @ {f.max_nodes} nodes" if f.max_nodes else ""
            print(f"  {f.year} [{f.category:>5}] {f.name:<22} "
                  f"motif={f.motif.value}{scale}")


if __name__ == "__main__":
    main()
