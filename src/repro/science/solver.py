"""ML-enhanced iterative solver — the "math/cs algorithm" motif.

Ichimura et al. (Gordon Bell 2018, Section IV-A.1) used a neural network to
build the preconditioner for a conjugate-gradient solver in an earthquake
simulation; Table I's example for the motif is "solver's linear system
dimension is reduced based on machine-learned parameter". This module
reproduces the pattern at laptop scale:

- :class:`VariableCoefficientPoisson` — an SPD 5-point finite-difference
  system with a heterogeneous (log-normal) coefficient field, the classic
  stand-in for subsurface / seismic operators;
- :class:`ConjugateGradient` — CG from scratch, with optional diagonal
  (Jacobi) preconditioning and iteration accounting;
- :class:`LearnedDeflation` — a deflation space *learned from solution
  snapshots* (PCA): repeated solves against the same operator (time
  stepping) let the slow, smooth error modes be identified from data and
  projected out of CG, cutting iterations 2-3x. The basis dimension is the
  machine-learned parameter, chosen from the snapshots' explained variance.

Crucially — and this is the paper's verification theme (Section VI-A) — the
ML component only *accelerates* the solve; CG still iterates the true
residual to the requested tolerance, so accuracy is guaranteed regardless
of surrogate quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.errors import ConfigurationError, ConvergenceError
from repro.ml.pca import PCA


class VariableCoefficientPoisson:
    """-div(c grad u) on an n x n grid, Dirichlet boundaries, SPD."""

    def __init__(self, n: int, contrast: float = 1.5, smoothness: float = 2.0,
                 seed: int | None = 0):
        if n < 4:
            raise ConfigurationError("grid must be at least 4 x 4")
        if contrast < 0 or smoothness <= 0:
            raise ConfigurationError("bad coefficient-field parameters")
        self.n = n
        rng = np.random.default_rng(seed)
        log_c = gaussian_filter(rng.normal(0.0, contrast, (n, n)), smoothness)
        self.coefficients = np.exp(log_c)
        self.matrix = self._assemble()
        self._rng = rng

    def _assemble(self) -> np.ndarray:
        n, c = self.n, self.coefficients
        N = n * n
        A = np.zeros((N, N))

        def idx(i: int, j: int) -> int:
            return i * n + j

        for i in range(n):
            for j in range(n):
                k = idx(i, j)
                diag = 0.0
                for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ii, jj = i + di, j + dj
                    if 0 <= ii < n and 0 <= jj < n:
                        w = 0.5 * (c[i, j] + c[ii, jj])
                        A[k, idx(ii, jj)] = -w
                        diag += w
                    else:
                        diag += c[i, j]  # Dirichlet boundary
                A[k, k] = diag
        return A

    @property
    def size(self) -> int:
        return self.n * self.n

    def smooth_rhs(self, correlation: float = 1.5) -> np.ndarray:
        """A smooth random load vector (the time-stepping RHS family)."""
        field = gaussian_filter(
            self._rng.normal(size=(self.n, self.n)), correlation
        )
        return field.ravel()

    def direct_solve(self, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(self.matrix, b)


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    relative_residual: float
    converged: bool


class ConjugateGradient:
    """Plain / Jacobi-preconditioned CG with iteration accounting."""

    def __init__(self, A: np.ndarray, tol: float = 1e-8, max_iterations: int = 10_000):
        A = np.asarray(A, dtype=float)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ConfigurationError("A must be square")
        if tol <= 0 or max_iterations < 1:
            raise ConfigurationError("bad solver parameters")
        self.A = A
        self.tol = tol
        self.max_iterations = max_iterations

    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        jacobi: bool = False,
    ) -> SolveResult:
        A = self.A
        b = np.asarray(b, dtype=float)
        if b.shape != (A.shape[0],):
            raise ConfigurationError("rhs dimension mismatch")
        x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
        minv = 1.0 / np.diag(A) if jacobi else None
        r = b - A @ x
        z = minv * r if minv is not None else r
        p = z.copy()
        rz = float(r @ z)
        b_norm = float(np.linalg.norm(b))
        if b_norm == 0.0:
            return SolveResult(x=x, iterations=0, relative_residual=0.0,
                               converged=True)
        for it in range(1, self.max_iterations + 1):
            Ap = A @ p
            alpha = rz / float(p @ Ap)
            x += alpha * p
            r -= alpha * Ap
            res = float(np.linalg.norm(r)) / b_norm
            if res < self.tol:
                return SolveResult(x=x, iterations=it, relative_residual=res,
                                   converged=True)
            z = minv * r if minv is not None else r
            rz_new = float(r @ z)
            p = z + (rz_new / rz) * p
            rz = rz_new
        return SolveResult(
            x=x, iterations=self.max_iterations,
            relative_residual=float(np.linalg.norm(b - A @ x)) / b_norm,
            converged=False,
        )


class LearnedDeflation:
    """A deflation space learned from solution snapshots.

    ``fit`` runs PCA on solved snapshots and keeps the smallest basis whose
    explained variance exceeds ``variance_target`` (capped at
    ``max_dimension``) — the learned dimension parameter. ``solve`` runs
    init-CG deflation: start from the Galerkin solution in the basis and
    keep all search directions A-orthogonal to it.
    """

    def __init__(
        self,
        solver: ConjugateGradient,
        variance_target: float = 0.995,
        max_dimension: int = 40,
    ):
        if not 0 < variance_target < 1:
            raise ConfigurationError("variance_target must be in (0, 1)")
        if max_dimension < 1:
            raise ConfigurationError("max_dimension must be >= 1")
        self.solver = solver
        self.variance_target = variance_target
        self.max_dimension = max_dimension
        self.basis: np.ndarray | None = None  # (N, k), orthonormal
        self.dimension: int | None = None
        self._AV: np.ndarray | None = None
        self._G_inv: np.ndarray | None = None

    def fit(self, snapshots: np.ndarray) -> int:
        """Learn the basis from (m, N) solution snapshots; returns k."""
        snapshots = np.atleast_2d(np.asarray(snapshots, dtype=float))
        m, N = snapshots.shape
        if N != self.solver.A.shape[0]:
            raise ConfigurationError("snapshot dimension mismatch")
        if m < 3:
            raise ConfigurationError("need at least 3 snapshots")
        limit = min(self.max_dimension, m - 1, N)
        probe = PCA(limit).fit(snapshots)
        cumulative = np.cumsum(probe.explained_variance_ratio_)
        k = int(np.searchsorted(cumulative, self.variance_target) + 1)
        k = min(k, limit)
        V, _ = np.linalg.qr(probe.components_[:k].T)
        self.basis = V
        self.dimension = k
        self._AV = self.solver.A @ V
        self._G_inv = np.linalg.inv(V.T @ self._AV)
        return k

    def solve(self, b: np.ndarray) -> SolveResult:
        """Deflated CG solve to the underlying solver's tolerance."""
        if self.basis is None:
            raise ConvergenceError("fit() must be called before solve()")
        A = self.solver.A
        V, AV, G_inv = self.basis, self._AV, self._G_inv
        b = np.asarray(b, dtype=float)
        x = V @ (G_inv @ (V.T @ b))
        r = b - A @ x
        b_norm = float(np.linalg.norm(b))
        if b_norm == 0.0 or np.linalg.norm(r) / b_norm < self.solver.tol:
            return SolveResult(x=x, iterations=0, relative_residual=0.0,
                               converged=True)

        def project(v: np.ndarray) -> np.ndarray:
            return v - V @ (G_inv @ (AV.T @ v))

        p = project(r)
        for it in range(1, self.solver.max_iterations + 1):
            Ap = A @ p
            pAp = float(p @ Ap)
            alpha = float(r @ p) / pAp
            x += alpha * p
            r -= alpha * Ap
            res = float(np.linalg.norm(r)) / b_norm
            if res < self.solver.tol:
                return SolveResult(x=x, iterations=it, relative_residual=res,
                                   converged=True)
            beta = -float(r @ Ap) / pAp
            p = project(r) + beta * p
        return SolveResult(
            x=x, iterations=self.solver.max_iterations,
            relative_residual=float(np.linalg.norm(b - A @ x)) / b_norm,
            converged=False,
        )


def solver_study(
    n: int = 20,
    n_snapshots: int = 100,
    n_solves: int = 8,
    seed: int = 0,
) -> dict[str, float]:
    """End-to-end comparison: plain CG vs Jacobi CG vs learned deflation.

    Returns mean iteration counts plus the learned basis dimension.
    """
    problem = VariableCoefficientPoisson(n, seed=seed)
    solver = ConjugateGradient(problem.matrix)
    snapshots = np.array(
        [problem.direct_solve(problem.smooth_rhs()) for _ in range(n_snapshots)]
    )
    deflation = LearnedDeflation(solver)
    k = deflation.fit(snapshots)

    plain, jacobi, deflated = [], [], []
    for _ in range(n_solves):
        b = problem.smooth_rhs()
        plain.append(solver.solve(b).iterations)
        jacobi.append(solver.solve(b, jacobi=True).iterations)
        deflated.append(deflation.solve(b).iterations)
    return {
        "plain": float(np.mean(plain)),
        "jacobi": float(np.mean(jacobi)),
        "deflated": float(np.mean(deflated)),
        "basis_dimension": float(k),
    }
