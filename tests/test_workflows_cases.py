"""Tests for the three Section V workflow case studies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.science.docking import CompoundLibrary, DockingOracle
from repro.workflows.case_biology import MultiscaleWorkflow
from repro.workflows.case_drug import DrugDiscoveryWorkflow
from repro.workflows.case_materials import MaterialsWorkflow


class TestMaterialsWorkflow:
    @pytest.fixture(scope="class")
    def result(self):
        return MaterialsWorkflow(lattice_size=12, seed=0).run(
            n_training=32, n_sweeps=80, n_warmup=80
        )

    def test_locates_transition_near_onsager(self, result):
        assert result.tc_relative_error < 0.15

    def test_bic_selects_nn_term(self, result):
        assert result.ce_terms == (1,)

    def test_surrogate_accurate(self, result):
        assert result.ce_rmse < 1e-6

    def test_expensive_calls_bounded_by_training_budget(self, result):
        assert result.expensive_calls == 32

    def test_surrogate_displaces_most_expensive_calls(self, result):
        assert result.call_reduction > 10

    def test_order_parameter_rises_on_cooling(self, result):
        orders = [r.order_parameter for r in result.sweep]
        assert orders[-1] > orders[0] + 0.4

    def test_first_principles_baseline_pays_per_measurement(self):
        wf = MaterialsWorkflow(lattice_size=8, seed=1)
        baseline = wf.run_first_principles_baseline(
            temperatures=np.linspace(3.0, 1.5, 4), n_sweeps=20, n_warmup=10
        )
        assert baseline.expensive_calls == 4 * 20

    def test_small_lattice_rejected(self):
        with pytest.raises(ConfigurationError):
            MaterialsWorkflow(lattice_size=2)


class TestDrugDiscoveryWorkflow:
    @pytest.fixture(scope="class")
    def outcome(self):
        library = CompoundLibrary.random(1500, seed=4)
        oracle = DockingOracle(seed=4)
        wf = DrugDiscoveryWorkflow(library, oracle, seed=4)
        return wf.run(initial=48, per_iteration=24, n_iterations=4), oracle

    def test_beats_random_selection(self, outcome):
        result, _ = outcome
        assert result.enrichment > result.enrichment_random

    def test_competitive_with_docking_rank(self, outcome):
        result, _ = outcome
        assert result.enrichment >= result.enrichment_docking

    def test_md_budget_respected(self, outcome):
        result, oracle = outcome
        assert result.md_calls == 48 + 24 * 4
        assert oracle.md_calls == result.md_calls

    def test_iteration_best_monotone(self, outcome):
        result, _ = outcome
        best = result.iteration_best
        assert all(b >= a - 1e-12 for a, b in zip(best, best[1:]))

    def test_mean_advantage_across_seeds(self):
        """The surrogate loop should beat docking-rank selection on average
        (the headline of the Section V-C pipeline)."""
        loops, docks = [], []
        for seed in range(3):
            library = CompoundLibrary.random(1200, seed=seed)
            oracle = DockingOracle(seed=seed)
            wf = DrugDiscoveryWorkflow(library, oracle, seed=seed)
            r = wf.run(initial=48, per_iteration=24, n_iterations=4)
            loops.append(r.enrichment)
            docks.append(r.enrichment_docking)
        assert np.mean(loops) > np.mean(docks)

    def test_ga_search_finds_above_average_compound(self):
        library = CompoundLibrary.random(800, seed=5)
        oracle = DockingOracle(seed=5)
        wf = DrugDiscoveryWorkflow(library, oracle, seed=5)
        ga_result, true_best = wf.ga_search(generations=15)
        truth = oracle.true_affinity(library.genomes)
        assert true_best > np.percentile(truth, 90)
        assert ga_result.evaluations > 0

    def test_small_library_rejected(self):
        with pytest.raises(ConfigurationError):
            DrugDiscoveryWorkflow(
                CompoundLibrary.random(10, seed=0), DockingOracle(seed=0)
            )

    def test_budget_exceeding_library_rejected(self):
        wf = DrugDiscoveryWorkflow(
            CompoundLibrary.random(100, seed=1), DockingOracle(seed=1)
        )
        with pytest.raises(ConfigurationError):
            wf.run(initial=48, per_iteration=24, n_iterations=10)


class TestMultiscaleWorkflow:
    @pytest.fixture(scope="class")
    def result(self):
        return MultiscaleWorkflow(seed=0).run(
            n_windows=6, frames_per_window=8, ae_epochs=250
        )

    def test_event_detected(self, result):
        assert result.event_detected
        assert result.event_score_ratio > 3.0

    def test_refinement_triggered(self, result):
        assert result.refinements_triggered == 1

    def test_consistency_rmse_finite_and_small(self, result):
        assert 0 <= result.consistency_rmse < 1.0

    def test_frame_accounting(self, result):
        # 6 windows + 1 event window of 8 coarse frames
        assert result.coarse_frames == 7 * 8
        # 6 windows + 1 refinement of 8 fine frames
        assert result.fine_frames == 7 * 8

    def test_too_few_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiscaleWorkflow(seed=0).run(n_windows=2, frames_per_window=8)

    def test_campaign_overlaps_across_facilities(self):
        graph = MultiscaleWorkflow.campaign_graph(n_windows=3)
        run = graph.execute()
        assert run.makespan < graph.serial_time()

    def test_cs2_accelerates_training_leg(self):
        slow = MultiscaleWorkflow.campaign_makespan(n_windows=3, use_cs2=False)
        fast = MultiscaleWorkflow.campaign_makespan(n_windows=3, use_cs2=True)
        assert fast.makespan <= slow.makespan

    def test_campaign_critical_path_ends_at_last_gno(self):
        graph = MultiscaleWorkflow.campaign_graph(n_windows=2)
        run = graph.execute()
        assert run.critical_path(graph)[-1] == "gno-1"
