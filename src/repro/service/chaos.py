"""Deterministic chaos harness for the campaign service.

SAIH's point (PAPERS.md) cuts both ways: evaluation machinery must itself
be trustworthy. So fault injection here is **seeded and replayable** — a
:class:`ChaosPlan` derived from a seed always kills the same workers after
the same completion counts, SIGKILLs the server at the same campaign
progress thresholds, and tears the same journal tails. Tests assert plan
determinism (same seed → same schedule) and recovery determinism (the
surviving campaign's result set is byte-identical to an uninterrupted run).

Fault repertoire:

- **worker kill** — ``os._exit`` while holding a lease, before the
  ``complete`` is sent (exercises lease expiry + requeue);
- **dropped heartbeats** — the worker computes without heartbeating, so its
  lease expires mid-flight and its late completion must be rejected
  (exercises :class:`~repro.errors.LeaseExpired` double-completion guard);
- **server SIGKILL** — no cleanup, no flush; recovery is journal replay
  (exercises the WAL durability contract);
- **torn journal tail** — garbage appended to the last segment after a
  kill, simulating a write torn by the crash (exercises replay's
  discard-don't-die tolerance);
- **slow / failing handlers** — ``chaos:sleep`` and ``chaos:flaky`` jobs
  injected at spec level (exercise heartbeats and attempt accounting).

:func:`run_chaos_campaign` is the orchestrator the crash tests and the CI
chaos job drive: real subprocesses, real SIGKILLs, real sockets.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.atomicio import atomic_write_text
from repro.errors import ConfigurationError, ServiceError

from repro.service.client import ServiceClient
from repro.service.handlers import run_job
from repro.service.journal import segment_paths
from repro.service.spec import CampaignSpec, JobSpec

__all__ = [
    "ChaosOutcome",
    "ChaosPlan",
    "WorkerChaos",
    "chaos_campaign",
    "expected_results",
    "run_chaos_campaign",
    "tear_journal_tail",
]


@dataclass(frozen=True)
class WorkerChaos:
    """One worker's deterministic fault schedule (by completion count)."""

    kill_at: tuple[int, ...] = ()
    drop_heartbeats_at: tuple[int, ...] = ()

    def kill_before_complete(self, n_completed: int) -> bool:
        return n_completed in self.kill_at

    def drop_heartbeats(self, n_completed: int) -> bool:
        return n_completed in self.drop_heartbeats_at


@dataclass(frozen=True)
class ChaosPlan:
    """The full, seed-derived fault schedule for one campaign run."""

    seed: int
    n_workers: int
    workers: tuple[WorkerChaos, ...]
    #: SIGKILL the server when this many jobs are done (ascending).
    server_kill_after_done: tuple[int, ...] = ()
    #: After each server kill, tear the journal tail? (parallel list)
    tear_tail_after_kill: tuple[bool, ...] = ()

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_workers: int = 2,
        n_jobs: int = 24,
        server_kills: int = 1,
        worker_kill_probability: float = 0.5,
    ) -> "ChaosPlan":
        """Derive a schedule deterministically — same seed, same plan.

        >>> ChaosPlan.from_seed(7) == ChaosPlan.from_seed(7)
        True
        >>> ChaosPlan.from_seed(7) == ChaosPlan.from_seed(8)
        False
        """
        if n_workers < 1 or n_jobs < 4:
            raise ConfigurationError("need >= 1 worker and >= 4 jobs")
        rng = random.Random(seed)
        workers = []
        for _ in range(n_workers):
            kill_at: tuple[int, ...] = ()
            drop_at: tuple[int, ...] = ()
            if rng.random() < worker_kill_probability:
                kill_at = (rng.randrange(1, max(2, n_jobs // n_workers)),)
            if rng.random() < 0.5:
                drop_at = (rng.randrange(0, max(1, n_jobs // n_workers)),)
            workers.append(WorkerChaos(kill_at=kill_at,
                                       drop_heartbeats_at=drop_at))
        lo, hi = max(1, n_jobs // 4), max(2, (3 * n_jobs) // 4)
        kills = tuple(sorted(rng.randrange(lo, hi)
                             for _ in range(server_kills)))
        tears = tuple(rng.random() < 0.5 for _ in kills)
        return cls(
            seed=seed, n_workers=n_workers, workers=tuple(workers),
            server_kill_after_done=kills, tear_tail_after_kill=tears,
        )

    def worker(self, index: int) -> WorkerChaos:
        return self.workers[index % len(self.workers)]

    # -- JSON round-trip (workers read the plan from a file) -----------------------

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosPlan":
        return cls(
            seed=int(data["seed"]),
            n_workers=int(data["n_workers"]),
            workers=tuple(
                WorkerChaos(
                    kill_at=tuple(w.get("kill_at", ())),
                    drop_heartbeats_at=tuple(w.get("drop_heartbeats_at", ())),
                )
                for w in data["workers"]
            ),
            server_kill_after_done=tuple(
                data.get("server_kill_after_done", ())
            ),
            tear_tail_after_kill=tuple(data.get("tear_tail_after_kill", ())),
        )

    def to_file(self, path: str | Path) -> Path:
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ChaosPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


def chaos_campaign(
    n_jobs: int = 24,
    seed: int = 0,
    slow_every: int = 6,
    name: str = "chaos-campaign",
    **overrides: Any,
) -> CampaignSpec:
    """A campaign mixing fast deterministic jobs with slow lease-holders.

    Every handler here is a pure function of (params, seed) — no
    ``chaos:flaky`` — so :func:`expected_results` predicts the exact final
    result set regardless of how many faults interrupt the run.
    """
    jobs = []
    for i in range(n_jobs):
        if slow_every and i % slow_every == slow_every - 1:
            jobs.append(JobSpec(
                job_id=f"job-{i:04d}", handler="chaos:sleep",
                params={"seconds": 0.15}, seed=seed + i,
            ))
        else:
            jobs.append(JobSpec(
                job_id=f"job-{i:04d}", handler="quadrature",
                params={"n_samples": 512}, seed=seed + i,
            ))
    overrides.setdefault("lease_timeout_s", 1.5)
    overrides.setdefault("heartbeat_interval_s", 0.2)
    overrides.setdefault("max_attempts", 6)
    overrides.setdefault("backoff_base_s", 0.02)
    overrides.setdefault("backoff_max_s", 0.2)
    return CampaignSpec(name=name, jobs=tuple(jobs), **overrides)


def expected_results(spec: CampaignSpec) -> dict[str, Any]:
    """The ground-truth result set: every handler run in-process, in order.

    Only valid for specs whose handlers are attempt-independent (no
    ``chaos:flaky``); crash tests byte-compare the service's final result
    set against this.
    """
    out: dict[str, Any] = {}
    for job in spec.jobs:
        params = dict(job.params)
        if job.handler == "chaos:flaky":
            raise ConfigurationError(
                "chaos:flaky results depend on retry history; "
                "expected_results cannot predict them"
            )
        out[job.job_id] = run_job(job.handler, params, job.seed)
    return out


def tear_journal_tail(
    journal_dir: str | Path, garbage: bytes = b'{"seq":1e9,"type":"lea'
) -> Path | None:
    """Simulate a write torn by the crash: partial JSON, no newline, at the
    tail of the last segment. Replay must discard it, not die."""
    segments = segment_paths(journal_dir)
    if not segments:
        return None
    with open(segments[-1], "ab") as fh:
        fh.write(garbage)
    return segments[-1]


# -- the orchestrator -----------------------------------------------------------


@dataclass
class ChaosOutcome:
    """What a chaos run did and what survived."""

    results: dict[str, Any]
    status: dict[str, Any]
    server_kills: int = 0
    worker_kills: int = 0
    tails_torn: int = 0
    workers_replaced: int = 0
    log_paths: list[str] = field(default_factory=list)
    #: Wire frames a live ``events --follow`` subscriber saw across every
    #: server kill/restart (populated when ``tail_events=True``).
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def results_json(self) -> str:
        """Canonical encoding, for byte-identity comparisons."""
        return json.dumps(self.results, sort_keys=True,
                          separators=(",", ":"))


def _python_env() -> dict[str, str]:
    """Child env able to import repro from this checkout."""
    import repro

    env = dict(os.environ)
    pkg_parent = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if pkg_parent not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{pkg_parent}{os.pathsep}{existing}" if existing else pkg_parent
        )
    return env


def _short_socket_path() -> Path:
    # AF_UNIX paths are length-capped (~107 bytes); pytest tmp dirs can
    # blow past that, so sockets live in their own short tempdir.
    return Path(tempfile.mkdtemp(prefix="rsvc-")) / "s"


class _Procs:
    """Server + worker subprocess management for one chaos run."""

    def __init__(self, workdir: Path, socket_path: Path, env: dict[str, str]):
        self.workdir = workdir
        self.socket_path = socket_path
        self.env = env
        self.server: subprocess.Popen | None = None
        self.workers: dict[str, subprocess.Popen] = {}
        self.follower: subprocess.Popen | None = None
        self.logs: list[Path] = []

    def _spawn(self, args: list[str], log_name: str) -> subprocess.Popen:
        log = self.workdir / log_name
        self.logs.append(log)
        with open(log, "ab") as fh:
            return subprocess.Popen(
                [sys.executable, "-m", *args],
                stdout=fh, stderr=subprocess.STDOUT, env=self.env,
                cwd=str(self.workdir),
            )

    def start_server(self, spec_path: Path, journal_dir: Path) -> None:
        self.server = self._spawn(
            ["repro.cli", "serve", "--spec", str(spec_path),
             "--journal", str(journal_dir),
             "--socket", str(self.socket_path),
             "--sweep-interval", "0.05"],
            "server.log",
        )

    def start_follower(self, give_up_s: float) -> Path:
        """A live ``events --follow`` subscriber; frames go to events.jsonl.

        stdout carries the JSON frame stream only (stderr goes to its own
        log), and the process is expected to ride out every server SIGKILL
        by reconnecting and resubscribing from the last seq it saw.
        """
        out = self.workdir / "events.jsonl"
        err = self.workdir / "follower.log"
        self.logs.append(err)
        with open(out, "wb") as out_fh, open(err, "ab") as err_fh:
            self.follower = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "events",
                 "--socket", str(self.socket_path), "--follow", "--json",
                 "--give-up", str(give_up_s)],
                stdout=out_fh, stderr=err_fh, env=self.env,
                cwd=str(self.workdir),
            )
        return out

    def kill_server(self) -> None:
        if self.server is not None and self.server.poll() is None:
            self.server.send_signal(signal.SIGKILL)
            self.server.wait(timeout=10)

    def start_worker(self, session: str, plan_path: Path | None,
                     index: int) -> None:
        args = ["repro.service.worker", str(self.socket_path),
                "--session", session, "--idle-exit-s", "20"]
        if plan_path is not None:
            args += ["--chaos-plan", str(plan_path),
                     "--chaos-worker", str(index)]
        self.workers[session] = self._spawn(args, f"{session}.log")

    def reap(self) -> None:
        for proc in [self.server, self.follower, *self.workers.values()]:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def run_chaos_campaign(
    spec: CampaignSpec,
    plan: ChaosPlan,
    workdir: str | Path,
    deadline_s: float = 90.0,
    tail_events: bool = False,
) -> ChaosOutcome:
    """Drive ``spec`` through real subprocesses under ``plan``'s faults.

    Starts one server and ``plan.n_workers`` chaos-wrapped workers, then
    supervises: SIGKILLs the server at each planned completion threshold
    (optionally tearing the journal tail) and restarts it against the same
    journal; replaces killed workers with clean ones. Returns once every
    job is DONE or FAILED, with the final result set fetched from the
    recovered server.

    ``tail_events`` additionally runs a live ``events --follow`` subscriber
    for the whole campaign — including across the server SIGKILLs — and
    returns the frames it saw in ``outcome.events``. The crash tests assert
    that stream is gap-free and seq-ordered: the exactly-once claim of the
    disk-backed journal topic, exercised by real kills.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal_dir = workdir / "journal"
    spec_path = workdir / "campaign.json"
    atomic_write_text(spec_path, spec.to_json())
    plan_path = workdir / "chaos-plan.json"
    plan.to_file(plan_path)
    socket_path = _short_socket_path()

    procs = _Procs(workdir, socket_path, _python_env())
    outcome = ChaosOutcome(results={}, status={})
    client = ServiceClient(socket_path, session="chaos-supervisor")
    kills_pending = list(plan.server_kill_after_done)
    tears_pending = list(plan.tear_tail_after_kill)
    deadline = time.time() + deadline_s
    events_path: Path | None = None
    try:
        procs.start_server(spec_path, journal_dir)
        client.wait_ready(timeout_s=30.0)
        if tail_events:
            events_path = procs.start_follower(give_up_s=deadline_s)
        for i in range(plan.n_workers):
            procs.start_worker(f"chaos-w{i}", plan_path, i)
        while True:
            if time.time() > deadline:
                raise ServiceError(
                    f"chaos campaign exceeded {deadline_s:.0f}s deadline "
                    f"(status: {outcome.status.get('counts')})"
                )
            try:
                status = client.status()
            except (ServiceError, OSError):
                time.sleep(0.05)
                continue
            outcome.status = status
            done = status["counts"]["done"] + status["counts"]["failed"]
            if kills_pending and done >= kills_pending[0]:
                kills_pending.pop(0)
                procs.kill_server()
                outcome.server_kills += 1
                if tears_pending.pop(0):
                    if tear_journal_tail(journal_dir) is not None:
                        outcome.tails_torn += 1
                procs.start_server(spec_path, journal_dir)
                client.wait_ready(timeout_s=30.0)
            # Replace chaos-killed workers with clean ones so planned
            # worker deaths cannot stall the campaign.
            for session, proc in list(procs.workers.items()):
                code = proc.poll()
                if code == 137:
                    outcome.worker_kills += 1
                    del procs.workers[session]
                    replacement = f"{session}-r{outcome.workers_replaced}"
                    procs.start_worker(replacement, None, 0)
                    outcome.workers_replaced += 1
                elif code not in (None, 0):
                    raise ServiceError(
                        f"worker {session} exited with code {code}; "
                        f"see {workdir / (session + '.log')}"
                    )
            if status["finished"]:
                break
            time.sleep(0.05)
        outcome.results = client.results()
        client.drain()
        if procs.server is not None:
            procs.server.wait(timeout=15)
        if procs.follower is not None:
            # The drain frame then end-of-stream reach the follower; it
            # must exit on its own, not be reaped.
            procs.follower.wait(timeout=30)
    finally:
        procs.reap()
        outcome.log_paths = [str(p) for p in procs.logs]
    if events_path is not None and events_path.exists():
        outcome.events = [
            json.loads(line)
            for line in events_path.read_text().splitlines() if line
        ]
    return outcome
