"""Crash-recovery acceptance tests: real subprocesses, real SIGKILLs.

Each test drives a campaign through :func:`run_chaos_campaign` with a
handcrafted fault plan and asserts the recovery contract from ISSUE.md:
zero lost jobs, zero duplicated jobs, and a final result set byte-identical
to an uninterrupted run of the same spec.
"""

import json

import pytest

from repro.service import (
    ChaosPlan,
    WorkerChaos,
    chaos_campaign,
    expected_results,
    run_chaos_campaign,
)

pytestmark = pytest.mark.slow


def _canonical(results):
    return json.dumps(results, sort_keys=True, separators=(",", ":"))


def _no_faults(n_workers=2):
    return ChaosPlan(
        seed=0, n_workers=n_workers,
        workers=tuple(WorkerChaos() for _ in range(n_workers)),
    )


def _assert_recovered_exactly(outcome, spec):
    """Zero lost, zero duplicated, byte-identical to the uninterrupted run."""
    counts = outcome.status["counts"]
    assert counts["done"] == len(spec.jobs), outcome.status
    assert counts["failed"] == 0 and outcome.status["failed_jobs"] == []
    assert sorted(outcome.results) == sorted(
        j.job_id for j in spec.jobs
    )
    # the ground truth *is* the uninterrupted run: every handler is a pure
    # function of (params, seed), computed here in-process
    assert outcome.results_json == _canonical(expected_results(spec))


@pytest.fixture(autouse=True)
def _isolated_cache(monkeypatch):
    # Subprocess servers resolve the cache relative to their own workdir;
    # make sure no ambient override leaks shared results into these runs.
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def test_uninterrupted_run_matches_ground_truth(tmp_path):
    spec = chaos_campaign(8, seed=21, slow_every=4)
    outcome = run_chaos_campaign(spec, _no_faults(), tmp_path / "run",
                                 deadline_s=60.0)
    assert outcome.server_kills == 0 and outcome.worker_kills == 0
    _assert_recovered_exactly(outcome, spec)


def test_sigkill_server_mid_campaign_resumes(tmp_path):
    spec = chaos_campaign(10, seed=5, slow_every=2)
    plan = ChaosPlan(
        seed=0, n_workers=2,
        workers=(WorkerChaos(), WorkerChaos()),
        server_kill_after_done=(3,),
        tear_tail_after_kill=(False,),
    )
    outcome = run_chaos_campaign(spec, plan, tmp_path / "run",
                                 deadline_s=90.0)
    assert outcome.server_kills == 1
    assert outcome.status["recovered"] is True  # final server replayed a WAL
    _assert_recovered_exactly(outcome, spec)


def test_sigkill_leased_worker_requeues_and_completes(tmp_path):
    spec = chaos_campaign(8, seed=13, slow_every=2)
    plan = ChaosPlan(
        seed=0, n_workers=2,
        # worker 0 dies holding a lease after its first completion
        workers=(WorkerChaos(kill_at=(1,)), WorkerChaos()),
    )
    outcome = run_chaos_campaign(spec, plan, tmp_path / "run",
                                 deadline_s=90.0)
    assert outcome.worker_kills == 1
    assert outcome.workers_replaced == 1
    _assert_recovered_exactly(outcome, spec)


def test_torn_journal_tail_tolerated_on_restart(tmp_path):
    spec = chaos_campaign(10, seed=8, slow_every=2)
    plan = ChaosPlan(
        seed=0, n_workers=2,
        workers=(WorkerChaos(), WorkerChaos()),
        server_kill_after_done=(4,),
        tear_tail_after_kill=(True,),
    )
    outcome = run_chaos_campaign(spec, plan, tmp_path / "run",
                                 deadline_s=90.0)
    assert outcome.server_kills == 1
    assert outcome.tails_torn == 1
    discarded = outcome.status["metrics"].get("service.discarded_tails")
    assert discarded is not None and discarded["value"] >= 1.0
    _assert_recovered_exactly(outcome, spec)


def test_dropped_heartbeats_reject_stale_completion(tmp_path):
    spec = chaos_campaign(8, seed=3, slow_every=2,
                          lease_timeout_s=0.5, heartbeat_interval_s=0.1)
    plan = ChaosPlan(
        seed=0, n_workers=2,
        # worker 0 computes its first job without heartbeating: the slow
        # jobs outlive the lease, so its completion must come back
        # LeaseExpired and the job must be finished by someone else
        workers=(WorkerChaos(drop_heartbeats_at=(0,)), WorkerChaos()),
    )
    outcome = run_chaos_campaign(spec, plan, tmp_path / "run",
                                 deadline_s=90.0)
    _assert_recovered_exactly(outcome, spec)
