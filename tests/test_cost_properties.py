"""Property suite: the vectorized sweep path is element-wise **bit-identical**
to the scalar evaluate path, for every cost model, over randomized grids.

This is the contract that licenses using :func:`repro.cost.sweep` (NumPy
broadcasting) for paper-figure reproduction: any grid point must give exactly
the float the handwritten scalar formula gives.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.extreme_scale import EXTREME_SCALE_APPS
from repro.cost import (
    AllreduceCostModel,
    CheckpointCostModel,
    ConvergenceCostModel,
    DataParallelCrossoverModel,
    IoRequirementModel,
    RooflineCostModel,
    step_cost_model,
    sweep,
    sweep_scalar,
)
from repro.machine.summit import SUMMIT_NODE_COUNT, summit
from repro.network.link import NVLINK2

from .hypothesis_settings import QUICK_SETTINGS, STANDARD_SETTINGS

SYSTEM = summit(include_high_mem=False)


def assert_bit_identical(model, grid, **fixed):
    """sweep() and sweep_scalar() agree bitwise on every term of every point."""
    fast = sweep(model, grid, **fixed)
    slow = sweep_scalar(model, grid, **fixed)
    assert fast.shape == slow.shape
    for term in fast.breakdown:
        fast_grid = np.broadcast_to(
            np.asarray(fast.breakdown[term], dtype=float), fast.shape)
        slow_grid = slow.term(term)
        assert np.array_equal(fast_grid, slow_grid), (
            f"{model.name}.{term}: vectorized != scalar"
        )


# Axis strategies: unique sorted values keep grids small but irregular.

def axis(elements, min_size=1, max_size=6):
    return st.lists(elements, min_size=min_size, max_size=max_size,
                    unique=True).map(sorted)


node_counts = axis(st.integers(min_value=1, max_value=SUMMIT_NODE_COUNT))
rank_counts = axis(st.integers(min_value=1, max_value=SUMMIT_NODE_COUNT))
message_sizes = axis(st.floats(min_value=1e3, max_value=4e9,
                               allow_nan=False, allow_infinity=False))
bandwidths = axis(st.floats(min_value=1e9, max_value=1e12,
                            allow_nan=False, allow_infinity=False))
positive = st.floats(min_value=1e-9, max_value=1e3,
                     allow_nan=False, allow_infinity=False)


class TestAllreduceParity:
    @STANDARD_SETTINGS
    @given(
        p=rank_counts,
        size=message_sizes,
        latency=st.floats(min_value=1e-9, max_value=1e-3),
        bandwidth=st.floats(min_value=1e9, max_value=1e12),
        algorithm=st.sampled_from(
            ["ring", "recursive_doubling", "binomial_tree", "best"]),
    )
    def test_allreduce_grid(self, p, size, latency, bandwidth, algorithm):
        assert_bit_identical(
            AllreduceCostModel(),
            {"p": p, "message_bytes": size},
            latency=latency, bandwidth=bandwidth,
            allreduce_algorithm=algorithm,
        )

    @STANDARD_SETTINGS
    @given(p=rank_counts, size=message_sizes, bandwidth=bandwidths)
    def test_crossover_grid(self, p, size, bandwidth):
        assert_bit_identical(
            DataParallelCrossoverModel(),
            {"n_ranks": p, "message_bytes": size, "bandwidth": bandwidth},
            latency=1e-6, compute_time=0.05,
        )


class TestStepModelParity:
    @STANDARD_SETTINGS
    @given(
        key=st.sampled_from(sorted(EXTREME_SCALE_APPS)),
        data=st.data(),
    )
    def test_step_composite_over_valid_node_counts(self, key, data):
        app = EXTREME_SCALE_APPS[key]
        # node counts must let GPUs divide evenly into model-parallel shards
        span = max(1, app.plan.model_shards // 6)
        multiplier = axis(
            st.integers(min_value=1, max_value=SUMMIT_NODE_COUNT // span))
        nodes = [m * span for m in data.draw(multiplier)]
        model = step_cost_model(
            app.model_factory(), SYSTEM, app.plan,
            data_source=app.data_source, intra_node_link=NVLINK2,
        )
        assert_bit_identical(model, {"n_nodes": nodes})


class TestStorageAndAnalysisParity:
    @STANDARD_SETTINGS
    @given(
        state=axis(st.floats(min_value=1e6, max_value=1e12)),
        nodes=node_counts,
        write_rate=st.floats(min_value=1e6, max_value=1e11),
        mtbf=st.floats(min_value=3600.0, max_value=1e9),
    )
    def test_checkpoint_grid(self, state, nodes, write_rate, mtbf):
        assert_bit_identical(
            CheckpointCostModel(),
            {"state_bytes_per_node": state, "n_nodes": nodes},
            write_rate=write_rate, node_mtbf_seconds=mtbf,
        )

    @STANDARD_SETTINGS
    @given(
        samples=axis(st.floats(min_value=1e-3, max_value=1e6)),
        devices=axis(st.integers(min_value=1, max_value=30000)),
        bytes_per_sample=st.floats(min_value=1.0, max_value=1e9),
    )
    def test_io_requirement_grid(self, samples, devices, bytes_per_sample):
        assert_bit_identical(
            IoRequirementModel(),
            {"samples_per_second_per_device": samples, "n_devices": devices},
            bytes_per_sample=bytes_per_sample,
        )

    @STANDARD_SETTINGS
    @given(
        flops=axis(st.floats(min_value=1e3, max_value=1e15)),
        bytes_moved=axis(st.floats(min_value=1.0, max_value=1e12)),
        peak=st.floats(min_value=1e9, max_value=1e15),
        membw=st.floats(min_value=1e9, max_value=1e13),
    )
    def test_roofline_grid(self, flops, bytes_moved, peak, membw):
        assert_bit_identical(
            RooflineCostModel(),
            {"flops": flops, "bytes_moved": bytes_moved},
            peak_flops=peak, memory_bandwidth=membw,
        )

    @STANDARD_SETTINGS
    @given(
        batch=axis(st.integers(min_value=1, max_value=1 << 20)),
        min_samples=st.floats(min_value=1e3, max_value=1e10),
        critical_batch=st.floats(min_value=1.0, max_value=1e6),
    )
    def test_convergence_grid(self, batch, min_samples, critical_batch):
        assert_bit_identical(
            ConvergenceCostModel(),
            {"batch": batch},
            min_samples=min_samples, critical_batch=critical_batch,
        )


class TestSweepStructure:
    @QUICK_SETTINGS
    @given(
        batches=axis(st.integers(min_value=1, max_value=1 << 16), max_size=4),
        min_samples=axis(st.floats(min_value=1e3, max_value=1e9), max_size=4),
    )
    def test_multi_axis_shape_and_at(self, batches, min_samples):
        r = sweep(
            ConvergenceCostModel(),
            {"batch": batches, "min_samples": min_samples},
            critical_batch=4096.0,
        )
        assert r.shape == (len(batches), len(min_samples))
        for i in range(len(batches)):
            for j in range(len(min_samples)):
                point = r.at(i, j)
                direct = ConvergenceCostModel().evaluate(
                    batch=batches[i], min_samples=min_samples[j],
                    critical_batch=4096.0,
                )
                for term in direct:
                    assert point[term] == direct[term]
