"""Figure 2 — AI/ML usage by allocation program and year.

Stated anchors: INCITE active adoption "grown steadily from 20% in 2019" to
~31% (+28% inactive) in 2022; ALCC heavy in 2019-20; DD consistently large;
ECP low; COVID heavy.
"""

import pytest
from conftest import report

from repro.portfolio import AdoptionStatus, PortfolioAnalytics, Program, generate_portfolio
from repro.portfolio import reference as ref


def test_fig2_usage_by_program_year(benchmark):
    projects = generate_portfolio()

    def compute():
        return PortfolioAnalytics(projects).usage_by_program_year()

    table = benchmark(compute)

    active = {k: v[AdoptionStatus.ACTIVE] for k, v in table.items()}
    # stated anchors
    assert active[(Program.INCITE, 2019)] == pytest.approx(0.20, abs=0.01)
    assert active[(Program.INCITE, 2022)] == pytest.approx(0.31, abs=0.01)
    incite = [active[(Program.INCITE, y)] for y in (2019, 2020, 2021, 2022)]
    assert incite == sorted(incite)  # "grown steadily"
    assert active[(Program.COVID, 2020)] > 0.5  # "use AI/ML heavily"
    assert active[(Program.ECP, 2020)] < 0.2  # "use AI/ML less"
    assert active[(Program.ALCC, 2019)] > active[(Program.ALCC, 2021)]

    rows = []
    for (program, year), fractions in table.items():
        total, ref_active, ref_inactive = ref.PROGRAM_YEAR_TABLE[(program, year)]
        rows.append((
            f"{program.value} {year}",
            f"{ref_active / total:.0%}/{ref_inactive / total:.0%}",
            f"{fractions[AdoptionStatus.ACTIVE]:.0%}/"
            f"{fractions[AdoptionStatus.INACTIVE]:.0%}",
        ))
    report(
        "Fig. 2 — usage by program-year (active/inactive)",
        rows,
        header=("cohort", "paper", "measured"),
    )
