"""Classical scaling laws and efficiency metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def amdahl_speedup(p: int, serial_fraction: float) -> float:
    """Amdahl's law: S(p) = 1 / (s + (1-s)/p).

    >>> round(amdahl_speedup(1024, 0.01), 1)
    91.2
    """
    if p < 1:
        raise ConfigurationError("p must be >= 1")
    if not 0 <= serial_fraction <= 1:
        raise ConfigurationError("serial fraction must be in [0, 1]")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def gustafson_speedup(p: int, serial_fraction: float) -> float:
    """Gustafson's law (scaled speedup): S(p) = s + (1-s) * p."""
    if p < 1:
        raise ConfigurationError("p must be >= 1")
    if not 0 <= serial_fraction <= 1:
        raise ConfigurationError("serial fraction must be in [0, 1]")
    return serial_fraction + (1.0 - serial_fraction) * p


def parallel_efficiency(speedup: float, p: int) -> float:
    """E = S / p."""
    if p < 1:
        raise ConfigurationError("p must be >= 1")
    if speedup < 0:
        raise ConfigurationError("speedup must be non-negative")
    return speedup / p


def scaled_speedup(throughputs: np.ndarray, workers: np.ndarray) -> np.ndarray:
    """Speedup series throughput(p)/throughput(p0); pair with
    :func:`parallel_efficiency` (using p/p0 workers) for weak-scaling
    efficiency curves."""
    throughputs = np.asarray(throughputs, dtype=float)
    workers = np.asarray(workers, dtype=float)
    if throughputs.shape != workers.shape or throughputs.size < 1:
        raise ConfigurationError("series must be non-empty and congruent")
    if throughputs[0] <= 0:
        raise ConfigurationError("baseline throughput must be positive")
    return throughputs / throughputs[0]


def fit_serial_fraction(workers: np.ndarray, efficiencies: np.ndarray) -> float:
    """Least-squares fit of Amdahl's serial fraction to measured weak-scaling
    efficiencies — a one-parameter summary of a scaling curve.

    Using E(p) = 1/(p s + 1 - s) => 1/E = s (p - 1) + 1, linear in s.
    """
    workers = np.asarray(workers, dtype=float)
    efficiencies = np.asarray(efficiencies, dtype=float)
    if workers.shape != efficiencies.shape or workers.size < 2:
        raise ConfigurationError("need at least two scaling points")
    if (efficiencies <= 0).any():
        raise ConfigurationError("efficiencies must be positive")
    if np.unique(workers).size < 2:
        raise ConfigurationError("need at least two distinct worker counts")
    x = workers - 1.0
    y = 1.0 / efficiencies - 1.0
    denom = float((x * x).sum())
    if denom == 0:
        raise ConfigurationError("worker counts are all equal to one")
    s = float((x * y).sum() / denom)
    return min(max(s, 0.0), 1.0)
