"""Alpha-beta link model.

Message transfer time is modelled as ``alpha + size / bandwidth`` — the
standard LogP-style first-order model. Summit's dual-rail EDR InfiniBand
gives 2 x 12.5 GB/s = 25 GB/s injection per node with ~1 microsecond
MPI-level latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link characterised by latency and bandwidth.

    Parameters
    ----------
    latency:
        One-way message latency in seconds (the "alpha" term).
    bandwidth:
        Sustained bandwidth in bytes/s (the inverse "beta" term).
    rails:
        Number of independent rails; bandwidth is *per rail* and aggregates
        linearly, latency does not improve with rails.
    """

    latency: float
    bandwidth: float
    rails: int = 1

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise ConfigurationError(f"non-positive bandwidth: {self.bandwidth}")
        if self.rails < 1:
            raise ConfigurationError(f"rails must be >= 1, got {self.rails}")

    @property
    def total_bandwidth(self) -> float:
        """Aggregate bandwidth across rails in bytes/s."""
        return self.bandwidth * self.rails

    def transfer_time(self, size_bytes: float) -> float:
        """Time to move ``size_bytes`` across the link (alpha-beta model)."""
        if size_bytes < 0:
            raise ConfigurationError(f"negative message size: {size_bytes}")
        return self.latency + size_bytes / self.total_bandwidth

    def effective_bandwidth(self, size_bytes: float) -> float:
        """Achieved bytes/s for a message of ``size_bytes`` (latency-degraded)."""
        if size_bytes <= 0:
            raise ConfigurationError(f"message size must be positive: {size_bytes}")
        return size_bytes / self.transfer_time(size_bytes)


def injection_link(machine: "MachineSpec | str | None" = None) -> LinkSpec:
    """Per-node injection :class:`LinkSpec` for ``machine`` (default Summit)."""
    from repro.machine.spec import resolve_machine

    return resolve_machine(machine).interconnect


def intra_node_link(machine: "MachineSpec | str | None" = None) -> LinkSpec:
    """NVLink-class intra-node :class:`LinkSpec` for ``machine``."""
    from repro.machine.spec import resolve_machine

    return resolve_machine(machine).intra_node_link


# The Summit singletons below are resolved lazily (PEP 562) from the machine
# registry so importing this module never drags in ``repro.machine`` — the
# registry imports this module for the LinkSpec class.
#
#   EDR_RAIL          one EDR InfiniBand rail (12.5 GB/s payload)
#   SUMMIT_INJECTION  dual-rail EDR NIC, 25 GB/s injection per node
#   NVLINK2           NVLink 2.0 brick pair inside a node (per direction)


def __getattr__(name: str) -> LinkSpec:
    if name == "EDR_RAIL":
        from repro.machine.spec import SUMMIT

        return LinkSpec(
            latency=SUMMIT.injection_latency,
            bandwidth=SUMMIT.injection_rail_bandwidth,
        )
    if name == "SUMMIT_INJECTION":
        from repro.machine.spec import SUMMIT

        return SUMMIT.interconnect
    if name == "NVLINK2":
        from repro.machine.spec import SUMMIT

        return SUMMIT.intra_node_link
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(
        set(globals()) | {"EDR_RAIL", "SUMMIT_INJECTION", "NVLINK2"}
    )
