"""Adam (Kingma & Ba) with bias correction."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Standard Adam; the base update reused (pre-trust-ratio) by LAMB."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ConfigurationError("betas must be in [0, 1)")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None

    def adam_direction(
        self, i: int, p: np.ndarray, g: np.ndarray
    ) -> np.ndarray:
        """The bias-corrected Adam step direction for tensor ``i`` (no lr)."""
        assert self._m is not None and self._v is not None
        m, v = self._m[i], self._v[i]
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * g * g
        m_hat = m / (1 - self.beta1**self.t)
        v_hat = v / (1 - self.beta2**self.t)
        direction = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay:
            direction = direction + self.weight_decay * p
        return direction

    def _ensure_state(self, params: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]

    def _update(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._ensure_state(params)
        for i, (p, g) in enumerate(zip(params, grads)):
            p -= self.lr * self.adam_direction(i, p, g)
