"""Principal component analysis via SVD.

PCA appears in the paper's Figure 3 discussion as one of the "other" ML
methods projects use; the workflows use it for latent-space analysis. Uses
the thin SVD (``full_matrices=False``) — computing only what is needed, per
the scientific-Python optimisation guidance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class PCA:
    """Fit/transform PCA keeping ``n_components`` directions."""

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ConfigurationError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # (k, d)
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n, d = x.shape
        if self.n_components > min(n, d):
            raise ConfigurationError(
                f"n_components={self.n_components} exceeds min(n, d)={min(n, d)}"
            )
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        k = self.n_components
        self.components_ = vt[:k]
        var = (s**2) / max(1, n - 1)
        self.explained_variance_ = var[:k]
        self.explained_variance_ratio_ = var[:k] / var.sum()
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise ConfigurationError("transform called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise ConfigurationError("inverse_transform called before fit")
        z = np.atleast_2d(np.asarray(z, dtype=float))
        return z @ self.components_ + self.mean_
