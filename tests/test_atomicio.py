"""Tests for crash-safe writes — including the two-process cache race:
concurrent stores to the same key must each leave a complete, loadable
artifact behind (last rename wins, no torn pickle ever visible)."""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.atomicio import atomic_write_bytes, atomic_write_text, fsync_dir
from repro.exec.cache import ResultCache


class TestAtomicWrite:
    def test_writes_and_returns_final_path(self, tmp_path):
        target = tmp_path / "out.bin"
        assert atomic_write_bytes(target, b"payload") == target
        assert target.read_bytes() == b"payload"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_tmp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        for i in range(5):
            atomic_write_text(target, f"v{i}")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_fsync_variant_also_lands(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "durable", fsync=True)
        assert target.read_text() == "durable"

    def test_fsync_dir_accepts_real_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_tmp_name_carries_pid(self, tmp_path):
        # the scratch-file convention that keeps racing processes apart
        target = tmp_path / "x"
        tmp_name = f"x.tmp.{os.getpid()}"
        assert (tmp_path / tmp_name).name.endswith(str(os.getpid()))
        atomic_write_text(target, "v")
        assert not (tmp_path / tmp_name).exists()


_RACER = textwrap.dedent("""
    import pickle, sys
    from repro.exec.cache import ResultCache

    root, key, tag, n = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
    cache = ResultCache(root=root)
    for i in range(n):
        cache.store(key, {"writer": tag, "round": i})
    print("done", tag)
""")


class TestCacheRace:
    def test_two_processes_race_same_key(self, tmp_path):
        """Two writers hammer one cache key concurrently; every interleaving
        must leave a complete entry from one of them — never a torn read."""
        root = tmp_path / "cache"
        key = "ab" + "0" * 62
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [os.environ.get("PYTHONPATH", ""), "src"] if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _RACER, str(root), key, tag, "200"],
                env=env, cwd=os.getcwd(),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for tag in ("alpha", "beta")
        ]
        outs = [p.communicate(timeout=60) for p in procs]
        assert all(p.returncode == 0 for p in procs), outs
        cache = ResultCache(root=root)
        hit, value = cache.load(key)
        assert hit, "race left no complete artifact"
        assert value["writer"] in ("alpha", "beta")
        assert value["round"] == 199  # both writers finished all rounds
        # the pickle on disk is complete and parseable on its own
        raw = cache.path_for(key).read_bytes()
        assert pickle.loads(raw) == value
        # no scratch files survive the race
        leftovers = [
            p for p in cache.path_for(key).parent.iterdir()
            if ".tmp." in p.name
        ]
        assert leftovers == []

    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        cache.store("cd" + "1" * 62, {"x": [1, 2, 3]})
        assert cache.load("cd" + "1" * 62) == (True, {"x": [1, 2, 3]})


class TestAtomicCallers:
    def test_benchmark_record_is_valid_json(self, tmp_path, monkeypatch):
        sys.path.insert(0, "benchmarks")
        try:
            from _record import record
        finally:
            sys.path.pop(0)
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        path = record("atomic-smoke", {"metric": 1.5})
        import json

        payload = json.loads(path.read_text())
        assert payload["name"] == "atomic-smoke"
        assert payload["scalars"] == {"metric": 1.5}
        assert not list(tmp_path.glob("*.tmp.*"))
