"""Batch-scheduler and allocation-program simulation.

Section II-B describes how Summit's cycles are split across INCITE / ALCC /
DD and how the facility "seeks to enable scientific productivity via
capability computing". This package models that machinery:

- :mod:`repro.scheduler.jobs` — job records and synthetic campaign
  generation from a project portfolio;
- :mod:`repro.scheduler.policy` — queue policies (FIFO, capability-priority
  backfill as on Summit);
- :mod:`repro.scheduler.simulator` — runs a job stream against the machine
  on the discrete-event engine, reporting utilisation, wait times, and the
  AI/ML share of *delivered* node-hours (the paper's alternative usage
  metric, Section II-C).
"""

from repro.scheduler.faults import FaultModel
from repro.scheduler.jobs import Job, campaign_from_portfolio
from repro.scheduler.policy import Policy
from repro.scheduler.simulator import ScheduleResult, Scheduler

__all__ = [
    "FaultModel",
    "Job",
    "Policy",
    "ScheduleResult",
    "Scheduler",
    "campaign_from_portfolio",
]
