"""The analysis motif (Table I): "results from modeling and simulation runs
are analyzed by a human using ML methods."

Reproduction: Markov-state-model analysis of an MD trajectory — the
standard biomolecular post-processing pipeline the paper's Biology projects
run on Andes/Rhea. The pipeline is: simulate -> embed frames (PCA) ->
cluster into conformational states (k-means) -> estimate the transition
matrix -> extract stationary populations and implied timescales.

Quantitative self-checks: the transition matrix must be row-stochastic,
its leading eigenvalue must be 1, and the stationary distribution found by
eigen-decomposition must match long-run state occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA


@dataclass
class MsmResult:
    """Output of the Markov-state-model analysis."""

    n_states: int
    transition_matrix: np.ndarray  # (k, k), row-stochastic
    stationary: np.ndarray  # (k,)
    occupancy: np.ndarray  # empirical state frequencies
    implied_timescales: np.ndarray  # (k-1,), in lag units
    labels: np.ndarray  # per-frame state assignment

    def validate(self) -> None:
        """Raise if the MSM invariants are violated."""
        t = self.transition_matrix
        if not np.allclose(t.sum(axis=1), 1.0, atol=1e-9):
            raise ConfigurationError("transition matrix is not row-stochastic")
        if (t < -1e-12).any():
            raise ConfigurationError("negative transition probability")
        if abs(self.stationary.sum() - 1.0) > 1e-9:
            raise ConfigurationError("stationary distribution not normalised")


class TrajectoryAnalysis:
    """PCA -> k-means -> MSM over trajectory descriptor frames."""

    def __init__(self, n_components: int = 3, n_states: int = 4,
                 seed: int | None = 0):
        if n_components < 1 or n_states < 2:
            raise ConfigurationError("need >= 1 component and >= 2 states")
        self.n_components = n_components
        self.n_states = n_states
        self.seed = seed

    def run(self, frames: np.ndarray, lag: int = 1) -> MsmResult:
        """Analyse a (n_frames, n_features) trajectory at lag ``lag``."""
        frames = np.atleast_2d(np.asarray(frames, dtype=float))
        if frames.shape[0] < self.n_states * 4:
            raise ConfigurationError("trajectory too short for the state count")
        if lag < 1 or lag >= frames.shape[0]:
            raise ConfigurationError("lag out of range")

        embedded = PCA(min(self.n_components, frames.shape[1])).fit_transform(frames)
        labels = KMeans(self.n_states, seed=self.seed).fit_predict(embedded)

        counts = np.zeros((self.n_states, self.n_states))
        for a, b in zip(labels[:-lag], labels[lag:]):
            counts[a, b] += 1.0
        # symmetrise for reversibility (detailed-balance estimator), then
        # row-normalise
        counts = 0.5 * (counts + counts.T)
        row_sums = counts.sum(axis=1, keepdims=True)
        if (row_sums == 0).any():
            # merge empty states into self-loops so the matrix stays stochastic
            empty = row_sums.ravel() == 0
            counts[empty, empty] = 1.0
            row_sums = counts.sum(axis=1, keepdims=True)
        transition = counts / row_sums

        eigenvalues, eigenvectors = np.linalg.eig(transition.T)
        order = np.argsort(-eigenvalues.real)
        eigenvalues = eigenvalues.real[order]
        lead = eigenvectors[:, order[0]].real
        stationary = np.abs(lead) / np.abs(lead).sum()

        lambdas = np.clip(np.abs(eigenvalues[1:]), 1e-12, 1 - 1e-12)
        timescales = -lag / np.log(lambdas)

        occupancy = np.bincount(labels, minlength=self.n_states).astype(float)
        occupancy /= occupancy.sum()

        result = MsmResult(
            n_states=self.n_states,
            transition_matrix=transition,
            stationary=stationary,
            occupancy=occupancy,
            implied_timescales=timescales,
            labels=labels,
        )
        result.validate()
        return result


def two_state_toy_trajectory(
    n_frames: int = 2000,
    switch_probability: float = 0.02,
    n_features: int = 8,
    noise: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A trajectory that hops between two metastable wells — ground truth
    for the MSM tests. Returns (frames, true_state_labels)."""
    if not 0 < switch_probability < 1:
        raise ConfigurationError("switch_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 1.0, size=(2, n_features)) * 2.0
    state = 0
    states = np.empty(n_frames, dtype=int)
    frames = np.empty((n_frames, n_features))
    for i in range(n_frames):
        if rng.random() < switch_probability:
            state = 1 - state
        states[i] = state
        frames[i] = centers[state] + rng.normal(0, noise, size=n_features)
    return frames, states
