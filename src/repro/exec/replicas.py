"""Monte-Carlo replica fan-out over per-replica child seeds.

The seed-stable sharded-execution discipline: replica ``i`` of an ensemble
always runs with the ``i``-th child of ``SeedSequence(seed)`` regardless of
how replicas are packed onto workers, so ``n_jobs=1`` and ``n_jobs=8``
produce identical result lists (asserted by the test suite). Used by the
checkpoint-restart ensembles (:func:`repro.resilience.restart.restart_ensemble`),
the scheduler fault ensembles
(:func:`repro.scheduler.simulator.schedule_ensemble`) and the ``repro
telemetry --replicas`` trace merger.

>>> from functools import partial
>>> def draw(scale, child_seed):
...     import numpy as np
...     return float(np.random.default_rng(child_seed).normal()) * scale
>>> a = monte_carlo(partial(draw, 2.0), 4, seed=7, n_jobs=1)
>>> a == monte_carlo(partial(draw, 2.0), 4, seed=7, n_jobs=1)
True
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.exec.parallel import ParallelMap, spawn_seeds

__all__ = ["monte_carlo", "workflow_replicas"]


def monte_carlo(
    fn: Callable[[int], Any],
    n_replicas: int,
    seed: int = 0,
    n_jobs: int = 1,
) -> list[Any]:
    """Evaluate ``fn(child_seed)`` for every replica, in replica order.

    ``fn`` must be picklable for ``n_jobs > 1`` (a module-level function or
    a ``functools.partial`` of one).
    """
    if n_replicas < 1:
        raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
    return ParallelMap(n_jobs).map(fn, spawn_seeds(seed, n_replicas))


def _workflow_replica(builder, execute_kwargs, child_seed):
    graph = builder()
    return graph.execute(seed=child_seed, **execute_kwargs)


def workflow_replicas(
    builder: Callable[[], Any],
    n_replicas: int,
    seed: int = 0,
    n_jobs: int = 1,
    **execute_kwargs: Any,
) -> list[Any]:
    """Execute ``n_replicas`` same-shape workflow DAGs with child seeds.

    ``builder`` is a picklable zero-argument callable returning a fresh
    :class:`~repro.workflows.dag.TaskGraph`; each replica executes with its
    own child seed and the returned :class:`~repro.workflows.dag.WorkflowRun`
    list is in replica order — identical for any ``n_jobs``.
    """
    from functools import partial

    return monte_carlo(
        partial(_workflow_replica, builder, execute_kwargs),
        n_replicas,
        seed=seed,
        n_jobs=n_jobs,
    )
