"""Tests for the classic ML components: forests, PCA, k-means, GA, surrogate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ConvergenceError
from repro.ml import (
    DecisionTreeRegressor,
    EnsembleSurrogate,
    GeneticAlgorithm,
    KMeans,
    PCA,
    RandomForestRegressor,
)
from repro.ml.data import gaussian_blobs, regression_friedman


class TestDecisionTree:
    def test_fits_constant(self):
        tree = DecisionTreeRegressor().fit(np.zeros((10, 2)), np.full(10, 3.0))
        assert tree.predict(np.zeros((1, 2)))[0] == pytest.approx(3.0)

    def test_fits_step_function_exactly(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x.ravel() > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.predict([[0.2]])[0] == pytest.approx(0.0)
        assert tree.predict([[0.8]])[0] == pytest.approx(1.0)

    def test_depth_respects_limit(self):
        x, y = regression_friedman(200, seed=0)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_reduces_friedman_error(self):
        x, y = regression_friedman(400, seed=1)
        tree = DecisionTreeRegressor(max_depth=8).fit(x, y)
        pred = tree.predict(x)
        baseline = float(((y.ravel() - y.mean()) ** 2).mean())
        assert float(((pred - y.ravel()) ** 2).mean()) < 0.3 * baseline


class TestRandomForest:
    def test_beats_single_tree_out_of_sample(self):
        x, y = regression_friedman(400, seed=2)
        xt, yt = regression_friedman(200, seed=3)
        tree = DecisionTreeRegressor(max_depth=8).fit(x, y)
        forest = RandomForestRegressor(n_trees=32, seed=0).fit(x, y)
        err_tree = float(((tree.predict(xt) - yt.ravel()) ** 2).mean())
        err_forest = float(((forest.predict(xt) - yt.ravel()) ** 2).mean())
        assert err_forest < err_tree

    def test_uncertainty_shapes(self):
        x, y = regression_friedman(100, seed=4)
        forest = RandomForestRegressor(n_trees=8, seed=0).fit(x, y)
        mean, std = forest.predict_with_uncertainty(x[:5])
        assert mean.shape == (5,)
        assert std.shape == (5,)
        assert (std >= 0).all()

    def test_uncertainty_higher_off_distribution(self):
        x, y = regression_friedman(300, seed=5)
        forest = RandomForestRegressor(n_trees=16, seed=0).fit(x, y)
        _, std_in = forest.predict_with_uncertainty(x[:50])
        _, std_out = forest.predict_with_uncertainty(x[:50] + 5.0)
        assert std_out.mean() >= std_in.mean() * 0.5  # trees extrapolate flat

    def test_deterministic_given_seed(self):
        x, y = regression_friedman(100, seed=6)
        f1 = RandomForestRegressor(n_trees=4, seed=42).fit(x, y)
        f2 = RandomForestRegressor(n_trees=4, seed=42).fit(x, y)
        assert np.allclose(f1.predict(x), f2.predict(x))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomForestRegressor().predict(np.zeros((1, 3)))

    def test_bad_max_features_rejected(self):
        x, y = regression_friedman(50, seed=7)
        with pytest.raises(ConfigurationError):
            RandomForestRegressor(max_features=-1).fit(x, y)


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        direction = np.array([3.0, 4.0]) / 5.0
        x = rng.normal(size=(500, 1)) * 5 @ direction[None, :]
        x += rng.normal(scale=0.1, size=x.shape)
        pca = PCA(1).fit(x)
        found = pca.components_[0]
        assert abs(abs(found @ direction) - 1.0) < 0.01

    def test_explained_variance_ratio_sums_below_one(self):
        x, _ = regression_friedman(200, seed=8)
        pca = PCA(3).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0

    def test_transform_inverse_roundtrip_full_rank(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 4))
        pca = PCA(4).fit(x)
        recon = pca.inverse_transform(pca.transform(x))
        assert np.allclose(recon, x, atol=1e-8)

    def test_too_many_components_rejected(self):
        with pytest.raises(ConfigurationError):
            PCA(10).fit(np.zeros((5, 3)))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            PCA(2).transform(np.zeros((3, 4)))


class TestKMeans:
    def test_recovers_separated_blobs(self):
        x, labels = gaussian_blobs(300, centers=3, spread=0.15, seed=0)
        km = KMeans(3, seed=0).fit(x)
        pred = km.predict(x)
        # cluster purity: each predicted cluster should be dominated by one
        # true label
        purity = 0
        for k in range(3):
            members = labels[pred == k]
            if members.size:
                purity += np.bincount(members).max()
        assert purity / len(labels) > 0.95

    def test_inertia_decreases_with_more_clusters(self):
        x, _ = gaussian_blobs(200, centers=4, seed=1)
        i2 = KMeans(2, seed=0).fit(x).inertia_
        i8 = KMeans(8, seed=0).fit(x).inertia_
        assert i8 < i2

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConvergenceError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_more_clusters_than_points_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeans(10).fit(np.zeros((3, 2)))

    def test_deterministic_given_seed(self):
        x, _ = gaussian_blobs(100, seed=2)
        a = KMeans(3, seed=5).fit_predict(x)
        b = KMeans(3, seed=5).fit_predict(x)
        assert (a == b).all()


class TestGeneticAlgorithm:
    def test_maximises_onemax(self):
        ga = GeneticAlgorithm(genome_length=20, n_alleles=2, population=32, seed=0)
        result = ga.run(lambda pop: pop.sum(axis=1).astype(float), generations=40)
        assert result.best_fitness >= 18

    def test_history_nondecreasing_best(self):
        ga = GeneticAlgorithm(genome_length=12, n_alleles=4, population=24, seed=1)
        result = ga.run(lambda pop: -np.abs(pop - 2).sum(axis=1).astype(float),
                        generations=20)
        best_so_far = np.maximum.accumulate(result.history)
        assert result.best_fitness == pytest.approx(best_so_far[-1])

    def test_evaluation_count(self):
        ga = GeneticAlgorithm(genome_length=8, n_alleles=2, population=16, seed=2)
        result = ga.run(lambda pop: pop.sum(axis=1).astype(float), generations=5)
        assert result.evaluations == 16 * 5

    def test_elitism_preserves_best(self):
        ga = GeneticAlgorithm(genome_length=10, n_alleles=2, population=16,
                              elitism=2, mutation_rate=0.5, seed=3)
        result = ga.run(lambda pop: pop.sum(axis=1).astype(float), generations=30)
        assert result.history[-1] >= max(result.history[:5])

    def test_bad_fitness_shape_rejected(self):
        ga = GeneticAlgorithm(genome_length=4, n_alleles=2, population=8, seed=4)
        with pytest.raises(ConfigurationError):
            ga.run(lambda pop: np.zeros(3), generations=1)

    def test_invalid_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneticAlgorithm(genome_length=0, n_alleles=2)
        with pytest.raises(ConfigurationError):
            GeneticAlgorithm(genome_length=4, n_alleles=2, population=2)
        with pytest.raises(ConfigurationError):
            GeneticAlgorithm(genome_length=4, n_alleles=2, mutation_rate=2.0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_deterministic_given_seed(self, seed):
        def fitness(pop):
            return pop.sum(axis=1).astype(float)

        r1 = GeneticAlgorithm(6, 3, population=12, seed=seed).run(fitness, 5)
        r2 = GeneticAlgorithm(6, 3, population=12, seed=seed).run(fitness, 5)
        assert (r1.best_genome == r2.best_genome).all()
        assert r1.history == r2.history


class TestEnsembleSurrogate:
    def test_fit_predict_shapes(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = (x**2).sum(axis=1, keepdims=True)
        s = EnsembleSurrogate(2, n_members=3, seed=0).fit(x, y, epochs=100)
        mean, std = s.predict(x[:7])
        assert mean.shape == (7, 1)
        assert std.shape == (7, 1)

    def test_acquisition_higher_outside_training_region(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = (x**2).sum(axis=1, keepdims=True)
        s = EnsembleSurrogate(2, n_members=4, seed=1).fit(x, y, epochs=150)
        inside = s.acquisition(x[:50]).mean()
        outside = s.acquisition(x[:50] * 4.0).mean()
        assert outside > inside

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleSurrogate(2).predict(np.zeros((1, 2)))
