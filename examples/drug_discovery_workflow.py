#!/usr/bin/env python
"""Drug-discovery lead-optimisation loop (Section V-C, IMPECCABLE-style).

A 2 000-compound virtual library is screened with a cheap-but-biased
docking tier; a random-forest surrogate (trained on the expensive MD-refined
tier, with the docking score as a multi-fidelity feature) iteratively picks
which compounds deserve MD refinement. A genetic algorithm then searches
compound space against the trained surrogate (the Blanchard et al. pattern).

Figure of merit: enrichment of true top-1% binders among the MD-evaluated
compounds, vs. random and docking-rank baselines at equal MD budget.

Run:  python examples/drug_discovery_workflow.py
"""

from repro.science.docking import CompoundLibrary, DockingOracle
from repro.workflows.case_drug import DrugDiscoveryWorkflow


def main() -> None:
    print("AI-coupled drug-discovery pipeline")
    print("=" * 60)

    library = CompoundLibrary.random(2000, seed=11)
    oracle = DockingOracle(seed=11)
    workflow = DrugDiscoveryWorkflow(library, oracle, seed=11)

    result = workflow.run()
    print(f"MD (expensive-tier) evaluations: {result.md_calls} "
          f"of {len(library)} compounds ({result.md_calls / len(library):.0%})")
    print()
    print("Enrichment of true top-1% binders at equal MD budget:")
    print(f"  surrogate loop     {result.enrichment:.0%}")
    print(f"  docking-rank       {result.enrichment_docking:.0%}")
    print(f"  random selection   {result.enrichment_random:.0%}")
    print(f"  gain over docking  {result.enrichment_gain:.1f}x")
    print()
    print("Best true affinity found per iteration:",
          [f"{v:.2f}" for v in result.iteration_best])
    print()

    ga_result, true_best = workflow.ga_search(generations=30)
    print("Generative search (GA against the trained surrogate):")
    print(f"  surrogate score of best genome: {ga_result.best_fitness:.2f}")
    print(f"  true affinity of best genome:   {true_best:.2f}")
    print(f"  fitness evaluations:            {ga_result.evaluations} "
          f"(all surrogate — zero extra MD)")


if __name__ == "__main__":
    main()
