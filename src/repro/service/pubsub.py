"""Live event streaming: the campaign server's pubsub hub and wire frames.

The observability counterpart of the write-ahead journal: where the journal
makes every state transition *durable*, the hub makes it *visible* — a
subscriber on the campaign's unix socket watches leases, completions,
requeues, telemetry instants and counter samples as they happen, without
polling ``status`` and without the server buffering unboundedly for slow
readers.

Topics:

- ``journal`` — every committed journal record, published *after* the
  fsync that made it durable, carrying the journal's own monotonic ``seq``.
  Because the backlog for this topic is served from the journal files on
  disk, a subscriber that reconnects with ``since_seq`` set to the last
  frame it saw receives every missed record exactly once, in order — even
  across a server SIGKILL and restart.
- ``spans`` / ``events`` / ``counters`` — the server telemetry handle's
  closed spans, instant events and counter samples (the hub is a telemetry
  *tap*; payloads are the same wire records the JSONL exporters and shard
  files use). These are advisory: history is a bounded ring, so ``seq``
  gaps are possible and honest.

Frames are length-prefixed canonical JSON — ``<byte-len>\\n<body>\\n`` with
``body = {"payload": ..., "seq": N, "topic": "...", "v": 1}`` — so a reader
never depends on payload newlines, and version skew fails loudly rather
than silently misparsing. ``seq`` 0 is reserved for the end-of-stream
control frame (:func:`eos_frame`): the server sends it when the campaign
drains, so a clean end is *in-band* and a bare EOF always means the
connection was severed (server killed) — the distinction ``follow``
needs to decide between stopping and reconnecting.

Flow control is per-subscriber and lossy-but-honest: each subscriber owns a
bounded queue; when it falls behind, frames are *dropped* (never buffered
into an OOM), the drop is counted in the server metrics, and the gap is
visible to the client as a ``seq`` jump it can repair via resubscribe.

>>> hub = PubSubHub(history=8)
>>> frame = hub.publish("events", {"name": "requeue"})
>>> (frame.topic, frame.seq)
('events', 1)
>>> decode_frame(encode_frame(frame)[encode_frame(frame).index(b"\\n") + 1:])
Frame(topic='events', seq=1, payload={'name': 'requeue'})
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Iterable

from repro.errors import ProtocolError, ServiceError

__all__ = [
    "FRAME_VERSION",
    "Frame",
    "HubSink",
    "PubSubHub",
    "TOPICS",
    "decode_frame",
    "encode_frame",
    "eos_frame",
    "read_frame",
]

#: Bumped on any incompatible frame change; readers reject other versions.
FRAME_VERSION = 1
#: Topics the hub serves. ``journal`` is durable (disk-backed backlog);
#: the telemetry topics are ring-buffered.
TOPICS = ("journal", "spans", "events", "counters")
#: Cap on one frame body — matches the server's request-line cap.
MAX_FRAME_BYTES = 32 * 1024 * 1024
#: Per-subscriber queue bound: a reader this far behind starts losing
#: frames (counted, and visible as a seq gap) instead of growing the heap.
SUBSCRIBER_QUEUE_FRAMES = 1024


@dataclass(frozen=True)
class Frame:
    """One published event: a topic, a per-topic monotonic seq, a payload."""

    topic: str
    seq: int
    payload: dict[str, Any]

    def to_wire(self) -> dict[str, Any]:
        return {
            "payload": self.payload, "seq": self.seq,
            "topic": self.topic, "v": FRAME_VERSION,
        }

    @property
    def is_eos(self) -> bool:
        """True for the reserved end-of-stream control frame (seq 0)."""
        return self.seq == 0


def eos_frame(topic: str) -> Frame:
    """The end-of-stream control frame: seq 0, never a real event.

    Published frames always carry ``seq >= 1``, so seq 0 unambiguously
    marks a *clean* stream end (campaign drained) as opposed to a severed
    connection (bare EOF, server killed mid-stream).
    """
    return Frame(topic=topic, seq=0, payload={"type": "eos"})


def encode_frame(frame: Frame) -> bytes:
    """``<byte-len>\\n<canonical-json-body>\\n`` — self-delimiting."""
    body = json.dumps(
        frame.to_wire(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return str(len(body)).encode("ascii") + b"\n" + body + b"\n"


def decode_frame(body: bytes) -> Frame:
    """Parse one frame body (the bytes between the two newlines)."""
    try:
        wire = json.loads(body.decode("utf-8"))
        if not isinstance(wire, dict):
            raise ValueError
    except (ValueError, UnicodeDecodeError):
        raise ProtocolError("event frame body is not a JSON object") from None
    if wire.get("v") != FRAME_VERSION:
        raise ProtocolError(
            f"event frame version {wire.get('v')!r} is not the supported "
            f"version {FRAME_VERSION}"
        )
    try:
        return Frame(
            topic=wire["topic"], seq=int(wire["seq"]),
            payload=wire["payload"],
        )
    except (KeyError, TypeError, ValueError):
        raise ProtocolError("event frame is missing topic/seq/payload") from None


def read_frame(fh: BinaryIO) -> Frame | None:
    """Read one frame from a blocking byte stream; ``None`` on clean EOF."""
    header = fh.readline()
    if not header:
        return None
    try:
        length = int(header.strip())
    except ValueError:
        raise ProtocolError(
            f"event frame header {header[:32]!r} is not a length"
        ) from None
    if not 0 <= length <= MAX_FRAME_BYTES:
        raise ProtocolError(f"event frame length {length} out of bounds")
    body = fh.read(length + 1)  # body + trailing newline
    if len(body) < length + 1:
        return None  # torn mid-frame: the stream died
    return decode_frame(body[:length])


@dataclass
class _Subscriber:
    topic: str
    queue: "asyncio.Queue[Frame | None]"
    dropped: int = 0


@dataclass
class PubSubHub:
    """Fan one event stream out to bounded per-subscriber queues.

    Single-threaded by design: ``publish`` and ``subscribe`` run
    synchronously on the server's event loop (between awaits), so
    registering a subscriber and computing its backlog is atomic — a frame
    is either in the backlog or will arrive on the queue, never both,
    never neither.
    """

    metrics: Any = None
    history: int = 4096
    _seqs: dict[str, int] = field(default_factory=dict)
    _rings: dict[str, deque] = field(default_factory=dict)
    _subscribers: dict[int, _Subscriber] = field(default_factory=dict)
    _next_token: int = 1
    closed: bool = False

    def publish(
        self, topic: str, payload: dict[str, Any], seq: int | None = None
    ) -> Frame:
        """Publish one event; returns the frame (with its assigned seq).

        ``seq`` overrides the hub's per-topic counter — the journal topic
        passes the durable journal seq so frames and WAL records share one
        numbering. Caller-supplied seqs must still be monotonic.
        """
        if self.closed:
            raise ServiceError("pubsub hub is closed")
        if topic not in TOPICS:
            raise ProtocolError(
                f"unknown event topic {topic!r}; choose from {list(TOPICS)}"
            )
        last = self._seqs.get(topic, 0)
        if seq is None:
            seq = last + 1
        elif seq <= last:
            raise ServiceError(
                f"{topic}: seq {seq} not after {last} — frames must be "
                "published in order"
            )
        self._seqs[topic] = seq
        frame = Frame(topic=topic, seq=seq, payload=payload)
        ring = self._rings.get(topic)
        if ring is None:
            ring = self._rings[topic] = deque(maxlen=self.history)
        ring.append(frame)
        self._count("service.events_published")
        for sub in self._subscribers.values():
            if sub.topic != topic:
                continue
            try:
                sub.queue.put_nowait(frame)
            except asyncio.QueueFull:
                sub.dropped += 1
                self._count("service.subscriber_drops")
        return frame

    def backlog(self, topic: str, since_seq: int = 0) -> list[Frame]:
        """Ring-buffered frames with ``seq > since_seq`` (oldest first)."""
        return [
            f for f in self._rings.get(topic, ()) if f.seq > since_seq
        ]

    def subscribe(
        self, topic: str, since_seq: int = 0
    ) -> tuple[int, list[Frame], "asyncio.Queue[Frame | None]"]:
        """Register a subscriber; returns (token, backlog, live queue).

        The queue receives every frame published after this call (up to
        its bound); the backlog covers ``seq > since_seq`` from the ring.
        Callers needing the durable journal backlog read it from disk and
        ignore the ring's (the server does exactly this).
        """
        if self.closed:
            raise ServiceError("pubsub hub is closed")
        if topic not in TOPICS:
            raise ProtocolError(
                f"unknown event topic {topic!r}; choose from {list(TOPICS)}"
            )
        token = self._next_token
        self._next_token += 1
        queue: "asyncio.Queue[Frame | None]" = asyncio.Queue(
            maxsize=SUBSCRIBER_QUEUE_FRAMES
        )
        self._subscribers[token] = _Subscriber(topic=topic, queue=queue)
        self._gauge_subscribers()
        return token, self.backlog(topic, since_seq), queue

    def unsubscribe(self, token: int) -> None:
        self._subscribers.pop(token, None)
        self._gauge_subscribers()

    def last_seq(self, topic: str) -> int:
        return self._seqs.get(topic, 0)

    def close(self) -> None:
        """Seal the hub: wake every subscriber with an end-of-stream."""
        if self.closed:
            return
        self.closed = True
        for sub in self._subscribers.values():
            while True:
                try:
                    sub.queue.put_nowait(None)
                    break
                except asyncio.QueueFull:
                    # Slow reader at shutdown: sacrifice its oldest queued
                    # frame so the end-of-stream sentinel always lands.
                    sub.queue.get_nowait()
                    sub.dropped += 1
                    self._count("service.subscriber_drops")

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge_subscribers(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service.subscribers").set(
                float(len(self._subscribers))
            )


class HubSink:
    """Telemetry tap → hub bridge (register via ``Telemetry.add_tap``).

    Publishes the server handle's closed spans, instant events and counter
    samples on the ``spans`` / ``events`` / ``counters`` topics, as the
    same wire records the JSONL exporters and telemetry shards use.
    Dropping events once the hub closes (server drain) is deliberate —
    late telemetry must not resurrect a sealed stream.
    """

    def __init__(self, hub: PubSubHub):
        self.hub = hub

    def emit_span(self, span) -> None:
        from repro.telemetry.export import span_record

        if not self.hub.closed:
            self.hub.publish("spans", span_record(span))

    def emit_instant(self, event) -> None:
        from repro.telemetry.export import instant_record

        if not self.hub.closed:
            self.hub.publish("events", instant_record(event))

    def emit_sample(self, sample) -> None:
        from repro.telemetry.export import sample_record

        if not self.hub.closed:
            self.hub.publish("counters", sample_record(sample))


def frames_from_journal(
    records: Iterable[dict[str, Any]], since_seq: int = 0
) -> list[Frame]:
    """Journal records → ``journal``-topic frames (durable backlog path)."""
    return [
        Frame(topic="journal", seq=record["seq"], payload=record)
        for record in records
        if record["seq"] > since_seq
    ]
