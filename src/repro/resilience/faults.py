"""Failure models and the engine-level failure injector.

Section VI of the paper argues that at full-Summit scale the job-wide mean
time between failures shrinks linearly with node count: a 4 608-node job on
hardware with a 5-year per-node MTBF sees a failure roughly every 9.5 hours.
:class:`NodeFailureModel` captures that composition law;
:class:`FailureInjector` turns it into concrete, seeded, exponential
failure events on the discrete-event engine, interrupting whatever process
represents the work running on the failed node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Engine, Process, Timer

#: Default per-node MTBF (5 years), the figure used throughout the examples.
DEFAULT_NODE_MTBF_SECONDS = 5 * 365 * 24 * 3600.0


@dataclass(frozen=True)
class NodeFailureModel:
    """Exponential per-node failures composing across a job's nodes."""

    node_mtbf_seconds: float = DEFAULT_NODE_MTBF_SECONDS

    def __post_init__(self) -> None:
        if self.node_mtbf_seconds <= 0:
            raise ConfigurationError("node MTBF must be positive")

    def system_mtbf(self, n_nodes: int) -> float:
        """Job-wide MTBF: failure rates add across ``n_nodes`` nodes."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        return self.node_mtbf_seconds / n_nodes

    def expected_failures(self, n_nodes: int, wall_seconds: float) -> float:
        """Expected failure count over ``wall_seconds`` of a job's wall-clock."""
        if wall_seconds < 0:
            raise ConfigurationError("negative wall-clock span")
        return wall_seconds / self.system_mtbf(n_nodes)

    def draw_failure_times(
        self, n_nodes: int, horizon: float, rng: np.random.Generator
    ) -> list[float]:
        """Poisson-process failure times in ``[0, horizon)`` for a job."""
        mtbf = self.system_mtbf(n_nodes)
        times: list[float] = []
        t = float(rng.exponential(mtbf))
        while t < horizon:
            times.append(t)
            t += float(rng.exponential(mtbf))
        return times


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure: when it struck and which node index died."""

    time: float
    node: int


@dataclass
class FailureInjector:
    """Draws node failures on an :class:`Engine` and interrupts the victim.

    Spawn one injector per job-like process via :meth:`attach`; it waits
    exponential inter-failure times at the job's system MTBF and throws an
    :class:`~repro.sim.engine.Interrupt` (whose ``cause`` is a
    :class:`FailureEvent`) into the target. The injector stops when the
    target finishes or when it is itself interrupted.

    The injector never blocks on anything but its own clock, so it rides
    the engine's generator-free :class:`~repro.sim.engine.Timer` fast path:
    each expiry is one plain callback, with no generator frame on the
    engine's hot loop. The failure times, the rng draw order (exponential
    wait, then victim node index, alternating) and the interrupt timeline
    are identical to the historical generator implementation.

    Deterministic: the same seed yields the same failure times.

    When the engine carries a :class:`~repro.telemetry.Telemetry` handle
    (or one is passed explicitly), every injection lands as a fault instant
    event plus a ``faults.injected`` counter increment.
    """

    engine: Engine
    model: NodeFailureModel = field(default_factory=NodeFailureModel)
    seed: int = 0
    events: list[FailureEvent] = field(default_factory=list)
    telemetry: Any = None  # Telemetry | None; falls back to engine.telemetry

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        if self.telemetry is None:
            self.telemetry = self.engine.telemetry

    def attach(
        self, target: Process, n_nodes: int, timer_bank: bool = False
    ) -> Any:
        """Spawn the injector stalking ``target``; returns its handle.

        The default is the historical single system-MTBF clock (one
        :class:`~repro.sim.engine.Timer`, alternating exponential-wait and
        victim-index draws) — existing seeds and goldens are untouched.

        ``timer_bank=True`` switches to *per-node* exponential clocks in
        one vectorized :class:`~repro.sim.timerbank.TimerBank`: every node
        gets its own MTBF clock (lane index = node index, so the victim is
        the lane that fired — no separate draw), scaling to all 4 608
        Summit nodes for the same cost as one. The superposed per-node
        Poisson processes compose to exactly the same system MTBF law, but
        the rng stream differs from the single-clock path, so this is an
        explicit opt-in, returning the bank instead of a process. Bank-on
        runs are byte-identical across ``vectorized`` modes and engine
        impls (the differential suite pins this).
        """
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if timer_bank:
            return self._attach_bank(target, n_nodes)
        mtbf = self.model.system_mtbf(n_nodes)

        def fire() -> float | None:
            if target.finished:
                return None
            event = FailureEvent(
                time=self.engine.now,
                node=int(self._rng.integers(0, n_nodes)),
            )
            self.events.append(event)
            if self.telemetry is not None:
                self.telemetry.instant(
                    f"failure:node{event.node}", "fault",
                    facility="faults", track=target.name,
                    time=event.time, node=event.node,
                    target=target.name,
                )
                self.telemetry.metrics.counter("faults.injected").inc()
            target.interrupt(event)
            return float(self._rng.exponential(mtbf))

        proc = self.engine.spawn(
            Timer(float(self._rng.exponential(mtbf)), fire),
            name=f"injector:{target.name}",
        )
        # stop the injector the moment the target completes, so the engine
        # clock is not dragged past the interesting part of the simulation
        self.engine.spawn(
            self._sentinel(target, proc), name=f"sentinel:{target.name}"
        )
        return proc

    def _attach_bank(self, target: Process, n_nodes: int):
        """Per-node MTBF clocks as one vectorized timer bank."""
        from repro.sim.timerbank import ExponentialRearm, TimerBank

        node_mtbf = self.model.node_mtbf_seconds
        rng = self._rng

        def on_fire(node: int) -> bool:
            if target.finished:
                return False
            event = FailureEvent(time=self.engine.now, node=node)
            self.events.append(event)
            if self.telemetry is not None:
                self.telemetry.instant(
                    f"failure:node{event.node}", "fault",
                    facility="faults", track=target.name,
                    time=event.time, node=event.node,
                    target=target.name,
                )
                self.telemetry.metrics.counter("faults.injected").inc()
            target.interrupt(event)
            return True

        bank = TimerBank(
            self.engine,
            rng.exponential(node_mtbf, n_nodes),  # one block: all first fires
            on_fire=on_fire,
            rearm=ExponentialRearm(node_mtbf, rng),
            name=f"injector:{target.name}",
        )
        self.engine.spawn(
            self._bank_sentinel(target, bank), name=f"sentinel:{target.name}"
        )
        return bank

    def _sentinel(self, target: Process, injector: Process):
        yield target
        injector.interrupt("target-finished")

    def _bank_sentinel(self, target: Process, bank):
        yield target
        bank.cancel("target-finished")
